//! Example 1.1 — the Internet bookstore.
//!
//! Searching for books by Sigmund Freud *or* Carl Jung about dreams, on a
//! source whose form takes one author at a time. Reproduces the paper's
//! numbers: the capability-sensitive plan retrieves fewer than 20 entries
//! while the Garlic-style CNF plan extracts over 2,000.
//!
//! ```sh
//! cargo run --release -p csqp --example bookstore
//! ```

use csqp::prelude::*;
use csqp::relation::datagen::{books, BookGenConfig};
use csqp::ssdl::templates;
use std::sync::Arc;

fn main() {
    println!("Loading the bookstore (50,000 books, seeded)...");
    let source = Arc::new(Source::new(
        books(7, &BookGenConfig::default()),
        templates::bookstore(),
        CostParams::default(),
    ));
    println!("capabilities:\n{}", source.gate_view().desc);

    let query = TargetQuery::parse(
        r#"(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams""#,
        &["isbn", "author", "title"],
    )
    .unwrap();
    println!("target query:\n  {query}\n");

    // The capability gate rejects the raw query.
    let raw = source.answer(Some(&query.cond), &query.attrs);
    println!(
        "sending the raw query to the source: {}\n",
        match raw {
            Err(e) => format!("REJECTED — {e}"),
            Ok(_) => "accepted (unexpected!)".to_string(),
        }
    );

    for scheme in [Scheme::GenCompact, Scheme::Dnf, Scheme::Cnf, Scheme::Disco, Scheme::NaivePush] {
        let mediator = Mediator::new(source.clone()).with_scheme(scheme);
        match mediator.run(&query) {
            Ok(out) => {
                println!("{}:", scheme.name());
                println!("  plan: {}", out.planned.plan);
                println!(
                    "  {} source queries, {} tuples extracted, {} answers, measured cost {:.0}",
                    out.meter.queries,
                    out.meter.tuples_shipped,
                    out.rows.len(),
                    out.measured_cost
                );
                match scheme {
                    Scheme::GenCompact | Scheme::Dnf => {
                        assert!(
                            out.meter.tuples_shipped < 20,
                            "paper: the two-query plan extracts fewer than 20 entries"
                        );
                    }
                    Scheme::Cnf => {
                        assert!(
                            out.meter.tuples_shipped > 2000,
                            "paper: the CNF plan extracts over 2,000 entries"
                        );
                    }
                    _ => {}
                }
            }
            Err(e) => println!("{}: INFEASIBLE — {e}", scheme.name()),
        }
        println!();
    }

    println!("All of the paper's Example 1.1 claims reproduced.");
}
