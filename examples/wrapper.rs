//! A generic relational wrapper built on the mediator — §2 of the paper:
//!
//! "if wrappers are to provide generic relational capabilities for Internet
//! sources, then they need to implement a scheme like the one we describe
//! in Section 6."
//!
//! This example builds a `Wrapper` type exposing a full SP-query interface
//! over *any* capability-limited source, answering every query the source's
//! data can answer — by capability-sensitive planning underneath — and
//! reporting how much each convenience cost.
//!
//! ```sh
//! cargo run --release -p csqp --example wrapper
//! ```

use csqp::prelude::*;
use std::sync::Arc;

/// A generic relational wrapper: callers see unrestricted SP queries.
struct Wrapper {
    mediator: Mediator,
}

impl Wrapper {
    fn new(source: Arc<Source>) -> Self {
        Wrapper { mediator: Mediator::new(source) }
    }

    /// Answers an arbitrary SP query, or explains why it cannot be answered
    /// (not even by the best capability-sensitive plan).
    fn query(&self, cond: &str, attrs: &[&str]) -> Result<RunOutcome, String> {
        let q = TargetQuery::parse(cond, attrs).map_err(|e| e.to_string())?;
        self.mediator.run(&q).map_err(|e| e.to_string())
    }
}

fn main() {
    let catalog = Catalog::demo(21);
    for (name, source) in catalog.iter() {
        println!("== wrapper over `{name}` ==");
        let wrapper = Wrapper::new(source.clone());
        let queries: Vec<(&str, Vec<&str>)> = match name {
            "bookstore" => vec![
                (
                    r#"(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams""#,
                    vec!["isbn", "title"],
                ),
                (r#"subject = "psychology" ^ price <= 20"#, vec!["isbn", "price"]),
            ],
            "car_guide" => vec![(
                r#"style = "sedan" ^ (size = "compact" _ size = "midsize") ^
                   ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))"#,
                vec!["listing_id", "model", "price"],
            )],
            "car_dealer" => {
                vec![(r#"price < 40000 ^ color = "red" ^ make = "BMW""#, vec!["model", "year"])]
            }
            "bank" => {
                vec![(r#"acct_no = "acct-00007" ^ pin = "pin-00007""#, vec!["owner", "balance"])]
            }
            "flights" => vec![(
                r#"origin = "SFO" ^ dest = "JFK" ^ price <= 400"#,
                vec!["flight_no", "airline", "price"],
            )],
            _ => vec![],
        };
        for (cond, attrs) in queries {
            match wrapper.query(cond, &attrs) {
                Ok(out) => println!(
                    "  OK   {:>5} rows, {} source queries, {:>6} tuples shipped  <- {}",
                    out.rows.len(),
                    out.meter.queries,
                    out.meter.tuples_shipped,
                    cond.split_whitespace().collect::<Vec<_>>().join(" "),
                ),
                Err(e) => println!("  FAIL {e}"),
            }
        }
        println!();
    }

    // The wrapper refuses only what is genuinely unanswerable: fetching the
    // bank balance without a PIN.
    let bank = catalog.get("bank").unwrap().clone();
    let wrapper = Wrapper::new(bank);
    match wrapper.query(r#"acct_no = "acct-00007""#, &["balance"]) {
        Err(e) => println!("bank balance without PIN correctly refused:\n  {e}"),
        Ok(_) => panic!("should have been refused"),
    }
}
