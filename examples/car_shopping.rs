//! Example 1.2 — the car shopping guide.
//!
//! Midsize-or-compact sedans: Toyotas under $20,000 or BMWs under $40,000,
//! on a web form taking single values for style/make/price and a *list* of
//! sizes. Reproduces the paper's comparison: GenCompact's two-query plan vs
//! DNF's four queries vs CNF's excess transfer vs DISCO's infeasibility.
//!
//! ```sh
//! cargo run --release -p csqp --example car_shopping
//! ```

use csqp::prelude::*;
use csqp::relation::datagen::{car_listings, CarGenConfig};
use csqp::ssdl::templates;
use std::sync::Arc;

fn main() {
    println!("Loading the car guide (20,000 listings, seeded)...");
    let source = Arc::new(Source::new(
        car_listings(11, &CarGenConfig::default()),
        templates::car_guide(),
        CostParams::default(),
    ));

    let query = TargetQuery::parse(
        r#"style = "sedan" ^ (size = "compact" _ size = "midsize") ^
           ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))"#,
        &["listing_id", "make", "model", "price", "size"],
    )
    .unwrap();
    println!("target query:\n  {query}\n");

    /// (source queries, tuples shipped, measured cost) when feasible.
    type Outcome = Option<(u64, u64, f64)>;
    let mut results: Vec<(Scheme, Outcome)> = Vec::new();
    for scheme in [Scheme::GenCompact, Scheme::Dnf, Scheme::Cnf, Scheme::Disco] {
        let mediator = Mediator::new(source.clone()).with_scheme(scheme);
        match mediator.run(&query) {
            Ok(out) => {
                println!("{}:", scheme.name());
                println!("  plan: {}", out.planned.plan);
                println!(
                    "  {} source queries, {} tuples shipped, measured cost {:.0}",
                    out.meter.queries, out.meter.tuples_shipped, out.measured_cost
                );
                results.push((
                    scheme,
                    Some((out.meter.queries, out.meter.tuples_shipped, out.measured_cost)),
                ));
            }
            Err(e) => {
                println!("{}: INFEASIBLE — {e}", scheme.name());
                results.push((scheme, None));
            }
        }
        println!();
    }

    // The paper's claims for this example:
    let get = |s: Scheme| results.iter().find(|(x, _)| *x == s).and_then(|(_, r)| *r);
    let (gc_q, gc_t, gc_c) = get(Scheme::GenCompact).expect("GenCompact feasible");
    let (dnf_q, dnf_t, dnf_c) = get(Scheme::Dnf).expect("DNF feasible");
    assert_eq!(gc_q, 2, "paper: break it up into two conditions");
    assert_eq!(dnf_q, 4, "paper: DNF transforms the query into four terms");
    assert_eq!(gc_t, dnf_t, "paper: the same amount of data is transferred in both cases");
    assert!(gc_c < dnf_c, "two round trips beat four at equal transfer");
    let (_, cnf_t, _) = get(Scheme::Cnf).expect("CNF feasible");
    assert!(cnf_t > gc_t, "paper: the CNF system may transfer many more entries than necessary");
    assert!(get(Scheme::Disco).is_none(), "paper: DISCO fails on this query");

    println!("All of the paper's Example 1.2 claims reproduced.");
}
