//! Looking inside the planners: EPG's Choice-space (§5.3), IPG's pruned
//! search (§6.4), and what each baseline would do, for one query.
//!
//! ```sh
//! cargo run --release -p csqp --example explain
//! ```

use csqp::core::cache::CheckCache;
use csqp::core::epg::{epg, EpgContext};
use csqp::core::mark::mark;
use csqp::plan::explain::explain;
use csqp::prelude::*;
use std::sync::Arc;

fn main() {
    let source = Arc::new(Source::new(
        csqp::relation::datagen::cars(42, 500),
        csqp::ssdl::templates::car_dealer(),
        CostParams::default(),
    ));
    let cond_text = r#"(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")"#;
    let query = TargetQuery::parse(cond_text, &["model", "year"]).unwrap();
    println!("target query: {query}\n");

    // --- The mark module's view (§5.2) ---
    let cache = CheckCache::new(source.planning_view());
    let ct = parse_condition(cond_text).unwrap();
    let marked = mark(&ct, &cache);
    println!("mark module (per-node exports):");
    fn show(m: &csqp::core::mark::Marked, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let exports = if m.export.is_empty() {
            "∅".to_string()
        } else {
            m.export
                .sets()
                .iter()
                .map(|s| format!("{{{}}}", s.iter().cloned().collect::<Vec<_>>().join(",")))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        println!("{pad}{}  →  {exports}", m.cond);
        for c in &m.children {
            show(c, depth + 1);
        }
    }
    show(&marked, 0);

    // --- EPG's exhaustive Choice-space (§5.3) ---
    let mut ctx = EpgContext::new(&cache);
    let space = epg(&marked, &query.attrs, &mut ctx).expect("feasible");
    println!(
        "\nEPG plan space ({} concrete alternatives, {} EPG calls):",
        space.n_alternatives(),
        ctx.calls
    );
    print!("{}", explain(&space));

    // --- GenCompact's answer ---
    let planned = Mediator::new(source.clone()).plan(&query).unwrap();
    println!("GenCompact chose (est. cost {:.1}):", planned.est_cost);
    print!("{}", explain(&planned.plan));
    println!(
        "  [{} CTs, {} IPG calls, {} Check calls, max Q {}]",
        planned.report.cts_processed,
        planned.report.generator_calls,
        planned.report.checks,
        planned.report.max_q
    );

    // --- What the baselines would do ---
    println!("\nbaselines:");
    for scheme in [Scheme::Cnf, Scheme::Dnf, Scheme::Disco, Scheme::NaivePush] {
        let m = Mediator::new(source.clone()).with_scheme(scheme);
        match m.plan(&query) {
            Ok(p) => println!("  {:<14} (est {:>8.1})  {}", scheme.name(), p.est_cost, p.plan),
            Err(_) => println!("  {:<14} INFEASIBLE", scheme.name()),
        }
    }
}
