//! Source selection across mirrors: the same car data offered by three
//! sources with different capabilities and network costs. The federation
//! plans against each and routes every query to the cheapest member that
//! can answer it.
//!
//! ```sh
//! cargo run --release -p csqp --example federation
//! ```

use csqp::core::federation::Federation;
use csqp::prelude::*;
use std::sync::Arc;

fn main() {
    let data = csqp::relation::datagen::cars(42, 2_000);

    // Mirror 1: fast, form-limited (Example 4.1's dealer).
    let fast_form = Arc::new(Source::new(
        data.clone(),
        csqp::ssdl::templates::car_dealer(),
        CostParams::new(10.0, 1.0),
    ));
    // Mirror 2: a slow bulk dump — answers anything by download.
    let slow_dump = Arc::new(Source::new(
        data.clone(),
        csqp::ssdl::templates::download_only(
            "bulk_dump",
            &[
                ("make", ValueType::Str),
                ("model", ValueType::Str),
                ("year", ValueType::Int),
                ("color", ValueType::Str),
                ("price", ValueType::Int),
            ],
        ),
        CostParams::new(500.0, 5.0),
    ));
    // Mirror 3: a color-browse site.
    let color_browse = Arc::new(Source::new(
        data,
        parse_ssdl(
            r#"
            source color_browse {
              s1 -> color = $str ;
              s2 -> clist ;
              clist -> color = $str | color = $str _ clist ;
              attributes :: s1 : { make, model, year, color } ;
              attributes :: s2 : { make, model, year, color } ;
            }
            "#,
        )
        .unwrap(),
        CostParams::new(10.0, 1.0),
    ));

    let federation =
        Federation::new().with_member(fast_form).with_member(slow_dump).with_member(color_browse);

    let queries = [
        (r#"make = "BMW" ^ price < 40000"#, vec!["model", "year"]),
        (r#"color = "red" _ color = "black""#, vec!["make", "model"]),
        (r#"year = 1995"#, vec!["make", "model"]),
        (r#"make = "Toyota" ^ color = "blue""#, vec!["model"]),
    ];

    for (cond, attrs) in queries {
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        println!("query: {q}");
        match federation.run(&q) {
            Ok((fp, out)) => {
                println!(
                    "  -> routed to `{}` (est {:.0}, measured {:.0}, {} rows)",
                    fp.source.name,
                    fp.planned.est_cost,
                    out.measured_cost,
                    out.rows.len()
                );
                for (member, verdict) in &fp.considered {
                    match verdict {
                        Ok(cost) => println!("     {member:<14} est {cost:.0}"),
                        Err(_) => println!("     {member:<14} infeasible"),
                    }
                }
            }
            Err(e) => println!("  -> {e}"),
        }
        println!();
    }
}
