//! Quickstart: describe a source in SSDL, load data, plan and run a query.
//!
//! ```sh
//! cargo run -p csqp --example quickstart
//! ```

use csqp::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Describe the source's query capabilities in SSDL (the paper's
    //    Example 4.1: a car dealer that can search by make+price or
    //    make+color, with different exportable attributes per form).
    let desc = parse_ssdl(
        r#"
        source car_dealer {
          s1 -> make = $str ^ price < $int ;
          s2 -> make = $str ^ color = $str ;
          attributes :: s1 : { make, model, year, color } ;
          attributes :: s2 : { make, model, year } ;
        }
        "#,
    )
    .expect("valid SSDL");

    // 2. Load data (synthetic, seeded) and wrap it as a capability-gated
    //    source with the §6.2 cost constants.
    let relation = csqp::relation::datagen::cars(42, 500);
    let source = Arc::new(Source::new(relation, desc, CostParams::default()));

    // 3. Pose a target query the source cannot answer directly: a color
    //    disjunction is not a form the dealer supports.
    let query = TargetQuery::parse(
        r#"(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")"#,
        &["model", "year"],
    )
    .expect("valid condition");
    println!("target query: {query}\n");

    // 4. GenCompact finds a capability-sensitive plan: push the supported
    //    make+price form (also fetching `color`), filter colors locally.
    let mediator = Mediator::new(source.clone());
    let outcome = mediator.run(&query).expect("feasible plan exists");

    println!("chosen plan:   {}", outcome.planned.plan);
    println!("est. cost:     {:.1}", outcome.planned.est_cost);
    println!("measured cost: {:.1}", outcome.measured_cost);
    println!(
        "transfer:      {} source queries, {} tuples shipped",
        outcome.meter.queries, outcome.meter.tuples_shipped
    );
    println!("answer rows:   {}", outcome.rows.len());
    for row in outcome.rows.rows().take(5) {
        println!("  {row}");
    }

    // 5. Compare with the baselines the paper criticizes.
    println!("\nscheme comparison:");
    for scheme in Scheme::ALL {
        let m = Mediator::new(source.clone()).with_scheme(scheme);
        match m.run(&query) {
            Ok(out) => println!(
                "  {:<14} cost {:>8.1}  ({} queries, {} tuples)",
                scheme.name(),
                out.measured_cost,
                out.meter.queries,
                out.meter.tuples_shipped
            ),
            Err(e) => println!("  {:<14} INFEASIBLE ({e})", scheme.name()),
        }
    }
}
