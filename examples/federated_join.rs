//! Capability-sensitive join across two Internet sources: the bookstore of
//! Example 1.1 joined with a review site whose form accepts an *isbn list*.
//!
//! The join mediator compares a hash join (fetch both sides) against a
//! *bind join* that pushes the small side's keys into the other source's
//! list capability — a decision only a capability-aware planner can make.
//!
//! ```sh
//! cargo run --release -p csqp --example federated_join
//! ```

use csqp::core::join::{JoinConfig, JoinMediator, JoinQuery, JoinStrategy};
use csqp::prelude::*;
use csqp::relation::datagen::{books, reviews, BookGenConfig};
use csqp::ssdl::templates;
use std::sync::Arc;

fn main() {
    println!("Loading bookstore (20,000 books) and review site...");
    let book_rel = books(7, &BookGenConfig { n_books: 20_000, ..Default::default() });
    let isbn_idx = book_rel.schema().col_index("isbn").unwrap();
    let isbns: Vec<Value> =
        book_rel.tuples().iter().map(|t| t.get(isbn_idx).unwrap().clone()).collect();
    let review_rel = reviews(11, &isbns, 3);
    println!("  {} books, {} reviews\n", book_rel.len(), review_rel.len());

    let bookstore = Arc::new(Source::new(book_rel, templates::bookstore(), CostParams::default()));
    let review_site =
        Arc::new(Source::new(review_rel, templates::reviews(), CostParams::default()));
    println!("review-site capabilities:\n{}", review_site.gate_view().desc);

    // "Well-reviewed dream books by Freud": join on isbn.
    let q = JoinQuery {
        left: TargetQuery::parse(
            r#"author = "Sigmund Freud" ^ title contains "dreams""#,
            &["isbn", "title"],
        )
        .unwrap(),
        right: TargetQuery::parse(r#"rating >= 4"#, &["review_id", "isbn", "rating", "reviewer"])
            .unwrap(),
        left_key: "isbn".into(),
        right_key: "isbn".into(),
    };
    println!("join query:\n  left : {}\n  right: {}\n  on   : isbn\n", q.left, q.right);

    // Automatic, cost-based strategy choice.
    let auto = JoinMediator::new(bookstore.clone(), review_site.clone()).run(&q).unwrap();
    println!("chosen strategy: {}", auto.strategy);
    println!(
        "  left : {} queries, {} tuples | right: {} queries, {} tuples | cost {:.0}",
        auto.left_meter.queries,
        auto.left_meter.tuples_shipped,
        auto.right_meter.queries,
        auto.right_meter.tuples_shipped,
        auto.measured_cost
    );
    println!("  {} joined rows, e.g.:", auto.rows.len());
    for row in auto.rows.rows().take(3) {
        println!("    {row}");
    }

    // Force the hash join for comparison.
    let hash = JoinMediator::new(bookstore.clone(), review_site.clone())
        .with_config(JoinConfig { force: Some(JoinStrategy::Hash), ..Default::default() })
        .run(&q)
        .unwrap();
    println!("\nforced {}:", hash.strategy);
    println!(
        "  left : {} queries, {} tuples | right: {} queries, {} tuples | cost {:.0}",
        hash.left_meter.queries,
        hash.left_meter.tuples_shipped,
        hash.right_meter.queries,
        hash.right_meter.tuples_shipped,
        hash.measured_cost
    );

    assert_eq!(auto.rows, hash.rows, "strategies agree on the answer");
    assert_eq!(auto.strategy, JoinStrategy::BindLeftIntoRight);
    assert!(auto.measured_cost < hash.measured_cost);
    println!(
        "\nbind join is {:.0}x cheaper: it ships only the matching reviews instead of \
         every rating>=4 review on the site.",
        hash.measured_cost / auto.measured_cost
    );
}
