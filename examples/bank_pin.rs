//! The §4 bank — attribute exports gated on condition contents.
//!
//! "A bank may allow the retrieval of some attributes of an account given
//! its account number, but may refuse to give the account balance unless a
//! PIN number is specified in the query condition."
//!
//! ```sh
//! cargo run -p csqp --example bank_pin
//! ```

use csqp::prelude::*;
use csqp::relation::datagen::accounts;
use csqp::ssdl::templates;
use std::sync::Arc;

fn main() {
    let source =
        Arc::new(Source::new(accounts(5, 1_000), templates::bank(), CostParams::default()));
    println!("capabilities:\n{}", source.gate_view().desc);
    let mediator = Mediator::new(source.clone());

    // Without the PIN: owner and branch are retrievable, balance is not.
    let no_pin = TargetQuery::parse(r#"acct_no = "acct-00042""#, &["owner", "branch"]).unwrap();
    let out = mediator.run(&no_pin).unwrap();
    println!("without PIN, {no_pin}:");
    println!("  plan: {}", out.planned.plan);
    for row in out.rows.rows() {
        println!("  {row}");
    }

    let balance_no_pin =
        TargetQuery::parse(r#"acct_no = "acct-00042""#, &["owner", "balance"]).unwrap();
    match mediator.plan(&balance_no_pin) {
        Err(e) => println!("\nasking for the balance without a PIN: REFUSED — {e}"),
        Ok(p) => panic!("balance leaked without PIN: {}", p.plan),
    }

    // With the PIN in the condition, the s2 form exports the balance.
    let with_pin = TargetQuery::parse(
        r#"acct_no = "acct-00042" ^ pin = "pin-00042""#,
        &["owner", "branch", "balance"],
    )
    .unwrap();
    let out = mediator.run(&with_pin).unwrap();
    println!("\nwith PIN, {with_pin}:");
    println!("  plan: {}", out.planned.plan);
    for row in out.rows.rows() {
        println!("  {row}");
    }

    // A wrong PIN parses fine (the capability is syntactic) but matches no
    // account row — authentication by data, capability by grammar.
    let wrong_pin =
        TargetQuery::parse(r#"acct_no = "acct-00042" ^ pin = "pin-99999""#, &["balance"]).unwrap();
    let out = mediator.run(&wrong_pin).unwrap();
    println!("\nwith a wrong PIN: {} rows returned", out.rows.len());
    assert!(out.rows.is_empty());
}
