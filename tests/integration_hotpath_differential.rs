//! Differential property test for the planner hot-path overhaul (PR 1).
//!
//! The interned/bitset planner must return plans with **identical cost and
//! identical chosen source queries** as the pre-refactor string-based path.
//! The pre-refactor behaviour is captured as a golden snapshot
//! (`tests/golden_hotpath.txt`, generated at the seed commit); any change to
//! plan choice or cost estimation on this corpus is a regression.
//!
//! Regenerate deliberately with `BLESS_GOLDEN=1 cargo test -p csqp --test
//! integration_hotpath_differential` — and justify the diff in review.

use csqp_bench::workload::{
    random_query_shaped, random_source, scaling_query, scaling_source, CapabilityParams,
};
use csqp_core::genmodular::GenModularConfig;
use csqp_core::mediator::{Mediator, Scheme};
use csqp_core::types::TargetQuery;
use csqp_expr::rewrite::RewriteBudget;
use csqp_plan::attrs;
use csqp_source::{Catalog, Source};
use std::fmt::Write as _;
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_hotpath.txt");

/// One corpus entry: a labelled (source, query, scheme) triple.
struct Case {
    label: String,
    source: Arc<Source>,
    query: TargetQuery,
    scheme: Scheme,
}

fn modular_cfg(n_atoms: usize) -> GenModularConfig {
    GenModularConfig {
        rewrite_budget: RewriteBudget { max_cts: 20_000, max_atoms: n_atoms + 2, max_depth: 6 },
        ..Default::default()
    }
}

fn corpus() -> Vec<Case> {
    let mut cases = Vec::new();

    // Fixed paper examples on the demo catalog (both schemes).
    let catalog = Catalog::demo_small(7);
    let bookstore = catalog.get("bookstore").unwrap().clone();
    let car_guide = catalog.get("car_guide").unwrap().clone();
    let car_dealer = catalog.get("car_dealer").unwrap().clone();
    let fixed: Vec<(&str, Arc<Source>, TargetQuery)> = vec![
        (
            "ex1.1-bookstore",
            bookstore.clone(),
            TargetQuery::parse(
                "(author = \"Sigmund Freud\" _ author = \"Carl Jung\") ^ \
                 title contains \"dreams\"",
                &["isbn", "title", "author"],
            )
            .unwrap(),
        ),
        (
            "ex1.2-carguide",
            car_guide.clone(),
            TargetQuery::parse(
                "style = \"sedan\" ^ (size = \"compact\" _ size = \"midsize\") ^ \
                 ((make = \"Toyota\" ^ price <= 20000) _ (make = \"BMW\" ^ price <= 40000))",
                &["listing_id", "model", "price"],
            )
            .unwrap(),
        ),
        (
            "ex4.1-cardealer",
            car_dealer.clone(),
            TargetQuery::parse(
                "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
                &["model", "year"],
            )
            .unwrap(),
        ),
        (
            "cardealer-scrambled",
            car_dealer.clone(),
            TargetQuery::parse(
                "price < 40000 ^ color = \"red\" ^ make = \"BMW\"",
                &["model", "year"],
            )
            .unwrap(),
        ),
    ];
    for (label, source, query) in fixed {
        let n = query.cond.n_atoms();
        cases.push(Case {
            label: format!("{label}/compact"),
            source: source.clone(),
            query: query.clone(),
            scheme: Scheme::GenCompact,
        });
        if n <= 4 {
            // GenModular's rewrite set explodes beyond small queries.
            cases.push(Case {
                label: format!("{label}/modular"),
                source,
                query,
                scheme: Scheme::GenModular,
            });
        }
    }

    // The structured scaling family (GenCompact + GenModular on small n).
    let scaling = scaling_source(5, 400);
    for n in 2..=6usize {
        for seed in [101u64, 202, 303] {
            let cond = scaling_query(seed + n as u64, n);
            let query = TargetQuery::new(cond, attrs(["k"]));
            cases.push(Case {
                label: format!("scaling-n{n}-s{seed}/compact"),
                source: scaling.clone(),
                query: query.clone(),
                scheme: Scheme::GenCompact,
            });
            if n <= 4 {
                cases.push(Case {
                    label: format!("scaling-n{n}-s{seed}/modular"),
                    source: scaling.clone(),
                    query,
                    scheme: Scheme::GenModular,
                });
            }
        }
    }

    // Random capability/query pairs: the broad differential sweep
    // (GenCompact only — the point is hot-path equivalence, and GenCompact
    // exercises IPG, the cache, mark-equivalent checks and MCSC).
    let params = CapabilityParams::default();
    for seed in 0..40u64 {
        let source = random_source(seed, 300, &params);
        for (qi, and_bias) in [(0u64, 0.7), (1, 0.4)] {
            let cond = random_query_shaped(seed * 7 + 1000 + qi, 4, 3, and_bias);
            let query = TargetQuery::new(cond, attrs(["k"]));
            cases.push(Case {
                label: format!("rand-s{seed}-q{qi}/compact"),
                source: source.clone(),
                query,
                scheme: Scheme::GenCompact,
            });
        }
    }
    cases
}

/// Renders the planning outcome of one case as a stable snapshot line:
/// `label|cost|source-queries` (or `label|INFEASIBLE`). The chosen source
/// queries — condition text plus fetched attributes — are exactly what the
/// refactor must preserve; est_cost is printed with fixed precision so the
/// comparison is bit-stable across runs.
fn snapshot_line(case: &Case) -> String {
    let mediator = match case.scheme {
        Scheme::GenModular => Mediator::new(case.source.clone())
            .with_scheme(Scheme::GenModular)
            .with_modular_config(modular_cfg(case.query.cond.n_atoms())),
        scheme => Mediator::new(case.source.clone()).with_scheme(scheme),
    };
    let mut line = String::new();
    match mediator.plan(&case.query) {
        Ok(planned) => {
            let mut sqs: Vec<String> = planned
                .plan
                .source_queries()
                .into_iter()
                .map(|(cond, attrs)| {
                    let cond =
                        cond.as_ref().map(|c| c.to_string()).unwrap_or_else(|| "true".into());
                    let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                    format!("SP({cond}; {})", attrs.join(","))
                })
                .collect();
            // Source-query ordering inside ∩/∪ is part of the plan, but the
            // snapshot sorts to stay robust to cosmetic reordering.
            sqs.sort();
            write!(line, "{}|{:.6}|{}", case.label, planned.est_cost, sqs.join(" & "))
                .expect("write to string");
        }
        Err(_) => {
            write!(line, "{}|INFEASIBLE", case.label).expect("write to string");
        }
    }
    line
}

#[test]
fn planner_matches_prerefactor_golden_snapshot() {
    let lines: Vec<String> = corpus().iter().map(snapshot_line).collect();
    let generated = format!("{}\n", lines.join("\n"));

    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &generated).expect("write golden file");
        eprintln!("blessed {} cases to {GOLDEN_PATH}", lines.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS_GOLDEN=1 to create it");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "corpus size changed: golden has {} cases, run produced {}",
        golden_lines.len(),
        lines.len()
    );
    for (got, want) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            got, want,
            "plan/cost diverged from the pre-refactor baseline \
             (identical cost and chosen source queries are required)"
        );
    }
}

/// The snapshot itself must be deterministic run-to-run, otherwise the
/// differential test proves nothing.
#[test]
fn snapshot_is_deterministic() {
    let a: Vec<String> = corpus().iter().map(snapshot_line).collect();
    let b: Vec<String> = corpus().iter().map(snapshot_line).collect();
    assert_eq!(a, b);
}
