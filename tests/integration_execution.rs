//! Execution correctness: every scheme's plan, when feasible, returns
//! exactly the target query's answer (oracle = direct evaluation on the
//! hidden relation). Queries project the key, so intersection-combined
//! plans are exact (see csqp-plan's executor docs).

use csqp::prelude::*;
use csqp::relation::ops::{project, select};

fn oracle(source: &Source, q: &TargetQuery) -> Relation {
    let selected = select(source.relation(), Some(&q.cond));
    let attrs: Vec<&str> = q.attrs.iter().map(String::as_str).collect();
    project(&selected, &attrs).unwrap()
}

fn workload() -> Vec<(&'static str, &'static str, Vec<&'static str>)> {
    vec![
        (
            "bookstore",
            r#"(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams""#,
            vec!["isbn", "title", "author"],
        ),
        (
            "bookstore",
            r#"author = "Author 0001" ^ (subject = "poetry" _ subject = "history")"#,
            vec!["isbn", "subject"],
        ),
        (
            "car_guide",
            r#"style = "sedan" ^ (size = "compact" _ size = "midsize") ^
               ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))"#,
            vec!["listing_id", "make", "price"],
        ),
        (
            "car_guide",
            r#"(make = "Honda" ^ price <= 15000) _ (make = "Ford" ^ price <= 12000)"#,
            vec!["listing_id", "model"],
        ),
        (
            "bank",
            r#"acct_no = "acct-00011" ^ pin = "pin-00011""#,
            vec!["acct_no", "owner", "balance"],
        ),
        (
            "flights",
            r#"origin = "SFO" ^ dest = "JFK" ^ price <= 700"#,
            vec!["flight_no", "airline", "price"],
        ),
    ]
}

#[test]
fn every_feasible_scheme_returns_the_exact_answer() {
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in workload() {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        let want = oracle(&source, &q);
        for scheme in Scheme::ALL {
            let mediator = Mediator::new(source.clone()).with_scheme(scheme);
            match mediator.run(&q) {
                Ok(out) => {
                    assert_eq!(out.rows, want, "{scheme} wrong answer on {source_name}: {cond}");
                }
                Err(MediatorError::Plan(_)) => {} // infeasible for this scheme: fine
                Err(e) => panic!("{scheme} execution error on {source_name}: {e}"),
            }
        }
    }
}

#[test]
fn gencompact_never_ships_more_than_cnf() {
    // Guarantee (3): "the plans are more efficient since a larger space of
    // plans is examined" — GenCompact's measured transfer is never worse
    // than the CNF baseline's on queries both can plan.
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in workload() {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        let gc = Mediator::new(source.clone()).run(&q);
        let cnf = Mediator::new(source.clone()).with_scheme(Scheme::Cnf).run(&q);
        if let (Ok(gc), Ok(cnf)) = (gc, cnf) {
            assert!(
                gc.measured_cost <= cnf.measured_cost + 1e-9,
                "{source_name}: GenCompact {} vs CNF {} on {cond}",
                gc.measured_cost,
                cnf.measured_cost
            );
        }
    }
}

#[test]
fn estimated_cost_orders_like_measured_cost_with_oracle_estimation() {
    // With oracle cardinalities the estimate equals the measurement for
    // concrete plans (both are Σ k1 + k2·|result|).
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in workload() {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        let mediator = Mediator::new(source.clone()).with_cardinality(CardKind::Oracle);
        if let Ok(out) = mediator.run(&q) {
            assert!(
                (out.planned.est_cost - out.measured_cost).abs() < 1e-6,
                "{source_name}: est {} vs measured {} on {cond}",
                out.planned.est_cost,
                out.measured_cost
            );
        }
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let catalog = Catalog::demo_small(7);
    let source = catalog.get("car_guide").unwrap().clone();
    let q = TargetQuery::parse(
        r#"style = "sedan" ^ (size = "compact" _ size = "midsize") ^
           ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))"#,
        &["listing_id", "model"],
    )
    .unwrap();
    let mediator = Mediator::new(source);
    let a = mediator.run(&q).unwrap();
    let b = mediator.run(&q).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.meter, b.meter);
    assert_eq!(a.planned.plan, b.planned.plan);
}
