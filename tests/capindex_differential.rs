//! Differential suite for the federation capability index.
//!
//! Two guarantees, checked on random federations × random queries, and run
//! on every CI feature leg (serial, parallel, obs-off — this file is a
//! `csqp-core` test like the chaos suite):
//!
//! 1. **Soundness** — the index's candidate set is a superset of the
//!    members for which full `Check`-based planning is feasible: pruning
//!    never discards an answerable member.
//! 2. **Transparency** — a federation with the index on picks the same
//!    member, the same plan, at the same estimated cost as one with the
//!    index off, and executing both returns byte-identical answers.

use csqp_core::federation::Federation;
use csqp_core::mediator::Mediator;
use csqp_core::types::TargetQuery;
use csqp_expr::gen::{CondGen, CondGenConfig, GenAttr};
use csqp_expr::{CondTree, Value, ValueType};
use csqp_plan::attrs;
use csqp_relation::{Relation, Schema};
use csqp_source::{CostParams, Source};
use csqp_ssdl::{parse_ssdl, templates};
use proptest::prelude::*;
use std::sync::Arc;

fn test_relation() -> Relation {
    let schema = Schema::new(
        "t",
        vec![
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
            ("d", ValueType::Str),
        ],
        &["k"],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..300i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 7),
                Value::Int(i % 5),
                Value::Int(i % 3),
                Value::str(format!("d{}", i % 4)),
            ]
        })
        .collect();
    Relation::from_rows(schema, rows)
}

/// A pool of capability shapes spanning the index's rule space: full
/// capability, download-only, conjunctive forms, export-limited forms,
/// value lists, disjunctive forms, and recursive required suffixes.
const CAPABILITY_POOL: &[&str] = &[
    // Export-limited conjunctive forms.
    "source s0 {\n\
     f1 -> a = $int ;\n\
     f2 -> a = $int ^ b = $int ;\n\
     attributes :: f1 : { k, a, b } ;\n\
     attributes :: f2 : { k, a, b, c } ;\n}",
    // b^c entry, no d anywhere.
    "source s1 {\n\
     f1 -> b = $int ^ c = $int ;\n\
     attributes :: f1 : { k, b, c } ;\n}",
    // d value-list.
    "source s2 {\n\
     f1 -> dlist ;\n\
     dlist -> d = $str | d = $str _ dlist ;\n\
     attributes :: f1 : { k, d } ;\n}",
    // Narrow exports: c only.
    "source s3 {\n\
     f1 -> c = $int ;\n\
     attributes :: f1 : { k, c } ;\n}",
    // Disjunctive a-form plus a bare d-form.
    "source s4 {\n\
     f1 -> a = $int _ a = $int ;\n\
     f2 -> d = $str ;\n\
     attributes :: f1 : { k, a } ;\n\
     attributes :: f2 : { k, a, d } ;\n}",
    // Required recursive suffix: a with one-or-more b atoms.
    "source s5 {\n\
     f1 -> a = $int ^ brest ;\n\
     brest -> b = $int | b = $int ^ brest ;\n\
     attributes :: f1 : { k, a, b, c } ;\n}",
];

fn member(pool_idx: usize, position: usize) -> Arc<Source> {
    let desc = match pool_idx {
        0 => templates::full_relational(
            "full",
            &[
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("c", ValueType::Int),
                ("d", ValueType::Str),
            ],
        ),
        1 => templates::download_only(
            "dump",
            &[
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("c", ValueType::Int),
                ("d", ValueType::Str),
            ],
        ),
        i => parse_ssdl(CAPABILITY_POOL[(i - 2) % CAPABILITY_POOL.len()]).unwrap(),
    };
    // Costs vary by position so the cheapest-member choice is non-trivial.
    let cost = CostParams::new(10.0 + 37.0 * position as f64, 1.0 + position as f64);
    Arc::new(Source::new(test_relation(), desc, cost))
}

fn federation(pool_picks: &[usize], index_on: bool) -> Federation {
    pool_picks
        .iter()
        .enumerate()
        .fold(Federation::new(), |f, (pos, &pick)| f.with_member(member(pick, pos)))
        .with_capability_index(index_on)
}

fn random_condition(seed: u64, n_atoms: usize) -> CondTree {
    let gen_attrs = vec![
        GenAttr::ints("a", 0, 6, 1),
        GenAttr::ints("b", 0, 4, 1),
        GenAttr::ints("c", 0, 2, 1),
        GenAttr::strings("d", &["d0", "d1", "d2", "d3"]),
    ];
    let mut g = CondGen::new(seed, gen_attrs);
    g.tree(&CondGenConfig { n_atoms, max_depth: 3, and_bias: 0.6, eq_bias: 0.8 })
}

fn requested(mask: u8) -> Vec<&'static str> {
    let all = ["k", "a", "b", "c", "d"];
    let picked: Vec<&str> =
        all.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, s)| *s).collect();
    if picked.is_empty() {
        vec!["k"]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Soundness: every member full planning can serve is an index
    /// candidate — pruning only ever removes infeasible members.
    #[test]
    fn index_candidates_superset_of_feasible_members(
        picks in proptest::collection::vec(0usize..8, 1..6),
        seed in 0u64..10_000,
        n_atoms in 1usize..6,
        mask in 0u8..32,
    ) {
        let cond = random_condition(seed, n_atoms);
        let query = TargetQuery::new(cond, attrs(requested(mask)));
        let fed = federation(&picks, true);
        let decision = fed.capability_index().expect("index enabled").candidates(&query);
        for (i, m) in fed.members().iter().enumerate() {
            let feasible = Mediator::new(m.clone()).plan(&query).is_ok();
            if feasible {
                prop_assert!(
                    decision.is_candidate(i),
                    "member {i} ({}) is feasible but was pruned for {query}",
                    m.name
                );
            }
        }
        prop_assert_eq!(decision.total, fed.members().len());
        prop_assert_eq!(decision.pruned, decision.total - decision.candidates.len());
    }

    /// Transparency: index on/off produce the identical federated decision
    /// and, when feasible, byte-identical answers.
    #[test]
    fn index_on_off_plans_and_answers_agree(
        picks in proptest::collection::vec(0usize..8, 1..6),
        seed in 0u64..10_000,
        n_atoms in 1usize..6,
        mask in 0u8..32,
    ) {
        let cond = random_condition(seed, n_atoms);
        let query = TargetQuery::new(cond, attrs(requested(mask)));
        let on = federation(&picks, true);
        let off = federation(&picks, false);
        match (on.plan(&query), off.plan(&query)) {
            (Ok(p_on), Ok(p_off)) => {
                prop_assert_eq!(&p_on.source.name, &p_off.source.name);
                prop_assert_eq!(p_on.planned.plan.to_string(), p_off.planned.plan.to_string());
                prop_assert_eq!(p_on.planned.est_cost, p_off.planned.est_cost);
                prop_assert_eq!(p_on.considered.len(), p_off.considered.len());
                let (_, r_on) = on.run(&query).expect("plannable query runs");
                let (_, r_off) = off.run(&query).expect("plannable query runs");
                prop_assert_eq!(r_on.rows, r_off.rows);
            }
            (Err(_), Err(_)) => {}
            (on_res, off_res) => prop_assert!(
                false,
                "index on/off disagree on feasibility for {}: on={:?} off={:?}",
                query, on_res.map(|p| p.source.name.clone()), off_res.map(|p| p.source.name.clone())
            ),
        }
    }
}
