//! Golden `EXPLAIN ANALYZE` snapshot for an E1 (bookstore) query, plus the
//! determinism and schema-stability guarantees the observability layer
//! makes:
//!
//! 1. **Golden output** — the annotated plan tree (estimated vs observed
//!    rows/cost per source query) is byte-identical across runs and across
//!    the `parallel` feature (this file is a `csqp-core` test, so the
//!    `--no-default-features` CI job replays the same golden serially).
//! 2. **Trace determinism** — with the `obs` feature on, the virtual-tick
//!    trace for a fixed workload is byte-identical across runs.
//! 3. **Schema stability** — the `--metrics json` snapshot always renders
//!    the same sections and sorted keys, and the counters the acceptance
//!    criteria name are present after a resilient run.
//!
//! Regenerate the golden after an intentional change with:
//! `EXPLAIN_ANALYZE_BLESS=1 cargo test -p csqp-core --test explain_analyze`.

use csqp_core::federation::{CircuitBreakerConfig, Federation};
use csqp_core::mediator::{CardKind, Mediator};
use csqp_core::types::TargetQuery;
use csqp_plan::analyze::explain_analyze;
use csqp_plan::exec::RetryPolicy;
use csqp_relation::datagen::{self, BookGenConfig};
use csqp_source::{CostParams, FaultProfile, Source};
use csqp_ssdl::templates;
use std::sync::Arc;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_explain_analyze.txt");

/// Example 1.1 on the E1 bookstore source (same generator as the chaos
/// suite's E1 workload).
fn e1_source() -> Arc<Source> {
    Arc::new(Source::new(
        datagen::books(7, &BookGenConfig { n_books: 1500, ..Default::default() }),
        templates::bookstore(),
        CostParams::default(),
    ))
}

fn e1_query() -> TargetQuery {
    TargetQuery::parse(
        "(author = \"Sigmund Freud\" _ author = \"Carl Jung\") ^ title contains \"dreams\"",
        &["isbn", "title", "author"],
    )
    .unwrap()
}

/// The full EXPLAIN ANALYZE page for Example 1.1: annotated tree, cost
/// summary, and drift warnings, exactly as the library renders them.
fn render_explain_analyze() -> String {
    let mediator = Mediator::new(e1_source());
    let analyzed = mediator.run_analyzed(&e1_query()).expect("E1 query plans and runs");
    explain_analyze(&analyzed.outcome.planned.plan, &analyzed.analysis)
}

#[test]
fn golden_explain_analyze_e1() {
    let got = render_explain_analyze();
    if std::env::var_os("EXPLAIN_ANALYZE_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden explain-analyze output");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect(
        "tests/golden_explain_analyze.txt missing — regenerate with EXPLAIN_ANALYZE_BLESS=1",
    );
    assert_eq!(
        got, want,
        "EXPLAIN ANALYZE output diverged from tests/golden_explain_analyze.txt; if the \
         change is intentional, regenerate with EXPLAIN_ANALYZE_BLESS=1 \
         cargo test -p csqp-core --test explain_analyze"
    );
}

/// The annotated output is a pure function of the (seeded) workload: two
/// fresh mediators render byte-identical pages, and so do their traces
/// (virtual ticks, no wall clock) when the recorder is real.
#[test]
fn explain_analyze_and_trace_replay_identically() {
    assert_eq!(render_explain_analyze(), render_explain_analyze());

    let run = || {
        let mediator = Mediator::new(e1_source());
        mediator.run_analyzed(&e1_query()).expect("E1 runs");
        mediator.obs().tracer.render()
    };
    let (t1, t2) = (run(), run());
    assert_eq!(t1, t2, "virtual-tick trace replays byte-identically");
    let mediator = Mediator::new(e1_source());
    if mediator.obs().enabled() {
        assert!(!t1.is_empty(), "recording tracer captured the run");
    } else {
        assert!(t1.is_empty(), "no-op tracer keeps nothing");
    }
}

/// Oracle cardinalities observe exactly what they estimated: zero drift on
/// every source query, and the observed totals equal the §6.2 meter cost.
#[test]
fn oracle_estimates_match_observations_on_e1() {
    let mediator = Mediator::new(e1_source()).with_cardinality(CardKind::Oracle);
    let analyzed = mediator.run_analyzed(&e1_query()).expect("E1 runs");
    assert!(analyzed.analysis.drift_warnings().is_empty(), "oracle never drifts");
    assert!(
        (analyzed.analysis.observed_total() - analyzed.outcome.measured_cost).abs() < 1e-9,
        "per-subquery observed costs sum to the meter's measured cost"
    );
}

/// The metrics snapshot keeps a stable JSON shape — three sorted sections —
/// and, after a planning + resilient-execution workload, contains every
/// counter the acceptance criteria name: Check calls, cache hits, PR1/PR2/
/// PR3 prunes, retries, and breaker transitions.
#[test]
fn metrics_snapshot_schema_is_stable() {
    // A two-member federation where the cheap member is hard-down: the run
    // exercises retries, a breaker open, and a failover.
    let data = datagen::books(7, &BookGenConfig { n_books: 300, ..Default::default() });
    let flaky = Arc::new(
        Source::new(data.clone(), templates::bookstore(), CostParams::new(10.0, 1.0))
            .with_fault_profile(FaultProfile::new(0).with_outage(0, u64::MAX)),
    );
    let steady = Arc::new(Source::new(data, templates::bookstore(), CostParams::new(50.0, 1.0)));
    let federation = Federation::new()
        .with_member(flaky)
        .with_member(steady)
        .with_breaker(CircuitBreakerConfig { failure_threshold: 1, cooldown_ticks: 1 });
    let policy = RetryPolicy { max_retries: 1, ..Default::default() };
    federation.run_resilient(&e1_query(), &policy).expect("steady member serves");

    let snap = federation.metrics_snapshot();
    let json = snap.to_json();
    // Shape: the three sections always render, in this order, even when
    // empty — downstream parsers can rely on the keys existing.
    let (c, g) = (json.find("\"counters\"").unwrap(), json.find("\"gauges\"").unwrap());
    let h = json.find("\"histograms\"").unwrap();
    assert!(c < g && g < h, "sections in schema order:\n{json}");

    if federation.obs().enabled() {
        for key in [
            "planner.check_calls",
            "planner.check_cache_hits",
            "planner.pruned_pr1",
            "planner.pruned_pr2",
            "planner.pruned_pr3",
            "resilience.retries",
            "breaker.opened",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "{key} missing from:\n{json}");
        }
        assert!(snap.counter("resilience.retries") >= 1, "outage forced a retry");
        assert!(snap.counter("breaker.opened") >= 1, "threshold-1 breaker opened");
        // Serialization round-trips deterministically.
        assert_eq!(json, federation.metrics_snapshot().to_json());
    } else {
        assert!(snap.counters.is_empty(), "no-op recorder keeps nothing");
    }
}
