//! Cross-crate planning integration: SSDL text → compiled source →
//! planners → concrete feasible plans, across the demo catalog.

use csqp::prelude::*;
use csqp_plan::is_feasible;

/// Queries per demo source that must be plannable by GenCompact.
fn feasible_workload() -> Vec<(&'static str, &'static str, Vec<&'static str>)> {
    vec![
        (
            "bookstore",
            r#"(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams""#,
            vec!["isbn", "title"],
        ),
        ("bookstore", r#"subject = "psychology" ^ price <= 20"#, vec!["isbn", "price"]),
        (
            "car_guide",
            r#"style = "sedan" ^ (size = "compact" _ size = "midsize") ^
               ((make = "Toyota" ^ price <= 20000) _ (make = "BMW" ^ price <= 40000))"#,
            vec!["listing_id", "model"],
        ),
        ("car_guide", r#"make = "Honda" ^ year >= 1995"#, vec!["listing_id", "year"]),
        ("car_dealer", r#"price < 40000 ^ color = "red" ^ make = "BMW""#, vec!["model", "year"]),
        ("bank", r#"acct_no = "acct-00007" ^ pin = "pin-00007""#, vec!["owner", "balance"]),
        (
            "flights",
            r#"origin = "SFO" ^ dest = "JFK" ^ price <= 600"#,
            vec!["flight_no", "airline"],
        ),
    ]
}

#[test]
fn gencompact_plans_the_demo_workload() {
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in feasible_workload() {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        let mediator = Mediator::new(source.clone());
        let planned = mediator.plan(&q).unwrap_or_else(|e| panic!("{source_name}: {e}"));
        assert!(planned.plan.is_concrete(), "{source_name}: {cond}");
        assert!(is_feasible(&planned.plan, &source), "{source_name}: {cond}");
        assert!(planned.est_cost.is_finite() && planned.est_cost > 0.0);
    }
}

#[test]
fn genmodular_plans_the_demo_workload() {
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in feasible_workload() {
        // GenModular's commutativity closure needs deeper budgets for the
        // permutation-heavy car_dealer query; keep the workload subset it
        // can reach with defaults and verify feasibility.
        if source_name == "car_dealer" {
            continue; // covered by unit tests with targeted budgets
        }
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        let mediator = Mediator::new(source.clone()).with_scheme(Scheme::GenModular);
        let planned = mediator.plan(&q).unwrap_or_else(|e| panic!("{source_name}: {e}"));
        assert!(is_feasible(&planned.plan, &source), "{source_name}: {cond}");
    }
}

#[test]
fn infeasible_queries_fail_on_every_scheme() {
    let catalog = Catalog::demo_small(7);
    let cases = [
        // year alone is not a bookstore form field and books can't be
        // downloaded.
        ("bookstore", r#"price <= 20"#, vec!["isbn"]),
        // balance without a PIN.
        ("bank", r#"acct_no = "acct-00007""#, vec!["balance"]),
        // flights require origin AND dest.
        ("flights", r#"origin = "SFO""#, vec!["flight_no"]),
    ];
    for (source_name, cond, attrs) in cases {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        for scheme in Scheme::ALL {
            let mediator = Mediator::new(source.clone()).with_scheme(scheme);
            assert!(
                mediator.plan(&q).is_err(),
                "{scheme} claimed a plan for {source_name}: {cond}"
            );
        }
    }
}

#[test]
fn plans_never_contain_unsupported_source_queries() {
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in feasible_workload() {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        for scheme in Scheme::ALL {
            let mediator = Mediator::new(source.clone()).with_scheme(scheme);
            if let Ok(planned) = mediator.plan(&q) {
                for (sq_cond, sq_attrs) in planned.plan.source_queries() {
                    assert!(
                        source.supports(sq_cond.as_ref(), sq_attrs),
                        "{scheme} on {source_name} emitted unsupported query"
                    );
                }
            }
        }
    }
}

#[test]
fn feasibility_guarantee_end_to_end() {
    // The paper's guarantee (1): "the sources are guaranteed to support the
    // query plans" — every planned query executes without gate rejections.
    let catalog = Catalog::demo_small(7);
    for (source_name, cond, attrs) in feasible_workload() {
        let source = catalog.get(source_name).unwrap().clone();
        let q = TargetQuery::parse(cond, &attrs).unwrap();
        let mediator = Mediator::new(source.clone());
        let out = mediator.run(&q).unwrap();
        assert_eq!(out.meter.rejected, 0, "{source_name}: {cond}");
    }
}
