//! The paper's §6.4 optimality claim: GenCompact finds plans as good as the
//! exhaustive GenModular "without compromising the optimality of the plans
//! being generated". Verified on a corpus of small queries where
//! GenModular's budgets are comfortably exhaustive.

use csqp::expr::rewrite::RewriteBudget;
use csqp::prelude::*;
use std::sync::Arc;

/// A dedicated source with mixed capabilities: conjunctive forms, a value
/// list, and per-form export differences.
fn mixed_source() -> Arc<Source> {
    let desc = parse_ssdl(
        r#"
        source mixed {
          s1 -> a = $int ;
          s2 -> b = $int ;
          s3 -> a = $int ^ b = $int ;
          s4 -> c = $int ^ a = $int ;
          s5 -> clist ;
          clist -> c = $int | c = $int _ clist ;
          attributes :: s1 : { k, a, b, c } ;
          attributes :: s2 : { k, b, c } ;
          attributes :: s3 : { k, a, b } ;
          attributes :: s4 : { k, a, c } ;
          attributes :: s5 : { k, c } ;
        }
        "#,
    )
    .unwrap();
    let schema = Schema::new(
        "t",
        vec![
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
        ],
        &["k"],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..600i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i % 5), Value::Int(i % 3)])
        .collect();
    Arc::new(Source::new(Relation::from_rows(schema, rows), desc, CostParams::new(10.0, 1.0)))
}

/// Small-query corpus: every condition where the comparison is meaningful.
fn corpus() -> Vec<&'static str> {
    vec![
        "a = 1",
        "a = 1 ^ b = 2",
        "b = 2 ^ a = 1",
        "a = 1 ^ b = 2 ^ c = 0",
        "c = 0 _ c = 1",
        "a = 1 ^ (c = 0 _ c = 1)",
        "(a = 1 ^ b = 2) _ (a = 3 ^ b = 4)",
        "(a = 1 _ a = 2) ^ b = 2",
        "a = 1 _ (b = 2 ^ c = 1)",
        "(c = 0 _ c = 2) ^ a = 4",
    ]
}

#[test]
fn gencompact_matches_genmodular_cost_on_small_corpus() {
    let source = mixed_source();
    for cond in corpus() {
        let q = TargetQuery::parse(cond, &["k"]).unwrap();
        // Per-query budget: allowing a couple of extra atom occurrences
        // keeps the copy-rule closure finite while still covering the
        // single-duplication rewrites (Example 5.1's t1 shape); depth 6
        // suffices for commute+associate+distribute chains at this size.
        let modular_cfg = GenModularConfig {
            rewrite_budget: RewriteBudget {
                max_cts: 100_000,
                max_atoms: q.cond.n_atoms() + 2,
                max_depth: 6,
            },
            ..Default::default()
        };
        let compact = Mediator::new(source.clone()).plan(&q);
        let modular = Mediator::new(source.clone())
            .with_scheme(Scheme::GenModular)
            .with_modular_config(modular_cfg.clone())
            .plan(&q);
        match (compact, modular) {
            (Ok(c), Ok(m)) => {
                assert!(!m.report.truncated, "GenModular budget insufficient for {cond}");
                assert!(
                    c.est_cost <= m.est_cost + 1e-6,
                    "{cond}: GenCompact {} worse than GenModular {}\n  compact: {}\n  modular: {}",
                    c.est_cost,
                    m.est_cost,
                    c.plan,
                    m.plan
                );
            }
            (Err(_), Err(_)) => {} // both infeasible: agreement
            (c, m) => panic!("{cond}: feasibility disagreement compact={c:?} modular={m:?}"),
        }
    }
}

#[test]
fn both_schemes_agree_with_execution_oracle() {
    use csqp::relation::ops::{project, select};
    let source = mixed_source();
    for cond in corpus() {
        let q = TargetQuery::parse(cond, &["k"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["k"]).unwrap();
        for scheme in [Scheme::GenCompact, Scheme::GenModular] {
            let mediator = Mediator::new(source.clone()).with_scheme(scheme);
            if let Ok(out) = mediator.run(&q) {
                assert_eq!(out.rows, want, "{scheme} wrong on {cond}");
            }
        }
    }
}

#[test]
fn agreeing_schemes_record_scheme_specific_trails() {
    // The schemes agree on *what* wins, but the flight recorder shows they
    // disagree on *how*: GenCompact's trail is an IPG pruning narrative
    // (PR1/PR3/MCSC tags), GenModular's an exhaustive per-CT EPG narrative.
    use csqp::obs::FlightRecorder;
    let source = mixed_source();
    let q = TargetQuery::parse("a = 1 ^ (c = 0 _ c = 1)", &["k"]).unwrap();

    let compact_rec = Arc::new(FlightRecorder::new());
    let compact = Mediator::new(source.clone())
        .with_flight_recorder(compact_rec.clone())
        .plan(&q)
        .expect("GenCompact plans");
    let modular_rec = Arc::new(FlightRecorder::with_capacity(4, 1 << 16));
    let modular = Mediator::new(source)
        .with_scheme(Scheme::GenModular)
        .with_flight_recorder(modular_rec.clone())
        .plan(&q)
        .expect("GenModular plans");
    assert!(
        (compact.est_cost - modular.est_cost).abs() < 1e-6,
        "schemes agree on winner cost: {} vs {}",
        compact.est_cost,
        modular.est_cost
    );

    if !compact_rec.armed() {
        return; // obs off: no-op recorder, nothing to compare
    }
    let compact_why = csqp::plan::explain_why(compact_rec.latest().as_ref());
    let modular_why = csqp::plan::explain_why(modular_rec.latest().as_ref());
    assert!(compact_why.contains("scheme: GenCompact"), "{compact_why}");
    assert!(modular_why.contains("scheme: GenModular"), "{modular_why}");
    // Both trails end at the same winner...
    for why in [&compact_why, &modular_why] {
        assert!(why.contains("winner (cost"), "{why}");
    }
    // ...but GenCompact got there by pruning the interleaved plan graph,
    assert!(compact_why.contains("[PR1]") || compact_why.contains("[PR3]"), "{compact_why}");
    assert!(!compact_why.contains("[EPG]"), "GenCompact never walks EPG spaces:\n{compact_why}");
    // ...while GenModular enumerated every CT's plan space.
    assert!(modular_why.contains("[EPG]"), "{modular_why}");
    for tag in ["[PR1]", "[PR2]", "[PR3]"] {
        assert!(!modular_why.contains(tag), "GenModular never prunes ({tag}):\n{modular_why}");
    }
}

#[test]
fn gencompact_never_loses_feasibility_to_baselines() {
    // Guarantee (2): GenCompact explores a superset of the baselines'
    // strategies, so whenever any baseline finds a feasible plan, GenCompact
    // must too — and at no greater estimated cost.
    let source = mixed_source();
    for cond in corpus() {
        let q = TargetQuery::parse(cond, &["k"]).unwrap();
        let gc = Mediator::new(source.clone()).plan(&q);
        for scheme in [Scheme::Cnf, Scheme::Dnf, Scheme::Disco, Scheme::NaivePush] {
            let base = Mediator::new(source.clone()).with_scheme(scheme).plan(&q);
            if let Ok(b) = base {
                let g = gc.as_ref().unwrap_or_else(|e| {
                    panic!("{scheme} feasible but GenCompact not on {cond}: {e}")
                });
                assert!(
                    g.est_cost <= b.est_cost + 1e-6,
                    "{cond}: GenCompact {} worse than {scheme} {}",
                    g.est_cost,
                    b.est_cost
                );
            }
        }
    }
}
