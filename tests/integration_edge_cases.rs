//! Edge-case integration tests for planner corners: antichain exports
//! driving plan choice, ∨-node subset grouping via set cover, PR2-off
//! multi-sub-plan tracking, and memoization behavior.

use csqp::prelude::*;
use csqp_plan::is_feasible;
use std::sync::Arc;

fn small_relation() -> Relation {
    let schema = Schema::new(
        "t",
        vec![
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
        ],
        &["k"],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..300i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i % 5), Value::Int(i % 3)])
        .collect();
    Relation::from_rows(schema, rows)
}

fn source_from(text: &str) -> Arc<Source> {
    Arc::new(Source::new(small_relation(), parse_ssdl(text).unwrap(), CostParams::new(10.0, 1.0)))
}

/// Two forms accept the same condition but export different attribute sets;
/// the planner must route each projection through a form that covers it.
#[test]
fn antichain_exports_route_projections() {
    let s = source_from(
        r#"
        source anti {
          s1 -> a = $int ;
          s2 -> a = $any ;
          attributes :: s1 : { k, b } ;
          attributes :: s2 : { k, c } ;
        }
        "#,
    );
    // {k, b} fits s1; {k, c} fits s2; both plan as pure queries.
    for attrs in [vec!["k", "b"], vec!["k", "c"]] {
        let q = TargetQuery::parse("a = 1", &attrs).unwrap();
        let planned = Mediator::new(s.clone()).plan(&q).unwrap();
        assert!(matches!(planned.plan, Plan::SourceQuery { .. }), "{:?}", attrs);
    }
    // {k, b, c} fits NEITHER single form: the pure plan is infeasible, and
    // no other capability exists, so the query fails — union coverage would
    // be unsound and must not be assumed.
    let q = TargetQuery::parse("a = 1", &["k", "b", "c"]).unwrap();
    assert!(Mediator::new(s.clone()).plan(&q).is_err());
}

/// The ∨-node set-cover machinery groups disjuncts into as few supported
/// source queries as the cost model favors.
#[test]
fn or_node_grouping_minimizes_round_trips() {
    // The list form accepts any a-disjunction; with k1 = 50 a single list
    // query beats per-value queries.
    let s = Arc::new(Source::new(
        small_relation(),
        parse_ssdl(
            r#"
            source lists {
              s1 -> alist ;
              alist -> a = $int | a = $int _ alist ;
              attributes :: s1 : { k, a } ;
            }
            "#,
        )
        .unwrap(),
        CostParams::new(50.0, 1.0),
    ));
    let q = TargetQuery::parse("a = 1 _ a = 2 _ a = 3 _ a = 4", &["k"]).unwrap();
    let planned = Mediator::new(s.clone()).plan(&q).unwrap();
    assert_eq!(
        planned.plan.source_queries().len(),
        1,
        "one list query, not four: {}",
        planned.plan
    );
    let out = Mediator::new(s).run(&q).unwrap();
    assert_eq!(out.meter.queries, 1);
}

/// When the source only accepts *pairs* of disjuncts, the cover uses two
/// two-value queries for a four-way disjunction.
#[test]
fn or_node_cover_with_bounded_lists() {
    let s = Arc::new(Source::new(
        small_relation(),
        parse_ssdl(
            r#"
            source pairs {
              s1 -> a = $int _ a = $int ;
              s2 -> a = $int ;
              attributes :: s1 : { k, a } ;
              attributes :: s2 : { k, a } ;
            }
            "#,
        )
        .unwrap(),
        CostParams::new(50.0, 1.0),
    ));
    let q = TargetQuery::parse("a = 1 _ a = 2 _ a = 3 _ a = 4", &["k"]).unwrap();
    let planned = Mediator::new(s.clone()).plan(&q).unwrap();
    assert_eq!(
        planned.plan.source_queries().len(),
        2,
        "two pair-queries beat four singles under k1=50: {}",
        planned.plan
    );
    // And the answer is exact.
    let out = Mediator::new(s.clone()).run(&q).unwrap();
    let want = csqp::relation::ops::project(
        &csqp::relation::ops::select(s.relation(), Some(&q.cond)),
        &["k"],
    )
    .unwrap();
    assert_eq!(out.rows, want);
}

/// Overlapping set-cover solutions stay correct: covering {1,2} ∪ {2,3}
/// double-fetches disjunct 2 but union semantics dedupe it.
#[test]
fn or_node_overlapping_cover_is_exact() {
    let s = Arc::new(Source::new(
        small_relation(),
        parse_ssdl(
            r#"
            source overlap {
              s1 -> a = 1 _ a = 2 ;
              s2 -> a = 2 _ a = 3 ;
              attributes :: s1 : { k, a } ;
              attributes :: s2 : { k, a } ;
            }
            "#,
        )
        .unwrap(),
        CostParams::new(10.0, 1.0),
    ));
    let q = TargetQuery::parse("a = 1 _ a = 2 _ a = 3", &["k"]).unwrap();
    let out = Mediator::new(s.clone()).run(&q).unwrap();
    let want = csqp::relation::ops::project(
        &csqp::relation::ops::select(s.relation(), Some(&q.cond)),
        &["k"],
    )
    .unwrap();
    assert_eq!(out.rows, want, "{}", out.planned.plan);
    assert_eq!(out.meter.queries, 2);
}

/// Literal-constant grammars: only the exact fixed value parses, so plans
/// route other values through local evaluation (or fail without fallback).
#[test]
fn literal_constant_forms() {
    let s = source_from(
        r#"
        source fixed {
          s1 -> a = 1 ;
          s2 -> b = $int ;
          attributes :: s1 : { k, a, b, c } ;
          attributes :: s2 : { k, b } ;
        }
        "#,
    );
    // a = 1 is the fixed form: pure.
    let q1 = TargetQuery::parse("a = 1", &["k"]).unwrap();
    assert!(matches!(Mediator::new(s.clone()).plan(&q1).unwrap().plan, Plan::SourceQuery { .. }));
    // a = 2 is not expressible and nothing else covers attribute a: fail.
    let q2 = TargetQuery::parse("a = 2", &["k"]).unwrap();
    assert!(Mediator::new(s.clone()).plan(&q2).is_err());
    // a = 2 ^ b = 3: push b = 3, filter a = 2 locally? Needs `a` exported
    // by s2 — it is not, so this also fails.
    let q3 = TargetQuery::parse("a = 2 ^ b = 3", &["k"]).unwrap();
    assert!(Mediator::new(s.clone()).plan(&q3).is_err());
    // a = 1 ^ b = 3: the fixed form exports everything; pure or nested both
    // work and the answer is exact.
    let q4 = TargetQuery::parse("a = 1 ^ b = 3", &["k"]).unwrap();
    let out = Mediator::new(s.clone()).run(&q4).unwrap();
    let want = csqp::relation::ops::project(
        &csqp::relation::ops::select(s.relation(), Some(&q4.cond)),
        &["k"],
    )
    .unwrap();
    assert_eq!(out.rows, want);
}

/// Disabling PR2 keeps multiple sub-plans per subset but cannot change the
/// optimum; the search simply grows.
#[test]
fn pr2_off_grows_search_not_cost() {
    let s = source_from(
        r#"
        source multi {
          s1 -> a = $int ;
          s2 -> b = $int ;
          s3 -> a = $int ^ b = $int ;
          s4 -> b = $int ^ c = $int ;
          attributes :: s1 : { k, a, b, c } ;
          attributes :: s2 : { k, b, c } ;
          attributes :: s3 : { k } ;
          attributes :: s4 : { k, b } ;
        }
        "#,
    );
    let q = TargetQuery::parse("a = 1 ^ b = 2 ^ c = 0", &["k"]).unwrap();
    let with_pr2 = Mediator::new(s.clone()).plan(&q).unwrap();
    let cfg = GenCompactConfig {
        ipg: IpgConfig { pr2: false, ..IpgConfig::default() },
        ..Default::default()
    };
    let without = Mediator::new(s.clone()).with_compact_config(cfg).plan(&q).unwrap();
    assert!((with_pr2.est_cost - without.est_cost).abs() < 1e-9);
    assert!(without.report.plans_considered >= with_pr2.report.plans_considered);
}

/// IPG memoizes recursive calls: a repeated sub-condition costs one search.
#[test]
fn ipg_memoizes_repeated_subconditions() {
    let s = source_from(
        r#"
        source memo {
          s1 -> a = $int ;
          s2 -> b = $int ;
          attributes :: s1 : { k, a, b, c } ;
          attributes :: s2 : { k, b } ;
        }
        "#,
    );
    // The same disjunct (b=2 branch) appears twice after rewriting; the
    // planner's generator-call count stays far below the unmemoized bound.
    let q = TargetQuery::parse("(a = 1 ^ b = 2) _ (a = 3 ^ b = 2)", &["k"]).unwrap();
    let planned = Mediator::new(s.clone()).plan(&q).unwrap();
    assert!(is_feasible(&planned.plan, &s));
    assert!(
        planned.report.generator_calls < 2_000,
        "memoized search stays small: {}",
        planned.report.generator_calls
    );
}

/// Empty projection (A = ∅) is legal: existence-style queries plan and
/// return projected-empty tuples (set semantics: 0 or 1 row).
#[test]
fn empty_projection_queries() {
    let s = source_from(
        r#"
        source e {
          s1 -> a = $int ;
          attributes :: s1 : { k, a } ;
        }
        "#,
    );
    let q = TargetQuery::new(parse_condition("a = 1").unwrap(), csqp_plan::attrs::<&str>([]));
    let out = Mediator::new(s).run(&q).unwrap();
    // π_∅ of a non-empty result is a single empty tuple under set semantics.
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows.schema().columns.len(), 0);
}

/// Deeply nested (depth-5) conditions canonicalize and plan on a
/// full-relational source without stack or budget surprises.
#[test]
fn deep_nesting_smoke() {
    let desc = csqp::ssdl::templates::full_relational(
        "full",
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
        ],
    );
    let s = Arc::new(Source::new(small_relation(), desc, CostParams::new(10.0, 1.0)));
    let cond = "a = 1 ^ (b = 2 _ (c = 0 ^ (a = 3 _ (b = 4 ^ c = 1))))";
    let q = TargetQuery::parse(cond, &["k"]).unwrap();
    let out = Mediator::new(s.clone()).run(&q).unwrap();
    let want = csqp::relation::ops::project(
        &csqp::relation::ops::select(s.relation(), Some(&q.cond)),
        &["k"],
    )
    .unwrap();
    assert_eq!(out.rows, want);
}
