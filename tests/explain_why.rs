//! Golden `EXPLAIN WHY` snapshot and flight-recorder guarantees:
//!
//! 1. **Golden output** — the decision trail for the worked car-dealer
//!    example (DESIGN.md §4) is byte-identical across runs and across the
//!    `parallel` feature (this is a `csqp-core` test, so the
//!    `--no-default-features --features parallel` CI leg replays the same
//!    golden); with observability compiled out the report is the
//!    "recorder disabled" notice instead.
//! 2. **Every loser is named** — each entry in the losing-candidates
//!    section carries an eliminating-rule tag, and the trail names the
//!    pruning rules (PR1/PR2/PR3/MCSC) where they fired.
//! 3. **Ring behavior** — the per-recorder query ring evicts oldest-first
//!    and counts evictions; the per-record event cap drops loudly.
//! 4. **Isolation** — mediators sharing one recorder (including from
//!    parallel threads) produce per-query records that never bleed into
//!    each other.
//!
//! Regenerate the golden after an intentional change with:
//! `EXPLAIN_WHY_BLESS=1 cargo test -p csqp-core --test explain_why`.

use csqp_core::mediator::{Mediator, Scheme};
use csqp_core::types::TargetQuery;
use csqp_obs::FlightRecorder;
use csqp_relation::datagen;
use csqp_source::{CostParams, Source};
use csqp_ssdl::templates;
use std::sync::Arc;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_explain_why.txt");
const PROM_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_metrics_prom.txt");

/// The worked example source: the §2 car dealer (make+price and make+color
/// forms) over seeded car data.
fn dealer() -> Arc<Source> {
    Arc::new(Source::new(datagen::cars(3, 400), templates::car_dealer(), CostParams::default()))
}

/// The DESIGN.md worked query (Example 4.1 shape): a conjunction the dealer
/// cannot take in one form, forcing rewrites, pruning, and ranking.
fn worked_query() -> TargetQuery {
    TargetQuery::parse(
        "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
        &["model", "year"],
    )
    .unwrap()
}

fn armed_mediator(scheme: Scheme) -> Mediator {
    Mediator::new(dealer())
        .with_scheme(scheme)
        .with_flight_recorder(Arc::new(FlightRecorder::new()))
}

fn render_explain_why(scheme: Scheme) -> String {
    let mediator = armed_mediator(scheme);
    mediator.plan(&worked_query()).expect("worked example plans");
    mediator.explain_why()
}

#[test]
fn golden_explain_why_worked_example() {
    let mediator = armed_mediator(Scheme::GenCompact);
    mediator.plan(&worked_query()).expect("worked example plans");
    let got = mediator.explain_why();

    if !mediator.flight_recorder().armed() {
        // `obs` off: the recorder is compiled to a no-op and the report is
        // the disabled notice — the golden does not apply.
        assert!(
            got.contains("flight recorder disabled"),
            "no-op recorder must render the disabled notice, got:\n{got}"
        );
        return;
    }
    if std::env::var_os("EXPLAIN_WHY_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden explain-why output");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_explain_why.txt missing — regenerate with EXPLAIN_WHY_BLESS=1");
    assert_eq!(
        got, want,
        "EXPLAIN WHY output diverged from tests/golden_explain_why.txt; if the change is \
         intentional, regenerate with EXPLAIN_WHY_BLESS=1 cargo test -p csqp-core \
         --test explain_why"
    );
}

/// Golden Prometheus text exposition (the `--metrics prom` renderer) after
/// planning and executing the worked example: every metric is a
/// deterministic function of the seeded workload — `serve.*` wall-clock
/// metrics never enter this path — so the page is byte-stable across runs
/// and feature legs.
///
/// Regenerate with `METRICS_PROM_BLESS=1 cargo test -p csqp-core --test
/// explain_why`.
#[test]
fn golden_prometheus_exposition() {
    let mediator = armed_mediator(Scheme::GenCompact);
    mediator.run(&worked_query()).expect("worked example runs");
    let got = mediator.metrics_snapshot().to_prometheus();

    if !mediator.obs().enabled() {
        assert!(got.is_empty(), "no-op registry renders an empty page, got:\n{got}");
        return;
    }
    assert!(got.contains("csqp_planner_pruned_pr3"), "PR3 counter exported:\n{got}");
    assert!(got.contains("# TYPE"), "valid exposition format:\n{got}");
    if std::env::var_os("METRICS_PROM_BLESS").is_some() {
        std::fs::write(PROM_GOLDEN_PATH, &got).expect("write golden Prometheus page");
        return;
    }
    let want = std::fs::read_to_string(PROM_GOLDEN_PATH)
        .expect("tests/golden_metrics_prom.txt missing — regenerate with METRICS_PROM_BLESS=1");
    assert_eq!(
        got, want,
        "Prometheus exposition diverged from tests/golden_metrics_prom.txt; if intentional, \
         regenerate with METRICS_PROM_BLESS=1 cargo test -p csqp-core --test explain_why"
    );
}

/// The report is a pure function of the (seeded) workload: two fresh
/// mediators render byte-identical reports. Combined with the golden test
/// running in both the serial and `parallel` CI legs, this pins the
/// determinism guarantee.
#[test]
fn explain_why_replays_identically() {
    assert_eq!(render_explain_why(Scheme::GenCompact), render_explain_why(Scheme::GenCompact));
    assert_eq!(render_explain_why(Scheme::GenModular), render_explain_why(Scheme::GenModular));
}

/// Every losing candidate is eliminated *by name*: each entry in the
/// losing-candidates section carries a `[rule]` tag from the known rule
/// set, and the decision trail names the IPG pruning rules where they
/// fired.
#[test]
fn every_loser_names_its_eliminating_rule() {
    let mediator = armed_mediator(Scheme::GenCompact);
    mediator.plan(&worked_query()).expect("worked example plans");
    if !mediator.flight_recorder().armed() {
        return;
    }
    let report = mediator.explain_why();

    let losers: Vec<&str> = report
        .lines()
        .skip_while(|l| *l != "losing candidates")
        .skip(1)
        .take_while(|l| !l.is_empty())
        .collect();
    assert!(!losers.is_empty(), "worked example produces losing candidates:\n{report}");
    for line in &losers {
        let tagged = ["[PR1]", "[PR2]", "[PR3]", "[MCSC]", "[cost]", "[memo]"]
            .iter()
            .any(|tag| line.trim_start().starts_with(tag));
        assert!(tagged, "loser line lacks an eliminating-rule tag: {line:?}\n{report}");
    }
    // The §6.3 pruning rules fire on this query and the trail says so.
    for tag in ["[PR1]", "[PR3]", "[MCSC]", "winner (cost"] {
        assert!(report.contains(tag), "{tag} missing from report:\n{report}");
    }
}

/// GenModular's trail narrates the exhaustive path: per-CT EPG plan-space
/// sizes and per-CT candidates instead of pruning events.
#[test]
fn genmodular_trail_shows_epg_spaces() {
    // GenModular's exhaustive trail outgrows the default per-record event
    // cap on the worked example; raise it so the Winner survives.
    let rec = Arc::new(FlightRecorder::with_capacity(8, 1 << 16));
    let mediator =
        Mediator::new(dealer()).with_scheme(Scheme::GenModular).with_flight_recorder(rec);
    mediator.plan(&worked_query()).expect("worked example plans");
    if !mediator.flight_recorder().armed() {
        return;
    }
    let report = mediator.explain_why();
    assert!(report.contains("scheme: GenModular"), "{report}");
    assert!(report.contains("[EPG]"), "EPG plan-space events missing:\n{report}");
    assert!(report.contains("candidate (cost"), "per-CT candidates missing:\n{report}");
    assert!(report.contains("winner (cost"), "{report}");
}

/// The query ring is bounded: oldest records evict first and the eviction
/// is counted, never silent.
#[test]
fn recorder_ring_evicts_oldest_and_counts() {
    let rec = Arc::new(FlightRecorder::with_capacity(2, 64));
    let mediator = Mediator::new(dealer()).with_flight_recorder(rec.clone());
    for make in ["BMW", "Audi", "Toyota"] {
        let q =
            TargetQuery::parse(&format!("make = \"{make}\" ^ price < 40000"), &["model"]).unwrap();
        mediator.plan(&q).expect("plans");
    }
    if !rec.armed() {
        assert!(rec.records().is_empty(), "no-op recorder keeps nothing");
        return;
    }
    let records = rec.records();
    assert_eq!(records.len(), 2, "ring capacity holds");
    assert_eq!(rec.evicted(), 1, "eviction is counted");
    assert!(records[0].query.contains("Audi"), "oldest (BMW) evicted first");
    assert!(records[1].query.contains("Toyota"));
    assert!(rec.record(records[1].id).is_some(), "records stay addressable by id");
}

/// The per-record event cap drops loudly: the record reports how many
/// events it lost and EXPLAIN WHY surfaces the truncation.
#[test]
fn event_cap_drops_are_reported() {
    let rec = Arc::new(FlightRecorder::with_capacity(4, 3));
    let mediator = Mediator::new(dealer()).with_flight_recorder(rec.clone());
    mediator.plan(&worked_query()).expect("plans");
    if !rec.armed() {
        return;
    }
    let latest = rec.latest().expect("record exists");
    assert_eq!(latest.events.len(), 3, "event cap holds");
    assert!(latest.dropped > 0, "drops are counted");
    let report = mediator.explain_why();
    assert!(report.contains("events dropped"), "truncation surfaced:\n{report}");
}

/// Mediators sharing one recorder produce isolated per-query records, even
/// when planning concurrently from several threads.
#[test]
fn shared_recorder_isolates_queries_across_threads() {
    let rec = Arc::new(FlightRecorder::with_capacity(64, 1024));
    let makes = ["BMW", "Audi", "Toyota", "Honda"];
    std::thread::scope(|s| {
        for make in makes {
            let rec = rec.clone();
            s.spawn(move || {
                let mediator = Mediator::new(dealer()).with_flight_recorder(rec);
                let q =
                    TargetQuery::parse(&format!("make = \"{make}\" ^ price < 40000"), &["model"])
                        .unwrap();
                mediator.plan(&q).expect("plans");
            });
        }
    });
    if !rec.armed() {
        return;
    }
    let records = rec.records();
    assert_eq!(records.len(), makes.len(), "one record per query");
    for r in &records {
        let own = makes.iter().find(|m| r.query.contains(**m)).expect("record names its make");
        for other in makes.iter().filter(|m| *m != own) {
            assert!(
                r.events.iter().all(|e| !e.to_string().contains(other)),
                "record for {own} leaked events mentioning {other}"
            );
        }
        assert!(!r.events.is_empty(), "each record captured its own trail");
    }
}
