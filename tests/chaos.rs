//! Chaos suite: seeded fault storms over the E1 (bookstore) and E2
//! (carguide) workloads.
//!
//! The invariants under storm:
//!
//! 1. **Exactness** — any run that succeeds returns exactly the oracle
//!    relation (resilience never trades correctness);
//! 2. **Boundedness** — attempts/retries stay within the retry policy;
//! 3. **Determinism** — a fixed seed yields the identical retry/failover
//!    trace on every run, and the identical trace with the `parallel`
//!    feature on or off (this file is a `csqp-core` test so the
//!    `--no-default-features` CI job executes it serially against the same
//!    golden trace).
//!
//! Regenerate the golden trace after an intentional behaviour change with:
//! `CHAOS_BLESS=1 cargo test -p csqp-core --test chaos`.

use csqp_core::federation::{CircuitBreakerConfig, Federation, MemberEvent};
use csqp_core::mediator::{Mediator, MediatorError};
use csqp_core::types::TargetQuery;
use csqp_expr::ValueType;
use csqp_plan::exec::RetryPolicy;
use csqp_relation::datagen::{self, BookGenConfig, CarGenConfig};
use csqp_relation::ops::{project, select};
use csqp_relation::Relation;
use csqp_source::{CostParams, FaultProfile, Source};
use csqp_ssdl::{parse_ssdl, templates};
use std::fmt::Write as _;
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_chaos.txt");
const GOLDEN_SEED: u64 = 42;

fn q(cond: &str, attrs: &[&str]) -> TargetQuery {
    TargetQuery::parse(cond, attrs).unwrap_or_else(|e| panic!("bad chaos query {cond:?}: {e}"))
}

/// E1: Example 1.1 shapes on the bookstore source.
fn e1_workload(fault: Option<FaultProfile>) -> (Arc<Source>, Vec<TargetQuery>) {
    let mut source = Source::new(
        datagen::books(7, &BookGenConfig { n_books: 1500, ..Default::default() }),
        templates::bookstore(),
        CostParams::default(),
    );
    if let Some(profile) = fault {
        source = source.with_fault_profile(profile);
    }
    let a = ["isbn", "title", "author"];
    let queries = vec![
        q("(author = \"Sigmund Freud\" _ author = \"Carl Jung\") ^ title contains \"dreams\"", &a),
        q("author = \"Sigmund Freud\"", &a),
        q("(subject = \"fiction\" _ subject = \"poetry\") ^ title contains \"sea\"", &a),
        q("title contains \"history\" ^ subject = \"science\"", &a),
    ];
    (Arc::new(source), queries)
}

/// E2: Example 1.2 shapes on the car-guide source.
fn e2_workload(fault: Option<FaultProfile>) -> (Arc<Source>, Vec<TargetQuery>) {
    let mut source = Source::new(
        datagen::car_listings(11, &CarGenConfig { n_listings: 1500 }),
        templates::car_guide(),
        CostParams::default(),
    );
    if let Some(profile) = fault {
        source = source.with_fault_profile(profile);
    }
    let a = ["listing_id", "model", "price"];
    let queries = vec![
        q(
            "style = \"sedan\" ^ (size = \"compact\" _ size = \"midsize\") ^ \
             ((make = \"Toyota\" ^ price <= 20000) _ (make = \"BMW\" ^ price <= 40000))",
            &a,
        ),
        q("make = \"Toyota\" ^ price <= 15000", &a),
        q("(make = \"Honda\" _ make = \"Toyota\") ^ price <= 25000", &a),
        q("(make = \"Audi\" ^ price <= 50000) _ (make = \"BMW\" ^ price <= 45000)", &a),
    ];
    (Arc::new(source), queries)
}

fn storm_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 6,
        base_backoff_ticks: 4,
        max_backoff_ticks: 64,
        jitter_seed: seed,
        deadline_ticks: Some(5_000),
    }
}

fn oracle(source: &Source, query: &TargetQuery) -> Relation {
    let attrs: Vec<&str> = query.attrs.iter().map(String::as_str).collect();
    project(&select(source.relation(), Some(&query.cond)), &attrs).unwrap()
}

/// Runs one mediator storm over both workloads, checking exactness and
/// policy bounds, and returns the retry/failover trace.
fn mediator_storm(seed: u64) -> Vec<String> {
    let policy = storm_policy(seed);
    let mut trace = Vec::new();
    let storms = [
        ("e1", e1_workload(Some(FaultProfile::storm(seed, 0.6)))),
        ("e2", e2_workload(Some(FaultProfile::storm(seed.wrapping_add(1), 0.6)))),
        // A blackout: every attempt lands in the outage window, so every
        // retry budget exhausts — the deterministic "nothing helps" case.
        ("e1dark", e1_workload(Some(FaultProfile::new(seed).with_outage(0, u64::MAX)))),
    ];
    for (name, (source, queries)) in storms {
        let mediator = Mediator::new(source.clone());
        for (i, query) in queries.iter().enumerate() {
            let mut line = format!("{name}/q{i} seed={seed}: ");
            match mediator.run_resilient(query, &policy) {
                Ok(out) => {
                    // Invariant 1: a successful run is exactly the oracle.
                    assert_eq!(
                        out.outcome.rows,
                        oracle(&source, query),
                        "{name}/q{i} seed {seed}: storm answer diverged from oracle"
                    );
                    // Invariant 2: attempts within policy across every plan
                    // the failover chain could have touched.
                    let plans_sqs: u64 = std::iter::once(&out.outcome.planned.plan)
                        .chain(out.outcome.planned.alternatives.iter().map(|a| &a.plan))
                        .map(|p| p.source_queries().len() as u64)
                        .sum();
                    let per_query = (policy.max_retries as u64) + 1;
                    assert!(
                        out.resilience.attempts <= per_query * plans_sqs,
                        "{name}/q{i} seed {seed}: {} attempts exceeds policy bound {}",
                        out.resilience.attempts,
                        per_query * plans_sqs
                    );
                    assert!(out.resilience.retries <= out.resilience.attempts);
                    assert_eq!(out.resilience.failovers as usize, out.plan_rank);
                    let r = &out.resilience;
                    let _ = write!(
                        line,
                        "ok rows={} rank={} attempts={} retries={} faults={} ticks={}",
                        out.outcome.rows.len(),
                        out.plan_rank,
                        r.attempts,
                        r.retries,
                        r.faults(),
                        r.ticks
                    );
                }
                Err(e) => {
                    let _ = write!(line, "err {e}");
                }
            }
            trace.push(line);
        }
    }
    trace
}

/// Three storm-afflicted mirrors of the same car data with different
/// capabilities, costs, and fault seeds.
fn storm_federation(seed: u64) -> Federation {
    let data = datagen::cars(3, 400);
    let fast_form = Arc::new(
        Source::new(data.clone(), templates::car_dealer(), CostParams::new(10.0, 1.0))
            .with_fault_profile(FaultProfile::storm(seed, 0.8)),
    );
    let slow_dump = Arc::new(
        Source::new(
            data.clone(),
            templates::download_only(
                "dump",
                &[
                    ("make", ValueType::Str),
                    ("model", ValueType::Str),
                    ("year", ValueType::Int),
                    ("color", ValueType::Str),
                    ("price", ValueType::Int),
                ],
            ),
            CostParams::new(200.0, 5.0),
        )
        .with_fault_profile(FaultProfile::storm(seed.wrapping_add(7), 0.4)),
    );
    let color_only = Arc::new(
        Source::new(
            data,
            parse_ssdl(
                "source color_only {\n\
                 s1 -> color = $str ;\n\
                 attributes :: s1 : { make, model, year, color } ;\n}",
            )
            .unwrap(),
            CostParams::new(10.0, 1.0),
        )
        .with_fault_profile(FaultProfile::storm(seed.wrapping_add(13), 0.8)),
    );
    Federation::new()
        .with_member(fast_form)
        .with_member(slow_dump)
        .with_member(color_only)
        .with_breaker(CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 2 })
}

fn render_event(e: &MemberEvent) -> String {
    match e {
        MemberEvent::Quarantined => "quarantined".into(),
        MemberEvent::Infeasible => "infeasible".into(),
        MemberEvent::Probed => "probed".into(),
        MemberEvent::ExecFailed(msg) => format!("exec-failed({msg})"),
        MemberEvent::Served => "served".into(),
        MemberEvent::Spliced(from) => format!("spliced-for({from})"),
    }
}

/// Runs one federated storm (several passes so breakers open, cool down,
/// and probe), checking exactness, and returns the failover trace.
fn federation_storm(seed: u64) -> Vec<String> {
    let f = storm_federation(seed);
    let policy = RetryPolicy { max_retries: 1, jitter_seed: seed, ..Default::default() };
    let queries = [
        q("make = \"BMW\" ^ price < 40000", &["model", "year"]),
        q("color = \"red\"", &["make", "model"]),
        q("year = 1995", &["make", "model"]),
        q("make = \"Toyota\" ^ price < 20000", &["model", "year"]),
    ];
    let mut trace = Vec::new();
    for round in 0..4 {
        for (i, query) in queries.iter().enumerate() {
            let mut line = format!("fed/r{round}q{i} seed={seed}: ");
            match f.run_resilient(query, &policy) {
                Ok(run) => {
                    let member = f.members().iter().find(|m| m.name == run.source_name).unwrap();
                    assert_eq!(
                        run.outcome.rows,
                        oracle(member, query),
                        "fed r{round}q{i} seed {seed}: federated answer diverged from oracle"
                    );
                    let events: Vec<String> =
                        run.trace.iter().map(|(n, e)| format!("{n}:{}", render_event(e))).collect();
                    let _ = write!(
                        line,
                        "ok by={} rank={} failovers={} [{}]",
                        run.source_name,
                        run.plan_rank,
                        run.resilience.failovers,
                        events.join(", ")
                    );
                }
                Err(MediatorError::Plan(e)) => {
                    let _ = write!(line, "infeasible {e}");
                }
                Err(MediatorError::Exec(e)) => {
                    let _ = write!(line, "err {e}");
                }
            }
            trace.push(line);
        }
    }
    trace
}

fn full_trace(seed: u64) -> String {
    let mut all = mediator_storm(seed);
    all.extend(federation_storm(seed));
    let mut out = String::new();
    for line in all {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Invariants 1–2 across a spread of storm seeds (exactness and policy
/// bounds are asserted inside the storm runners).
#[test]
fn chaos_storms_answer_exactly_or_fail_loud() {
    let mut any_ok = 0usize;
    let mut any_err = 0usize;
    for seed in 0..6u64 {
        for line in mediator_storm(seed) {
            if line.contains(": ok") {
                any_ok += 1;
            } else {
                any_err += 1;
            }
        }
    }
    assert!(any_ok > 0, "storms at 0.6 intensity must let some queries through");
    assert!(any_err > 0, "the blackout workload must exhaust its retry budgets");
}

#[test]
fn chaos_federation_storms_are_exact_and_recover() {
    let mut served = 0usize;
    for seed in [3u64, 17, 29] {
        for line in federation_storm(seed) {
            if line.contains(": ok") {
                served += 1;
            }
        }
    }
    assert!(served > 0, "mirrored members must keep most answers flowing");
}

/// Invariant 3a: the same seed replays the identical trace in-process.
#[test]
fn chaos_trace_is_deterministic_per_seed() {
    for seed in [0u64, 9, GOLDEN_SEED] {
        assert_eq!(full_trace(seed), full_trace(seed), "seed {seed} must replay identically");
    }
}

/// Invariant 3b: the trace is identical across *builds* — the golden file
/// is asserted by both the default (`parallel`) and `--no-default-features`
/// CI jobs, so a serial/parallel divergence fails one of them.
#[test]
fn chaos_trace_matches_golden_across_feature_sets() {
    let got = full_trace(GOLDEN_SEED);
    if std::env::var_os("CHAOS_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden chaos trace");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_chaos.txt missing — regenerate with CHAOS_BLESS=1");
    assert_eq!(
        got, want,
        "chaos trace diverged from tests/golden_chaos.txt; if the change is \
         intentional, regenerate with CHAOS_BLESS=1 cargo test -p csqp-core --test chaos"
    );
}

#[cfg(all(feature = "stream", feature = "adaptive"))]
const GOLDEN_REPLAN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_chaos_replan.txt");

/// A cheap dealer that answers its first source query and then goes dark
/// mid-stream (with seeded transient noise on top), mirrored by a
/// reliable but expensive dump. Breaker threshold 1: the first mid-stream
/// death opens it.
#[cfg(all(feature = "stream", feature = "adaptive"))]
fn replan_federation(seed: u64) -> Federation {
    let data = datagen::cars(3, 400);
    let flaky = Arc::new(
        Source::new(data.clone(), templates::car_dealer(), CostParams::new(10.0, 1.0))
            .with_fault_profile(
                FaultProfile::new(seed).with_transient(0.25).with_outage(1, u64::MAX),
            ),
    );
    let dump = Arc::new(Source::new(
        data,
        templates::download_only(
            "dump",
            &[
                ("make", ValueType::Str),
                ("model", ValueType::Str),
                ("year", ValueType::Int),
                ("color", ValueType::Str),
                ("price", ValueType::Int),
            ],
        ),
        CostParams::new(200.0, 5.0),
    ));
    Federation::new()
        .with_member(flaky)
        .with_member(dump)
        .with_breaker(CircuitBreakerConfig { failure_threshold: 1, cooldown_ticks: 4 })
        // Armed so the storm can assert EXPLAIN WHY renders the splices.
        .with_flight_recorder(Arc::new(csqp_obs::FlightRecorder::new()))
}

/// Runs the mid-stream-outage workload adaptively: the dealer dies inside
/// a union pipeline, the breaker opens, and the dump must be *spliced in*
/// for the residual rather than the run failing over from scratch. Checks
/// exactness on every success and that EXPLAIN WHY renders the splice;
/// returns the trace.
#[cfg(all(feature = "stream", feature = "adaptive"))]
fn replan_storm(seed: u64) -> Vec<String> {
    use csqp_plan::exec_stream::StreamConfig;
    let f = replan_federation(seed);
    let policy = RetryPolicy { max_retries: 2, jitter_seed: seed, ..Default::default() };
    let cfg = StreamConfig { batch_size: 16, ..StreamConfig::serial() };
    let queries = [
        q(
            "(make = \"BMW\" _ make = \"Audi\" _ make = \"Toyota\") ^ price < 40000",
            &["model", "year"],
        ),
        q("(make = \"Honda\" _ make = \"BMW\") ^ price < 30000", &["model", "year"]),
        q("year = 1995", &["make", "model"]),
    ];
    let mut trace = Vec::new();
    let mut spliced = 0u64;
    for round in 0..2 {
        for (i, query) in queries.iter().enumerate() {
            let mut line = format!("replan/r{round}q{i} seed={seed}: ");
            match f.run_adaptive(query, &policy, &cfg) {
                Ok(run) => {
                    let member =
                        f.members().iter().find(|m| m.name == run.run.source_name).unwrap();
                    assert_eq!(
                        run.run.outcome.rows,
                        oracle(member, query),
                        "replan r{round}q{i} seed {seed}: spliced answer diverged from oracle"
                    );
                    spliced += run.splices;
                    #[cfg(feature = "obs")]
                    if run.splices > 0 {
                        let why = f.explain_why();
                        assert!(
                            why.contains("[replan]"),
                            "replan r{round}q{i} seed {seed}: EXPLAIN WHY must render the \
                             mid-flight splice:\n{why}"
                        );
                    }
                    let events: Vec<String> = run
                        .trace()
                        .iter()
                        .map(|(n, e)| format!("{n}:{}", render_event(e)))
                        .collect();
                    let _ = write!(
                        line,
                        "ok by={} splices={} rows={} [{}]",
                        run.run.source_name,
                        run.splices,
                        run.run.outcome.rows.len(),
                        events.join(", ")
                    );
                }
                Err(MediatorError::Plan(e)) => {
                    let _ = write!(line, "infeasible {e}");
                }
                Err(MediatorError::Exec(e)) => {
                    let _ = write!(line, "err {e}");
                }
            }
            trace.push(line);
        }
    }
    assert!(spliced >= 1, "seed {seed}: the outage must force at least one mid-stream splice");
    trace
}

/// Mid-pipeline breaker-open recovery: exact answers, at least one splice,
/// and a per-seed deterministic trace. Seed set overridable with
/// `CHAOS_REPLAN_SEED=<n>` (the CI chaos matrix runs one seed per job).
#[cfg(all(feature = "stream", feature = "adaptive"))]
#[test]
fn chaos_replan_recovers_mid_stream() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_REPLAN_SEED") {
        Ok(s) => vec![s.trim().parse().expect("CHAOS_REPLAN_SEED must be a u64")],
        Err(_) => vec![3, 17, 29],
    };
    for seed in seeds {
        let first = replan_storm(seed);
        assert_eq!(replan_storm(seed), first, "seed {seed} must replay identically");
    }
}

/// The replan trace at the golden seed is identical across builds, like
/// the main chaos golden. Regenerate with `CHAOS_BLESS=1`.
#[cfg(all(feature = "stream", feature = "adaptive"))]
#[test]
fn chaos_replan_trace_matches_golden() {
    let got: String = replan_storm(GOLDEN_SEED).iter().map(|l| format!("{l}\n")).collect();
    if std::env::var_os("CHAOS_BLESS").is_some() {
        std::fs::write(GOLDEN_REPLAN_PATH, &got).expect("write golden replan trace");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_REPLAN_PATH)
        .expect("tests/golden_chaos_replan.txt missing — regenerate with CHAOS_BLESS=1");
    assert_eq!(
        got, want,
        "replan chaos trace diverged from tests/golden_chaos_replan.txt; if the change \
         is intentional, regenerate with CHAOS_BLESS=1 cargo test -p csqp-core --test chaos"
    );
}

/// The fault path is inert without a profile: resilient execution equals
/// plain execution and the resilience meters stay zero.
#[test]
fn chaos_layer_is_transparent_without_profiles() {
    let (source, queries) = e1_workload(None);
    let mediator = Mediator::new(source.clone());
    for query in &queries {
        let plain = mediator.run(query).unwrap();
        let resilient = mediator.run_resilient(query, &RetryPolicy::default()).unwrap();
        assert_eq!(plain.rows, resilient.outcome.rows);
        assert_eq!(resilient.plan_rank, 0);
        assert_eq!(resilient.resilience.retries, 0);
        assert_eq!(resilient.resilience.ticks, 0);
        assert_eq!(resilient.resilience.faults(), 0);
    }
    assert_eq!(source.resilience_meter(), Default::default());
}
