//! The multi-tenant serve front door under concurrency: worker-pool
//! keep-alive serving, `/shutdown` draining in-flight connections,
//! per-tenant token-bucket shedding (429), the prepared-plan cache
//! surfacing in trailers and `/metrics`, and a mixed-tenant hammer whose
//! audit journal must come out coherent — no lost or duplicated records.

use csqp::serve::{ServeConfig, Server};
use csqp_relation::datagen;
use csqp_source::{CostParams, Source};
use csqp_ssdl::templates;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect to serve");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// One-shot HTTP/1.0 request (no keep-alive: the server closes after the
/// response, so reading to EOF frames it).
fn http_get(addr: SocketAddr, path: &str) -> String {
    http_get_with_header(addr, path, None)
}

fn http_get_with_header(addr: SocketAddr, path: &str, header: Option<&str>) -> String {
    let mut s = connect(addr);
    let extra = header.map(|h| format!("{h}\r\n")).unwrap_or_default();
    write!(s, "GET {path} HTTP/1.0\r\nHost: pool\r\n{extra}\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    buf
}

fn dealer() -> Arc<Source> {
    Arc::new(Source::new(datagen::cars(3, 400), templates::car_dealer(), CostParams::default()))
}

const BMW: &str = "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year";
const TOYOTA: &str =
    "/query?cond=make%20%3D%20%22Toyota%22%20%5E%20price%20%3C%2030000&attrs=model,year";

/// A persistent HTTP/1.1 connection speaking framed (Content-Length)
/// requests — the keep-alive path the worker pool serves until the client
/// closes or the server begins draining.
struct KeepAlive {
    reader: BufReader<TcpStream>,
}

impl KeepAlive {
    fn open(addr: SocketAddr) -> Self {
        KeepAlive { reader: BufReader::new(connect(addr)) }
    }

    /// Sends one framed request and returns `(status line, body)`.
    fn request(&mut self, path: &str) -> (String, String) {
        write!(self.reader.get_mut(), "GET {path} HTTP/1.1\r\nHost: pool\r\n\r\n").unwrap();
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("status line");
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            if line.trim().is_empty() {
                break;
            }
            let lower = line.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                len = v.trim().parse().expect("content length");
            }
        }
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("framed body");
        (status.trim().to_string(), String::from_utf8(body).expect("utf-8 body"))
    }
}

/// Keep-alive serving + `/shutdown` drain: a connection opened before the
/// shutdown request keeps getting answers until it closes, and only then
/// does the accept loop return.
#[test]
fn shutdown_drains_inflight_keepalive_connections() {
    let server = Server::bind_federation(vec![dealer()], ServeConfig::default())
        .expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run());

    // A long-lived pipelined connection: several requests on one socket.
    let mut ka = KeepAlive::open(addr);
    let (status, body) = ka.request("/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(body, "ok\n");
    let (status, _) = ka.request("/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "keep-alive second request: {status}");

    // Another client asks for shutdown while ka is still connected.
    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    std::thread::sleep(Duration::from_millis(150));

    // The draining server still answers the in-flight connection.
    let (status, body) = ka.request("/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "drained connection still served: {status}");
    assert_eq!(body, "ok\n");

    // Only once the last connection closes does the accept loop exit.
    drop(ka);
    handle.join().expect("server thread").expect("accept loop exits cleanly");
}

/// Per-tenant token buckets: a tenant that exhausts its burst gets fast
/// 429s while other tenants keep their full allowance; identity comes from
/// the `tenant=` query param or the `X-Tenant` header (param wins).
#[test]
fn tenant_quota_sheds_with_429() {
    let cfg = ServeConfig {
        // Refill is negligible within the test run: the burst is the budget.
        tenant_rate: 0.001,
        tenant_burst: 2.0,
        ..ServeConfig::default()
    };
    let server = Server::bind_federation(vec![dealer()], cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run());

    let noisy = format!("{BMW}&tenant=noisy");
    for i in 0..2 {
        let resp = http_get(addr, &noisy);
        assert!(resp.starts_with("HTTP/1.1 200"), "burst query {i}: {resp}");
        assert!(resp.contains("tenant noisy"), "trailer names the tenant: {resp}");
    }
    let shed = http_get(addr, &noisy);
    assert!(shed.starts_with("HTTP/1.1 429"), "burst exhausted: {shed}");
    assert!(shed.contains("over its query rate"), "{shed}");

    // A different tenant still has its own full bucket.
    let quiet = http_get(addr, &format!("{BMW}&tenant=quiet"));
    assert!(quiet.starts_with("HTTP/1.1 200"), "tenant isolation: {quiet}");

    // Header-borne identity charges the same bucket as the param form.
    let via_header = http_get_with_header(addr, BMW, Some("X-Tenant: noisy"));
    assert!(via_header.starts_with("HTTP/1.1 429"), "X-Tenant shares the bucket: {via_header}");
    // The param outranks the header when both are present.
    let both = http_get_with_header(addr, &format!("{BMW}&tenant=fresh"), Some("X-Tenant: noisy"));
    assert!(both.starts_with("HTTP/1.1 200"), "param wins over header: {both}");
    assert!(both.contains("tenant fresh"), "{both}");

    // Non-query endpoints are never quota-shed.
    let health = http_get(addr, "/healthz?tenant=noisy");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");

    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");
}

/// The prepared-plan cache surfaces end to end: the first query of a shape
/// plans cold ("plan cache miss"), the next query of the same shape with
/// different constants is served from the cache ("plan cache hit"), and
/// the counters scrape on `/metrics`.
#[test]
fn plan_cache_decisions_surface_in_trailer_and_metrics() {
    let server = Server::bind_federation(vec![dealer()], ServeConfig::default())
        .expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let obs_on = server.mediator().obs().enabled();
    let handle = std::thread::spawn(move || server.run());

    let cold = http_get(addr, BMW);
    assert!(cold.starts_with("HTTP/1.1 200"), "{cold}");
    assert!(cold.contains("plan cache miss"), "first query of a shape plans cold: {cold}");
    let warm = http_get(addr, TOYOTA);
    assert!(warm.starts_with("HTTP/1.1 200"), "{warm}");
    assert!(warm.contains("plan cache hit"), "same shape, new constants, cached: {warm}");

    // Identical answers modulo the cache: both queries return every row
    // their condition selects (the hit rebinds constants, so row *counts*
    // differ per condition, but the trailer row count matches the body).
    for resp in [&cold, &warm] {
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let lines: Vec<&str> = body.lines().collect();
        let n: usize = lines.last().unwrap().split(' ').next().unwrap().parse().expect("row count");
        assert_eq!(lines.len() - 1, n, "one line per row plus the trailer: {body}");
    }

    if obs_on {
        let metrics = http_get(addr, "/metrics");
        assert!(metrics.contains("csqp_plancache_hits_total 1"), "{metrics}");
        assert!(metrics.contains("csqp_plancache_misses_total 1"), "{metrics}");
        assert!(metrics.contains("csqp_plancache_entries 1.0"), "{metrics}");
        assert!(metrics.contains("csqp_admission_admitted_total 2"), "{metrics}");
    }
    // The worst-N profile index reports the decision per retained query.
    let profiles = http_get(addr, "/profile");
    assert!(
        profiles.contains("plan cache hit)") || profiles.contains("plan cache miss)"),
        "profile index carries the cache decision: {profiles}"
    );

    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");
}

/// Mixed-tenant hammer across the worker pool: four client threads, each
/// its own tenant, each pushing past its quota mid-run. Afterwards the
/// books must balance exactly — one journal record per 200, none for
/// sheds, unique flight ids, and per-tenant admission counters matching
/// what the clients observed.
#[test]
fn worker_pool_hammer_keeps_journal_and_counters_coherent() {
    let journal =
        std::env::temp_dir().join(format!("csqp-pool-hammer-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let cfg = ServeConfig {
        journal_path: Some(journal.to_str().unwrap().to_string()),
        window_queries: 2,
        workers: 4,
        tenant_rate: 0.001,
        tenant_burst: 2.0,
        ..ServeConfig::default()
    };
    let server = Server::bind_federation(vec![dealer()], cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let obs_on = server.mediator().obs().enabled();
    let handle = std::thread::spawn(move || server.run());

    const THREADS: usize = 4;
    const PER_THREAD: usize = 6;
    let mut clients = Vec::new();
    for t in 0..THREADS {
        clients.push(std::thread::spawn(move || {
            let (mut ok, mut shed) = (0u64, 0u64);
            for round in 0..PER_THREAD {
                let base = if round % 2 == 0 { BMW } else { TOYOTA };
                let resp = http_get(addr, &format!("{base}&tenant=t{t}"));
                if resp.starts_with("HTTP/1.1 200") {
                    ok += 1;
                } else if resp.starts_with("HTTP/1.1 429") {
                    shed += 1;
                } else {
                    panic!("hammer t{t}/{round}: {resp}");
                }
            }
            (ok, shed)
        }));
    }
    let (mut ok_total, mut shed_total) = (0u64, 0u64);
    for c in clients {
        let (ok, shed) = c.join().expect("client thread");
        // Burst 2 with negligible refill: each tenant lands exactly its
        // burst, and every query past it sheds.
        assert_eq!(ok, 2, "each tenant gets exactly its burst");
        assert_eq!(shed, (PER_THREAD as u64) - 2);
        ok_total += ok;
        shed_total += shed;
    }

    // Admission counters agree with what the clients saw, per tenant.
    if obs_on {
        let metrics = http_get(addr, "/metrics");
        assert!(
            metrics.contains(&format!("csqp_admission_admitted_total {ok_total}")),
            "{metrics}"
        );
        assert!(
            metrics.contains(&format!("csqp_admission_shed_quota_total {shed_total}")),
            "{metrics}"
        );
        for t in 0..THREADS {
            assert!(
                metrics.contains(&format!("csqp_tenant_queries_total{{tenant=\"t{t}\"}} 2")),
                "{metrics}"
            );
            assert!(
                metrics.contains(&format!(
                    "csqp_tenant_shed_total{{tenant=\"t{t}\"}} {}",
                    (PER_THREAD as u64) - 2
                )),
                "{metrics}"
            );
        }
    }
    // The scoreboard stays sane under the mixed 200/429 storm.
    let status = http_get(addr, "/status");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(status.contains("car_dealer"), "{status}");

    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");

    // The journal balances: exactly one record per admitted query — sheds
    // never journal — all "ok", and (with the recorder armed) no flight id
    // is lost or double-spent across workers.
    let (records, errors) = csqp_obs::audit::read_journal(&journal).expect("journal readable");
    assert!(errors.is_empty(), "torn/corrupt journal lines: {errors:?}");
    assert_eq!(records.len() as u64, ok_total, "one audit record per 200, none per 429");
    assert!(records.iter().all(|r| r.status == "ok"), "{records:?}");
    if obs_on {
        let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, ok_total, "flight ids are unique across workers");
    }
    let _ = std::fs::remove_file(&journal);
}
