//! Query-profile ("query black box") stability suite.
//!
//! The [`QueryProfile`] JSON document is the post-mortem artifact for a
//! single query: span tree, metrics delta, flight trail, splice/breaker
//! summary and est-vs-observed cardinalities. Two things are pinned here:
//!
//! 1. **Schema stability** — a hand-built profile with every section
//!    populated renders byte-for-byte identically to
//!    `tests/golden_query_profile.json` on *every* CI feature leg,
//!    including `--no-default-features`: the profile is plain data, so the
//!    document's shape cannot depend on which recorders were linked.
//! 2. **Live capture** — `Mediator::plan_profiled` / `run_profiled`
//!    populate the sections they promise (well-formed span tree, flight
//!    trail, metrics delta, cardinalities) and do so deterministically.
//!
//! Regenerate the golden after an intentional schema change with:
//! `QUERY_PROFILE_BLESS=1 cargo test -p csqp-core --test query_profile`.

use csqp_obs::span::validate;
use csqp_obs::{CardRow, LatencyKey, MetricsSnapshot, QueryProfile, SpanRecord};

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_query_profile.json");

fn span(id: u64, parent: Option<u64>, label: &str, start: u64, end: u64, depth: u16) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        label: label.to_string(),
        start_tick: start,
        end_tick: Some(end),
        depth,
    }
}

/// A profile with every section non-empty, built from plain data only — no
/// recorder, no clock, no feature-gated code path. Byte-stability of its
/// rendering is exactly the schema guarantee the serve endpoints and the
/// CLI rely on.
fn synthetic_profile() -> QueryProfile {
    let mut metrics = MetricsSnapshot::default();
    metrics.counters.insert("exec.source_queries".to_string(), 2);
    metrics.counters.insert("planner.check_calls".to_string(), 7);
    metrics.gauges.insert("exec.est_cost".to_string(), 104.5);
    metrics.histograms.insert(
        "exec.rows_per_subquery".to_string(),
        csqp_obs::HistogramSnapshot {
            count: 2,
            sum: 31,
            min: 12,
            max: 19,
            buckets: vec![(8, 15, 1), (16, 31, 1)],
            exemplars: Vec::new(),
        },
    );
    QueryProfile {
        id: 42,
        query: "price < 40000 ^ make = \"BMW\"".to_string(),
        scheme: "GenCompact".to_string(),
        rows: 19,
        latency: Some(LatencyKey { wall_us: None, ticks: 23 }),
        est_cost: 104.5,
        observed_cost: 98.0,
        splices: 1,
        drift_triggers: 1,
        plan_cache: "hit".to_string(),
        breakers: vec![
            ("car_dealer".to_string(), "open".to_string()),
            ("dump".to_string(), "closed".to_string()),
        ],
        cardinalities: vec![
            CardRow {
                label: "SP(make = \"BMW\", {model}, R)".to_string(),
                est_rows: 12.5,
                observed_rows: 12,
            },
            CardRow {
                label: "SP(price < 40000, {model}, R)".to_string(),
                est_rows: 20.0,
                observed_rows: 19,
            },
        ],
        spans: vec![
            span(0, None, "plan", 0, 9, 0),
            span(1, Some(0), "rewrite", 1, 2, 1),
            span(2, Some(0), "ipg", 3, 6, 1),
            span(3, Some(2), "mcsc", 4, 5, 2),
            span(4, Some(0), "rank", 7, 8, 1),
            span(5, None, "execute (adaptive)", 10, 22, 0),
            span(6, Some(5), "segment 0", 11, 15, 1),
            span(7, Some(5), "replan", 16, 17, 1),
            span(8, Some(5), "segment 1", 18, 21, 1),
        ],
        flight: vec![
            "CT 0: price < 40000 ^ make = \"BMW\"".to_string(),
            "[replan] splice at segment 1 (drift)".to_string(),
            "winner (cost 104.5): SP(...)".to_string(),
        ],
        metrics,
    }
}

/// The synthetic profile renders byte-identically to the golden on every
/// feature leg — the schema is feature-independent plain data.
#[test]
fn synthetic_profile_matches_golden() {
    let profile = synthetic_profile();
    validate(&profile.spans).expect("the synthetic span tree must be well-formed");
    let got = profile.to_json();
    if std::env::var_os("QUERY_PROFILE_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden query profile");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_query_profile.json missing — regenerate with QUERY_PROFILE_BLESS=1");
    assert_eq!(
        got, want,
        "QueryProfile JSON diverged from tests/golden_query_profile.json; if the schema \
         change is intentional, regenerate with QUERY_PROFILE_BLESS=1 cargo test -p \
         csqp-core --test query_profile (the golden must match on every feature leg)"
    );
}

/// Key order is part of the schema: consumers diff profiles textually.
#[test]
fn profile_key_order_is_pinned() {
    let json = synthetic_profile().to_json();
    let keys = [
        "\"id\"",
        "\"query\"",
        "\"scheme\"",
        "\"rows\"",
        "\"latency\"",
        "\"est_cost\"",
        "\"observed_cost\"",
        "\"splices\"",
        "\"drift_triggers\"",
        "\"breakers\"",
        "\"cardinalities\"",
        "\"spans\"",
        "\"flight\"",
        "\"metrics\"",
    ];
    let mut last = 0;
    for key in keys {
        let pos = json.find(key).unwrap_or_else(|| panic!("{key} missing from profile JSON"));
        assert!(pos > last, "{key} out of order in profile JSON");
        last = pos;
    }
}

/// An empty (default) profile still renders every section — "no data"
/// must be distinguishable from "schema changed".
#[test]
fn empty_profile_renders_every_section() {
    let json = QueryProfile::default().to_json();
    for key in ["\"breakers\": []", "\"cardinalities\": []", "\"spans\": []", "\"flight\": []"] {
        assert!(json.contains(key), "missing empty section {key} in {json}");
    }
    assert!(json.contains("\"latency\": null"));
}

mod live {
    use csqp_core::mediator::Mediator;
    use csqp_core::types::TargetQuery;
    use csqp_obs::span::validate;
    use csqp_obs::{FlightRecorder, Obs, QueryProfile};
    use csqp_relation::datagen;
    use csqp_source::{CostParams, Source};
    use csqp_ssdl::templates;
    use std::sync::Arc;

    fn profiled_mediator() -> Mediator {
        let source = Arc::new(Source::new(
            datagen::cars(3, 400),
            templates::car_dealer(),
            CostParams::default(),
        ));
        Mediator::new(source)
            .with_obs(Arc::new(Obs::new()))
            .with_flight_recorder(Arc::new(FlightRecorder::new()))
    }

    fn q() -> TargetQuery {
        TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap()
    }

    /// `run_profiled` fills the sections it promises; the span tree is
    /// well-formed; the capture is deterministic (two fresh mediators
    /// produce byte-identical documents modulo nothing — no wall clock is
    /// consulted outside serve mode).
    #[test]
    fn run_profiled_populates_and_replays() {
        let capture = || -> (QueryProfile, usize) {
            let m = profiled_mediator();
            let (out, profile) = m.run_profiled(&q()).unwrap();
            (profile, out.outcome.rows.len())
        };
        let (profile, rows) = capture();
        assert_eq!(profile.rows as usize, rows);
        assert_eq!(profile.scheme, "GenCompact");
        assert!(profile.est_cost > 0.0, "planner cost recorded");
        assert!(profile.observed_cost > 0.0, "observed cost recorded");
        assert!(!profile.cardinalities.is_empty(), "est-vs-observed rows recorded");
        validate(&profile.spans).expect("live span tree must be well-formed");
        let latency = profile.latency.expect("one-shot profiles carry a tick latency");
        assert_eq!(latency.wall_us, None, "wall clock stays quarantined outside serve mode");
        // Recording legs see spans/flight/metrics; the no-op leg sees the
        // same schema with those sections empty.
        #[cfg(feature = "obs")]
        {
            assert!(latency.ticks > 0);
            assert!(profile.spans.iter().any(|s| s.label == "plan"), "plan span present");
            assert!(!profile.flight.is_empty(), "flight trail replayed into the profile");
            assert!(
                profile.metrics.counter("profile.captured") >= 1,
                "capture counts itself in the metrics delta"
            );
            assert!(profile.metrics.counter("exec.source_queries") >= 1);
        }
        let (again, _) = capture();
        assert_eq!(profile.to_json(), again.to_json(), "capture must replay identically");
    }

    /// Without `--run` the profile covers planning only: no rows, no
    /// observed cost, but the plan span tree and flight trail are there.
    #[test]
    fn plan_profiled_covers_planning_only() {
        let m = profiled_mediator();
        let (planned, profile) = m.plan_profiled(&q()).unwrap();
        assert_eq!(profile.rows, 0);
        assert_eq!(profile.observed_cost, 0.0);
        assert_eq!(profile.est_cost, planned.est_cost);
        validate(&profile.spans).expect("plan-only span tree must be well-formed");
        #[cfg(feature = "obs")]
        {
            assert!(profile.spans.iter().any(|s| s.label == "plan"));
            assert!(profile.spans.iter().all(|s| s.label != "execute (analyzed)"));
            assert!(!profile.flight.is_empty());
        }
    }

    /// Back-to-back captures on one mediator stay attributed: the second
    /// profile's metrics delta does not double-count the first run.
    #[test]
    fn metrics_delta_is_per_query() {
        let m = profiled_mediator();
        let (_, first) = m.run_profiled(&q()).unwrap();
        let (_, second) = m.run_profiled(&q()).unwrap();
        assert_eq!(
            first.metrics.counter("exec.source_queries"),
            second.metrics.counter("exec.source_queries"),
            "the delta window must isolate each capture"
        );
        // The capture counter needs a live registry; the obs-off noop
        // registry snapshots empty (the delta equality above still holds:
        // both deltas are zero).
        #[cfg(feature = "obs")]
        {
            assert_eq!(first.metrics.counter("profile.captured"), 1);
            assert_eq!(second.metrics.counter("profile.captured"), 1);
        }
    }
}
