//! Fleet-telemetry suite: the `/status` health scoreboard, the audit
//! journal + `csqp audit --diff` analysis, and the windowed time series.
//!
//! The renderings are plain data (no feature gates), so the two goldens —
//! `tests/golden_status.txt` and `tests/golden_audit_diff.txt` — are
//! asserted byte-for-byte by **every** CI feature leg, exactly like the
//! chaos and query-profile goldens. Regenerate after an intentional
//! change with:
//!
//! ```sh
//! STATUS_BLESS=1     cargo test -p csqp-core --test telemetry_golden
//! AUDIT_DIFF_BLESS=1 cargo test -p csqp-core --test telemetry_golden
//! ```
//!
//! The obs-gated half drives a seeded chaos storm through a live
//! federation and asserts the scoreboard *reacts*: a breaker-open,
//! always-dark member must fall below the healthy threshold while a
//! reliable mirror stays above it.

use csqp_obs::audit::{self, AuditRecord, JournalWriter};
use csqp_obs::health::{self, Grade, SloConfig, DEGRADED_THRESHOLD, HEALTHY_THRESHOLD};
use csqp_obs::names;
use csqp_obs::MetricsSnapshot;

const STATUS_GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_status.txt");
const AUDIT_GOLDEN: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_audit_diff.txt");

// ---------------------------------------------------------------- status

/// One deterministic telemetry window, hand-built the way serve folds it:
/// three members in visibly different states plus the serve-level SLO
/// counters.
fn scoreboard_window() -> MetricsSnapshot {
    let mut w = MetricsSnapshot::default();
    let mut c = |name: String, v: u64| {
        w.counters.insert(name, v);
    };
    for (prefix, member, v) in [
        // alpha: high-volume and spotless.
        (names::MEMBER_QUERIES_PREFIX, "alpha", 40),
        (names::MEMBER_EST_COST_MILLI_PREFIX, "alpha", 40_000),
        (names::MEMBER_OBS_COST_MILLI_PREFIX, "alpha", 44_000),
        // beta: retrying hard, drifting, and 2.6x over its cost estimate.
        (names::MEMBER_QUERIES_PREFIX, "beta", 20),
        (names::MEMBER_RETRIES_PREFIX, "beta", 12),
        (names::MEMBER_SPLICES_PREFIX, "beta", 2),
        (names::MEMBER_DRIFT_PREFIX, "beta", 3),
        (names::MEMBER_EST_COST_MILLI_PREFIX, "beta", 10_000),
        (names::MEMBER_OBS_COST_MILLI_PREFIX, "beta", 26_000),
        // gamma: erroring with its breaker open.
        (names::MEMBER_QUERIES_PREFIX, "gamma", 10),
        (names::MEMBER_ERRORS_PREFIX, "gamma", 4),
        (names::BREAKER_OPENED_PREFIX, "gamma", 2),
    ] {
        c(format!("{prefix}{member}"), v);
    }
    c(names::SERVE_QUERIES.to_string(), 70);
    c(names::SERVE_ERRORS.to_string(), 4);
    c(names::SLO_LATENCY_BREACHES.to_string(), 2);
    w
}

/// Renders the scoreboard exactly the way `/status` does (worst member
/// first, live breaker state passed in, burn rates from the window).
fn render_scoreboard() -> String {
    let window = scoreboard_window();
    let slo = SloConfig { latency_objective_us: 100_000, error_budget: 0.01 };
    // Live breaker states: gamma's is open (2), the rest are closed (0).
    let mut reports: Vec<health::HealthReport> = [("alpha", 0u8), ("beta", 0), ("gamma", 2)]
        .iter()
        .map(|(m, state)| health::score(health::signals_from_window(&window, m, *state)))
        .collect();
    reports.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.signals.member.cmp(&b.signals.member))
    });
    let queries = window.counter(names::SERVE_QUERIES);
    let summary = health::StatusSummary {
        slo,
        error_burn: slo.burn_rate(window.counter(names::SERVE_ERRORS), queries),
        latency_burn: slo.burn_rate(window.counter(names::SLO_LATENCY_BREACHES), queries),
        queries,
        windows: 3,
        dropped: 1,
    };
    // Both renderings in one golden: the text page, then the JSON document.
    format!(
        "{}---\n{}\n",
        health::render_status_text(&summary, &reports),
        health::render_status_json(&summary, &reports)
    )
}

#[test]
fn golden_status_matches_across_feature_sets() {
    let got = render_scoreboard();
    if std::env::var_os("STATUS_BLESS").is_some() {
        std::fs::write(STATUS_GOLDEN, &got).expect("write golden status");
        return;
    }
    let want = std::fs::read_to_string(STATUS_GOLDEN)
        .expect("tests/golden_status.txt missing — regenerate with STATUS_BLESS=1");
    assert_eq!(
        got, want,
        "status rendering diverged from tests/golden_status.txt; if intentional, \
         regenerate with STATUS_BLESS=1 cargo test -p csqp-core --test telemetry_golden"
    );
}

#[test]
fn scoreboard_grades_follow_the_rubric() {
    let window = scoreboard_window();
    let alpha = health::score(health::signals_from_window(&window, "alpha", 0));
    let beta = health::score(health::signals_from_window(&window, "beta", 0));
    let gamma = health::score(health::signals_from_window(&window, "gamma", 2));
    assert_eq!(alpha.grade, Grade::Healthy, "spotless member must grade healthy: {alpha:?}");
    assert!(
        beta.score < HEALTHY_THRESHOLD && beta.score >= DEGRADED_THRESHOLD,
        "retry/drift/cost-band member must grade degraded: {beta:?}"
    );
    assert_eq!(beta.grade, Grade::Degraded);
    assert!(
        gamma.score < DEGRADED_THRESHOLD,
        "breaker-open erroring member must grade critical: {gamma:?}"
    );
    assert_eq!(gamma.grade, Grade::Critical);
}

// ----------------------------------------------------------------- audit

fn rec(id: u64, fp: &str, scheme: &str, status: &str, ticks: u64, rows: u64) -> AuditRecord {
    AuditRecord {
        id,
        fingerprint: fp.to_string(),
        query: format!("q{id}"),
        scheme: scheme.to_string(),
        status: status.to_string(),
        rows,
        // Quarantined latency: golden runs carry no wall clock, so the
        // diff ranks by virtual ticks (the LatencyKey fallback).
        wall_us: None,
        ticks,
        splices: u64::from(status == "ok" && id.is_multiple_of(3)),
        drift_triggers: u64::from(id.is_multiple_of(4)),
        breaker_events: u64::from(status != "ok"),
        capindex_candidates: 2,
        capindex_total: 3,
    }
}

/// Baseline run: GenCompact everywhere, one error, latencies around 400.
fn run_a() -> Vec<AuditRecord> {
    vec![
        rec(1, "fp-alpha", "GenCompact", "ok", 380, 12),
        rec(2, "fp-beta", "GenCompact", "ok", 420, 7),
        rec(3, "fp-gamma", "GenCompact", "ok", 500, 30),
        rec(4, "fp-delta", "GenCompact", "error", 900, 0),
        rec(5, "fp-alpha", "GenCompact", "ok", 390, 12),
        rec(6, "fp-beta", "GenCompact", "ok", 410, 7),
    ]
}

/// Candidate run: two fingerprints switched scheme, latencies dropped,
/// errors cleared, one fingerprint vanished and a new one appeared.
fn run_b() -> Vec<AuditRecord> {
    vec![
        rec(1, "fp-alpha", "GenCompact", "ok", 300, 12),
        rec(2, "fp-beta", "Cnf", "ok", 250, 7),
        rec(3, "fp-gamma", "Cnf", "ok", 310, 30),
        rec(5, "fp-alpha", "GenCompact", "ok", 290, 12),
        rec(6, "fp-beta", "Cnf", "ok", 260, 7),
        rec(7, "fp-epsilon", "GenCompact", "ok", 280, 4),
    ]
}

#[test]
fn golden_audit_diff_matches_across_feature_sets() {
    let a = audit::summarize(&run_a());
    let b = audit::summarize(&run_b());
    let got = format!("{}---\n{}", audit::render_summary("run_a", &a), audit::render_diff(&a, &b));
    if std::env::var_os("AUDIT_DIFF_BLESS").is_some() {
        std::fs::write(AUDIT_GOLDEN, &got).expect("write golden audit diff");
        return;
    }
    let want = std::fs::read_to_string(AUDIT_GOLDEN)
        .expect("tests/golden_audit_diff.txt missing — regenerate with AUDIT_DIFF_BLESS=1");
    assert_eq!(
        got, want,
        "audit diff diverged from tests/golden_audit_diff.txt; if intentional, \
         regenerate with AUDIT_DIFF_BLESS=1 cargo test -p csqp-core --test telemetry_golden"
    );
}

#[test]
fn audit_records_round_trip_through_jsonl() {
    for record in run_a().iter().chain(run_b().iter()) {
        let line = record.to_jsonl();
        let back = AuditRecord::parse(&line)
            .unwrap_or_else(|e| panic!("own rendering must parse ({e}): {line}"));
        assert_eq!(&back, record, "round-trip changed the record");
    }
}

/// Size rotation keeps total journal disk bounded by ~2x the cap no
/// matter how many records stream through, and every surviving line
/// still parses (single-write appends are never torn).
#[test]
fn journal_rotation_bounds_disk_and_stays_parseable() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("csqp_telemetry_golden_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("jsonl.1"));
    let max_bytes = 2_048u64;
    let mut writer = JournalWriter::open(&path, max_bytes).expect("open journal");
    let mut longest = 0u64;
    for i in 0..200u64 {
        let record =
            rec(i, "fp-rotate", "GenCompact", if i % 7 == 0 { "error" } else { "ok" }, 100 + i, i);
        longest = longest.max(record.to_jsonl().len() as u64 + 1);
        writer.append(&record).expect("append");
    }
    assert!(writer.rotations > 0, "200 records through a 2 KiB cap must rotate");
    assert_eq!(writer.records, 200);
    let rotated = writer.rotated_path();
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    let total = size(&path) + size(&rotated);
    assert!(
        total <= 2 * max_bytes + longest,
        "journal disk {total} exceeds bound {} (2x{max_bytes} cap + one record)",
        2 * max_bytes + longest
    );
    // Both generations parse cleanly end to end.
    for p in [&path, &rotated] {
        let (records, errors) = audit::read_journal(p).expect("journal readable");
        assert!(errors.is_empty(), "{}: torn/corrupt lines: {errors:?}", p.display());
        assert!(!records.is_empty(), "{}: rotation left an empty generation", p.display());
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&rotated);
}

// ----------------------------------------------- live federation (obs on)

/// Seeded chaos storm against a live federation: the scoreboard must
/// *react*. An always-dark cheap member accumulates errors until its
/// breaker opens and its score falls below the healthy threshold; the
/// reliable expensive mirror keeps serving and stays healthy.
#[cfg(feature = "obs")]
#[test]
fn chaos_storm_drives_dark_member_below_healthy() {
    use csqp_core::federation::{CircuitBreakerConfig, Federation};
    use csqp_core::types::TargetQuery;
    use csqp_expr::ValueType;
    use csqp_obs::Obs;
    use csqp_plan::exec::RetryPolicy;
    use csqp_relation::datagen;
    use csqp_source::{CostParams, FaultProfile, Source};
    use csqp_ssdl::templates;
    use std::sync::Arc;

    let data = datagen::cars(3, 400);
    // Cheap, attractive, and permanently dark: every attempt fails.
    let dark = Arc::new(
        Source::new(data.clone(), templates::car_dealer(), CostParams::new(10.0, 1.0))
            .with_fault_profile(FaultProfile::new(7).with_outage(0, u64::MAX)),
    );
    let dump = Arc::new(Source::new(
        data,
        templates::download_only(
            "dump",
            &[
                ("make", ValueType::Str),
                ("model", ValueType::Str),
                ("year", ValueType::Int),
                ("color", ValueType::Str),
                ("price", ValueType::Int),
            ],
        ),
        CostParams::new(200.0, 5.0),
    ));
    let obs = Arc::new(Obs::new());
    let federation = Federation::new()
        .with_member(dark)
        .with_member(dump)
        .with_breaker(CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 1_000 })
        .with_obs(obs);
    let policy = RetryPolicy { max_retries: 1, jitter_seed: 7, ..Default::default() };
    let query = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();
    for _ in 0..6 {
        // The dark dealer wins planning, dies, and the dump rescues the
        // answer — errors and breaker opens pile onto the dealer.
        federation.run_resilient(&query, &policy).expect("dump must rescue the answer");
    }
    let window = federation.metrics_snapshot();
    let states = federation.breaker_states();
    let state_of = |name: &str| {
        states
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.as_gauge() as u8)
            .unwrap_or_else(|| panic!("member {name} missing from breaker states"))
    };
    let dealer =
        health::score(health::signals_from_window(&window, "car_dealer", state_of("car_dealer")));
    let dump_report = health::score(health::signals_from_window(&window, "dump", state_of("dump")));
    assert!(
        dealer.signals.errors > 0,
        "dark member must accumulate windowed errors: {:?}",
        dealer.signals
    );
    assert!(
        dealer.score < HEALTHY_THRESHOLD,
        "breaker-open dark member must drop below healthy ({HEALTHY_THRESHOLD}): {dealer:?}"
    );
    assert!(
        dump_report.score >= HEALTHY_THRESHOLD,
        "reliable rescuer must stay healthy: {dump_report:?}"
    );
    assert!(
        dealer.score < dump_report.score,
        "scoreboard must rank the dark member below the reliable one"
    );
}

/// Windowed time series over a live registry: rolling cuts snapshot
/// deltas at the boundaries, rates come out of the closed windows, and
/// the ring stays capacity-bounded while counting evictions.
#[cfg(feature = "obs")]
#[test]
fn timeseries_windows_cut_live_registry_deltas() {
    use csqp_obs::{Obs, TimeSeries};

    let obs = Obs::new();
    let mut series = TimeSeries::new(4);
    for window in 0..6u64 {
        for _ in 0..=window {
            obs.metrics.inc(names::SERVE_QUERIES);
        }
        series.roll(obs.metrics.snapshot(), (window + 1) * 10, None);
    }
    // Capacity 4 retains windows 2..=5 (deltas 3,4,5,6) and drops two.
    assert_eq!(series.len(), 4);
    assert_eq!(series.dropped(), 2);
    let deltas: Vec<u64> =
        series.windows().map(|w| w.delta.counter(names::SERVE_QUERIES)).collect();
    assert_eq!(deltas, vec![3, 4, 5, 6], "each window holds exactly its own delta");
    assert_eq!(series.counter_over(names::SERVE_QUERIES, 2), 11, "last-2 fold");
    // Live delta: activity since the last boundary, not yet in any window.
    obs.metrics.add(names::SERVE_QUERIES, 5);
    let live = series.live_delta(&obs.metrics.snapshot());
    assert_eq!(live.counter(names::SERVE_QUERIES), 5);
    // The JSON rendering is schema-stable and carries the stamps.
    let json = series.render_json(names::SERVE_QUERIES, 2);
    assert!(json.contains("\"metric\": \"serve.queries\""), "{json}");
    assert!(json.contains("\"value\": 6"), "{json}");
}
