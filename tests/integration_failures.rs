//! Failure-path integration tests: the stack must fail *loudly and
//! accurately* — typed errors with context, truncation reported, no silent
//! wrong answers — when queries are unanswerable, plans are malformed, or
//! budgets bite.

use csqp::expr::rewrite::RewriteBudget;
use csqp::prelude::*;
use csqp_core::mediator::MediatorError;
use csqp_core::types::PlanError;
use csqp_core::Federation;
use csqp_plan::exec::{ExecError, RetryPolicy};
use csqp_source::{FaultProfile, SourceError};
use std::sync::Arc;

fn dealer() -> Arc<Source> {
    Arc::new(Source::new(
        csqp::relation::datagen::cars(3, 200),
        csqp::ssdl::templates::car_dealer(),
        CostParams::default(),
    ))
}

#[test]
fn unsupported_source_query_error_carries_context() {
    let s = dealer();
    let q = TargetQuery::parse("year = 1995", &["model"]).unwrap();
    let err = Mediator::new(s).plan(&q).unwrap_err();
    match err {
        PlanError::NoFeasiblePlan { query, scheme } => {
            assert!(query.contains("year = 1995"), "{query}");
            assert_eq!(scheme, "GenCompact");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn executor_surfaces_gate_rejections() {
    let s = dealer();
    // Hand-built plan whose source query the gate cannot accept in any
    // ordering (year is not a grammar token at all).
    let bad = Plan::source(Some(parse_condition("year = 1995").unwrap()), attrs(["model"]));
    match execute(&bad, &s) {
        Err(ExecError::Source(SourceError::Unsupported { source, condition, .. })) => {
            assert_eq!(source, "car_dealer");
            assert!(condition.contains("year"));
        }
        other => panic!("expected gate rejection, got {other:?}"),
    }
    assert_eq!(s.meter().rejected, 1, "rejections are metered");
}

#[test]
fn projection_beyond_exports_is_rejected_not_truncated() {
    let s = dealer();
    // s2 (make ^ color) exports {make, model, year} — price must NOT be
    // silently dropped or zero-filled.
    let plan = Plan::source(
        Some(parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap()),
        attrs(["model", "price"]),
    );
    assert!(matches!(execute(&plan, &s), Err(ExecError::Source(_))));
}

#[test]
fn empty_relation_is_not_an_error() {
    let schema =
        Schema::new("empty", vec![("k", ValueType::Int), ("a", ValueType::Int)], &["k"]).unwrap();
    let s = Arc::new(Source::new(
        Relation::empty(schema),
        csqp::ssdl::templates::full_relational(
            "empty",
            &[("k", ValueType::Int), ("a", ValueType::Int)],
        ),
        CostParams::default(),
    ));
    let q = TargetQuery::parse("a = 1", &["k"]).unwrap();
    let out = Mediator::new(s).run(&q).unwrap();
    assert!(out.rows.is_empty());
    assert_eq!(out.meter.tuples_shipped, 0);
}

#[test]
fn zero_selectivity_queries_return_empty_not_error() {
    let s = dealer();
    let q =
        TargetQuery::parse("make = \"NoSuchMake\" ^ price < 40000", &["model", "year"]).unwrap();
    let out = Mediator::new(s).run(&q).unwrap();
    assert!(out.rows.is_empty());
}

#[test]
fn genmodular_budget_exhaustion_is_reported_not_silent() {
    let s = dealer();
    let q =
        TargetQuery::parse("price < 40000 ^ color = \"red\" ^ make = \"BMW\"", &["model"]).unwrap();
    let tiny = GenModularConfig {
        rewrite_budget: RewriteBudget { max_cts: 3, max_atoms: 6, max_depth: 2 },
        ..Default::default()
    };
    let m = Mediator::new(s).with_scheme(Scheme::GenModular).with_modular_config(tiny);
    match m.plan(&q) {
        Ok(p) => assert!(p.report.truncated, "must confess incompleteness"),
        Err(PlanError::NoFeasiblePlan { .. }) => {} // honest failure
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn huge_fanout_truncates_with_download_fallback() {
    // 20-way disjunction exceeds IPG's default per-node cap only when
    // configured low; with a download rule the planner still succeeds and
    // reports truncation.
    let desc = parse_ssdl(
        "source wide {\n\
         s1 -> a = $int ;\n\
         s_dl -> true ;\n\
         attributes :: s1 : { k, a } ;\n\
         attributes :: s_dl : { k, a } ;\n}",
    )
    .unwrap();
    let schema =
        Schema::new("t", vec![("k", ValueType::Int), ("a", ValueType::Int)], &["k"]).unwrap();
    let rows: Vec<Vec<Value>> =
        (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i % 30)]).collect();
    let s = Arc::new(Source::new(Relation::from_rows(schema, rows), desc, CostParams::default()));
    let parts: Vec<String> = (0..20).map(|i| format!("a = {i}")).collect();
    let q = TargetQuery::parse(&parts.join(" _ "), &["k"]).unwrap();
    let cfg = GenCompactConfig {
        ipg: IpgConfig { max_children: 8, ..IpgConfig::default() },
        ..Default::default()
    };
    let m = Mediator::new(s.clone()).with_compact_config(cfg);
    let planned = m.plan(&q).expect("download fallback exists");
    assert!(planned.report.truncated, "fan-out cap must be confessed");
    // And the fallback plan is still exact.
    let out = m.run(&q).unwrap();
    let want = csqp::relation::ops::project(
        &csqp::relation::ops::select(s.relation(), Some(&q.cond)),
        &["k"],
    )
    .unwrap();
    assert_eq!(out.rows, want);
}

#[test]
fn degenerate_conditions_plan_fine() {
    let s = dealer();
    // Duplicate atoms, single-disjunct Or shapes after parsing, redundant
    // conjunction — all must plan and answer exactly.
    for cond in [
        "make = \"BMW\" ^ make = \"BMW\" ^ price < 40000",
        "(make = \"BMW\" _ make = \"BMW\") ^ price < 40000",
        "make = \"BMW\" ^ price < 40000 ^ price < 40000",
    ] {
        let q = TargetQuery::parse(cond, &["model"]).unwrap();
        let out = Mediator::new(s.clone()).run(&q).unwrap_or_else(|e| panic!("{cond}: {e}"));
        let want = csqp::relation::ops::project(
            &csqp::relation::ops::select(s.relation(), Some(&q.cond)),
            &["model"],
        )
        .unwrap();
        assert_eq!(out.rows, want, "{cond}");
    }
}

#[test]
fn contradictory_condition_returns_empty() {
    let s = dealer();
    let q = TargetQuery::parse("make = \"BMW\" ^ make = \"Toyota\" ^ price < 40000", &["model"])
        .unwrap();
    // GenCompact may or may not find this feasible (the 3-atom conjunction
    // isn't a form), but if it plans, the answer must be empty.
    if let Ok(out) = Mediator::new(s).run(&q) {
        assert!(out.rows.is_empty());
    }
}

#[test]
fn mediator_error_display_is_informative() {
    let s = dealer();
    let q = TargetQuery::parse("year = 1995", &["model"]).unwrap();
    let err = Mediator::new(s).run(&q).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("GenCompact"), "{text}");
    assert!(text.contains("no feasible plan"), "{text}");
}

/// Every `SourceError` variant renders its context (source name, condition,
/// ticks) — nothing collapses to an anonymous "error".
#[test]
fn source_error_display_covers_every_variant() {
    let cases: Vec<(SourceError, &[&str])> = vec![
        (
            SourceError::Unsupported {
                source: "s".into(),
                condition: "year = 1995".into(),
                attrs: vec!["model".into()],
            },
            &["`s`", "year = 1995", "model"],
        ),
        (SourceError::Schema("no attribute `x`".into()), &["schema", "no attribute `x`"]),
        (SourceError::Transient { source: "s".into() }, &["`s`", "transient"]),
        (SourceError::Timeout { source: "s".into(), ticks: 20 }, &["`s`", "timed out", "20"]),
        (SourceError::RateLimited { source: "s".into() }, &["`s`", "rate limited"]),
        (SourceError::Unavailable { source: "s".into() }, &["`s`", "unavailable"]),
    ];
    for (err, needles) in cases {
        let text = err.to_string();
        for needle in needles {
            assert!(text.contains(needle), "{err:?} -> {text:?} missing {needle:?}");
        }
        // Retryability partitions exactly: injected faults retry, planning
        // and schema failures never do.
        let injected = !matches!(err, SourceError::Unsupported { .. } | SourceError::Schema(_));
        assert_eq!(err.is_retryable(), injected, "{err:?}");
    }
}

/// Every `ExecError` variant renders its context.
#[test]
fn exec_error_display_covers_every_variant() {
    let cases: Vec<(ExecError, &[&str])> = vec![
        (
            ExecError::Source(SourceError::Transient { source: "s".into() }),
            &["source error", "transient"],
        ),
        (ExecError::Schema("bad projection".into()), &["schema", "bad projection"]),
        (ExecError::Unresolved, &["unresolved", "Choice"]),
        (ExecError::Malformed("empty Union child list".into()), &["malformed", "empty Union"]),
        (
            ExecError::Exhausted {
                source: "s".into(),
                attempts: 4,
                last: SourceError::RateLimited { source: "s".into() },
            },
            &["`s`", "exhausted", "4 attempts", "rate limited"],
        ),
        (ExecError::Deadline { used: 120, budget: 100 }, &["deadline", "120", "100"]),
    ];
    for (err, needles) in cases {
        let text = err.to_string();
        for needle in needles {
            assert!(text.contains(needle), "{err:?} -> {text:?} missing {needle:?}");
        }
    }
}

/// Every `PlanError` and `MediatorError` variant renders its context, and
/// the mediator wrapper adds no noise around the inner message.
#[test]
fn plan_and_mediator_error_display_cover_every_variant() {
    let no_plan = PlanError::NoFeasiblePlan {
        query: "SP(year = 1995, {model})".into(),
        scheme: "GenCompact",
    };
    let text = no_plan.to_string();
    assert!(text.contains("GenCompact") && text.contains("year = 1995"), "{text}");

    let malformed = PlanError::MalformedQuery("empty connective".into());
    let text = malformed.to_string();
    assert!(text.contains("malformed") && text.contains("empty connective"), "{text}");

    let wrapped_plan = MediatorError::Plan(no_plan);
    assert_eq!(
        wrapped_plan.to_string(),
        "GenCompact: no feasible plan for SP(year = 1995, {model})"
    );
    let inner = ExecError::Deadline { used: 7, budget: 5 };
    let wrapped_exec = MediatorError::Exec(ExecError::Deadline { used: 7, budget: 5 });
    assert_eq!(wrapped_exec.to_string(), inner.to_string());
}

/// The cheapest federation member plans fine but dies at execution: the
/// federation must fail over to the dearer mirror, confess the failover in
/// its trace, and still answer exactly.
#[test]
fn federation_fails_over_when_cheapest_member_dies_at_execution() {
    let data = csqp::relation::datagen::cars(3, 200);
    // Cheap, capable — and hard-down for every attempt.
    let dead_dealer = Arc::new(
        Source::new(data.clone(), csqp::ssdl::templates::car_dealer(), CostParams::new(10.0, 1.0))
            .with_fault_profile(FaultProfile::new(1).with_outage(0, u64::MAX)),
    );
    // Expensive but reliable full dump.
    let dump = Arc::new(Source::new(
        data,
        csqp::ssdl::templates::download_only(
            "dump",
            &[
                ("make", ValueType::Str),
                ("model", ValueType::Str),
                ("year", ValueType::Int),
                ("color", ValueType::Str),
                ("price", ValueType::Int),
            ],
        ),
        CostParams::new(200.0, 5.0),
    ));
    let f = Federation::new().with_member(dead_dealer).with_member(dump.clone());
    let q = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();

    let run = f.run_resilient(&q, &RetryPolicy::default()).unwrap();
    assert_eq!(run.source_name, "dump", "must fail over to the reliable mirror");
    assert!(run.resilience.failovers >= 1);
    assert!(
        run.trace.iter().any(|(name, e)| name == "car_dealer"
            && matches!(e, csqp_core::MemberEvent::ExecFailed(msg) if msg.contains("unavailable"))),
        "trace must confess the dealer's execution failure: {:?}",
        run.trace
    );
    let want = csqp::relation::ops::project(
        &csqp::relation::ops::select(dump.relation(), Some(&q.cond)),
        &["model", "year"],
    )
    .unwrap();
    assert_eq!(run.outcome.rows, want, "failed-over answer must still be exact");
}
