//! Property-based integration tests: random conditions exercised through
//! the whole stack (generation → SSDL Check → planning → execution), with
//! the direct-evaluation oracle as ground truth.

use csqp::expr::canonical::{canonicalize, is_canonical};
use csqp::expr::gen::{CondGen, CondGenConfig, GenAttr};
use csqp::expr::rewrite::{enumerate_compact, RewriteBudget};
use csqp::expr::semantics::prop_equivalent;
use csqp::prelude::*;
use csqp::relation::ops::{project, select};
use proptest::prelude::*;
use std::sync::Arc;

fn gen_attrs() -> Vec<GenAttr> {
    vec![GenAttr::ints("a", 0, 6, 1), GenAttr::ints("b", 0, 4, 1), GenAttr::ints("c", 0, 2, 1)]
}

fn random_condition(seed: u64, n_atoms: usize, depth: usize) -> CondTree {
    let mut g = CondGen::new(seed, gen_attrs());
    g.tree(&CondGenConfig { n_atoms, max_depth: depth, and_bias: 0.6, eq_bias: 0.8 })
}

/// A source with full relational capability over (k, a, b, c) — every
/// generated condition must be supported there.
fn full_source() -> Arc<Source> {
    let desc = csqp::ssdl::templates::full_relational(
        "full",
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
        ],
    );
    Arc::new(Source::new(test_relation(), desc, CostParams::new(10.0, 1.0)))
}

/// A limited source: conjunctive forms only on a/b, list on c.
fn limited_source() -> Arc<Source> {
    let desc = parse_ssdl(
        r#"
        source limited {
          s1 -> a = $int ;
          s2 -> a = $int ^ b = $int ;
          s3 -> b = $int ;
          s4 -> clist ;
          clist -> c = $int | c = $int _ clist ;
          attributes :: s1 : { k, a, b, c } ;
          attributes :: s2 : { k, a, b, c } ;
          attributes :: s3 : { k, b, c } ;
          attributes :: s4 : { k, c } ;
        }
        "#,
    )
    .unwrap();
    Arc::new(Source::new(test_relation(), desc, CostParams::new(10.0, 1.0)))
}

fn test_relation() -> Relation {
    let schema = Schema::new(
        "t",
        vec![
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
        ],
        &["k"],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..400i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i % 5), Value::Int(i % 3)])
        .collect();
    Relation::from_rows(schema, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-relational sources support every generated condition, and the
    /// pure pushdown equals the oracle.
    #[test]
    fn full_capability_supports_everything(seed in 0u64..10_000, n in 1usize..6) {
        let source = full_source();
        let cond = random_condition(seed, n, 3);
        let q = TargetQuery::new(cond.clone(), csqp_plan::attrs(["k"]));
        let mediator = Mediator::new(source.clone());
        let out = mediator.run(&q).expect("full capability plans everything");
        let want = project(&select(source.relation(), Some(&cond)), &["k"]).unwrap();
        prop_assert_eq!(out.rows, want);
    }

    /// On the limited source, whenever GenCompact finds a plan, executing it
    /// matches the oracle; and it never emits unsupported source queries.
    #[test]
    fn limited_capability_plans_are_sound(seed in 0u64..10_000, n in 1usize..6) {
        let source = limited_source();
        let cond = random_condition(seed, n, 3);
        let q = TargetQuery::new(cond.clone(), csqp_plan::attrs(["k"]));
        let mediator = Mediator::new(source.clone());
        if let Ok(out) = mediator.run(&q) {
            let want = project(&select(source.relation(), Some(&cond)), &["k"]).unwrap();
            prop_assert_eq!(out.rows, want);
            prop_assert_eq!(out.meter.rejected, 0);
        }
    }

    /// The GenCompact rewrite module only produces canonical, propositionally
    /// equivalent CTs.
    #[test]
    fn compact_rewrites_preserve_equivalence(seed in 0u64..10_000, n in 2usize..6) {
        let cond = random_condition(seed, n, 3);
        let result = enumerate_compact(&cond, RewriteBudget::compact());
        for ct in &result.cts {
            prop_assert!(is_canonical(ct), "{ct}");
            prop_assert_eq!(prop_equivalent(&cond, ct), Some(true), "{}", ct);
        }
    }

    /// Canonicalization is idempotent and equivalence-preserving on random
    /// trees.
    #[test]
    fn canonicalization_properties(seed in 0u64..10_000, n in 1usize..8) {
        let cond = random_condition(seed, n, 4);
        let canon = canonicalize(&cond);
        prop_assert!(is_canonical(&canon));
        prop_assert_eq!(canonicalize(&canon), canon.clone());
        prop_assert_eq!(prop_equivalent(&cond, &canon), Some(true));
    }

    /// Baseline plans, when feasible, are also exact (CNF and DNF must not
    /// return wrong answers, just possibly wasteful ones).
    #[test]
    fn baseline_plans_are_exact_when_feasible(seed in 0u64..5_000, n in 1usize..5) {
        let source = limited_source();
        let cond = random_condition(seed, n, 3);
        let q = TargetQuery::new(cond.clone(), csqp_plan::attrs(["k"]));
        let want = project(&select(source.relation(), Some(&cond)), &["k"]).unwrap();
        for scheme in [Scheme::Cnf, Scheme::Dnf, Scheme::Disco, Scheme::NaivePush] {
            let mediator = Mediator::new(source.clone()).with_scheme(scheme);
            if let Ok(out) = mediator.run(&q) {
                prop_assert_eq!(out.rows, want.clone(), "{} on {}", scheme, cond);
            }
        }
    }

    /// The §6.4 optimality theorem as a property: over RANDOM capability
    /// descriptions and small random queries, GenCompact is never costlier
    /// than exhaustive GenModular (budgets verified untruncated).
    #[test]
    fn gencompact_optimal_vs_exhaustive_genmodular(
        cap_seed in 0u64..2_000,
        q_seed in 0u64..10_000,
        n in 1usize..4,
    ) {
        use csqp::expr::rewrite::RewriteBudget;
        use csqp_bench::workload::{random_capability, exp_relation, CapabilityParams};
        let desc = random_capability(cap_seed, &CapabilityParams::default());
        let source = Arc::new(Source::new(
            exp_relation(cap_seed + 9, 300),
            desc,
            CostParams::new(25.0, 1.0),
        ));
        let cond = csqp_bench::workload::random_query(q_seed, n, 3);
        let q = TargetQuery::new(cond.clone(), csqp_plan::attrs(["k"]));
        let modular_cfg = GenModularConfig {
            rewrite_budget: RewriteBudget {
                max_cts: 60_000,
                max_atoms: cond.n_atoms() + 2,
                max_depth: 6,
            },
            ..Default::default()
        };
        let compact = Mediator::new(source.clone()).plan(&q);
        let modular = Mediator::new(source.clone())
            .with_scheme(Scheme::GenModular)
            .with_modular_config(modular_cfg)
            .plan(&q);
        match (compact, modular) {
            (Ok(c), Ok(m)) if !m.report.truncated => {
                prop_assert!(
                    c.est_cost <= m.est_cost + 1e-6,
                    "{}: compact {} vs modular {}\n  c: {}\n  m: {}",
                    cond, c.est_cost, m.est_cost, c.plan, m.plan
                );
            }
            // GenModular (budgeted) may miss plans GenCompact finds; the
            // reverse must never happen when GenModular is untruncated.
            (Err(_), Ok(m)) => {
                prop_assert!(m.report.truncated, "modular feasible, compact not: {}", cond);
            }
            _ => {}
        }
    }

    /// Whenever ANY baseline is feasible, GenCompact is feasible and at
    /// least as cheap (the paper's "larger space of plans" guarantee).
    #[test]
    fn gencompact_dominates_baselines(seed in 0u64..5_000, n in 1usize..5) {
        let source = limited_source();
        let cond = random_condition(seed, n, 3);
        let q = TargetQuery::new(cond.clone(), csqp_plan::attrs(["k"]));
        let gc = Mediator::new(source.clone())
            .with_cardinality(CardKind::Oracle)
            .plan(&q);
        for scheme in [Scheme::Cnf, Scheme::Dnf, Scheme::Disco, Scheme::NaivePush] {
            let base = Mediator::new(source.clone())
                .with_cardinality(CardKind::Oracle)
                .with_scheme(scheme)
                .plan(&q);
            if let Ok(b) = base {
                let g = gc.as_ref().expect("baseline feasible implies GenCompact feasible");
                prop_assert!(
                    g.est_cost <= b.est_cost + 1e-6,
                    "{}: GenCompact {} vs {} {} on {}",
                    scheme, g.est_cost, scheme, b.est_cost, cond
                );
            }
        }
    }
}
