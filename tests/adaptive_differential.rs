//! Differential property tests: adaptive execution against the
//! non-adaptive oracle.
//!
//! Over randomized conditions, projections, batch sizes, cardinality
//! assumptions, and fault seeds, [`Mediator::run_adaptive`] must return
//! exactly the answer of the plain (materialized) run — mid-query splices
//! deduplicate against already-emitted tuples, so re-planning can change
//! the *cost* of a run but never its answer set. When nothing drifts
//! (zero splices) the adaptive path must also preserve the serial stream's
//! emission order and transfer-meter delta. With the `adaptive` (or
//! `stream`) feature off the adaptive entry points delegate to the plain
//! engines and splices stay 0, so every property here holds trivially —
//! which is exactly why CI runs this suite on every feature leg.

use csqp_core::mediator::{AdaptiveConfig, CardKind, Mediator};
use csqp_core::types::TargetQuery;
use csqp_expr::gen::{CondGen, CondGenConfig, GenAttr};
use csqp_expr::{CondTree, Value, ValueType};
use csqp_plan::exec::RetryPolicy;
use csqp_plan::model::CostModel;
use csqp_plan::StreamConfig;
use csqp_relation::{Relation, Schema};
use csqp_source::{CostParams, FaultProfile, Source};
use csqp_ssdl::templates;
use proptest::prelude::*;
use std::sync::Arc;

fn gen_attrs() -> Vec<GenAttr> {
    vec![
        GenAttr::ints("a", 0, 5, 1),
        GenAttr::ints("b", 0, 3, 1),
        GenAttr::strings("c", &["s0", "s1", "s2"]),
    ]
}

fn cond(seed: u64, n: usize) -> CondTree {
    let mut g = CondGen::new(seed, gen_attrs());
    g.tree(&CondGenConfig { n_atoms: n, max_depth: 3, and_bias: 0.5, eq_bias: 0.7 })
}

fn query(seed: u64, n_atoms: usize) -> TargetQuery {
    let attrs = if seed.is_multiple_of(2) { ["k", "c"] } else { ["k", "a"] };
    TargetQuery::new(cond(seed, n_atoms), attrs.iter().map(|s| s.to_string()).collect())
}

fn full_source(seed: u64) -> Source {
    let schema = Schema::new(
        "t",
        vec![
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Str),
        ],
        &["k"],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..200i64)
        .map(|i| {
            let x = i.wrapping_mul(seed as i64 | 1);
            vec![
                Value::Int(i),
                Value::Int(x.rem_euclid(6)),
                Value::Int(x.rem_euclid(4)),
                Value::str(format!("s{}", x.rem_euclid(3))),
            ]
        })
        .collect();
    let desc = templates::full_relational(
        "full",
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Str),
        ],
    );
    Source::new(Relation::from_rows(schema, rows), desc, CostParams::new(10.0, 1.0))
}

fn adaptive_cfg(batch: usize, policy: Option<RetryPolicy>) -> AdaptiveConfig {
    AdaptiveConfig {
        stream: StreamConfig { batch_size: batch, ..StreamConfig::serial() },
        policy,
        ..Default::default()
    }
}

/// A deliberately perverse cost model: monotone *decreasing* in the true
/// charge, so the planner systematically prefers the worst sub-plans and
/// the drift controller has every reason to fire mid-query.
#[derive(Debug)]
struct InvertedCost(CostParams);

impl CostModel for InvertedCost {
    fn source_query_cost(&self, cond: Option<&CondTree>, n_attrs: usize, rows: f64) -> f64 {
        1.0e6 / (1.0 + self.0.source_query_cost(cond, n_attrs, rows))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adaptive execution is answer-preserving: whatever the drift
    /// controller does (including nothing), the result is set-identical to
    /// the materialized run; with zero splices, emission order and the
    /// transfer meter match the plain serial stream exactly.
    #[test]
    fn adaptive_run_matches_plain_run(
        seed in 1u64..50_000,
        query_seed in 0u64..100_000,
        n_atoms in 1usize..5,
        batch in 1usize..97,
        sel_idx in 0usize..4,
    ) {
        let sel = [0.005, 0.05, 0.3, 0.9][sel_idx];
        let q = query(query_seed, n_atoms);
        let source = Arc::new(full_source(seed));
        // A deliberately unreliable selectivity guess: low values
        // underestimate heavily, inviting upward drift.
        let med = Mediator::new(source).with_cardinality(CardKind::Uniform { atom_selectivity: sel });
        let want = med.run(&q).unwrap();
        let cfg = adaptive_cfg(batch, None);
        let got = med.run_adaptive(&q, &cfg).unwrap();
        prop_assert_eq!(&got.outcome.rows, &want.rows, "adaptive answer diverged (set)");
        prop_assert!(got.splices <= cfg.max_splices, "splice budget exceeded");
        prop_assert!(got.drift_triggers >= got.splices, "every splice needs a trigger");
        if got.splices == 0 {
            let plain = med.run_streamed(&q, &cfg.stream).unwrap();
            prop_assert_eq!(
                got.outcome.rows.tuples(), plain.outcome.rows.tuples(),
                "no-splice adaptive run changed the emission order"
            );
            prop_assert_eq!(got.outcome.meter, plain.outcome.meter, "meter deltas diverged");
        }
    }

    /// Even under an inverted cost model — the planner actively prefers
    /// expensive plans, so mid-query re-planning fires as often as it ever
    /// will — the answer stays set-identical and splices stay bounded.
    #[test]
    fn adaptive_run_survives_inverted_cost_estimates(
        seed in 1u64..50_000,
        query_seed in 0u64..100_000,
        n_atoms in 1usize..5,
        batch in 1usize..41,
    ) {
        let q = query(query_seed, n_atoms);
        let source = Arc::new(full_source(seed));
        let med = Mediator::new(source)
            .with_cost_model(Arc::new(InvertedCost(CostParams::new(10.0, 1.0))))
            .with_cardinality(CardKind::Uniform { atom_selectivity: 0.02 });
        let want = med.run(&q).unwrap();
        let cfg = adaptive_cfg(batch, None);
        let got = med.run_adaptive(&q, &cfg).unwrap();
        prop_assert_eq!(&got.outcome.rows, &want.rows, "inverted-cost adaptive answer diverged");
        prop_assert!(got.splices <= cfg.max_splices);
    }

    /// Seeded transient faults under the adaptive engine: per-batch
    /// retries absorb the noise and the answer still equals the fault-free
    /// oracle; with no splices, the meter shows no re-opened queries and
    /// no re-shipped tuples.
    #[test]
    fn adaptive_run_matches_oracle_under_faults(
        seed in 1u64..20_000,
        query_seed in 0u64..100_000,
        n_atoms in 1usize..4,
        fault_seed in 0u64..1_000,
        batch in 1usize..41,
    ) {
        let q = query(query_seed, n_atoms);
        let oracle = Arc::new(full_source(seed));
        let med_oracle = Mediator::new(oracle).with_cardinality(CardKind::Uniform { atom_selectivity: 0.05 });
        let want = med_oracle.run(&q).unwrap();

        let faulty = Arc::new(
            full_source(seed).with_fault_profile(FaultProfile::new(fault_seed).with_transient(0.3)),
        );
        let med = Mediator::new(faulty).with_cardinality(CardKind::Uniform { atom_selectivity: 0.05 });
        let policy = RetryPolicy { max_retries: 32, ..Default::default() };
        let got = med.run_adaptive(&q, &adaptive_cfg(batch, Some(policy))).unwrap();
        prop_assert_eq!(&got.outcome.rows, &want.rows, "faults corrupted the adaptive answer");
        if got.splices == 0 {
            prop_assert_eq!(
                got.outcome.meter.queries, want.meter.queries,
                "retries must not re-open source queries that succeeded"
            );
            prop_assert_eq!(
                got.outcome.meter.tuples_shipped, want.meter.tuples_shipped,
                "a faulted pull re-shipped (or dropped) tuples"
            );
        }
    }

    /// The sink-driven variant is the same computation: identical splice
    /// count and the concatenated batches hold exactly the accumulated
    /// run's rows.
    #[test]
    fn adaptive_each_streams_the_accumulated_answer(
        seed in 1u64..50_000,
        query_seed in 0u64..100_000,
        n_atoms in 1usize..4,
        batch in 1usize..41,
    ) {
        let q = query(query_seed, n_atoms);
        let source = Arc::new(full_source(seed));
        let med = Mediator::new(source).with_cardinality(CardKind::Uniform { atom_selectivity: 0.02 });
        let cfg = adaptive_cfg(batch, None);
        let accumulated = med.run_adaptive(&q, &cfg).unwrap();
        let mut streamed: Vec<String> = Vec::new();
        let each = med
            .run_adaptive_each(&q, &cfg, &mut |b| {
                streamed.extend(b.rows().map(|r| r.to_string()));
                true
            })
            .unwrap();
        prop_assert_eq!(each.splices, accumulated.splices, "splice count must be deterministic");
        let mut want: Vec<String> = accumulated.outcome.rows.rows().map(|r| r.to_string()).collect();
        want.sort();
        streamed.sort();
        prop_assert_eq!(streamed, want, "sink batches diverged from the accumulated relation");
    }
}
