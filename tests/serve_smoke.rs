//! Smoke test for `csqp serve`: a real server on an ephemeral port answers
//! `/healthz` and `/metrics` (valid Prometheus text carrying the planner
//! counters) *while* serving queries over both HTTP and the line protocol,
//! exposes per-query `EXPLAIN WHY` replays via `/flightrecorder`, and shuts
//! down cleanly — the library-level twin of the CI serve-mode smoke job.

use csqp::serve::{ServeConfig, Server};
use csqp_relation::datagen;
use csqp_source::{CostParams, Source};
use csqp_ssdl::templates;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect to serve");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut s = connect(addr);
    write!(s, "GET {path} HTTP/1.0\r\nHost: smoke\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    buf
}

fn line(addr: SocketAddr, cmd: &str) -> String {
    let mut s = connect(addr);
    writeln!(s, "{cmd}").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read reply");
    buf
}

#[test]
fn serve_smoke() {
    let source = Arc::new(Source::new(
        datagen::cars(3, 400),
        templates::car_dealer(),
        CostParams::default(),
    ));
    let mut server = Server::bind(source, ServeConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let obs_on = server.mediator().obs().enabled();
    let handle = std::thread::spawn(move || server.run());

    // Health while idle.
    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    // A query over HTTP (urlencoded condition).
    let q = http_get(
        addr,
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year",
    );
    assert!(q.starts_with("HTTP/1.0 200"), "{q}");
    assert!(q.contains("rows (est cost"), "{q}");

    // The same query over the line protocol, plus ping and why.
    assert_eq!(line(addr, "ping"), "pong\n");
    let lp = line(addr, "query model,year make = \"Toyota\" ^ price < 30000");
    assert!(lp.starts_with("OK\n"), "{lp}");
    let why = line(addr, "why");
    if obs_on {
        assert!(why.contains("EXPLAIN WHY"), "{why}");
        assert!(why.contains("winner (cost"), "{why}");
    } else {
        assert!(why.contains("flight recorder disabled"), "{why}");
    }

    // A bad query is a 400, not a crash.
    let bad = http_get(addr, "/query?cond=make%20%3D&attrs=model");
    assert!(bad.starts_with("HTTP/1.0 400"), "{bad}");

    // /metrics scrapes while the mediator is warm: Prometheus text with the
    // planner counters the acceptance criteria name and the serve-mode
    // wall-clock series.
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
    if obs_on {
        for series in [
            "csqp_planner_pruned_pr3",
            "csqp_planner_check_calls",
            "csqp_serve_queries_total",
            "csqp_serve_requests_total",
            "csqp_serve_latency_us_bucket",
        ] {
            assert!(metrics.contains(series), "{series} missing from scrape:\n{metrics}");
        }
        assert!(metrics.contains("# TYPE"), "{metrics}");

        // Flight recorder: index plus a per-query EXPLAIN WHY replay.
        let index = http_get(addr, "/flightrecorder");
        assert!(index.contains("recorded flights"), "{index}");
        let replay = http_get(addr, "/flightrecorder?query=0");
        assert!(replay.contains("EXPLAIN WHY — flight #0"), "{replay}");
        let missing = http_get(addr, "/flightrecorder?query=9999");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    // Unknown routes 404; unknown line commands error without killing the
    // server.
    assert!(http_get(addr, "/nope").starts_with("HTTP/1.0 404"));
    assert!(line(addr, "frobnicate").starts_with("ERR"));

    // Still healthy after the error traffic, then a clean shutdown.
    assert!(http_get(addr, "/healthz").ends_with("ok\n"));
    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");
}
