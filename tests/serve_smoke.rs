//! Smoke test for `csqp serve`: a real server on an ephemeral port answers
//! `/healthz` and `/metrics` (valid Prometheus text carrying the planner
//! counters) *while* serving queries over both HTTP and the line protocol,
//! exposes per-query `EXPLAIN WHY` replays via `/flightrecorder`, and shuts
//! down cleanly — the library-level twin of the CI serve-mode smoke job.

use csqp::serve::{ServeConfig, Server};
use csqp_relation::datagen;
use csqp_source::{CostParams, Source};
use csqp_ssdl::templates;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect to serve");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut s = connect(addr);
    write!(s, "GET {path} HTTP/1.0\r\nHost: smoke\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    buf
}

/// Whether the scraped `/metrics` body came from an obs-enabled build (a
/// disabled registry scrapes empty, with no `# TYPE` lines at all).
fn server_obs_enabled(metrics: &str) -> bool {
    metrics.contains("# TYPE")
}

fn line(addr: SocketAddr, cmd: &str) -> String {
    let mut s = connect(addr);
    writeln!(s, "{cmd}").unwrap();
    // The line protocol is pipelined (the server keeps reading commands),
    // so signal end-of-input before reading the reply to EOF.
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read reply");
    buf
}

#[test]
fn serve_smoke() {
    let source = Arc::new(Source::new(
        datagen::cars(3, 400),
        templates::car_dealer(),
        CostParams::default(),
    ));
    let server = Server::bind(source, ServeConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let obs_on = server.mediator().obs().enabled();
    let handle = std::thread::spawn(move || server.run());

    // Health while idle.
    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    // A query over HTTP (urlencoded condition).
    let q = http_get(
        addr,
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year",
    );
    assert!(q.starts_with("HTTP/1.1 200"), "{q}");
    assert!(q.contains("rows (est cost"), "{q}");

    // The same query over the line protocol, plus ping and why.
    assert_eq!(line(addr, "ping"), "pong\n");
    let lp = line(addr, "query model,year make = \"Toyota\" ^ price < 30000");
    assert!(lp.starts_with("OK\n"), "{lp}");
    let why = line(addr, "why");
    if obs_on {
        assert!(why.contains("EXPLAIN WHY"), "{why}");
        assert!(why.contains("winner (cost"), "{why}");
    } else {
        assert!(why.contains("flight recorder disabled"), "{why}");
    }

    // Rows stream incrementally with the summary as a trailer: the body is
    // row lines followed by the "N rows (est cost …)" line. The trailer
    // carries the capability-index decision (single-member federation: one
    // candidate of one member).
    let body = q.split("\r\n\r\n").nth(1).expect("response has a body");
    let lines: Vec<&str> = body.lines().collect();
    let trailer = lines.last().unwrap();
    assert!(trailer.contains("rows (est cost"), "summary is the trailer: {body}");
    assert!(trailer.contains("capindex 1/1 candidates"), "index decision in trailer: {trailer}");
    // Adaptive serve mode reports its splice count, the prepared-plan
    // cache decision, the tenant, and the live breaker state of every
    // member in the trailer.
    assert!(trailer.contains(" replans, plan cache "), "adaptive trailer fields: {trailer}");
    assert!(trailer.contains(", tenant anon, breakers ["), "tenant in trailer: {trailer}");
    assert!(trailer.contains("car_dealer:closed"), "live breaker state in trailer: {trailer}");
    let n: usize = trailer.split(' ').next().unwrap().parse().expect("row count leads the trailer");
    assert_eq!(lines.len() - 1, n, "one line per row plus the trailer: {body}");

    // limit=1 terminates the stream early: exactly one row plus the trailer,
    // and the trailer reports the limited count.
    let limited = http_get(
        addr,
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year&limit=1",
    );
    assert!(limited.starts_with("HTTP/1.1 200"), "{limited}");
    let body = limited.split("\r\n\r\n").nth(1).expect("limited response has a body");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2, "one row + one trailer: {body}");
    assert!(lines[1].starts_with("1 rows (est cost"), "{body}");

    // limit=0: no rows, just the trailer.
    let zero = http_get(
        addr,
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year&limit=0",
    );
    assert!(zero.starts_with("HTTP/1.1 200"), "{zero}");
    assert!(zero.contains("0 rows (est cost"), "{zero}");

    // A malformed limit is a 400, not a crash.
    let bad_limit = http_get(
        addr,
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model&limit=nope",
    );
    assert!(bad_limit.starts_with("HTTP/1.1 400"), "{bad_limit}");
    assert!(bad_limit.contains("limit must be"), "{bad_limit}");

    // A bad query is a 400, not a crash.
    let bad = http_get(addr, "/query?cond=make%20%3D&attrs=model");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

    // /metrics scrapes while the mediator is warm: Prometheus text with the
    // planner counters the acceptance criteria name and the serve-mode
    // wall-clock series.
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    if obs_on {
        for series in [
            "csqp_planner_pruned_pr3",
            "csqp_planner_check_calls",
            "csqp_serve_queries_total",
            "csqp_serve_requests_total",
            "csqp_serve_latency_us_bucket",
            // Serve routes every query through the federation's compiled
            // capability index, so the scrape carries its counters too.
            "csqp_capindex_candidates_total",
            "csqp_capindex_pruned_total",
            "csqp_capindex_build_ticks_total",
            // Live per-member breaker health (closed=0 / half-open=1 /
            // open=2), refreshed on every scrape and rendered as one
            // labeled family.
            "csqp_breaker_state{member=\"car_dealer\"} 0.0",
        ] {
            assert!(metrics.contains(series), "{series} missing from scrape:\n{metrics}");
        }
        assert!(metrics.contains("# TYPE"), "{metrics}");

        // Flight recorder: index plus a per-query EXPLAIN WHY replay.
        let index = http_get(addr, "/flightrecorder");
        assert!(index.contains("recorded flights"), "{index}");
        let replay = http_get(addr, "/flightrecorder?query=0");
        assert!(replay.contains("EXPLAIN WHY — flight #0"), "{replay}");
        let missing = http_get(addr, "/flightrecorder?query=9999");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }

    // The query black box over HTTP: span tree, worst-N profile ring and
    // the slow-query log. Profiles are plain data, so the ring retains
    // queries even in builds with `obs` compiled out; only the span tree
    // and exemplars need the tracer/registry.
    let spans = http_get(addr, "/spans");
    if obs_on {
        assert!(spans.contains("federation plan"), "serve queries open spans: {spans}");
        assert!(spans.contains("execute (adaptive)"), "execution spans render: {spans}");
    } else {
        assert!(spans.contains("no spans recorded"), "{spans}");
    }
    let profiles = http_get(addr, "/profile");
    assert!(profiles.contains("worst retained profiles"), "{profiles}");
    let profile = http_get(addr, "/profile/0");
    assert!(profile.starts_with("HTTP/1.1 200"), "{profile}");
    assert!(profile.contains("application/json"), "profiles serve as JSON: {profile}");
    for key in ["\"id\"", "\"latency\"", "\"breakers\"", "\"spans\"", "\"metrics\""] {
        assert!(profile.contains(key), "{key} missing from profile:\n{profile}");
    }
    let missing = http_get(addr, "/profile/9999");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    // Demo queries stay under the default slow threshold: the log is
    // reachable and empty.
    let slowlog = http_get(addr, "/slowlog");
    assert!(slowlog.starts_with("HTTP/1.1 200"), "{slowlog}");
    assert!(slowlog.contains("no queries slower than"), "{slowlog}");
    // `?exemplars=1` upgrades latency buckets with query-id exemplars that
    // link straight back to `/profile/<id>`.
    if obs_on {
        let ex = http_get(addr, "/metrics?exemplars=1");
        assert!(ex.contains("query_id="), "exemplar suffix present:\n{ex}");
    }

    // The fleet view: /status scores every member from windowed telemetry
    // (schema-stable on every build — obs-off just sees empty signals), and
    // /timeseries exposes the windowed deltas of one metric as JSON.
    let status = http_get(addr, "/status");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(status.contains("csqp serve status"), "{status}");
    assert!(status.contains("slo: latency objective"), "{status}");
    assert!(status.contains("car_dealer"), "every member appears on the scoreboard: {status}");
    let status_json = http_get(addr, "/status?format=json");
    assert!(status_json.contains("application/json"), "{status_json}");
    for key in ["\"slo\"", "\"sources\"", "\"member\"", "\"score\"", "\"grade\""] {
        assert!(status_json.contains(key), "{key} missing from /status json:\n{status_json}");
    }
    let ts = http_get(addr, "/timeseries?metric=serve.queries");
    assert!(ts.starts_with("HTTP/1.1 200"), "{ts}");
    assert!(ts.contains("\"metric\": \"serve.queries\""), "{ts}");
    assert!(ts.contains("\"windows\""), "{ts}");
    let ts_missing = http_get(addr, "/timeseries");
    assert!(ts_missing.starts_with("HTTP/1.1 400"), "metric param is required: {ts_missing}");

    // Unknown routes 404; unknown line commands error without killing the
    // server.
    assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"));
    assert!(line(addr, "frobnicate").starts_with("ERR"));

    // Still healthy after the error traffic, then a clean shutdown.
    assert!(http_get(addr, "/healthz").ends_with("ok\n"));
    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");
}

/// Federated serve: two members behind one listener. The compiled
/// capability index prunes the member that cannot export the projection
/// before any planning happens, and the trailer reports the decision.
#[test]
fn serve_federation_routes_and_prunes() {
    let dealer = Arc::new(Source::new(
        datagen::cars(3, 400),
        templates::car_dealer(),
        CostParams::default(),
    ));
    // Exports only make/color: pruned by the index (rule 1) for any query
    // projecting model/year.
    let colors = Arc::new(Source::new(
        datagen::cars(3, 400),
        csqp_ssdl::parse_ssdl(
            "source colors {\n  s1 -> color = $str ;\n  attributes :: s1 : { make, color } ;\n}",
        )
        .expect("colors SSDL parses"),
        CostParams::default(),
    ));
    let server = Server::bind_federation(vec![dealer, colors], ServeConfig::default())
        .expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run());

    let q = http_get(
        addr,
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year",
    );
    assert!(q.starts_with("HTTP/1.1 200"), "{q}");
    assert!(q.contains("rows (est cost"), "{q}");
    assert!(q.contains("capindex 1/2 candidates"), "colors member is index-pruned: {q}");
    // No drift on the demo data: the adaptive path serves without a splice,
    // and both members' breakers scrape as closed.
    assert!(q.contains("0 replans"), "{q}");
    assert!(q.contains("breakers [car_dealer:closed colors:closed]"), "{q}");
    let metrics = http_get(addr, "/metrics");
    if server_obs_enabled(&metrics) {
        assert!(metrics.contains("csqp_breaker_state{member=\"colors\"} 0.0"), "{metrics}");
        // One HELP/TYPE block covers both members of the labeled family.
        assert_eq!(metrics.matches("# TYPE csqp_breaker_state gauge").count(), 1, "{metrics}");
    }

    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");
}

/// Concurrent hammer: several clients interleave `/query`, `/metrics`,
/// `/status`, and `/timeseries` traffic against one server with the audit
/// journal armed and a tight window size, so windows roll mid-storm.
/// Afterwards the telemetry must be coherent: every health score in
/// [0, 100], windowed deltas parse as non-negative integers, and the
/// journal replays with zero torn or corrupt lines.
#[test]
fn serve_hammer_keeps_telemetry_coherent() {
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("csqp-serve-hammer-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let dealer = Arc::new(Source::new(
        datagen::cars(3, 400),
        templates::car_dealer(),
        CostParams::default(),
    ));
    let cfg = ServeConfig {
        journal_path: Some(journal.to_str().unwrap().to_string()),
        window_queries: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind_federation(vec![dealer], cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run());

    let paths = [
        "/query?cond=make%20%3D%20%22BMW%22%20%5E%20price%20%3C%2040000&attrs=model,year",
        "/metrics",
        "/status",
        "/timeseries?metric=serve.queries",
        "/query?cond=make%20%3D%20%22Toyota%22%20%5E%20price%20%3C%2030000&attrs=model,year",
        "/status?format=json",
    ];
    let mut clients = Vec::new();
    for t in 0..4usize {
        let handle = std::thread::spawn(move || {
            let mut queries = 0u64;
            for round in 0..6usize {
                let path = paths[(t + round) % paths.len()];
                let resp = http_get(addr, path);
                assert!(resp.starts_with("HTTP/1.1 200"), "hammer {t}/{round} {path}: {resp}");
                queries += u64::from(path.starts_with("/query"));
            }
            queries
        });
        clients.push(handle);
    }
    let queries_sent: u64 = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
    assert!(queries_sent > 0, "the mix must include queries");

    // Scores stay in [0, 100] under interleaved load.
    let status_json = http_get(addr, "/status?format=json");
    let mut scores = 0usize;
    for part in status_json.split("\"score\": ").skip(1) {
        let score: f64 = part
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("score parses ({e}): {status_json}"));
        assert!((0.0..=100.0).contains(&score), "score out of range: {status_json}");
        scores += 1;
    }
    assert!(scores > 0, "scoreboard renders every member: {status_json}");

    // Windowed deltas are non-negative integers that sum to at most the
    // queries sent (the live window holds the remainder).
    let ts = http_get(addr, "/timeseries?metric=serve.queries");
    let mut windowed = 0u64;
    for part in ts.split("\"value\": ").skip(1) {
        let raw = part.split([',', '\n', '}']).next().unwrap().trim();
        if raw == "null" {
            continue;
        }
        windowed += raw.parse::<u64>().unwrap_or_else(|e| panic!("delta parses ({e}): {ts}"));
    }
    assert!(windowed <= queries_sent, "windows cannot hold more than was sent: {ts}");

    let bye = http_get(addr, "/shutdown");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread").expect("accept loop exits cleanly");

    // The journal replays cleanly: one record per served query, no torn
    // lines, every record status "ok".
    let (records, errors) = csqp_obs::audit::read_journal(&journal).expect("journal readable");
    assert!(errors.is_empty(), "torn/corrupt journal lines: {errors:?}");
    assert_eq!(records.len() as u64, queries_sent, "one audit record per served query");
    assert!(records.iter().all(|r| r.status == "ok"), "{records:?}");
    let _ = std::fs::remove_file(&journal);
}

/// The CLI twin of the serve-mode `limit=` coverage: `--run --limit N`
/// streams the execution and stops after N answer rows.
#[test]
fn cli_limit_flag() {
    let dir = std::env::temp_dir().join(format!("csqp-cli-limit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ssdl = dir.join("dealer.ssdl");
    let csv = dir.join("cars.csv");
    std::fs::write(
        &ssdl,
        "source dealer {\n  s1 -> make = $str ^ price <= $int ;\n  \
         attributes :: s1 : { make, model, year, price } ;\n}\n",
    )
    .unwrap();
    std::fs::write(
        &csv,
        "vin,make,model,year,price\n\
         1,BMW,330i,2020,39000\n\
         2,BMW,X5,2021,61000\n\
         3,Toyota,Camry,2019,24000\n\
         4,BMW,320i,2018,28000\n",
    )
    .unwrap();
    let run = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_csqp"));
        cmd.args([
            "--ssdl",
            ssdl.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--key",
            "vin",
            "--query",
            "make = \"BMW\" ^ price <= 40000",
            "--attrs",
            "model,year",
            "--run",
        ]);
        cmd.args(extra);
        cmd.output().expect("run csqp binary")
    };

    let full = run(&[]);
    assert!(full.status.success(), "{}", String::from_utf8_lossy(&full.stderr));
    let full_stdout = String::from_utf8_lossy(&full.stdout).into_owned();
    assert!(full_stdout.contains("2 rows ("), "both matching cars print:\n{full_stdout}");

    let limited = run(&["--limit", "1"]);
    assert!(limited.status.success(), "{}", String::from_utf8_lossy(&limited.stderr));
    let limited_stdout = String::from_utf8_lossy(&limited.stdout).into_owned();
    assert!(
        limited_stdout.contains("1 rows ("),
        "the stream stops at the limit:\n{limited_stdout}"
    );

    // --limit with --explain renders EXPLAIN ANALYZE with the streaming
    // memory footer.
    let analyzed = run(&["--limit", "1", "--explain"]);
    assert!(analyzed.status.success(), "{}", String::from_utf8_lossy(&analyzed.stderr));
    let analyzed_stdout = String::from_utf8_lossy(&analyzed.stdout).into_owned();
    assert!(analyzed_stdout.contains("peak resident"), "{analyzed_stdout}");

    // --limit without --run is a usage error.
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_csqp"));
    cmd.args([
        "--ssdl",
        ssdl.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
        "--query",
        "make = \"BMW\"",
        "--attrs",
        "model",
        "--limit",
        "1",
    ]);
    let out = cmd.output().expect("run csqp binary");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--limit only applies with --run"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
