//! Prepared-plan cache differential: cached-plan answers ≡ cold-planned
//! answers.
//!
//! [`Federation::prepare`] may answer a query from the prepared-plan cache
//! by rebinding the incoming constants into a plan built for an earlier
//! query of the same *shape*. The promise pinned here is capability-cache
//! transparency: for any sequence of feasible queries, executing the
//! prepared plan returns exactly the rows that planning the query cold
//! would have returned — hits, misses and rejects alike. The suite runs on
//! every CI feature leg (streaming off delegates to materialized execution
//! behind the same entry points), so the parity holds in every build.
//!
//! The deterministic tests additionally pin the soundness gate for
//! const-literal grammars: a cached plan whose winner's grammar hardwires a
//! constant (`make = "BMW" ^ price < $int`) must be *rejected* — not
//! served — when the incoming constants change what the source can check,
//! and the query must fall back to a cold plan with correct answers.

use csqp_core::federation::Federation;
use csqp_core::mediator::Mediator;
use csqp_core::plancache::{CacheDecision, PlanCache};
use csqp_core::types::{PlannedQuery, TargetQuery};
use csqp_plan::StreamConfig;
use csqp_relation::datagen;
use csqp_source::{CostParams, Source};
use csqp_ssdl::{parse_ssdl, templates};
use proptest::prelude::*;
use std::sync::Arc;

/// Three capability-limited mirrors over the same car data: two full
/// car-dealer grammars at different cost points, plus a cheap source whose
/// grammar hardwires `make = "BMW"` — the const-literal member that forces
/// the cache's revalidation gate to earn its keep.
fn members() -> Vec<Arc<Source>> {
    let data = || datagen::cars(3, 400);
    let dealer = Arc::new(Source::new(data(), templates::car_dealer(), CostParams::new(10.0, 1.0)));
    let mirror = Arc::new(Source::new(data(), templates::car_dealer(), CostParams::new(50.0, 1.0)));
    let bmw_only = Arc::new(Source::new(
        data(),
        parse_ssdl(
            "source bmw_only {\n  s1 -> make = \"BMW\" ^ price < $int ;\n  \
             attributes :: s1 : { make, model, year, color, price } ;\n}",
        )
        .expect("bmw_only SSDL parses"),
        CostParams::new(1.0, 1.0),
    ));
    vec![dealer, mirror, bmw_only]
}

struct Rig {
    federation: Federation,
    mediators: Vec<Mediator>,
    cache: Arc<PlanCache>,
}

fn rig(with_cache: bool) -> Rig {
    let members = members();
    let cache = Arc::new(PlanCache::new());
    let mut federation = members.iter().fold(Federation::new(), |f, m| f.with_member(m.clone()));
    if with_cache {
        federation = federation.with_plan_cache(cache.clone());
    }
    let mediators = members.iter().map(|m| Mediator::new(m.clone())).collect();
    Rig { federation, mediators, cache }
}

/// Executes a planned query on `member`'s warm mediator and returns the
/// sorted row renderings — the byte-comparable answer.
fn rows_of(rig: &Rig, member: usize, planned: PlannedQuery) -> Vec<String> {
    let mut rows = Vec::new();
    rig.mediators[member]
        .run_streamed_each_planned(planned, &StreamConfig::default(), &mut |batch| {
            for row in batch.rows() {
                rows.push(row.to_string());
            }
            true
        })
        .expect("planned execution succeeds");
    rows.sort();
    rows
}

/// Plans `q` cold (no cache) and returns its sorted answer.
fn cold_answer(cold: &Rig, q: &TargetQuery) -> Vec<String> {
    let fp = cold.federation.plan(q).expect("cold plan succeeds");
    let member = cold
        .federation
        .members()
        .iter()
        .position(|m| Arc::ptr_eq(m, &fp.source))
        .expect("cold winner is a member");
    rows_of(cold, member, fp.planned)
}

fn q(cond: &str, attrs: &[&str]) -> TargetQuery {
    TargetQuery::parse(cond, attrs).unwrap_or_else(|e| panic!("bad query {cond:?}: {e}"))
}

const MAKES: &[&str] = &["BMW", "Toyota", "Honda", "Ford"];
const COLORS: &[&str] = &["red", "black", "blue", "white"];

/// Decodes one sampled seed into a query: a shape family plus the
/// constants bound into its slots (the vendored proptest shim samples
/// integer ranges only, so composite inputs decode from a `u64`). Families
/// share shapes across instances, so a sequence of these drives hits,
/// rejects and misses through the cache.
fn decode(seed: u64) -> TargetQuery {
    let make = MAKES[(seed % MAKES.len() as u64) as usize];
    let make2 = MAKES[((seed >> 3) % MAKES.len() as u64) as usize];
    let color = COLORS[((seed >> 6) % COLORS.len() as u64) as usize];
    let price = 9_000 + ((seed >> 9) % 81_000) as i64;
    let cond = match (seed >> 28) % 3 {
        0 => format!("make = \"{make}\" ^ price < {price}"),
        1 => format!(
            "(make = \"{make}\" ^ price < {price}) _ (make = \"{make2}\" ^ color = \"{color}\")"
        ),
        _ => format!("make = \"{make}\" ^ color = \"{color}\""),
    };
    let attrs: &[&str] = if (seed >> 31) & 1 == 1 { &["model"] } else { &["model", "year"] };
    q(&cond, attrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any query sequence, the prepared path (cache hits, rebinds,
    /// rejects and cold fallbacks interleaved) answers byte-identically to
    /// planning every query cold.
    #[test]
    fn prepared_answers_match_cold_planned(seeds in proptest::collection::vec(0u64..u64::MAX, 1..10)) {
        let cached = rig(true);
        let cold = rig(false);
        for &seed in &seeds {
            let query = decode(seed);
            let prepared = cached.federation.prepare(&query).expect("prepare succeeds");
            let got = rows_of(&cached, prepared.member, prepared.planned);
            let want = cold_answer(&cold, &query);
            prop_assert_eq!(&got, &want, "cached-path answer diverged for {}", query);
        }
        // Coherence: every prepare was accounted as exactly one of
        // hit/miss/reject (the cache is installed, so never a bypass).
        let stats = cached.cache.stats();
        prop_assert_eq!(stats.hits + stats.misses + stats.rejected, seeds.len() as u64);
    }
}

/// Repeat shapes hit: the second query of a shape family skips planning,
/// rebinds the constants, and still answers exactly like a cold plan.
#[test]
fn same_shape_second_query_hits_and_matches_cold() {
    let cached = rig(true);
    let cold = rig(false);
    // Toyota first so the const-literal BMW member is infeasible and the
    // cached winner is a full-grammar dealer.
    let first = q("make = \"Toyota\" ^ price < 30000", &["model", "year"]);
    let second = q("make = \"Honda\" ^ price < 20000", &["model", "year"]);
    let p1 = cached.federation.prepare(&first).expect("first prepare");
    assert!(matches!(p1.decision, CacheDecision::Miss), "cold cache misses first");
    assert_eq!(rows_of(&cached, p1.member, p1.planned), cold_answer(&cold, &first));
    let p2 = cached.federation.prepare(&second).expect("second prepare");
    assert!(matches!(p2.decision, CacheDecision::Hit), "same shape hits: {:?}", p2.decision);
    assert!(p2.considered.is_empty(), "a hit skips the planner fan-out");
    assert_eq!(rows_of(&cached, p2.member, p2.planned), cold_answer(&cold, &second));
    assert_eq!(cached.cache.stats().hits, 1);
}

/// The const-literal soundness gate: a plan cached on the `make = "BMW"`
/// hardwired member must not be rebound to a Toyota query — the cache
/// rejects, the query replans cold, and the answer is still exact.
#[test]
fn const_literal_winner_rejects_foreign_constants() {
    let cached = rig(true);
    let cold = rig(false);
    // BMW + price: the const-literal member is feasible and, at cost 1.0,
    // wins — the cached plan is pinned to it.
    let bmw = q("make = \"BMW\" ^ price < 60000", &["model", "year"]);
    let p1 = cached.federation.prepare(&bmw).expect("BMW prepare");
    assert_eq!(cached.federation.members()[p1.member].name, "bmw_only", "const member wins");
    assert_eq!(rows_of(&cached, p1.member, p1.planned), cold_answer(&cold, &bmw));
    // Same shape, different make: rebinding would silently flip what the
    // hardwired grammar checks, so the lookup must reject and replan.
    let toyota = q("make = \"Toyota\" ^ price < 30000", &["model", "year"]);
    let p2 = cached.federation.prepare(&toyota).expect("Toyota prepare");
    assert!(
        matches!(p2.decision, CacheDecision::Rejected(_)),
        "const-literal rebind must reject: {:?}",
        p2.decision
    );
    assert_ne!(cached.federation.members()[p2.member].name, "bmw_only");
    let got = rows_of(&cached, p2.member, p2.planned);
    let want = cold_answer(&cold, &toyota);
    assert_eq!(got, want);
    assert!(!got.is_empty(), "Toyota rows exist in the corpus");
}

/// Projection attrs are part of the cache key: the same condition shape
/// with a different projection must not reuse the cached plan.
#[test]
fn different_projection_does_not_hit() {
    let cached = rig(true);
    let wide = q("make = \"Toyota\" ^ price < 30000", &["model", "year"]);
    let narrow = q("make = \"Honda\" ^ price < 20000", &["model"]);
    let p1 = cached.federation.prepare(&wide).expect("wide prepare");
    assert!(matches!(p1.decision, CacheDecision::Miss));
    let p2 = cached.federation.prepare(&narrow).expect("narrow prepare");
    assert!(
        matches!(p2.decision, CacheDecision::Miss),
        "projection change must miss: {:?}",
        p2.decision
    );
}
