//! Span-tree well-formedness properties under adversity.
//!
//! The hierarchical span layer promises one structural invariant no matter
//! what the run does: the recorded spans always form a well-formed forest
//! (ids strictly increasing, every span closed inside its parent, depth =
//! parent depth + 1 — see `csqp_obs::span::validate`). The properties here
//! drive that promise through the hostile paths: seeded chaos faults with
//! retry storms, mid-stream outages that force replan splices, failed runs,
//! and interleaved captures slicing the same tracer with `span_mark`.
//!
//! On the no-op leg (`obs` off) the tracer records nothing and every
//! property holds vacuously over the empty slice — the suite still runs so
//! the API surface is exercised on every CI feature leg.

use csqp_core::federation::{CircuitBreakerConfig, Federation};
use csqp_core::mediator::{AdaptiveConfig, Mediator};
use csqp_core::types::TargetQuery;
use csqp_expr::ValueType;
use csqp_obs::span::validate;
use csqp_obs::Obs;
use csqp_plan::exec::RetryPolicy;
use csqp_plan::exec_stream::StreamConfig;
use csqp_relation::datagen;
use csqp_source::{CostParams, FaultProfile, Source};
use csqp_ssdl::templates;
use proptest::prelude::*;
use std::sync::Arc;

fn q(cond: &str, attrs: &[&str]) -> TargetQuery {
    TargetQuery::parse(cond, attrs).unwrap_or_else(|e| panic!("bad query {cond:?}: {e}"))
}

/// A faulty dealer mediator sharing an inspectable Obs.
fn storm_mediator(seed: u64, fault_rate: f64) -> (Mediator, Arc<Obs>) {
    let obs = Arc::new(Obs::new());
    let source = Arc::new(
        Source::new(datagen::cars(3, 400), templates::car_dealer(), CostParams::default())
            .with_fault_profile(FaultProfile::storm(seed, fault_rate)),
    );
    (Mediator::new(source).with_obs(obs.clone()), obs)
}

/// The chaos-replan shape: a cheap dealer that goes dark mid-stream next
/// to a reliable but expensive dump, breaker threshold 1 — adaptive runs
/// splice the dump in for the residual.
fn replan_federation(seed: u64) -> (Federation, Arc<Obs>) {
    let obs = Arc::new(Obs::new());
    let data = datagen::cars(3, 400);
    let flaky = Arc::new(
        Source::new(data.clone(), templates::car_dealer(), CostParams::new(10.0, 1.0))
            .with_fault_profile(
                FaultProfile::new(seed).with_transient(0.25).with_outage(1, u64::MAX),
            ),
    );
    let dump = Arc::new(Source::new(
        data,
        templates::download_only(
            "dump",
            &[
                ("make", ValueType::Str),
                ("model", ValueType::Str),
                ("year", ValueType::Int),
                ("color", ValueType::Str),
                ("price", ValueType::Int),
            ],
        ),
        CostParams::new(200.0, 5.0),
    ));
    let federation = Federation::new()
        .with_member(flaky)
        .with_member(dump)
        .with_breaker(CircuitBreakerConfig { failure_threshold: 1, cooldown_ticks: 4 })
        .with_obs(obs.clone());
    (federation, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded fault storms through the resilient mediator path: whether
    /// the run succeeds or exhausts its retries, the span slice validates.
    #[test]
    fn storm_spans_stay_well_formed(seed in 0u64..1u64 << 32, rate_pct in 0u64..90) {
        let (mediator, obs) = storm_mediator(seed, rate_pct as f64 / 100.0);
        let policy = RetryPolicy { max_retries: 3, jitter_seed: seed, ..Default::default() };
        let query = q("make = \"BMW\" ^ price < 40000", &["model", "year"]);
        let _ = mediator.run_resilient(&query, &policy);
        let _ = mediator.run_resilient(&q("color = \"red\"", &["make", "model"]), &policy);
        let spans = obs.tracer.spans();
        prop_assert!(validate(&spans).is_ok(), "storm spans: {:?}", validate(&spans));
    }

    /// Mid-stream outages forcing replan splices: adaptive federation runs
    /// (including the spliced segments and the failed third query) leave a
    /// well-formed forest, and every `span_mark` window slices cleanly.
    #[test]
    fn replan_splice_spans_stay_well_formed(seed in 0u64..1u64 << 32) {
        let (federation, obs) = replan_federation(seed);
        let policy = RetryPolicy { max_retries: 2, jitter_seed: seed, ..Default::default() };
        let cfg = StreamConfig { batch_size: 16, ..StreamConfig::serial() };
        let queries = [
            q("(make = \"BMW\" _ make = \"Audi\" _ make = \"Toyota\") ^ price < 40000",
              &["model", "year"]),
            q("(make = \"Honda\" _ make = \"BMW\") ^ price < 30000", &["model", "year"]),
            // Infeasible everywhere on the dealer; exercises the error path.
            q("year = 1995", &["make", "model"]),
        ];
        let mut windows = Vec::new();
        for query in &queries {
            let mark = obs.tracer.span_mark();
            let _ = federation.run_adaptive(query, &policy, &cfg);
            windows.push((mark, obs.tracer.spans_from(mark)));
        }
        let all = obs.tracer.spans();
        prop_assert!(validate(&all).is_ok(), "replan spans: {:?}", validate(&all));
        // Each capture window is the exact suffix that arrived after its
        // mark — the per-query profile slices never overlap or lose spans.
        for (mark, window) in &windows {
            prop_assert!(window.len() <= all.len() - mark);
            for (i, s) in window.iter().enumerate() {
                prop_assert_eq!(&all[mark + i], s, "window must be a contiguous slice");
            }
        }
    }

    /// The span layer obeys the kill switch under the same storms: with
    /// the tracer disabled mid-stream, no new spans are recorded and the
    /// already-recorded prefix still validates.
    #[test]
    fn disabled_tracer_records_nothing(seed in 0u64..1u64 << 32) {
        let (mediator, obs) = storm_mediator(seed, 0.3);
        let policy = RetryPolicy { max_retries: 2, jitter_seed: seed, ..Default::default() };
        let query = q("make = \"BMW\" ^ price < 40000", &["model", "year"]);
        let _ = mediator.run_resilient(&query, &policy);
        let before = obs.tracer.spans();
        obs.tracer.set_enabled(false);
        let _ = mediator.run_resilient(&query, &policy);
        let after = obs.tracer.spans();
        obs.tracer.set_enabled(true);
        prop_assert_eq!(before.len(), after.len(), "disabled tracer must record no spans");
        prop_assert!(validate(&after).is_ok());
    }
}

/// Adaptive mediator runs under drift (non-random, but kept with the span
/// properties): segments spliced by the drift controller nest correctly.
#[test]
fn adaptive_segment_spans_validate() {
    let obs = Arc::new(Obs::new());
    let source = Arc::new(Source::new(
        datagen::cars(3, 400),
        templates::car_dealer(),
        CostParams::default(),
    ));
    let mediator = Mediator::new(source).with_obs(obs.clone());
    let cfg = AdaptiveConfig {
        stream: StreamConfig { batch_size: 8, ..StreamConfig::serial() },
        ..Default::default()
    };
    let query = q("(make = \"BMW\" _ make = \"Audi\") ^ price < 40000", &["model", "year"]);
    let run = mediator.run_adaptive(&query, &cfg).expect("adaptive run succeeds");
    let spans = obs.tracer.spans();
    validate(&spans).expect("adaptive spans must be well-formed");
    #[cfg(all(feature = "obs", feature = "stream", feature = "adaptive"))]
    {
        assert!(
            spans.iter().any(|s| s.label.starts_with("segment")),
            "adaptive runs open per-segment spans: {spans:?}"
        );
        let parent = spans.iter().find(|s| s.label == "execute (adaptive)").unwrap();
        for seg in spans.iter().filter(|s| s.label.starts_with("segment")) {
            assert_eq!(seg.parent, Some(parent.id), "segments nest under the adaptive span");
        }
    }
    let _ = run;
}
