//! Shared planner types: target queries, planner outputs, search reports,
//! and errors.

use csqp_expr::parse::{parse_condition, ParseError};
use csqp_expr::CondTree;
use csqp_plan::{AttrSet, Plan};
use std::fmt;
use std::time::Duration;

/// A target query `SP(C, A, R)` (§3): select by condition `C`, project to
/// attributes `A`, on source relation `R` (bound at planning time).
#[derive(Debug, Clone, PartialEq)]
pub struct TargetQuery {
    /// The condition expression.
    pub cond: CondTree,
    /// The requested (projected) attributes.
    pub attrs: AttrSet,
}

impl TargetQuery {
    /// Builds a target query.
    pub fn new(cond: CondTree, attrs: AttrSet) -> Self {
        TargetQuery { cond, attrs }
    }

    /// Parses the condition from text syntax.
    pub fn parse(cond_text: &str, attrs: &[&str]) -> Result<Self, ParseError> {
        Ok(TargetQuery {
            cond: parse_condition(cond_text)?,
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        })
    }
}

impl fmt::Display for TargetQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SP({}, {{{}}}, R)",
            self.cond,
            self.attrs.iter().cloned().collect::<Vec<_>>().join(", ")
        )
    }
}

/// Cache and pruning statistics exposed by every planner — the previously
/// private [`CheckCache`](crate::cache::CheckCache) `Cell`s and the IPG
/// memo/pruning counters, surfaced for `--explain` and the metrics
/// registry. Everything here is a deterministic function of the query and
/// the source description (no wall clock), so it is safe to snapshot-test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// `Check(C, R)` invocations (before caching).
    pub check_calls: usize,
    /// CheckCache hits (calls answered without re-parsing the template).
    pub check_cache_hits: usize,
    /// CheckCache misses (actual capability-template parses).
    pub check_cache_misses: usize,
    /// Rewritten CTs the rewrite module produced.
    pub rewrites_generated: usize,
    /// IPG memo-table hits (whole sub-searches skipped; GenCompact only).
    pub ipg_memo_hits: usize,
    /// Sub-searches short-circuited or skipped by PR1.
    pub pr1_prunes: usize,
    /// Candidate sub-plans discarded by PR2.
    pub pr2_prunes: usize,
    /// Sub-plans discarded by PR3 (dominated).
    pub pr3_prunes: usize,
    /// MCSC branch-and-bound nodes (covers) examined.
    pub mcsc_covers_examined: usize,
}

impl PlannerStats {
    /// Adds these statistics to `metrics` under the canonical `planner.*`
    /// names.
    pub fn record_into(&self, metrics: &csqp_obs::MetricsRegistry) {
        use csqp_obs::names;
        metrics.add(names::PLANNER_CHECK_CALLS, self.check_calls as u64);
        metrics.add(names::PLANNER_CHECK_CACHE_HITS, self.check_cache_hits as u64);
        metrics.add(names::PLANNER_CHECK_CACHE_MISSES, self.check_cache_misses as u64);
        metrics.add(names::PLANNER_REWRITES_GENERATED, self.rewrites_generated as u64);
        metrics.add(names::PLANNER_IPG_MEMO_HITS, self.ipg_memo_hits as u64);
        metrics.add(names::PLANNER_PRUNED_PR1, self.pr1_prunes as u64);
        metrics.add(names::PLANNER_PRUNED_PR2, self.pr2_prunes as u64);
        metrics.add(names::PLANNER_PRUNED_PR3, self.pr3_prunes as u64);
        metrics.add(names::PLANNER_MCSC_COVERS_EXAMINED, self.mcsc_covers_examined as u64);
    }
}

/// Search statistics reported by every planner (the measurements behind
/// experiments E3–E5).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerReport {
    /// Condition trees processed (rewrite-module output consumed).
    pub cts_processed: usize,
    /// `Check` invocations (before caching).
    pub checks: usize,
    /// Distinct concrete plans represented/considered across the search.
    pub plans_considered: u64,
    /// Recursive plan-generator invocations (EPG or IPG calls).
    pub generator_calls: usize,
    /// Largest sub-plan array `Q` handed to MCSC (IPG only; §6.4.2).
    pub max_q: usize,
    /// Whether any budget truncated the search (GenModular rewrite budgets).
    pub truncated: bool,
    /// Cache/memo hit rates and pruning-rule dividends.
    pub stats: PlannerStats,
    /// Wall-clock planning time.
    pub elapsed: Duration,
}

impl PlannerReport {
    /// Records the planner-side counters into `metrics` under the
    /// canonical `planner.*` names (`elapsed` is deliberately excluded —
    /// only deterministic quantities enter the registry).
    pub fn record_into(&self, metrics: &csqp_obs::MetricsRegistry) {
        use csqp_obs::names;
        metrics.add(names::PLANNER_CTS_CANONICALIZED, self.cts_processed as u64);
        metrics.add(names::PLANNER_GENERATOR_CALLS, self.generator_calls as u64);
        metrics.add(names::PLANNER_PLANS_CONSIDERED, self.plans_considered);
        self.stats.record_into(metrics);
    }
}

/// A ranked fallback plan retained for execution-time failover.
#[derive(Debug, Clone)]
pub struct RankedPlan {
    /// The concrete plan.
    pub plan: Plan,
    /// Its estimated cost under the planner's model.
    pub est_cost: f64,
}

/// A successfully planned target query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The chosen concrete plan (no `Choice` operators).
    pub plan: Plan,
    /// Its estimated cost under the §6.2 model.
    pub est_cost: f64,
    /// Search statistics.
    pub report: PlannerReport,
    /// Ranked alternatives (cheapest first, `plan` excluded): the losing
    /// candidates GenCompact/GenModular already enumerated, kept around so
    /// execution can degrade gracefully when the winner fails at runtime.
    pub alternatives: Vec<RankedPlan>,
}

/// Ranked alternatives kept per planned query (beyond the winner).
pub const MAX_ALTERNATIVES: usize = 4;

/// Per-plan cap on detailed per-CT spans (`ct N` / `maxeval ct N` and the
/// `mcsc` spans nested inside them): rewritings beyond this index plan
/// without span bookkeeping. Queries enumerating dozens of CTs would
/// otherwise open a micro-span per rewriting and dominate the profile's
/// cost — the executor caps per-batch spans the same way
/// (`exec_stream`'s `MAX_BATCH_SPANS`).
pub const MAX_CT_SPANS: u64 = 8;

/// Ranks planner candidates: returns the cheapest as the winner plus up to
/// [`MAX_ALTERNATIVES`] distinct losers sorted by cost (stable on ties, so
/// the result is independent of thread scheduling upstream). `None` when
/// `candidates` is empty.
pub(crate) fn rank_candidates(
    mut candidates: Vec<(Plan, f64)>,
) -> Option<(Plan, f64, Vec<RankedPlan>)> {
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite plan costs"));
    let mut it = candidates.into_iter();
    let (best, best_cost) = it.next().expect("non-empty checked");
    let mut alternatives: Vec<RankedPlan> = Vec::new();
    for (plan, est_cost) in it {
        if alternatives.len() >= MAX_ALTERNATIVES {
            break;
        }
        // Different CTs can canonicalize to the same winning plan; a
        // duplicate is useless as a fallback.
        if plan == best || alternatives.iter().any(|a| a.plan == plan) {
            continue;
        }
        alternatives.push(RankedPlan { plan, est_cost });
    }
    Some((best, best_cost, alternatives))
}

/// Records the ranking outcome into the flight record: one `Winner` event
/// plus an `Eliminated` event (rule `"cost"`) for every candidate that lost
/// the final ranking — including losers beyond the [`MAX_ALTERNATIVES`]
/// failover window, so `EXPLAIN WHY` can name a reason for *every* loser.
/// `provenance` is the pre-ranking candidate list in CT order (rendered
/// plan, cost), captured only when the flight handle is active.
pub(crate) fn record_ranking_events(
    flight: csqp_obs::QueryFlight<'_>,
    provenance: &[(String, f64)],
    winner: &Plan,
    winner_cost: f64,
) {
    if !flight.active() {
        return;
    }
    let winner_plan = winner.to_string();
    flight.event_with(|| csqp_obs::PlanEvent::Winner {
        cost: winner_cost,
        plan: winner_plan.clone(),
    });
    let mut winner_seen = false;
    for (plan, cost) in provenance {
        let is_winner = *cost == winner_cost && *plan == winner_plan;
        if is_winner && !winner_seen {
            winner_seen = true;
            continue;
        }
        let detail = if is_winner {
            "duplicate of the winning plan (another CT canonicalized to it)".to_string()
        } else {
            format!(
                "est cost {:.2} vs winner {:.2} (Δ {:+.2})",
                cost,
                winner_cost,
                cost - winner_cost
            )
        };
        flight.event_with(|| csqp_obs::PlanEvent::Eliminated {
            rule: "cost",
            cost: *cost,
            plan: plan.clone(),
            detail,
        });
    }
}

/// Planner errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No feasible plan exists for the query on this source (or within the
    /// strategy's limits, for baselines).
    NoFeasiblePlan {
        /// The query, rendered.
        query: String,
        /// Which planning scheme gave up.
        scheme: &'static str,
    },
    /// The query's condition tree is malformed (e.g. an empty connective).
    MalformedQuery(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoFeasiblePlan { query, scheme } => {
                write!(f, "{scheme}: no feasible plan for {query}")
            }
            PlanError::MalformedQuery(msg) => write!(f, "malformed query: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let q = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();
        assert_eq!(q.attrs.len(), 2);
        assert_eq!(q.to_string(), "SP(make = \"BMW\" ^ price < 40000, {model, year}, R)");
        assert!(TargetQuery::parse("make = ", &["model"]).is_err());
    }

    #[test]
    fn error_display() {
        let e = PlanError::NoFeasiblePlan { query: "SP(...)".into(), scheme: "disco" };
        assert!(e.to_string().contains("disco"));
    }
}
