//! Capability-sensitive join processing across two sources — the "complex
//! queries" extension the paper defers to its extended version ("selection
//! queries … form the building blocks of more complex queries", §1).
//!
//! Two strategies, both built from GenCompact-planned selection queries:
//!
//! - **Hash join**: plan and execute each side independently, join at the
//!   mediator.
//! - **Bind join**: execute the (estimated) smaller side first, then push
//!   its distinct join-key values into the other side's condition as a
//!   value-list disjunction `key = v1 _ key = v2 _ …`. This is only
//!   *feasible when the bound side's capability accepts value lists* — the
//!   planner probes the SSDL description before committing, which is
//!   exactly the kind of decision capability-blind optimizers cannot make.
//!
//! Strategy choice is cost-based (estimated §6.2 cost of all source
//! queries), with a runtime fallback to hash join if the bind side turns
//! out to produce more keys than [`JoinConfig::max_bind_values`].

use crate::gencompact::{plan_compact, GenCompactConfig};
use crate::mediator::MediatorError;
use crate::types::{PlanError, TargetQuery};
use csqp_expr::{Atom, CondTree, Value};
use csqp_plan::cost::StatsCard;
use csqp_plan::exec::execute_measured;
use csqp_source::{Meter, Source};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A two-source equi-join of selection queries.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Selection over the left source (the join key is added to its
    /// projection automatically).
    pub left: TargetQuery,
    /// Selection over the right source.
    pub right: TargetQuery,
    /// Join attribute on the left source.
    pub left_key: String,
    /// Join attribute on the right source.
    pub right_key: String,
}

/// How the join was (or must be) executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Both sides fetched independently; joined at the mediator.
    Hash,
    /// Left side fetched first; its keys bound into the right side's
    /// condition.
    BindLeftIntoRight,
    /// Right side fetched first; its keys bound into the left side's
    /// condition.
    BindRightIntoLeft,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinStrategy::Hash => write!(f, "hash join"),
            JoinStrategy::BindLeftIntoRight => write!(f, "bind join (left → right)"),
            JoinStrategy::BindRightIntoLeft => write!(f, "bind join (right → left)"),
        }
    }
}

/// Join-processing configuration.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Maximum distinct key values pushed in a bind join (web forms and
    /// URLs bound the practical list length).
    pub max_bind_values: usize,
    /// Force a specific strategy instead of choosing by cost.
    pub force: Option<JoinStrategy>,
    /// GenCompact settings used for every selection sub-plan.
    pub compact: GenCompactConfig,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig { max_bind_values: 64, force: None, compact: GenCompactConfig::default() }
    }
}

/// The result of a join run.
#[derive(Debug)]
pub struct JoinOutcome {
    /// Joined rows: left attributes then right attributes (right columns
    /// that collide with a left name are prefixed `r_`).
    pub rows: csqp_relation::Relation,
    /// The strategy actually executed.
    pub strategy: JoinStrategy,
    /// Transfer from the left source.
    pub left_meter: Meter,
    /// Transfer from the right source.
    pub right_meter: Meter,
    /// Measured §6.2 cost across both sources.
    pub measured_cost: f64,
}

/// A mediator joining two capability-limited sources.
#[derive(Debug)]
pub struct JoinMediator {
    left: Arc<Source>,
    right: Arc<Source>,
    cfg: JoinConfig,
}

impl JoinMediator {
    /// Builds a join mediator with default configuration.
    pub fn new(left: Arc<Source>, right: Arc<Source>) -> Self {
        JoinMediator { left, right, cfg: JoinConfig::default() }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, cfg: JoinConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Augments a side's query so the join key is fetched.
    fn keyed(q: &TargetQuery, key: &str) -> TargetQuery {
        let mut attrs = q.attrs.clone();
        attrs.insert(key.to_string());
        TargetQuery::new(q.cond.clone(), attrs)
    }

    /// The value-list disjunction `key = v1 _ … _ key = vk`.
    fn key_list(key: &str, values: &[Value]) -> CondTree {
        if values.len() == 1 {
            CondTree::leaf(Atom::eq(key, values[0].clone()))
        } else {
            CondTree::or(values.iter().map(|v| CondTree::leaf(Atom::eq(key, v.clone()))).collect())
        }
    }

    /// A side's condition augmented with a bound key list (canonical shape:
    /// the list joins the existing conjunction).
    fn bound_condition(base: &CondTree, key: &str, values: &[Value]) -> CondTree {
        CondTree::and(vec![base.clone(), Self::key_list(key, values)])
    }

    /// Can `source` answer `base ∧ key ∈ {2 probe values}` fetching `attrs`?
    /// Probes capability with representative constants (grammar acceptance
    /// depends on types and shape, not the specific values — except for
    /// literal-constant grammars, which the probe then correctly rejects).
    fn bind_feasible(&self, source: &Source, q: &TargetQuery, key: &str) -> bool {
        let keyed = Self::keyed(q, key);
        let probe_values = self.probe_values(source, key);
        let cond = Self::bound_condition(&keyed.cond, key, &probe_values);
        let card = StatsCard::new(source.stats());
        plan_compact(&TargetQuery::new(cond, keyed.attrs), source, &card, &self.cfg.compact).is_ok()
    }

    /// Two representative key constants: real values when statistics carry
    /// exact frequencies, typed placeholders otherwise.
    fn probe_values(&self, source: &Source, key: &str) -> Vec<Value> {
        if let Some(col) = source.stats().column(key) {
            if let Some(freqs) = &col.freqs {
                let vs: Vec<Value> = freqs.keys().take(2).cloned().collect();
                if vs.len() == 2 {
                    return vs;
                }
            }
        }
        match source.relation().schema().column(key).map(|c| c.ty) {
            Some(csqp_expr::ValueType::Int) => vec![Value::Int(0), Value::Int(1)],
            Some(csqp_expr::ValueType::Float) => vec![Value::Float(0.0), Value::Float(1.0)],
            _ => vec![Value::str("?a"), Value::str("?b")],
        }
    }

    /// Plans + runs the join.
    pub fn run(&self, q: &JoinQuery) -> Result<JoinOutcome, MediatorError> {
        let left_q = Self::keyed(&q.left, &q.left_key);
        let right_q = Self::keyed(&q.right, &q.right_key);

        // Estimated base costs (for strategy choice).
        let lcard = StatsCard::new(self.left.stats());
        let rcard = StatsCard::new(self.right.stats());
        let left_plan = plan_compact(&left_q, &self.left, &lcard, &self.cfg.compact);
        let right_plan = plan_compact(&right_q, &self.right, &rcard, &self.cfg.compact);

        let left_rows_est = self.left.stats().estimate_rows(Some(&left_q.cond));
        let right_rows_est = self.right.stats().estimate_rows(Some(&right_q.cond));

        let strategy = match self.cfg.force {
            Some(s) => s,
            None => {
                // Prefer binding the side with the smaller estimated result
                // into the other, when the list capability exists and the
                // estimate fits the bind cap. Otherwise hash.
                let bind_r2l = right_rows_est <= self.cfg.max_bind_values as f64
                    && right_plan.is_ok()
                    && self.bind_feasible(&self.left, &q.left, &q.left_key);
                let bind_l2r = left_rows_est <= self.cfg.max_bind_values as f64
                    && left_plan.is_ok()
                    && self.bind_feasible(&self.right, &q.right, &q.right_key);
                if bind_r2l && (!bind_l2r || right_rows_est <= left_rows_est) {
                    JoinStrategy::BindRightIntoLeft
                } else if bind_l2r {
                    JoinStrategy::BindLeftIntoRight
                } else {
                    JoinStrategy::Hash
                }
            }
        };

        match strategy {
            JoinStrategy::Hash => {
                let lp = left_plan.map_err(MediatorError::Plan)?;
                let rp = right_plan.map_err(MediatorError::Plan)?;
                let (lrows, lmeter) = execute_measured(&lp.plan, &self.left)?;
                let (rrows, rmeter) = execute_measured(&rp.plan, &self.right)?;
                self.finish(q, lrows, rrows, JoinStrategy::Hash, lmeter, rmeter)
            }
            JoinStrategy::BindRightIntoLeft => {
                let rp = right_plan.map_err(MediatorError::Plan)?;
                let (rrows, rmeter) = execute_measured(&rp.plan, &self.right)?;
                match self.bound_fetch(&left_q, &q.left_key, &rrows, &q.right_key)? {
                    Some((lrows, lmeter)) => self.finish(
                        q,
                        lrows,
                        rrows,
                        JoinStrategy::BindRightIntoLeft,
                        lmeter,
                        rmeter,
                    ),
                    None => {
                        // Runtime fallback: too many keys — hash join.
                        let lp = left_plan.map_err(MediatorError::Plan)?;
                        let (lrows, lmeter) = execute_measured(&lp.plan, &self.left)?;
                        self.finish(q, lrows, rrows, JoinStrategy::Hash, lmeter, rmeter)
                    }
                }
            }
            JoinStrategy::BindLeftIntoRight => {
                let lp = left_plan.map_err(MediatorError::Plan)?;
                let (lrows, lmeter) = execute_measured(&lp.plan, &self.left)?;
                match self.bound_fetch_right(&right_q, &q.right_key, &lrows, &q.left_key)? {
                    Some((rrows, rmeter)) => self.finish(
                        q,
                        lrows,
                        rrows,
                        JoinStrategy::BindLeftIntoRight,
                        lmeter,
                        rmeter,
                    ),
                    None => {
                        let rp = right_plan.map_err(MediatorError::Plan)?;
                        let (rrows, rmeter) = execute_measured(&rp.plan, &self.right)?;
                        self.finish(q, lrows, rrows, JoinStrategy::Hash, lmeter, rmeter)
                    }
                }
            }
        }
    }

    /// Distinct key values of `rows[key]` (None = over the bind cap).
    fn distinct_keys(&self, rows: &csqp_relation::Relation, key: &str) -> Option<Vec<Value>> {
        let idx = rows.schema().col_index(key)?;
        let mut seen: Vec<Value> = Vec::new();
        for t in rows.tuples() {
            let v = t.get(idx)?.clone();
            if !seen.contains(&v) {
                seen.push(v);
                if seen.len() > self.cfg.max_bind_values {
                    return None;
                }
            }
        }
        Some(seen)
    }

    fn bound_fetch(
        &self,
        left_q: &TargetQuery,
        left_key: &str,
        driver_rows: &csqp_relation::Relation,
        driver_key: &str,
    ) -> Result<Option<(csqp_relation::Relation, Meter)>, MediatorError> {
        let Some(keys) = self.distinct_keys(driver_rows, driver_key) else {
            return Ok(None);
        };
        if keys.is_empty() {
            // Empty driver side: empty join; synthesize an empty result by
            // selecting nothing.
            let empty = csqp_relation::Relation::empty(
                self.left
                    .relation()
                    .schema()
                    .project(&left_q.attrs.iter().map(String::as_str).collect::<Vec<_>>())
                    .map_err(|e| MediatorError::Plan(PlanError::MalformedQuery(e.to_string())))?,
            );
            return Ok(Some((empty, Meter::default())));
        }
        let cond = Self::bound_condition(&left_q.cond, left_key, &keys);
        let card = StatsCard::new(self.left.stats());
        let bound = TargetQuery::new(cond, left_q.attrs.clone());
        let plan = plan_compact(&bound, &self.left, &card, &self.cfg.compact)
            .map_err(MediatorError::Plan)?;
        let (rows, meter) = execute_measured(&plan.plan, &self.left)?;
        Ok(Some((rows, meter)))
    }

    fn bound_fetch_right(
        &self,
        right_q: &TargetQuery,
        right_key: &str,
        driver_rows: &csqp_relation::Relation,
        driver_key: &str,
    ) -> Result<Option<(csqp_relation::Relation, Meter)>, MediatorError> {
        // Same as bound_fetch, against the right source.
        let Some(keys) = self.distinct_keys(driver_rows, driver_key) else {
            return Ok(None);
        };
        if keys.is_empty() {
            let empty = csqp_relation::Relation::empty(
                self.right
                    .relation()
                    .schema()
                    .project(&right_q.attrs.iter().map(String::as_str).collect::<Vec<_>>())
                    .map_err(|e| MediatorError::Plan(PlanError::MalformedQuery(e.to_string())))?,
            );
            return Ok(Some((empty, Meter::default())));
        }
        let cond = Self::bound_condition(&right_q.cond, right_key, &keys);
        let card = StatsCard::new(self.right.stats());
        let bound = TargetQuery::new(cond, right_q.attrs.clone());
        let plan = plan_compact(&bound, &self.right, &card, &self.cfg.compact)
            .map_err(MediatorError::Plan)?;
        let (rows, meter) = execute_measured(&plan.plan, &self.right)?;
        Ok(Some((rows, meter)))
    }

    /// Hash-joins the two fetched sides and assembles the outcome.
    fn finish(
        &self,
        q: &JoinQuery,
        left_rows: csqp_relation::Relation,
        right_rows: csqp_relation::Relation,
        strategy: JoinStrategy,
        left_meter: Meter,
        right_meter: Meter,
    ) -> Result<JoinOutcome, MediatorError> {
        use csqp_relation::{Schema, Tuple};
        let ls = left_rows.schema().clone();
        let rs = right_rows.schema().clone();
        // Output schema: left columns, then right columns (collisions
        // prefixed `r_`).
        let mut columns: Vec<(String, csqp_expr::ValueType)> =
            ls.columns.iter().map(|c| (c.name.clone(), c.ty)).collect();
        for c in &rs.columns {
            let name = if ls.col_index(&c.name).is_some() {
                format!("r_{}", c.name)
            } else {
                c.name.clone()
            };
            columns.push((name, c.ty));
        }
        let col_refs: Vec<(&str, csqp_expr::ValueType)> =
            columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::new(format!("{}_join_{}", ls.name, rs.name), col_refs, &[])
            .map_err(|e| MediatorError::Plan(PlanError::MalformedQuery(e.to_string())))?;

        let lkey = ls.col_index(&q.left_key).ok_or_else(|| {
            MediatorError::Plan(PlanError::MalformedQuery(format!(
                "left key {} missing from fetched columns",
                q.left_key
            )))
        })?;
        let rkey = rs.col_index(&q.right_key).ok_or_else(|| {
            MediatorError::Plan(PlanError::MalformedQuery(format!(
                "right key {} missing from fetched columns",
                q.right_key
            )))
        })?;

        // Hash the smaller side.
        let mut table: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
        for t in right_rows.tuples() {
            table.entry(t.get(rkey).expect("arity checked")).or_default().push(t);
        }
        let mut out = csqp_relation::Relation::empty(schema);
        for lt in left_rows.tuples() {
            let key = lt.get(lkey).expect("arity checked");
            if let Some(matches) = table.get(key) {
                for rt in matches {
                    let mut vals = lt.values().to_vec();
                    vals.extend(rt.values().iter().cloned());
                    out.insert(Tuple::new(vals));
                }
            }
        }
        let measured_cost =
            left_meter.cost(self.left.cost_params()) + right_meter.cost(self.right.cost_params());
        Ok(JoinOutcome { rows: out, strategy, left_meter, right_meter, measured_cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_relation::datagen::{books, reviews, BookGenConfig};
    use csqp_source::CostParams;
    use csqp_ssdl::templates;

    fn setup() -> (Arc<Source>, Arc<Source>) {
        let book_rel = books(7, &BookGenConfig { n_books: 1_000, ..Default::default() });
        let isbn_idx = book_rel.schema().col_index("isbn").unwrap();
        let isbns: Vec<Value> =
            book_rel.tuples().iter().map(|t| t.get(isbn_idx).unwrap().clone()).collect();
        let review_rel = reviews(11, &isbns, 3);
        let bookstore =
            Arc::new(Source::new(book_rel, templates::bookstore(), CostParams::default()));
        let review_site =
            Arc::new(Source::new(review_rel, templates::reviews(), CostParams::default()));
        (bookstore, review_site)
    }

    fn the_join() -> JoinQuery {
        JoinQuery {
            left: TargetQuery::parse(
                r#"author = "Sigmund Freud" ^ title contains "dreams""#,
                &["isbn", "title"],
            )
            .unwrap(),
            right: TargetQuery::parse(
                r#"rating >= 4"#,
                &["review_id", "isbn", "rating", "reviewer"],
            )
            .unwrap(),
            left_key: "isbn".into(),
            right_key: "isbn".into(),
        }
    }

    /// Oracle: nested loops over the raw relations.
    fn oracle_count(left: &Source, right: &Source, q: &JoinQuery) -> usize {
        use csqp_relation::ops::select;
        let l = select(left.relation(), Some(&q.left.cond));
        let r = select(right.relation(), Some(&q.right.cond));
        let li = l.schema().col_index(&q.left_key).unwrap();
        let ri = r.schema().col_index(&q.right_key).unwrap();
        let mut n = 0;
        for lt in l.tuples() {
            for rt in r.tuples() {
                if lt.get(li) == rt.get(ri) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn bind_join_chosen_and_exact() {
        let (bookstore, review_site) = setup();
        let q = the_join();
        let jm = JoinMediator::new(bookstore.clone(), review_site.clone());
        let out = jm.run(&q).unwrap();
        // The left side (Freud's dream books) is tiny; its keys bind into
        // the review site's isbn-list capability.
        assert_eq!(out.strategy, JoinStrategy::BindLeftIntoRight, "{}", out.strategy);
        assert_eq!(out.rows.len(), oracle_count(&bookstore, &review_site, &q));
        assert!(!out.rows.is_empty(), "test data must produce matches");
        // The bind join never downloads all high-rated reviews.
        let all_high =
            csqp_relation::ops::select(review_site.relation(), Some(&q.right.cond)).len() as u64;
        assert!(out.right_meter.tuples_shipped < all_high / 2);
    }

    #[test]
    fn forced_hash_join_matches_bind_join() {
        let (bookstore, review_site) = setup();
        let q = the_join();
        let hash = JoinMediator::new(bookstore.clone(), review_site.clone())
            .with_config(JoinConfig { force: Some(JoinStrategy::Hash), ..Default::default() })
            .run(&q)
            .unwrap();
        let bind = JoinMediator::new(bookstore.clone(), review_site.clone()).run(&q).unwrap();
        assert_eq!(hash.strategy, JoinStrategy::Hash);
        assert_eq!(hash.rows, bind.rows, "strategies agree on the answer");
        assert!(
            bind.measured_cost <= hash.measured_cost,
            "bind {} vs hash {}",
            bind.measured_cost,
            hash.measured_cost
        );
    }

    #[test]
    fn runtime_fallback_when_bind_cap_exceeded() {
        let (bookstore, review_site) = setup();
        // A broad left side (keyword only): far more than 4 keys.
        let q = JoinQuery {
            left: TargetQuery::parse(r#"title contains "the""#, &["isbn"]).unwrap(),
            right: TargetQuery::parse(r#"rating >= 1"#, &["review_id", "isbn", "rating"]).unwrap(),
            left_key: "isbn".into(),
            right_key: "isbn".into(),
        };
        let jm =
            JoinMediator::new(bookstore.clone(), review_site.clone()).with_config(JoinConfig {
                max_bind_values: 4,
                force: Some(JoinStrategy::BindLeftIntoRight),
                ..Default::default()
            });
        let out = jm.run(&q).unwrap();
        assert_eq!(out.strategy, JoinStrategy::Hash, "fell back at runtime");
        assert_eq!(out.rows.len(), oracle_count(&bookstore, &review_site, &q));
    }

    #[test]
    fn bind_into_listless_side_degrades_to_local_filtering() {
        // Reverse direction: the bookstore form has no isbn field, so the
        // pushed key list cannot reach the source — but GenCompact still
        // plans the bound query by filtering the list LOCALLY on the
        // author+keyword fetch. Correct, just not cheaper than hash.
        let (bookstore, review_site) = setup();
        let q = the_join();
        let forced = JoinMediator::new(bookstore.clone(), review_site.clone())
            .with_config(JoinConfig {
                force: Some(JoinStrategy::BindRightIntoLeft),
                max_bind_values: 100_000,
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        assert_eq!(forced.rows.len(), oracle_count(&bookstore, &review_site, &q));
        // The automatic chooser never picks this direction (the right side
        // exceeds the bind cap and binding buys nothing).
        let auto = JoinMediator::new(bookstore, review_site).run(&q).unwrap();
        assert_ne!(auto.strategy, JoinStrategy::BindRightIntoLeft);
    }

    #[test]
    fn empty_driver_side_gives_empty_join() {
        let (bookstore, review_site) = setup();
        let q = JoinQuery {
            left: TargetQuery::parse(r#"author = "Nobody Nowhere""#, &["isbn"]).unwrap(),
            right: TargetQuery::parse(r#"rating >= 4"#, &["isbn", "rating"]).unwrap(),
            left_key: "isbn".into(),
            right_key: "isbn".into(),
        };
        let out = JoinMediator::new(bookstore, review_site)
            .with_config(JoinConfig {
                force: Some(JoinStrategy::BindLeftIntoRight),
                ..Default::default()
            })
            .run(&q)
            .unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.right_meter.queries, 0, "no query sent for an empty key set");
    }

    #[test]
    fn column_collisions_are_prefixed() {
        let (bookstore, review_site) = setup();
        let out = JoinMediator::new(bookstore, review_site).run(&the_join()).unwrap();
        let names: Vec<&str> = out.rows.schema().column_names().collect();
        // `isbn` appears on both sides: the right one is prefixed.
        assert!(names.contains(&"isbn"));
        assert!(names.contains(&"r_isbn"));
        assert!(names.contains(&"rating"));
    }
}
