//! # csqp-core — GenCompact and GenModular capability-sensitive planners
//!
//! The primary contribution of *"Capability-Sensitive Query Processing on
//! Internet Sources"* (Garcia-Molina, Labio, Yerneni; ICDE 1999):
//!
//! - [`genmodular`] — the naive exhaustive scheme of §5 (rewrite → mark →
//!   [`epg`] → cost);
//! - [`gencompact`] — the efficient scheme of §6 (distributive rewrite →
//!   canonical CTs → [`ipg`] with pruning rules PR1–PR3 and [`mcsc`]);
//! - [`baselines`] — the CNF (Garlic), DNF, DISCO and naive-pushdown
//!   strategies the paper compares against;
//! - [`mediator`] — a per-source mediator/wrapper façade.
//!
//! ## Quickstart
//!
//! ```
//! use csqp_core::mediator::Mediator;
//! use csqp_core::types::TargetQuery;
//! use csqp_source::Catalog;
//!
//! let catalog = Catalog::demo_small(7);
//! let bookstore = catalog.get("bookstore").unwrap().clone();
//! let mediator = Mediator::new(bookstore);
//!
//! let query = TargetQuery::parse(
//!     r#"(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams""#,
//!     &["isbn", "title", "author"],
//! ).unwrap();
//!
//! let outcome = mediator.run(&query).unwrap();
//! println!("plan: {}", outcome.planned.plan);
//! assert_eq!(outcome.meter.queries, 2); // one query per author
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod cache;
pub mod calibrate;
pub mod capindex;
pub mod epg;
pub mod federation;
pub mod gencompact;
pub mod genmodular;
pub mod ipg;
pub mod join;
pub mod mark;
pub mod maxeval;
pub mod mcsc;
pub mod mediator;
pub mod par;
pub mod plancache;
pub mod types;

pub use calibrate::{CalibratedCard, CalibratingCostModel};
pub use capindex::{CapabilityIndex, IndexDecision};
pub use federation::{
    BreakerHealth, CircuitBreakerConfig, FailoverTrace, FederatedAdaptiveRun, FederatedPlan,
    FederatedRun, Federation, MemberEvent, PreparedFederated,
};
pub use gencompact::{plan_compact, plan_compact_recorded, GenCompactConfig};
pub use genmodular::{plan_modular, plan_modular_recorded, GenModularConfig};
pub use ipg::IpgConfig;
pub use join::{JoinConfig, JoinMediator, JoinOutcome, JoinQuery, JoinStrategy};
pub use mediator::{
    AdaptiveConfig, AdaptiveOutcome, AnalyzedStreamOutcome, CardKind, Mediator, ResilientOutcome,
    RunOutcome, Scheme, StreamedOutcome,
};
pub use plancache::{CacheDecision, CacheStats, PlanCache};
pub use types::{PlanError, PlannedQuery, PlannerReport, RankedPlan, TargetQuery};
