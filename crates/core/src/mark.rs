//! The mark module of GenModular (§5.2).
//!
//! For each CT the rewrite module produces, the mark module computes, for
//! *every* node `n`, the `n.export` field: the attributes the source exports
//! when asked to evaluate `Cond(n)`. Every node is processed "because we
//! need to explore the possibility of evaluating any part of the CT at R".
//!
//! With antichain exports (DESIGN.md §5) the field is an [`ExportSet`]
//! rather than a single attribute set.
//!
//! Marking drives `Check(C, R)` once per node, so its capability-probe
//! traffic shows up in the `planner.check_calls` / `planner.check_cache_*`
//! counters that [`PlannerStats`](crate::types::PlannerStats) surfaces —
//! the mark module itself keeps no separate statistics.

use crate::cache::CheckCache;
use csqp_expr::{Atom, CondTree, Connector};
use csqp_ssdl::check::ExportSet;

/// A CT node annotated with its export field (a parallel tree to the
/// original [`CondTree`]).
#[derive(Debug, Clone)]
pub struct Marked {
    /// The condition this subtree represents (`Cond(n)`).
    pub cond: CondTree,
    /// `n.export` — what the source exports when evaluating `Cond(n)`.
    pub export: ExportSet,
    /// The node's connector, `None` for a leaf.
    pub connector: Option<Connector>,
    /// Marked children (empty for leaves).
    pub children: Vec<Marked>,
}

impl Marked {
    /// Is this a leaf (atomic condition)?
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The atom, if a leaf.
    pub fn atom(&self) -> Option<&Atom> {
        match &self.cond {
            CondTree::Leaf(a) => Some(a),
            _ => None,
        }
    }

    /// Total marked nodes.
    pub fn n_nodes(&self) -> usize {
        1 + self.children.iter().map(Marked::n_nodes).sum::<usize>()
    }
}

/// Marks every node of `ct` using (cached) `Check` calls.
pub fn mark(ct: &CondTree, cache: &CheckCache<'_>) -> Marked {
    let export = cache.check(Some(ct));
    match ct {
        CondTree::Leaf(_) => {
            Marked { cond: ct.clone(), export, connector: None, children: Vec::new() }
        }
        CondTree::Node(conn, children) => Marked {
            cond: ct.clone(),
            export,
            connector: Some(*conn),
            children: children.iter().map(|c| mark(c, cache)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_ssdl::check::CompiledSource;
    use csqp_ssdl::templates;
    use std::collections::BTreeSet;

    fn attrs(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Example 5.1: marking t1 = ((make=BMW ^ price<40000) ^ (make=BMW ^
    /// color=red)) against the Example 4.1 description.
    #[test]
    fn example_5_1_marking() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let t1 = parse_condition(
            "(make = \"BMW\" ^ price < 40000) ^ (make = \"BMW\" ^ color = \"red\")",
        )
        .unwrap();
        let m = mark(&t1, &cache);
        // Root n0: R cannot evaluate Cond(n0) — export empty.
        assert!(m.export.is_empty());
        assert_eq!(m.children.len(), 2);
        // n1 exports {make, model, year, color}.
        let n1 = &m.children[0];
        assert!(n1.export.covers(&attrs(&["make", "model", "year", "color"])));
        // n2 exports {make, model, year}.
        let n2 = &m.children[1];
        assert!(n2.export.covers(&attrs(&["make", "model", "year"])));
        assert!(!n2.export.covers(&attrs(&["color"])));
        // All *grand*children (bare atoms) have empty exports — no rule
        // accepts a single atom in Example 4.1.
        for child in &m.children {
            for grandchild in &child.children {
                assert!(grandchild.export.is_empty(), "{}", grandchild.cond);
            }
        }
    }

    /// Example 5.1 continued: every node of t0 (the flat conjunction of all
    /// three atoms) is unevaluable.
    #[test]
    fn example_5_1_t0_all_empty() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let t0 = parse_condition("price < 40000 ^ color = \"red\" ^ make = \"BMW\"").unwrap();
        let m = mark(&t0, &cache);
        fn all_empty(m: &Marked) -> bool {
            m.export.is_empty() && m.children.iter().all(all_empty)
        }
        assert!(all_empty(&m), "no part of t0 is evaluable at R");
        assert_eq!(m.n_nodes(), 4);
    }

    #[test]
    fn mark_counts_every_node() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let t = parse_condition(
            "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
        )
        .unwrap();
        let before = cache.calls();
        let m = mark(&t, &cache);
        assert_eq!(cache.calls() - before, m.n_nodes());
        assert_eq!(m.n_nodes(), 7);
    }
}
