//! Cost-model recalibration from observed execution: cardinality floors
//! for mid-query re-planning, and a least-squares re-fit of the §6.2
//! affine constants `k1`/`k2`.
//!
//! The paper's planners estimate `cost(plan) = Σ k1 + k2·|result(sq)|`
//! from *assumed* constants and *estimated* cardinalities. Both can be
//! wrong on a live source. Two correction layers ship here:
//!
//! - [`CalibratedCard`] raises a base [`Cardinality`] estimator to
//!   observed per-condition floors (keyed by condition fingerprint). The
//!   correction is monotonic — floors only grow — so re-planning over the
//!   residual of a paused pipeline gets strictly better information than
//!   the original plan had, and a re-plan loop cannot oscillate between
//!   two estimates.
//! - [`CalibratingCostModel`] accumulates `(queries, tuples shipped,
//!   measured cost)` samples from finished runs and re-fits `k1`/`k2` by
//!   closed-form least squares once two linearly independent samples
//!   exist. Until then it charges with its inner model, so a freshly
//!   built mediator plans exactly like an uncalibrated one.

use csqp_expr::CondTree;
use csqp_plan::cost::Cardinality;
use csqp_plan::model::CostModel;
use csqp_ssdl::linearize::{cond_fingerprint, Fingerprint};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A [`Cardinality`] overlay: the base estimator, floored by observed
/// result sizes. Conditions without an observation pass through untouched.
#[derive(Clone, Copy)]
pub struct CalibratedCard<'a> {
    inner: &'a dyn Cardinality,
    floors: &'a BTreeMap<Fingerprint, f64>,
}

impl<'a> CalibratedCard<'a> {
    /// Wraps `inner`, flooring its estimates by `floors` (keyed by
    /// [`cond_fingerprint`]).
    pub fn new(inner: &'a dyn Cardinality, floors: &'a BTreeMap<Fingerprint, f64>) -> Self {
        CalibratedCard { inner, floors }
    }
}

impl fmt::Debug for CalibratedCard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalibratedCard").field("floors", &self.floors.len()).finish()
    }
}

impl Cardinality for CalibratedCard<'_> {
    fn estimate(&self, cond: Option<&CondTree>) -> f64 {
        let base = {
            let e = self.inner.estimate(cond);
            if e.is_finite() {
                e.max(0.0)
            } else {
                0.0
            }
        };
        match self.floors.get(&cond_fingerprint(cond)) {
            Some(floor) => base.max(*floor),
            None => base,
        }
    }
}

/// Accumulated fit state (behind the model's mutex).
#[derive(Debug, Default)]
struct FitState {
    /// `(queries, tuples shipped, measured cost)` per observed run.
    samples: Vec<(f64, f64, f64)>,
    /// The current least-squares `(k1, k2)`, once solvable.
    fitted: Option<(f64, f64)>,
}

/// A [`CostModel`] that learns the affine constants from finished runs.
///
/// Each observed run contributes one equation `k1·queries + k2·tuples ≈
/// measured_cost`; with two linearly independent samples the 2×2 normal
/// equations have a unique solution. Negative solutions (possible when the
/// samples are noisy or nearly collinear) are clamped by re-solving the
/// constrained 1-D problem, keeping the fitted model monotone — the
/// soundness contract the PR1–PR3 pruning rules rely on.
pub struct CalibratingCostModel {
    inner: Arc<dyn CostModel + Send + Sync>,
    state: Mutex<FitState>,
}

impl fmt::Debug for CalibratingCostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("calibration lock");
        f.debug_struct("CalibratingCostModel")
            .field("samples", &state.samples.len())
            .field("fitted", &state.fitted)
            .finish()
    }
}

impl CalibratingCostModel {
    /// Wraps `inner`; charges with it until the fit converges.
    pub fn new(inner: Arc<dyn CostModel + Send + Sync>) -> Self {
        CalibratingCostModel { inner, state: Mutex::new(FitState::default()) }
    }

    /// Feeds one finished run's transfer meter and measured cost into the
    /// fit. Degenerate runs (no queries and no tuples) are ignored.
    pub fn observe_run(&self, queries: u64, tuples_shipped: u64, measured_cost: f64) {
        if (queries == 0 && tuples_shipped == 0) || !measured_cost.is_finite() {
            return;
        }
        let mut state = self.state.lock().expect("calibration lock");
        state.samples.push((queries as f64, tuples_shipped as f64, measured_cost.max(0.0)));
        Self::refit(&mut state);
    }

    /// The current fitted `(k1, k2)`, or `None` until two linearly
    /// independent samples have been observed.
    pub fn fitted(&self) -> Option<(f64, f64)> {
        self.state.lock().expect("calibration lock").fitted
    }

    /// How many runs have been observed.
    pub fn samples(&self) -> usize {
        self.state.lock().expect("calibration lock").samples.len()
    }

    /// Solves the normal equations of `min Σ (k1·qᵢ + k2·tᵢ − cᵢ)²`.
    fn refit(state: &mut FitState) {
        if state.samples.len() < 2 {
            return;
        }
        let (mut qq, mut qt, mut tt, mut qc, mut tc) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for &(q, t, c) in &state.samples {
            qq += q * q;
            qt += q * t;
            tt += t * t;
            qc += q * c;
            tc += t * c;
        }
        let det = qq * tt - qt * qt;
        // Collinear samples (e.g. the same query repeated) leave the system
        // singular: keep the previous fit rather than dividing by ~0.
        if det.abs() <= 1e-9 * (qq * tt).max(1.0) {
            return;
        }
        let mut k1 = (qc * tt - tc * qt) / det;
        let mut k2 = (tc * qq - qc * qt) / det;
        // Clamp negative constants by re-solving the constrained 1-D fit:
        // a cost model must be monotone in rows and per-query charge.
        if k1 < 0.0 {
            k1 = 0.0;
            k2 = if tt > 0.0 { (tc / tt).max(0.0) } else { 0.0 };
        } else if k2 < 0.0 {
            k2 = 0.0;
            k1 = if qq > 0.0 { (qc / qq).max(0.0) } else { 0.0 };
        }
        state.fitted = Some((k1, k2));
    }
}

impl CostModel for CalibratingCostModel {
    fn source_query_cost(&self, cond: Option<&CondTree>, n_attrs: usize, rows: f64) -> f64 {
        match self.fitted() {
            Some((k1, k2)) => k1 + k2 * rows.max(0.0),
            None => self.inner.source_query_cost(cond, n_attrs, rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_plan::cost::UniformCard;
    use csqp_source::CostParams;

    #[test]
    fn floors_raise_but_never_lower_estimates() {
        let base = UniformCard { rows: 1000.0, atom_selectivity: 0.01 };
        let c = parse_condition("a = 1").unwrap();
        let mut floors = BTreeMap::new();
        let card = CalibratedCard::new(&base, &floors);
        assert!((card.estimate(Some(&c)) - 10.0).abs() < 1e-9, "no floor: pass-through");

        floors.insert(cond_fingerprint(Some(&c)), 900.0);
        let card = CalibratedCard::new(&base, &floors);
        assert_eq!(card.estimate(Some(&c)), 900.0, "floor dominates the base estimate");

        // A floor below the base estimate changes nothing.
        floors.insert(cond_fingerprint(Some(&c)), 1.0);
        let card = CalibratedCard::new(&base, &floors);
        assert!((card.estimate(Some(&c)) - 10.0).abs() < 1e-9);

        // Unrelated conditions stay untouched.
        let other = parse_condition("b = 2").unwrap();
        assert!((card.estimate(Some(&other)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_base_estimates_are_guarded() {
        struct Nan;
        impl Cardinality for Nan {
            fn estimate(&self, _cond: Option<&CondTree>) -> f64 {
                f64::NAN
            }
        }
        let floors = BTreeMap::new();
        let card = CalibratedCard::new(&Nan, &floors);
        assert_eq!(card.estimate(None), 0.0, "NaN base clamps to zero");
    }

    #[test]
    fn least_squares_recovers_the_true_constants() {
        let model = CalibratingCostModel::new(Arc::new(CostParams::new(999.0, 999.0)));
        assert!(model.fitted().is_none());
        // Two exact samples of cost = 50·q + 2·t.
        model.observe_run(2, 100, 50.0 * 2.0 + 2.0 * 100.0);
        model.observe_run(5, 10, 50.0 * 5.0 + 2.0 * 10.0);
        let (k1, k2) = model.fitted().expect("two independent samples fit");
        assert!((k1 - 50.0).abs() < 1e-6, "k1 {k1}");
        assert!((k2 - 2.0).abs() < 1e-6, "k2 {k2}");
        // The fitted model now charges with the learned constants.
        assert!((model.source_query_cost(None, 3, 100.0) - 250.0).abs() < 1e-6);
        assert_eq!(model.samples(), 2);
    }

    #[test]
    fn collinear_samples_stay_unfitted_and_fall_back() {
        let model = CalibratingCostModel::new(Arc::new(CostParams::new(10.0, 1.0)));
        // The same run observed twice: one equation, no unique solution.
        model.observe_run(3, 30, 120.0);
        model.observe_run(3, 30, 120.0);
        assert!(model.fitted().is_none(), "singular system keeps the fallback");
        assert!((model.source_query_cost(None, 1, 5.0) - 15.0).abs() < 1e-9, "inner model charges");
        // Zero-work runs are ignored entirely.
        model.observe_run(0, 0, 0.0);
        assert_eq!(model.samples(), 2);
    }

    #[test]
    fn negative_solutions_are_clamped_monotone() {
        let model = CalibratingCostModel::new(Arc::new(CostParams::default()));
        // Adversarial samples whose unconstrained solution turns k1
        // negative: cost shrinks as queries grow at fixed tuples.
        model.observe_run(1, 100, 200.0);
        model.observe_run(10, 100, 100.0);
        let (k1, k2) = model.fitted().expect("fit exists");
        assert!(k1 >= 0.0 && k2 >= 0.0, "clamped: k1 {k1}, k2 {k2}");
        for rows in [0.0, 1.0, 100.0] {
            assert!(
                model.source_query_cost(None, 1, rows)
                    <= model.source_query_cost(None, 1, rows + 1.0)
            );
        }
    }
}
