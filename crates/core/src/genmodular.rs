//! GenModular (§5): the naive, exhaustive scheme — rewrite → mark →
//! generate (EPG) → cost, as in Figure 2.
//!
//! GenModular fires the full rewrite-rule set (commutative, associative,
//! distributive, copy) against the source's **original** description; this
//! is the scheme GenCompact is measured against in E3/E4/E7.

use crate::cache::CheckCache;
use crate::epg::{epg, EpgContext};
use crate::mark::mark;
use crate::types::{PlanError, PlannedQuery, PlannerReport, TargetQuery};
use csqp_expr::rewrite::{enumerate, RewriteBudget, RewriteRule};
use csqp_obs::{PlanEvent, QueryFlight};
use csqp_plan::cost::Cardinality;
use csqp_plan::model::CostModel;
use csqp_plan::resolve::resolve_with_cost;
use csqp_source::Source;
use std::time::Instant;

/// Configuration of the GenModular pipeline.
#[derive(Debug, Clone)]
pub struct GenModularConfig {
    /// Budget for the rewrite module's fixpoint enumeration.
    pub rewrite_budget: RewriteBudget,
    /// The rewrite rules fired (§5.1; defaults to all of them).
    pub rules: Vec<RewriteRule>,
}

impl Default for GenModularConfig {
    fn default() -> Self {
        GenModularConfig {
            rewrite_budget: RewriteBudget::default(),
            rules: RewriteRule::MODULAR.to_vec(),
        }
    }
}

/// Runs GenModular: returns the cheapest feasible plan across all rewritten
/// CTs, or [`PlanError::NoFeasiblePlan`].
pub fn plan_modular(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenModularConfig,
) -> Result<PlannedQuery, PlanError> {
    plan_modular_with_model(query, source, card, cfg, source.cost_params())
}

/// As [`plan_modular`] with an explicit cost model.
pub fn plan_modular_with_model(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenModularConfig,
    model: &dyn CostModel,
) -> Result<PlannedQuery, PlanError> {
    plan_modular_recorded(query, source, card, cfg, model, QueryFlight::disabled())
}

/// As [`plan_modular_with_model`], recording the decision trail (per-CT
/// rewriting, EPG plan-space size, per-CT candidate, candidate ranking)
/// into the given flight-recorder handle for `EXPLAIN WHY`. GenModular has
/// no pruning rules, so its trail shows the *exhaustive* plan spaces the
/// cost module resolved — which is exactly what a diff against GenCompact's
/// pruned trail should surface.
pub fn plan_modular_recorded(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenModularConfig,
    model: &dyn CostModel,
    flight: QueryFlight<'_>,
) -> Result<PlannedQuery, PlanError> {
    plan_modular_traced(query, source, card, cfg, model, flight, None)
}

/// As [`plan_modular_recorded`], additionally opening hierarchical spans
/// (`rewrite`, one `maxeval ct N` per rewriting around mark/EPG/resolve,
/// `rank`) on the given tracer for query profiles. Sequential call sites
/// only — federation fan-outs pass `None`.
pub fn plan_modular_traced(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenModularConfig,
    model: &dyn CostModel,
    flight: QueryFlight<'_>,
    tracer: Option<&csqp_obs::Tracer>,
) -> Result<PlannedQuery, PlanError> {
    let tracer = tracer.filter(|t| t.is_enabled());
    let start = Instant::now();
    // GenModular reasons against the original description; order variants
    // come from its own commutativity rule.
    let cache = CheckCache::new(source.gate_view());

    // Rewrite module.
    let rewrite_span = tracer.map(|t| t.span("rewrite"));
    let rewritten = enumerate(&query.cond, &cfg.rules, cfg.rewrite_budget);
    drop(rewrite_span);

    let mut candidates: Vec<(csqp_plan::Plan, f64)> = Vec::new();
    let mut plans_considered: u64 = 0;
    let mut generator_calls = 0usize;
    let mut truncated = rewritten.truncated;

    for (index, ct) in rewritten.cts.iter().enumerate() {
        flight.event_with(|| PlanEvent::CtBegin { index, cond: ct.to_string() });
        // MaxEval: the mark → EPG → cost-resolve chain for one rewriting.
        // Detailed per-CT spans stop past MAX_CT_SPANS (see types.rs).
        let _ct_span = ((index as u64) < crate::types::MAX_CT_SPANS)
            .then(|| tracer.map(|t| t.span(&format!("maxeval ct {index}"))))
            .flatten();
        // Mark module.
        let marked = mark(ct, &cache);
        // Generate module (EPG).
        let mut ctx = EpgContext::new(&cache);
        let Some(space) = epg(&marked, &query.attrs, &mut ctx) else {
            generator_calls += ctx.calls;
            truncated |= ctx.truncated;
            flight.event_with(|| PlanEvent::CtInfeasible { index });
            continue;
        };
        generator_calls += ctx.calls;
        truncated |= ctx.truncated;
        plans_considered = plans_considered.saturating_add(space.n_alternatives());
        flight.event_with(|| PlanEvent::EpgSpace { index, alternatives: space.n_alternatives() });
        // Cost module. Per-CT winners all survive: the overall best becomes
        // the plan, the losers become ranked failover alternatives.
        let (plan, cost) = resolve_with_cost(&space, model, card);
        flight.event_with(|| PlanEvent::CtCandidate { index, cost, plan: plan.to_string() });
        candidates.push((plan, cost));
    }
    flight.event_with(|| PlanEvent::CheckCacheStats {
        calls: cache.calls() as u64,
        hits: (cache.calls() - cache.parses()) as u64,
        misses: cache.parses() as u64,
    });

    let report = PlannerReport {
        cts_processed: rewritten.cts.len(),
        checks: cache.calls(),
        plans_considered,
        generator_calls,
        max_q: 0,
        truncated,
        // GenModular has no IPG memo or pruning rules; only the CheckCache
        // and rewrite counters apply.
        stats: crate::types::PlannerStats {
            check_calls: cache.calls(),
            check_cache_hits: cache.calls() - cache.parses(),
            check_cache_misses: cache.parses(),
            rewrites_generated: rewritten.cts.len(),
            ..Default::default()
        },
        elapsed: start.elapsed(),
    };

    let provenance: Vec<(String, f64)> = if flight.active() {
        candidates.iter().map(|(p, c)| (p.to_string(), *c)).collect()
    } else {
        Vec::new()
    };
    let _rank_span = tracer.map(|t| t.span("rank"));
    match crate::types::rank_candidates(candidates) {
        Some((plan, est_cost, alternatives)) => {
            crate::types::record_ranking_events(flight, &provenance, &plan, est_cost);
            Ok(PlannedQuery { plan, est_cost, report, alternatives })
        }
        None => {
            flight.event_with(|| PlanEvent::Note {
                text: "no feasible plan in any rewriting".to_string(),
            });
            Err(PlanError::NoFeasiblePlan { query: query.to_string(), scheme: "GenModular" })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_plan::cost::StatsCard;
    use csqp_plan::{execute, is_feasible};
    use csqp_relation::datagen;
    use csqp_relation::ops::{project, select};
    use csqp_source::CostParams;
    use csqp_ssdl::templates;

    fn dealer() -> Source {
        Source::new(datagen::cars(3, 400), templates::car_dealer(), CostParams::default())
    }

    /// Example 5.1/5.2 end-to-end: the target with atoms in "wrong" order is
    /// planned via commutativity + copy rewrites.
    #[test]
    fn example_5_end_to_end() {
        let s = dealer();
        let q = TargetQuery::parse(
            "price < 40000 ^ color = \"red\" ^ make = \"BMW\"",
            &["model", "year"],
        )
        .unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_modular(&q, &s, &card, &GenModularConfig::default()).unwrap();
        assert!(planned.plan.is_concrete());
        assert!(is_feasible(&planned.plan, &s));
        assert!(planned.report.cts_processed > 1, "rewrites explored");
        // Executing it matches the oracle.
        let got = execute(&planned.plan, &s).unwrap();
        let oracle = project(&select(s.relation(), Some(&q.cond)), &["model", "year"]).unwrap();
        assert_eq!(got, oracle);
    }

    #[test]
    fn infeasible_everywhere_reports_error() {
        let s = dealer();
        // `year` is not usable in any condition and no download rule exists.
        let q = TargetQuery::parse("year = 1995", &["model"]).unwrap();
        let card = StatsCard::new(s.stats());
        let err = plan_modular(&q, &s, &card, &GenModularConfig::default()).unwrap_err();
        assert!(matches!(err, PlanError::NoFeasiblePlan { .. }));
    }

    #[test]
    fn budget_truncation_is_reported() {
        let s = dealer();
        let q = TargetQuery::parse(
            "price < 40000 ^ color = \"red\" ^ make = \"BMW\" ^ model = \"318i-1\"",
            &["model"],
        )
        .unwrap();
        let card = StatsCard::new(s.stats());
        let cfg = GenModularConfig {
            rewrite_budget: RewriteBudget { max_cts: 5, max_atoms: 8, max_depth: 4 },
            ..Default::default()
        };
        // With a tiny budget the planner may or may not find a plan, but it
        // must report truncation rather than silently claiming completeness.
        // An Err is acceptable too: the budget may be too small to find
        // any plan at all.
        if let Ok(p) = plan_modular(&q, &s, &card, &cfg) {
            assert!(p.report.truncated);
        }
    }

    #[test]
    fn report_counts_are_populated() {
        let s = dealer();
        let q = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model"]).unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_modular(&q, &s, &card, &GenModularConfig::default()).unwrap();
        let r = planned.report;
        assert!(r.cts_processed >= 1);
        assert!(r.checks > 0);
        assert!(r.plans_considered >= 1);
        assert!(r.generator_calls >= 1);
    }

    /// With full capability the pure plan must win (cheapest possible).
    #[test]
    fn full_capability_pushdown() {
        let r = datagen::cars(5, 300);
        let desc = templates::full_relational(
            "full",
            &[
                ("make", csqp_expr::ValueType::Str),
                ("color", csqp_expr::ValueType::Str),
                ("price", csqp_expr::ValueType::Int),
            ],
        );
        let s = Source::new(r, desc, CostParams::default());
        let q = TargetQuery::parse(
            "make = \"BMW\" ^ (color = \"red\" _ color = \"black\")",
            &["make", "color", "price"],
        )
        .unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_modular(&q, &s, &card, &GenModularConfig::default()).unwrap();
        match &planned.plan {
            csqp_plan::Plan::SourceQuery { cond, .. } => {
                assert!(cond.is_some(), "pure pushdown, not download");
            }
            other => panic!("expected pure plan, got {other}"),
        }
    }
}
