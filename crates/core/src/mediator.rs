//! The mediator façade: pick a scheme, plan a target query, execute it.
//!
//! This is also the wrapper-construction recipe of §2/§6: "if wrappers are
//! to provide generic relational capabilities for Internet sources, then
//! they need to implement a scheme like the one we describe" — a
//! [`Mediator`] over a single source *is* such a wrapper.

use crate::baselines::{
    plan_cnf_with_model, plan_disco_with_model, plan_dnf_with_model, plan_naive_with_model,
};
use crate::calibrate::{CalibratedCard, CalibratingCostModel};
use crate::gencompact::{plan_compact_traced, GenCompactConfig};
use crate::genmodular::{plan_modular_traced, GenModularConfig};
use crate::plancache::PlanCache;
use crate::types::{PlanError, PlannedQuery, TargetQuery};
use csqp_obs::{
    names, CardRow, FlightRecorder, LatencyKey, Obs, PlanEvent, QueryFlight, QueryProfile,
};
use csqp_plan::analyze::{execute_analyzed, PlanAnalysis};
use csqp_plan::cost::{Cardinality, OracleCard, StatsCard, UniformCard};
use csqp_plan::exec::{execute_measured, execute_resilient, ExecError, RetryPolicy};
use csqp_plan::exec_stream::{
    execute_stream_adaptive_each_traced, execute_stream_adaptive_traced,
    execute_stream_analyzed_traced, execute_stream_each_traced, execute_stream_measured_traced,
    execute_stream_resilient_traced, ReplanController, ReplanProbe, SpliceAction, StreamConfig,
    StreamStats,
};
use csqp_plan::model::CostModel;
use csqp_plan::AttrSet;
use csqp_relation::stream::TupleBatch;
use csqp_relation::Relation;
use csqp_source::{Meter, ResilienceMeter, Source};
use csqp_ssdl::linearize::{cond_fingerprint, Fingerprint};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The planning scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// GenCompact (§6) — the paper's contribution.
    GenCompact,
    /// GenModular (§5) — the naive exhaustive scheme.
    GenModular,
    /// Garlic-style CNF clause pushdown.
    Cnf,
    /// DNF term pushdown.
    Dnf,
    /// DISCO all-or-nothing.
    Disco,
    /// Naive full-relational pushdown.
    NaivePush,
}

impl Scheme {
    /// All schemes, GenCompact first (experiment table order).
    pub const ALL: [Scheme; 6] = [
        Scheme::GenCompact,
        Scheme::GenModular,
        Scheme::Cnf,
        Scheme::Dnf,
        Scheme::Disco,
        Scheme::NaivePush,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::GenCompact => "GenCompact",
            Scheme::GenModular => "GenModular",
            Scheme::Cnf => "CNF (Garlic)",
            Scheme::Dnf => "DNF",
            Scheme::Disco => "DISCO",
            Scheme::NaivePush => "NaivePush",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which cardinality estimator the cost model uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CardKind {
    /// Single-column statistics with independence (default).
    Stats,
    /// Exact sizes by executing selections against the relation (experiment
    /// oracle).
    Oracle,
    /// Fixed per-atom selectivity.
    Uniform {
        /// Assumed per-atom selectivity.
        atom_selectivity: f64,
    },
}

/// The outcome of planning + executing a target query.
#[derive(Debug)]
pub struct RunOutcome {
    /// The chosen plan and its estimated cost.
    pub planned: PlannedQuery,
    /// The query answer.
    pub rows: Relation,
    /// Transfer caused by this run (meter delta).
    pub meter: Meter,
    /// Measured cost of the run under the source's §6.2 constants.
    pub measured_cost: f64,
}

/// The outcome of a streaming run ([`Mediator::run_streamed`] and
/// friends): the plain outcome plus the pipeline's batch/memory stats.
#[derive(Debug)]
pub struct StreamedOutcome {
    /// The plan-and-execute outcome. For [`Mediator::run_streamed_each`]
    /// `rows` holds only what the sink did not consume — an empty relation
    /// when the sink accepted every batch.
    pub outcome: RunOutcome,
    /// Batch count, peak pipeline-resident tuples, overlap ticks.
    pub stats: StreamStats,
}

/// The outcome of an analyzed streaming run
/// ([`Mediator::run_streamed_analyzed`]).
#[derive(Debug)]
pub struct AnalyzedStreamOutcome {
    /// The plan-and-execute outcome.
    pub outcome: RunOutcome,
    /// Per-source-query observations, pre-order over the plan tree
    /// (leaves the run never opened are absent — early termination).
    pub analysis: PlanAnalysis,
    /// Batch/memory stats for the `EXPLAIN ANALYZE` streaming footer.
    pub stats: StreamStats,
}

impl AnalyzedStreamOutcome {
    /// Renders `EXPLAIN ANALYZE` with the streaming footer (batches and
    /// peak resident tuples).
    pub fn explain(&self) -> String {
        csqp_plan::exec_stream::explain_analyze_streamed(
            &self.outcome.planned.plan,
            &self.analysis,
            &self.stats,
        )
    }
}

/// The outcome of an analyzed run ([`Mediator::run_analyzed`]): the plain
/// outcome plus the per-source-query estimated-vs-observed record that
/// feeds `EXPLAIN ANALYZE` and the cost-model drift warnings.
#[derive(Debug)]
pub struct AnalyzedOutcome {
    /// The plan-and-execute outcome.
    pub outcome: RunOutcome,
    /// Per-source-query observations, pre-order over the plan tree.
    pub analysis: PlanAnalysis,
}

/// Knobs for an adaptive run ([`Mediator::run_adaptive`]).
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Streaming knobs (batch size, limit). Adaptive runs are forced
    /// serial by the engine regardless of the overlap setting.
    pub stream: StreamConfig,
    /// Per-batch retry policy applied *before* a leaf failure would reach
    /// the controller. `None` means any leaf fault is terminal.
    pub policy: Option<RetryPolicy>,
    /// Upper bound on drift-triggered splices for one run (the engine
    /// additionally enforces its own global cap).
    pub max_splices: u64,
    /// Drift band half-width: a subquery drifts when its observed
    /// cardinality exits `[est/factor, est·factor]` (the paper-motivated
    /// default of 2.0 gives the `[½, 2]×` band). Values below 1.0 clamp
    /// to 1.0.
    pub drift_factor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            stream: StreamConfig::serial(),
            policy: None,
            max_splices: 4,
            drift_factor: 2.0,
        }
    }
}

/// The outcome of an adaptive run ([`Mediator::run_adaptive`]).
#[derive(Debug)]
pub struct AdaptiveOutcome {
    /// The plan-and-execute outcome. `planned` holds the *original*
    /// chosen plan; when splices fired, the served pipeline diverged from
    /// it mid-flight (see the flight record's `[replan]` events). For
    /// [`Mediator::run_adaptive_each`] `rows` is empty (the sink consumed
    /// the answer).
    pub outcome: RunOutcome,
    /// Batch/memory stats accumulated across every pipeline segment.
    pub stats: StreamStats,
    /// Retry/fault metrics accumulated across the run.
    pub resilience: ResilienceMeter,
    /// How many re-planned sub-plans were spliced into the pipeline.
    pub splices: u64,
    /// How many times the drift detector fired (a trigger re-plans, but
    /// only splices when the re-planned residual structurally differs).
    pub drift_triggers: u64,
}

/// The drift-triggered [`ReplanController`]: watches per-leaf observed
/// cardinality against the planner's estimates at every batch boundary,
/// and when a subquery exits the drift band, re-runs the planner over the
/// residual condition with estimates floored at the observed counts.
struct DriftController<'a> {
    med: &'a Mediator,
    attrs: AttrSet,
    drift_factor: f64,
    max_splices: u64,
    /// Observed-cardinality floors, monotonically raised — a re-plan can
    /// only get better-informed, so splice loops cannot oscillate.
    floors: BTreeMap<Fingerprint, f64>,
    /// Planner estimates per leaf condition, memoized for the run: the
    /// estimate of a fixed condition never changes mid-query, and an
    /// oracle-backed estimator rescans the relation per call — without the
    /// cache every batch boundary would pay that scan for every leaf.
    est_cache: BTreeMap<Fingerprint, f64>,
    splices: u64,
    drift_triggers: u64,
    /// Next `probe.batches` value worth checking at; doubles after each
    /// trigger so a persistently drifting pipeline is not re-planned at
    /// every single batch.
    next_check: u64,
}

impl<'a> DriftController<'a> {
    fn new(med: &'a Mediator, query: &TargetQuery, cfg: &AdaptiveConfig) -> Self {
        DriftController {
            med,
            attrs: query.attrs.clone(),
            drift_factor: cfg.drift_factor.max(1.0),
            max_splices: cfg.max_splices,
            floors: BTreeMap::new(),
            est_cache: BTreeMap::new(),
            splices: 0,
            drift_triggers: 0,
            next_check: 1,
        }
    }
}

impl ReplanController for DriftController<'_> {
    fn on_batch(&mut self, probe: &ReplanProbe<'_>) -> Option<SpliceAction> {
        if self.splices >= self.max_splices || probe.batches < self.next_check {
            return None;
        }
        let med = self.med;
        let factor = self.drift_factor;
        // Scan the open leaves: raise floors where a source shipped past
        // the band's upper edge (mid-flight counts only grow, so upward
        // drift is provable before the leaf finishes); note low-side
        // drift on exhausted leaves (their exact cardinality is known).
        let mut raised = false;
        let mut low_drift = false;
        let mut detail: Option<String> = None;
        med.with_card(|card| {
            for leaf in probe.leaves {
                let fp = cond_fingerprint(leaf.cond.as_ref());
                let est = *self.est_cache.entry(fp).or_insert_with(|| {
                    let e = card.estimate(leaf.cond.as_ref());
                    if e.is_finite() {
                        e.max(0.0)
                    } else {
                        0.0
                    }
                });
                let obs = leaf.rows_out as f64;
                if (obs + 1.0) > factor * (est + 1.0) {
                    let floor = self.floors.entry(fp).or_insert(0.0);
                    if obs > *floor {
                        *floor = obs;
                        raised = true;
                        detail.get_or_insert_with(|| {
                            format!("{} shipped {obs:.0} rows against est {est:.1}", leaf.rendered)
                        });
                    }
                } else if leaf.done && (obs + 1.0) * factor < (est + 1.0) {
                    low_drift = true;
                    detail.get_or_insert_with(|| {
                        format!("{} finished at {obs:.0} rows against est {est:.1}", leaf.rendered)
                    });
                }
            }
        });
        if !raised && !low_drift {
            self.next_check = probe.batches + 1;
            return None;
        }
        self.drift_triggers += 1;
        med.obs.metrics.inc(names::REPLAN_TRIGGERED);
        med.obs.metrics.inc(names::REPLAN_DRIFT_TRIGGERS);
        self.next_check = probe.batches.max(1) * 2;
        if !raised {
            // A pure overestimate: floors cannot lower an estimate, so a
            // re-plan would reproduce the same plan. Count the trigger
            // (the calibration layer still learns from the finished run)
            // and keep streaming.
            return None;
        }
        let remaining = probe.remaining_plan()?;
        let residual = probe.residual_condition()?;
        let planned =
            med.replan_with_floors(&TargetQuery::new(residual, self.attrs.clone()), &self.floors)?;
        if planned.plan == remaining {
            // Better-informed MCSC stands by the running pipeline: no
            // structural change, nothing to splice.
            return None;
        }
        self.splices += 1;
        med.obs.metrics.inc(names::REPLAN_SPLICES);
        let detail = detail.unwrap_or_else(|| "cardinality drift".to_string());
        med.flight.note_latest(|| PlanEvent::Replan {
            trigger: "drift",
            detail: detail.clone(),
            batch: probe.batches,
            emitted: probe.emitted,
            old_plan: remaining.to_string(),
            new_plan: planned.plan.to_string(),
        });
        med.obs.tracer.event_with(|| {
            format!(
                "replan (drift) at batch {} after {} rows: {detail}",
                probe.batches, probe.emitted
            )
        });
        Some(SpliceAction { plan: planned.plan, source: med.source.clone() })
    }

    fn on_leaf_error(
        &mut self,
        _probe: &ReplanProbe<'_>,
        _err: &ExecError,
    ) -> Option<SpliceAction> {
        // A single-source mediator has nowhere else to send the residual;
        // member-level recovery lives in `Federation::run_adaptive`.
        None
    }
}

/// The outcome of a resilient run ([`Mediator::run_resilient`]).
#[derive(Debug)]
pub struct ResilientOutcome {
    /// The plan-and-execute outcome. `planned` holds the *primary* plan and
    /// its ranked alternatives; `rows`/`meter` come from the plan that
    /// actually served the answer.
    pub outcome: RunOutcome,
    /// Rank of the serving plan: 0 = primary, `i` = `i`-th alternative.
    pub plan_rank: usize,
    /// Cumulative resilience metrics across every plan tried.
    pub resilience: ResilienceMeter,
    /// `(rank, error)` for each plan that failed before the winner.
    pub failures: Vec<(usize, ExecError)>,
}

/// The error trail of a failed failover chain: `(plan rank, error)` per
/// candidate tried.
pub(crate) type FailureTrail = Vec<(usize, ExecError)>;

/// A failover win: the serving rank, its answer and transfer meter, plus
/// the trail of candidates that failed before it.
pub(crate) type FailoverWin = (usize, Relation, Meter, FailureTrail);

/// Tries `planned.plan` then each ranked alternative in cost order under
/// `policy`, accumulating resilience metrics (including one failover per
/// plan switch) into `res`. Returns the winning rank, its answer, and the
/// transfer it caused — or the error trail if every candidate failed.
///
/// Plan-construction bugs ([`ExecError::Unresolved`]/
/// [`ExecError::Malformed`]) abort immediately: every sibling plan came
/// from the same planner, and masking a bug with a fallback would hide it.
pub(crate) fn execute_with_failover(
    planned: &PlannedQuery,
    source: &Source,
    policy: &RetryPolicy,
    res: &mut ResilienceMeter,
) -> Result<FailoverWin, FailureTrail> {
    let mut failures: FailureTrail = Vec::new();
    let alternatives = planned.alternatives.iter().map(|a| &a.plan);
    for (rank, plan) in std::iter::once(&planned.plan).chain(alternatives).enumerate() {
        if rank > 0 {
            res.failovers += 1;
        }
        match execute_resilient(plan, source, policy, res) {
            Ok((rows, meter)) => return Ok((rank, rows, meter, failures)),
            Err(e @ (ExecError::Unresolved | ExecError::Malformed(_))) => {
                failures.push((rank, e));
                return Err(failures);
            }
            Err(e) => failures.push((rank, e)),
        }
    }
    Err(failures)
}

/// Execution-stage errors surfaced by [`Mediator::run`].
#[derive(Debug)]
pub enum MediatorError {
    /// Planning failed.
    Plan(PlanError),
    /// Execution failed (should not happen for feasible plans).
    Exec(ExecError),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::Plan(e) => write!(f, "{e}"),
            MediatorError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<PlanError> for MediatorError {
    fn from(e: PlanError) -> Self {
        MediatorError::Plan(e)
    }
}

impl From<ExecError> for MediatorError {
    fn from(e: ExecError) -> Self {
        MediatorError::Exec(e)
    }
}

/// A mediator over one capability-limited source.
pub struct Mediator {
    source: Arc<Source>,
    scheme: Scheme,
    card: CardKind,
    compact_cfg: GenCompactConfig,
    modular_cfg: GenModularConfig,
    model: Option<Arc<dyn CostModel + Send + Sync>>,
    calibration: Option<Arc<CalibratingCostModel>>,
    obs: Arc<Obs>,
    flight: Arc<FlightRecorder>,
    plan_cache: Option<Arc<PlanCache>>,
}

impl fmt::Debug for Mediator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mediator")
            .field("source", &self.source.name)
            .field("scheme", &self.scheme)
            .field("card", &self.card)
            .field("custom_model", &self.model.is_some())
            .finish()
    }
}

impl Mediator {
    /// A GenCompact mediator with statistics-based costing.
    pub fn new(source: Arc<Source>) -> Self {
        Mediator {
            source,
            scheme: Scheme::GenCompact,
            card: CardKind::Stats,
            compact_cfg: GenCompactConfig::default(),
            modular_cfg: GenModularConfig::default(),
            model: None,
            calibration: None,
            obs: Arc::new(Obs::new()),
            // Disarmed by default: the planning hot path stays
            // provenance-free until a caller explicitly arms a recorder.
            flight: Arc::new(FlightRecorder::off()),
            plan_cache: None,
        }
    }

    /// Shares an observability handle (metrics registry + tracer) with this
    /// mediator. Several mediators can share one handle; their counters
    /// accumulate into the same registry.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle: every planner/executor counter this
    /// mediator records, plus its deterministic trace.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// A point-in-time snapshot of every metric this mediator has recorded
    /// (empty when the `obs` feature is off — the no-op recorder drops
    /// everything at compile time).
    pub fn metrics_snapshot(&self) -> csqp_obs::MetricsSnapshot {
        self.obs.metrics.snapshot()
    }

    /// Arms this mediator with a flight recorder: every subsequent
    /// [`Mediator::plan`] call leaves a per-query decision trail
    /// (admissions, PR1/PR2/PR3 prunes, MCSC covers, ranking) replayable
    /// via [`Mediator::explain_why`]. Several mediators can share one
    /// recorder; records stay per-query. The default recorder is disarmed
    /// ([`FlightRecorder::off`]) and costs nothing on the planning path.
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = recorder;
        self
    }

    /// The flight recorder (disarmed unless one was installed with
    /// [`Mediator::with_flight_recorder`]).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Renders the `EXPLAIN WHY` report for the most recently planned
    /// query: the winner's decision trail plus the eliminating rule for
    /// every losing candidate. Returns a "recorder disabled" notice when no
    /// armed recorder has captured a flight (including every `obs`-off
    /// build, where the recorder is compiled to a no-op).
    pub fn explain_why(&self) -> String {
        csqp_plan::why::explain_why(self.flight.latest().as_ref())
    }

    /// Overrides the cost model used for planning (§7 flexibility). The
    /// default is the source's §6.2 affine constants. Note that
    /// [`RunOutcome::measured_cost`] always reports in the §6.2 affine units
    /// (the meter records queries and tuples, not byte widths).
    pub fn with_cost_model(mut self, model: Arc<dyn CostModel + Send + Sync>) -> Self {
        self.model = Some(model);
        self
    }

    /// Installs a [`CalibratingCostModel`]: the mediator plans with it
    /// (initially delegating to the model it wraps) and feeds every
    /// finished adaptive run's transfer meter and measured cost back into
    /// its `k1`/`k2` fit — so estimates converge toward the source's real
    /// §6.2 constants across runs.
    pub fn with_calibration(mut self, model: Arc<CalibratingCostModel>) -> Self {
        self.calibration = Some(model.clone());
        self.model = Some(model);
        self
    }

    /// The installed calibration layer, if any.
    pub fn calibration(&self) -> Option<&Arc<CalibratingCostModel>> {
        self.calibration.as_ref()
    }

    /// Ties a shared [`PlanCache`] to this mediator's calibration layer:
    /// when an observed run *changes* the fitted `(k1, k2)` — i.e. the cost
    /// model the cached plans were ranked under is no longer the cost model
    /// in force — every prepared plan is invalidated. Install the same
    /// cache handle on the [`crate::Federation`] that serves lookups.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Selects the planning scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Selects the cardinality estimator.
    pub fn with_cardinality(mut self, card: CardKind) -> Self {
        self.card = card;
        self
    }

    /// Overrides the GenCompact configuration.
    pub fn with_compact_config(mut self, cfg: GenCompactConfig) -> Self {
        self.compact_cfg = cfg;
        self
    }

    /// Overrides the GenModular configuration.
    pub fn with_modular_config(mut self, cfg: GenModularConfig) -> Self {
        self.modular_cfg = cfg;
        self
    }

    /// The source this mediator fronts.
    pub fn source(&self) -> &Arc<Source> {
        &self.source
    }

    /// The active scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Runs `f` with the cardinality estimator selected by
    /// [`Mediator::with_cardinality`].
    fn with_card<T>(&self, f: impl FnOnce(&dyn Cardinality) -> T) -> T {
        let s = &self.source;
        match self.card {
            CardKind::Stats => f(&StatsCard::new(s.stats())),
            CardKind::Oracle => f(&OracleCard::new(s.relation())),
            CardKind::Uniform { atom_selectivity } => {
                f(&UniformCard { rows: s.relation().len() as f64, atom_selectivity })
            }
        }
    }

    /// The active cost model: the caller's override, or the source's §6.2
    /// affine constants.
    fn active_model(&self) -> &dyn CostModel {
        match &self.model {
            Some(m) => m.as_ref(),
            None => self.source.cost_params(),
        }
    }

    /// Plans a target query without executing it.
    pub fn plan(&self, query: &TargetQuery) -> Result<PlannedQuery, PlanError> {
        let span = self.obs.tracer.span("plan");
        self.obs
            .tracer
            .event_with(|| format!("scheme {} on source {}", self.scheme, self.source.name));
        let flight = self.flight.begin_with(|| (query.to_string(), self.scheme.name().to_string()));
        let planned =
            self.with_card(|card| self.dispatch(query, card, flight, Some(&self.obs.tracer)));
        match &planned {
            Ok(p) => {
                // Flush the planner's deterministic counters into the
                // registry and leave a replayable summary in the trace
                // (`elapsed` stays out of both — wall clock is not
                // deterministic).
                p.report.record_into(&self.obs.metrics);
                self.obs.tracer.event_with(|| {
                    format!(
                        "planned: est cost {:.2}, {} alternatives, {} checks, {} plans considered",
                        p.est_cost,
                        p.alternatives.len(),
                        p.report.checks,
                        p.report.plans_considered
                    )
                });
            }
            Err(e) => self.obs.tracer.event_with(|| format!("plan failed: {e}")),
        }
        span.close();
        planned
    }

    fn dispatch(
        &self,
        query: &TargetQuery,
        card: &dyn csqp_plan::cost::Cardinality,
        flight: QueryFlight<'_>,
        tracer: Option<&csqp_obs::Tracer>,
    ) -> Result<PlannedQuery, PlanError> {
        let s = &self.source;
        let model = self.active_model();
        match self.scheme {
            Scheme::GenCompact => {
                plan_compact_traced(query, s, card, &self.compact_cfg, model, flight, tracer)
            }
            Scheme::GenModular => {
                plan_modular_traced(query, s, card, &self.modular_cfg, model, flight, tracer)
            }
            baseline => {
                let planned = match baseline {
                    Scheme::Cnf => plan_cnf_with_model(query, s, card, model),
                    Scheme::Dnf => plan_dnf_with_model(query, s, card, model),
                    Scheme::Disco => plan_disco_with_model(query, s, card, model),
                    _ => plan_naive_with_model(query, s, card, model),
                };
                // The baselines are single-shot translations with no search
                // to narrate; record the outcome so EXPLAIN WHY still names
                // the winner (or the failure) for these schemes.
                match &planned {
                    Ok(p) => {
                        flight.event_with(|| PlanEvent::Note {
                            text: format!(
                                "{} is a single-shot baseline: no per-decision provenance",
                                baseline.name()
                            ),
                        });
                        flight.event_with(|| PlanEvent::Winner {
                            cost: p.est_cost,
                            plan: p.plan.to_string(),
                        });
                    }
                    Err(e) => {
                        flight.event_with(|| PlanEvent::Note { text: format!("plan failed: {e}") })
                    }
                }
                planned
            }
        }
    }

    /// Plans and executes a target query, reporting the answer and the
    /// transfer it caused.
    pub fn run(&self, query: &TargetQuery) -> Result<RunOutcome, MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute");
        let (rows, meter) = execute_measured(&planned.plan, &self.source)?;
        let measured_cost = meter.cost(self.source.cost_params());
        self.record_run(&planned, &rows, &meter, measured_cost);
        span.close();
        Ok(RunOutcome { planned, rows, meter, measured_cost })
    }

    /// Records one executed run's transfer and cost into the registry and
    /// the trace.
    fn record_run(&self, planned: &PlannedQuery, rows: &Relation, meter: &Meter, cost: f64) {
        meter.record_into(&self.obs.metrics);
        self.obs.metrics.gauge_set(names::EXEC_EST_COST, planned.est_cost);
        self.obs.metrics.gauge_set(names::EXEC_OBSERVED_COST, cost);
        self.obs.tracer.event_with(|| {
            format!(
                "answered: {} rows, {} source queries, measured cost {:.2} (est {:.2})",
                rows.len(),
                meter.queries,
                cost,
                planned.est_cost
            )
        });
    }

    /// Plans and executes with per-source-query observation: every leaf
    /// fetch records its observed row count and §6.2 cost next to the
    /// planner's estimate, feeding `EXPLAIN ANALYZE`
    /// ([`csqp_plan::analyze::explain_analyze`]) and the cost-model drift
    /// warnings.
    pub fn run_analyzed(&self, query: &TargetQuery) -> Result<AnalyzedOutcome, MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute (analyzed)");
        let (rows, meter, analysis) = self.with_card(|card| {
            execute_analyzed(&planned.plan, &self.source, self.active_model(), card)
        })?;
        let measured_cost = meter.cost(self.source.cost_params());
        self.record_run(&planned, &rows, &meter, measured_cost);
        analysis.record_into(&self.obs.metrics);
        for w in analysis.drift_warnings() {
            self.obs.tracer.event_with(|| w.clone());
        }
        span.close();
        Ok(AnalyzedOutcome {
            outcome: RunOutcome { planned, rows, meter, measured_cost },
            analysis,
        })
    }

    /// Plans and executes with resilience: source queries retry with
    /// backoff per `policy`, and when the chosen plan still fails the
    /// mediator degrades gracefully to the next-cheapest ranked alternative
    /// instead of erroring. The error of every failed candidate is kept in
    /// [`ResilientOutcome::failures`] for explainability.
    pub fn run_resilient(
        &self,
        query: &TargetQuery,
        policy: &RetryPolicy,
    ) -> Result<ResilientOutcome, MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute (resilient)");
        let mut resilience = ResilienceMeter::default();
        let result = execute_with_failover(&planned, &self.source, policy, &mut resilience);
        // Resilience events always reach the registry — a failed run is
        // exactly when the retry/breaker counters matter most.
        resilience.record_into(&self.obs.metrics);
        match result {
            Ok((plan_rank, rows, meter, failures)) => {
                let measured_cost = meter.cost(self.source.cost_params());
                self.record_run(&planned, &rows, &meter, measured_cost);
                // Failover is part of the query's story: append it to the
                // flight record begun at plan time so EXPLAIN WHY shows the
                // plan that actually served alongside the one that won.
                for (rank, err) in &failures {
                    self.flight.note_latest(|| PlanEvent::Failover {
                        rank: *rank,
                        detail: err.to_string(),
                    });
                }
                if plan_rank > 0 {
                    self.flight.note_latest(|| PlanEvent::Note {
                        text: format!("served by ranked alternative #{plan_rank}"),
                    });
                }
                self.obs.tracer.event_with(|| {
                    format!(
                        "served by plan rank {plan_rank} after {} failover(s), {} retries",
                        resilience.failovers, resilience.retries
                    )
                });
                span.close();
                Ok(ResilientOutcome {
                    outcome: RunOutcome { planned, rows, meter, measured_cost },
                    plan_rank,
                    resilience,
                    failures,
                })
            }
            Err(mut failures) => {
                for (rank, err) in &failures {
                    self.flight.note_latest(|| PlanEvent::Failover {
                        rank: *rank,
                        detail: err.to_string(),
                    });
                }
                let (_, last) = failures.pop().expect("at least the primary plan was tried");
                self.obs.tracer.event_with(|| format!("every plan died: {last}"));
                span.close();
                Err(MediatorError::Exec(last))
            }
        }
    }

    /// Records one streaming run's stats into the registry, the trace, and
    /// the query's flight record. `exec.overlap_ticks` reaches metrics only
    /// (nondeterministic under `parallel`); the flight note sticks to the
    /// deterministic pair so EXPLAIN WHY stays golden-testable.
    fn record_stream(&self, stats: &StreamStats) {
        stats.record_into(&self.obs.metrics);
        self.obs.tracer.event_with(|| {
            format!(
                "streamed: {} batches, peak resident {} tuples",
                stats.batches, stats.peak_resident_tuples
            )
        });
        self.flight.note_latest(|| PlanEvent::Note {
            text: format!(
                "streamed: {} batches, peak resident {} tuples",
                stats.batches, stats.peak_resident_tuples
            ),
        });
    }

    /// Plans and executes a target query on the streaming engine: batches
    /// pull through the pipeline under bounded memory, accumulate into the
    /// answer relation, and the run's [`StreamStats`] land in the `exec.*`
    /// metrics. Honors [`StreamConfig::limit`] for early termination.
    pub fn run_streamed(
        &self,
        query: &TargetQuery,
        cfg: &StreamConfig,
    ) -> Result<StreamedOutcome, MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute (streamed)");
        let (rows, meter, stats) = execute_stream_measured_traced(
            &planned.plan,
            &self.source,
            cfg,
            Some(&self.obs.tracer),
        )?;
        let measured_cost = meter.cost(self.source.cost_params());
        self.record_run(&planned, &rows, &meter, measured_cost);
        self.record_stream(&stats);
        span.close();
        Ok(StreamedOutcome { outcome: RunOutcome { planned, rows, meter, measured_cost }, stats })
    }

    /// Plans and streams a target query, handing each deduplicated answer
    /// batch to `sink` as it is produced (return `false` to stop early) —
    /// the incremental entry point `csqp serve` uses for chunked responses.
    /// The returned outcome's `rows` is empty (the sink consumed the
    /// answer); `meter`/`measured_cost`/`stats` cover the whole run.
    pub fn run_streamed_each(
        &self,
        query: &TargetQuery,
        cfg: &StreamConfig,
        sink: &mut dyn FnMut(TupleBatch) -> bool,
    ) -> Result<StreamedOutcome, MediatorError> {
        let planned = self.plan(query)?;
        self.run_streamed_each_planned(planned, cfg, sink)
    }

    /// [`Mediator::run_streamed_each`] with planning already done — the
    /// executor for prepared plans served out of a
    /// [`PlanCache`]: the rebound plan goes straight to
    /// the streaming engine without touching the planner.
    pub fn run_streamed_each_planned(
        &self,
        planned: PlannedQuery,
        cfg: &StreamConfig,
        sink: &mut dyn FnMut(TupleBatch) -> bool,
    ) -> Result<StreamedOutcome, MediatorError> {
        let span = self.obs.tracer.span("execute (streamed)");
        let before = self.source.meter();
        let mut emitted = 0u64;
        let mut schema = None;
        let (_, stats) = execute_stream_each_traced(
            &planned.plan,
            &self.source,
            cfg,
            Some(&self.obs.tracer),
            &mut |b| {
                emitted += b.len() as u64;
                schema.get_or_insert_with(|| b.schema().clone());
                sink(b)
            },
        )?;
        let after = self.source.meter();
        let meter = Meter {
            queries: after.queries - before.queries,
            tuples_shipped: after.tuples_shipped - before.tuples_shipped,
            rejected: after.rejected - before.rejected,
        };
        let measured_cost = meter.cost(self.source.cost_params());
        let rows = Relation::empty(match schema {
            Some(s) => s,
            None => {
                let attrs: Vec<&str> =
                    planned.plan.output_attrs().iter().map(String::as_str).collect();
                self.source
                    .relation()
                    .schema()
                    .project(&attrs)
                    .map_err(|e| MediatorError::Exec(ExecError::Schema(e.to_string())))?
            }
        });
        self.obs.tracer.event_with(|| format!("streamed {emitted} rows to sink"));
        self.record_run(&planned, &rows, &meter, measured_cost);
        self.record_stream(&stats);
        span.close();
        Ok(StreamedOutcome { outcome: RunOutcome { planned, rows, meter, measured_cost }, stats })
    }

    /// Streaming twin of [`Mediator::run_resilient`]: per-batch retries
    /// (a mid-stream fault repeats only the failed round-trip), then
    /// failover to the next-cheapest ranked alternative when a plan still
    /// dies mid-stream.
    pub fn run_streamed_resilient(
        &self,
        query: &TargetQuery,
        policy: &RetryPolicy,
        cfg: &StreamConfig,
    ) -> Result<(StreamedOutcome, ResilienceMeter), MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute (streamed, resilient)");
        let mut resilience = ResilienceMeter::default();
        let mut failures: Vec<(usize, ExecError)> = Vec::new();
        let alternatives = planned.alternatives.iter().map(|a| &a.plan);
        let mut win = None;
        for (rank, plan) in std::iter::once(&planned.plan).chain(alternatives).enumerate() {
            if rank > 0 {
                resilience.failovers += 1;
            }
            match execute_stream_resilient_traced(
                plan,
                &self.source,
                policy,
                &mut resilience,
                cfg,
                Some(&self.obs.tracer),
            ) {
                Ok((rows, meter, stats)) => {
                    win = Some((rank, rows, meter, stats));
                    break;
                }
                Err(e @ (ExecError::Unresolved | ExecError::Malformed(_))) => {
                    failures.push((rank, e));
                    break;
                }
                Err(e) => failures.push((rank, e)),
            }
        }
        resilience.record_into(&self.obs.metrics);
        for (rank, err) in &failures {
            self.flight
                .note_latest(|| PlanEvent::Failover { rank: *rank, detail: err.to_string() });
        }
        match win {
            Some((rank, rows, meter, stats)) => {
                let measured_cost = meter.cost(self.source.cost_params());
                self.record_run(&planned, &rows, &meter, measured_cost);
                self.record_stream(&stats);
                if rank > 0 {
                    self.flight.note_latest(|| PlanEvent::Note {
                        text: format!("served by ranked alternative #{rank}"),
                    });
                }
                span.close();
                Ok((
                    StreamedOutcome {
                        outcome: RunOutcome { planned, rows, meter, measured_cost },
                        stats,
                    },
                    resilience,
                ))
            }
            None => {
                let (_, last) = failures.pop().expect("at least the primary plan was tried");
                self.obs.tracer.event_with(|| format!("every plan died: {last}"));
                span.close();
                Err(MediatorError::Exec(last))
            }
        }
    }

    /// Streaming twin of [`Mediator::run_analyzed`]: per-source-query
    /// estimated-vs-observed observation plus the pipeline's batch/memory
    /// stats, rendered by [`AnalyzedStreamOutcome::explain`] as `EXPLAIN
    /// ANALYZE` with a streaming footer.
    pub fn run_streamed_analyzed(
        &self,
        query: &TargetQuery,
        cfg: &StreamConfig,
    ) -> Result<AnalyzedStreamOutcome, MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute (streamed, analyzed)");
        let (rows, meter, analysis, stats) = self.with_card(|card| {
            execute_stream_analyzed_traced(
                &planned.plan,
                &self.source,
                self.active_model(),
                card,
                cfg,
                Some(&self.obs.tracer),
            )
        })?;
        let measured_cost = meter.cost(self.source.cost_params());
        self.record_run(&planned, &rows, &meter, measured_cost);
        self.record_stream(&stats);
        analysis.record_into(&self.obs.metrics);
        for w in analysis.drift_warnings() {
            self.obs.tracer.event_with(|| w.clone());
        }
        span.close();
        Ok(AnalyzedStreamOutcome {
            outcome: RunOutcome { planned, rows, meter, measured_cost },
            analysis,
            stats,
        })
    }

    /// Re-plans a (residual) query with cardinality estimates floored at
    /// the observed per-condition counts in `floors`. Used mid-flight by
    /// the adaptive controllers; the planner's search runs disarmed (no
    /// flight record of its own — the splice is narrated as a `Replan`
    /// event on the original query's record) but its deterministic work
    /// counters still land in the registry. `None` when the residual is
    /// infeasible — the caller keeps the running pipeline.
    pub(crate) fn replan_with_floors(
        &self,
        query: &TargetQuery,
        floors: &BTreeMap<Fingerprint, f64>,
    ) -> Option<PlannedQuery> {
        let off = FlightRecorder::off();
        let flight = off.begin_with(|| (query.to_string(), self.scheme.name().to_string()));
        // Replans run from sequential pause points (batch boundaries), so
        // their search legitimately nests a `replan` span under the running
        // execute span.
        let _replan_span = self.obs.tracer.span("replan");
        let planned = self.with_card(|card| {
            let cal = CalibratedCard::new(card, floors);
            self.dispatch(query, &cal, flight, Some(&self.obs.tracer))
        });
        match planned {
            Ok(p) => {
                p.report.record_into(&self.obs.metrics);
                Some(p)
            }
            Err(e) => {
                self.obs.tracer.event_with(|| format!("replan infeasible: {e}"));
                None
            }
        }
    }

    /// Feeds a finished run's transfer meter and measured cost into the
    /// calibration layer, when one is installed.
    fn record_calibration(&self, meter: &Meter, measured_cost: f64) {
        if let Some(cal) = &self.calibration {
            let before = cal.fitted();
            cal.observe_run(meter.queries, meter.tuples_shipped, measured_cost);
            let after = cal.fitted();
            self.obs.tracer.event_with(|| {
                format!("calibration: {} run(s) observed, fitted {after:?}", cal.samples())
            });
            // A refit means cached plans were ranked under a cost model
            // that is no longer in force: drop them.
            if before != after {
                if let Some(cache) = &self.plan_cache {
                    let dropped = cache.invalidate_all();
                    self.obs.metrics.inc(names::PLANCACHE_INVALIDATIONS);
                    self.obs.tracer.event_with(|| {
                        format!(
                            "plan cache invalidated (cost-model refit {before:?} -> {after:?}): \
                             {dropped} entries dropped"
                        )
                    });
                }
            }
        }
    }

    /// Plans and executes on the streaming engine with mid-query adaptive
    /// re-planning: after every emitted batch a drift detector compares
    /// each source query's observed cardinality against its estimate, and
    /// when one exits the `[est/f, est·f]` band the pipeline pauses at the
    /// batch boundary, MCSC re-runs over the *residual* condition with
    /// estimates floored at the observed counts, and a structurally
    /// different winner is spliced in. Cross-segment deduplication keeps
    /// the answer set-identical to a non-adaptive run; with the `adaptive`
    /// feature off this delegates to plain streaming (splices always 0).
    pub fn run_adaptive(
        &self,
        query: &TargetQuery,
        cfg: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, MediatorError> {
        let planned = self.plan(query)?;
        let span = self.obs.tracer.span("execute (adaptive)");
        let before = self.source.meter();
        let mut resilience = ResilienceMeter::default();
        let mut ctl = DriftController::new(self, query, cfg);
        let result = execute_stream_adaptive_traced(
            &planned.plan,
            &self.source,
            cfg.policy.as_ref(),
            &mut resilience,
            &cfg.stream,
            &mut ctl,
            Some(&self.obs.tracer),
        );
        let drift_triggers = ctl.drift_triggers;
        resilience.record_into(&self.obs.metrics);
        let (rows, stats, splices) = match result {
            Ok(ok) => ok,
            Err(e) => {
                self.obs.tracer.event_with(|| format!("adaptive run died: {e}"));
                span.close();
                return Err(MediatorError::Exec(e));
            }
        };
        let after = self.source.meter();
        let meter = Meter {
            queries: after.queries - before.queries,
            tuples_shipped: after.tuples_shipped - before.tuples_shipped,
            rejected: after.rejected - before.rejected,
        };
        let measured_cost = meter.cost(self.source.cost_params());
        self.record_run(&planned, &rows, &meter, measured_cost);
        self.record_stream(&stats);
        self.record_calibration(&meter, measured_cost);
        if splices > 0 {
            self.obs.tracer.event_with(|| {
                format!("adaptive: {splices} splice(s) from {drift_triggers} drift trigger(s)")
            });
        }
        span.close();
        Ok(AdaptiveOutcome {
            outcome: RunOutcome { planned, rows, meter, measured_cost },
            stats,
            resilience,
            splices,
            drift_triggers,
        })
    }

    /// Sink-driven twin of [`Mediator::run_adaptive`]: each deduplicated
    /// answer batch goes to `sink` as it is produced (return `false` to
    /// stop early) — the adaptive entry point `csqp serve` streams chunked
    /// responses through. The returned outcome's `rows` is empty.
    pub fn run_adaptive_each(
        &self,
        query: &TargetQuery,
        cfg: &AdaptiveConfig,
        sink: &mut dyn FnMut(TupleBatch) -> bool,
    ) -> Result<AdaptiveOutcome, MediatorError> {
        let planned = self.plan(query)?;
        self.run_adaptive_each_planned(query, planned, cfg, sink)
    }

    /// [`Mediator::run_adaptive_each`] with planning already done — the
    /// executor for prepared plans served out of a
    /// [`PlanCache`]. `query` is still needed: the drift
    /// controller re-plans the *residual* condition when a splice fires.
    pub fn run_adaptive_each_planned(
        &self,
        query: &TargetQuery,
        planned: PlannedQuery,
        cfg: &AdaptiveConfig,
        sink: &mut dyn FnMut(TupleBatch) -> bool,
    ) -> Result<AdaptiveOutcome, MediatorError> {
        let span = self.obs.tracer.span("execute (adaptive)");
        let before = self.source.meter();
        let mut resilience = ResilienceMeter::default();
        let mut ctl = DriftController::new(self, query, cfg);
        let mut emitted = 0u64;
        let mut schema = None;
        let result = execute_stream_adaptive_each_traced(
            &planned.plan,
            &self.source,
            cfg.policy.as_ref(),
            &mut resilience,
            &cfg.stream,
            &mut ctl,
            Some(&self.obs.tracer),
            &mut |b| {
                emitted += b.len() as u64;
                schema.get_or_insert_with(|| b.schema().clone());
                sink(b)
            },
        );
        let drift_triggers = ctl.drift_triggers;
        resilience.record_into(&self.obs.metrics);
        let (_, stats, splices) = match result {
            Ok(ok) => ok,
            Err(e) => {
                self.obs.tracer.event_with(|| format!("adaptive run died: {e}"));
                span.close();
                return Err(MediatorError::Exec(e));
            }
        };
        let after = self.source.meter();
        let meter = Meter {
            queries: after.queries - before.queries,
            tuples_shipped: after.tuples_shipped - before.tuples_shipped,
            rejected: after.rejected - before.rejected,
        };
        let measured_cost = meter.cost(self.source.cost_params());
        let rows = Relation::empty(match schema {
            Some(s) => s,
            None => {
                let attrs: Vec<&str> =
                    planned.plan.output_attrs().iter().map(String::as_str).collect();
                self.source
                    .relation()
                    .schema()
                    .project(&attrs)
                    .map_err(|e| MediatorError::Exec(ExecError::Schema(e.to_string())))?
            }
        });
        self.obs.tracer.event_with(|| format!("streamed {emitted} rows to sink"));
        self.record_run(&planned, &rows, &meter, measured_cost);
        self.record_stream(&stats);
        self.record_calibration(&meter, measured_cost);
        span.close();
        Ok(AdaptiveOutcome {
            outcome: RunOutcome { planned, rows, meter, measured_cost },
            stats,
            resilience,
            splices,
            drift_triggers,
        })
    }

    /// Plans a query and captures a [`QueryProfile`] of the planning work:
    /// the span tree under `plan`, the registry delta, and the flight
    /// trail. `rows`/cardinalities stay empty — nothing executed.
    pub fn plan_profiled(
        &self,
        query: &TargetQuery,
    ) -> Result<(PlannedQuery, QueryProfile), PlanError> {
        let capture = self.begin_profile();
        let planned = self.plan(query)?;
        let mut profile = self.finish_profile(capture, query);
        profile.est_cost = planned.est_cost;
        Ok((planned, profile))
    }

    /// Plans and executes with per-source-query observation
    /// ([`Mediator::run_analyzed`]) and captures the full [`QueryProfile`]:
    /// span tree, metrics delta, flight trail, and est-vs-observed
    /// cardinalities per subquery. This is what `--explain=profile` renders.
    pub fn run_profiled(
        &self,
        query: &TargetQuery,
    ) -> Result<(AnalyzedOutcome, QueryProfile), MediatorError> {
        let capture = self.begin_profile();
        let outcome = self.run_analyzed(query)?;
        let mut profile = self.finish_profile(capture, query);
        profile.rows = outcome.outcome.rows.len() as u64;
        profile.est_cost = outcome.outcome.planned.est_cost;
        profile.observed_cost = outcome.outcome.measured_cost;
        profile.cardinalities = outcome
            .analysis
            .subqueries
            .iter()
            .map(|sq| CardRow {
                label: sq.rendered.clone(),
                est_rows: sq.est_rows,
                observed_rows: sq.observed_rows,
            })
            .collect();
        Ok((outcome, profile))
    }

    /// Marks the start of a profile capture window on the shared registry,
    /// tracer, and clock.
    fn begin_profile(&self) -> ProfileCapture {
        ProfileCapture {
            metrics_before: self.obs.metrics.snapshot(),
            span_mark: self.obs.tracer.span_mark(),
            tick0: self.obs.tracer.tick(),
        }
    }

    /// Assembles the profile skeleton for everything recorded since
    /// `capture`: spans, metrics delta, flight trail, virtual-tick latency.
    /// The caller fills in outcome-specific fields (rows, costs,
    /// cardinalities).
    fn finish_profile(&self, capture: ProfileCapture, query: &TargetQuery) -> QueryProfile {
        self.obs.metrics.inc(names::PROFILE_CAPTURED);
        let (id, flight) = match self.flight.latest() {
            Some(rec) => (rec.id, rec.events.iter().map(|e| e.to_string()).collect()),
            None => (0, Vec::new()),
        };
        QueryProfile {
            id,
            query: query.to_string(),
            scheme: self.scheme.name().to_string(),
            latency: Some(LatencyKey {
                wall_us: None,
                ticks: self.obs.tracer.tick().saturating_sub(capture.tick0),
            }),
            spans: self.obs.tracer.spans_from(capture.span_mark),
            flight,
            metrics: self.obs.metrics.snapshot().diff(&capture.metrics_before),
            ..Default::default()
        }
    }
}

/// The "before" edge of a profile capture window (see
/// [`Mediator::begin_profile`]).
struct ProfileCapture {
    metrics_before: csqp_obs::MetricsSnapshot,
    span_mark: usize,
    tick0: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_relation::ops::{project, select};
    use csqp_source::Catalog;

    const EX11: &str = "(author = \"Sigmund Freud\" _ author = \"Carl Jung\") ^ \
                        title contains \"dreams\"";

    #[test]
    fn run_example_1_1_across_schemes() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["isbn", "author", "title"])
            .unwrap();

        let mut costs = std::collections::HashMap::new();
        for scheme in [Scheme::GenCompact, Scheme::Dnf, Scheme::Cnf] {
            let m = Mediator::new(source.clone()).with_scheme(scheme);
            let out = m.run(&q).unwrap();
            assert_eq!(out.rows, want, "{scheme} returned a wrong answer");
            costs.insert(scheme, out.measured_cost);
        }
        // GenCompact ≤ DNF < CNF in measured cost on Example 1.1.
        assert!(costs[&Scheme::GenCompact] <= costs[&Scheme::Dnf] + 1e-9);
        assert!(costs[&Scheme::Dnf] < costs[&Scheme::Cnf]);
        // DISCO and naive pushdown are infeasible.
        for scheme in [Scheme::Disco, Scheme::NaivePush] {
            let m = Mediator::new(source.clone()).with_scheme(scheme);
            assert!(matches!(m.run(&q), Err(MediatorError::Plan(_))), "{scheme}");
        }
    }

    #[test]
    fn gencompact_and_genmodular_agree_on_cost() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("car_dealer").unwrap().clone();
        let q = TargetQuery::parse(
            "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
            &["model", "year"],
        )
        .unwrap();
        let compact = Mediator::new(source.clone()).plan(&q).unwrap();
        let modular =
            Mediator::new(source.clone()).with_scheme(Scheme::GenModular).plan(&q).unwrap();
        assert!(
            (compact.est_cost - modular.est_cost).abs() < 1e-6,
            "optimality preserved: compact {} vs modular {}",
            compact.est_cost,
            modular.est_cost
        );
    }

    #[test]
    fn cardinality_kinds_all_plan() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("car_guide").unwrap().clone();
        let q = TargetQuery::parse(
            "style = \"sedan\" ^ make = \"Toyota\" ^ price <= 20000",
            &["listing_id", "model"],
        )
        .unwrap();
        for kind in [CardKind::Stats, CardKind::Oracle, CardKind::Uniform { atom_selectivity: 0.2 }]
        {
            let m = Mediator::new(source.clone()).with_cardinality(kind);
            let planned = m.plan(&q).unwrap();
            assert!(planned.plan.is_concrete());
        }
    }

    #[test]
    fn custom_cost_model_planning() {
        use csqp_plan::model::LatencyBandwidthCost;
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("car_dealer").unwrap().clone();
        let q = TargetQuery::parse(
            "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
            &["model", "year"],
        )
        .unwrap();
        let affine = Mediator::new(source.clone()).plan(&q).unwrap();
        let lbc = Mediator::new(source.clone())
            .with_cost_model(Arc::new(LatencyBandwidthCost::default()))
            .plan(&q)
            .unwrap();
        // Same feasibility, different units; both concrete and executable.
        assert!(lbc.plan.is_concrete());
        assert!((lbc.est_cost - affine.est_cost).abs() > 1e-9, "models differ in units");
        let out = Mediator::new(source.clone())
            .with_cost_model(Arc::new(LatencyBandwidthCost::default()))
            .run(&q)
            .unwrap();
        assert!(!out.rows.is_empty());
    }

    #[test]
    fn width_aware_model_prefers_narrow_fetches() {
        use csqp_plan::model::LatencyBandwidthCost;
        use csqp_plan::resolve::resolve;
        use csqp_plan::{attrs, Plan, UniformCard};
        // Two alternatives with identical row counts: a narrow direct query
        // vs a wide over-fetching nested plan. The width-aware model must
        // pick the narrow one when the width penalty exceeds the round trip.
        let cond = |s: &str| Some(csqp_expr::parse::parse_condition(s).unwrap());
        let wide = Plan::local(
            cond("b = 2"),
            attrs(["k"]),
            Plan::source(cond("a = 1"), attrs(["k", "b", "x", "y", "z", "w", "v", "u"])),
        );
        let narrow = Plan::source(cond("a = 1 ^ b = 2"), attrs(["k"]));
        let space = Plan::Choice(vec![wide.clone(), narrow.clone()]);
        let card = UniformCard { rows: 1000.0, atom_selectivity: 0.5 };
        let model = LatencyBandwidthCost {
            latency: 1.0,
            bytes_per_attr: 16.0,
            tuple_overhead: 0.0,
            bandwidth: 16.0,
        };
        let picked = resolve(&space, &model, &card);
        assert_eq!(picked, narrow, "width-aware model avoids the 8-attribute fetch");
    }

    #[test]
    fn gencompact_keeps_ranked_alternatives() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let planned = Mediator::new(source).plan(&q).unwrap();
        assert!(!planned.alternatives.is_empty(), "losers survive as ranked alternatives");
        let mut prev = planned.est_cost;
        for alt in &planned.alternatives {
            assert!(alt.est_cost >= prev - 1e-9, "alternatives ranked cheapest-first");
            assert!(alt.plan != planned.plan, "the winner is not duplicated");
            assert!(alt.plan.is_concrete());
            prev = alt.est_cost;
        }
    }

    #[test]
    fn run_resilient_retries_through_transient_faults() {
        use csqp_source::FaultProfile;
        use csqp_ssdl::templates;
        let data = csqp_relation::datagen::books(7, &Default::default());
        let source = Arc::new(
            Source::new(data, templates::bookstore(), csqp_source::CostParams::default())
                .with_fault_profile(FaultProfile::new(4).with_transient(0.5)),
        );
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["isbn", "author", "title"])
            .unwrap();
        let m = Mediator::new(source);
        let policy = RetryPolicy { max_retries: 20, ..Default::default() };
        let out = m.run_resilient(&q, &policy).unwrap();
        assert_eq!(out.outcome.rows, want, "answer exact despite the storm");
        assert!(out.resilience.retries > 0, "seed 4 at p=0.5 injects faults");
        assert_eq!(out.plan_rank, 0, "retries alone salvaged the primary plan");
    }

    #[test]
    fn run_resilient_fails_over_to_alternative_plan() {
        use csqp_source::FaultProfile;
        use csqp_ssdl::templates;
        // The first attempt is an outage and retries are disabled: the
        // primary plan dies, the mediator degrades to the next-ranked
        // alternative, which starts past the outage window and succeeds.
        let data = csqp_relation::datagen::books(7, &Default::default());
        let source = Arc::new(
            Source::new(data, templates::bookstore(), csqp_source::CostParams::default())
                .with_fault_profile(FaultProfile::new(0).with_outage(0, 1)),
        );
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["isbn", "author", "title"])
            .unwrap();
        let m = Mediator::new(source);
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let out = m.run_resilient(&q, &policy).unwrap();
        assert_eq!(out.outcome.rows, want, "the fallback plan is exact too");
        assert!(out.plan_rank >= 1, "served by an alternative, not the primary");
        assert_eq!(out.resilience.failovers as usize, out.plan_rank);
        assert_eq!(out.failures.len(), out.plan_rank, "one recorded failure per dead plan");
        assert!(matches!(out.failures[0].1, ExecError::Exhausted { .. }));
    }

    #[test]
    fn run_resilient_errors_when_every_plan_dies() {
        use csqp_source::FaultProfile;
        use csqp_ssdl::templates;
        let data = csqp_relation::datagen::books(7, &Default::default());
        let source = Arc::new(
            Source::new(data, templates::bookstore(), csqp_source::CostParams::default())
                .with_fault_profile(FaultProfile::new(0).with_transient(1.0)),
        );
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let m = Mediator::new(source);
        let err = m.run_resilient(&q, &RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, MediatorError::Exec(ExecError::Exhausted { .. })), "{err}");
    }

    #[test]
    fn metrics_snapshot_counts_planner_and_exec_work() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let m = Mediator::new(source);
        let out = m.run(&q).unwrap();
        let snap = m.metrics_snapshot();
        if m.obs().enabled() {
            assert!(snap.counter(names::PLANNER_CHECK_CALLS) > 0, "planner counters flushed");
            assert_eq!(
                snap.counter(names::SOURCE_QUERIES),
                out.meter.queries,
                "meter routed through"
            );
            let trace = m.obs().tracer.render();
            assert!(trace.contains("> plan"), "trace records the planning span:\n{trace}");
            assert!(trace.contains("> execute"), "trace records the execution span:\n{trace}");
            // A second identical mediator produces a byte-identical trace:
            // virtual ticks, not wall clock.
            let m2 = Mediator::new(catalog.get("bookstore").unwrap().clone());
            m2.run(&q).unwrap();
            assert_eq!(m2.obs().tracer.render(), trace, "trace is deterministic");
        } else {
            assert_eq!(snap.counter(names::PLANNER_CHECK_CALLS), 0, "no-op recorder stays empty");
            assert!(m.obs().tracer.render().is_empty());
        }
    }

    #[test]
    fn run_analyzed_matches_run_and_sees_every_fetch() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let plain = Mediator::new(source.clone()).run(&q).unwrap();
        let m = Mediator::new(source).with_cardinality(CardKind::Oracle);
        let analyzed = m.run_analyzed(&q).unwrap();
        assert_eq!(analyzed.outcome.rows, plain.rows, "analysis is observation-only");
        assert_eq!(
            analyzed.analysis.subqueries.len(),
            analyzed.outcome.planned.plan.source_queries().len(),
            "one observation per source query"
        );
        // The oracle estimator knows exact sizes, so nothing drifts.
        assert!(analyzed.analysis.drift_warnings().is_empty());
    }

    #[test]
    fn shared_obs_handle_accumulates_across_mediators() {
        use csqp_obs::Obs;
        let catalog = Catalog::demo_small(7);
        let obs = Arc::new(Obs::new());
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let m1 = Mediator::new(catalog.get("bookstore").unwrap().clone()).with_obs(obs.clone());
        m1.run(&q).unwrap();
        let after_one = m1.metrics_snapshot().counter(names::SOURCE_QUERIES);
        let m2 = Mediator::new(catalog.get("bookstore").unwrap().clone()).with_obs(obs);
        m2.run(&q).unwrap();
        let after_two = m2.metrics_snapshot().counter(names::SOURCE_QUERIES);
        if m1.obs().enabled() {
            assert_eq!(after_two, after_one * 2, "two identical runs, one shared registry");
        } else {
            assert_eq!(after_two, 0);
        }
    }

    #[test]
    fn wrapper_usage_shape() {
        // A mediator as a per-source wrapper: callers just ask SP queries.
        let catalog = Catalog::demo_small(7);
        let bank = catalog.get("bank").unwrap().clone();
        let wrapper = Mediator::new(bank);
        let q = TargetQuery::parse(
            "acct_no = \"acct-00007\" ^ pin = \"pin-00007\"",
            &["owner", "balance"],
        )
        .unwrap();
        let out = wrapper.run(&q).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.meter.queries >= 1);
        assert!(out.measured_cost > 0.0);
    }

    #[test]
    fn run_streamed_matches_run() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let plain = Mediator::new(source.clone()).run(&q).unwrap();
        let m = Mediator::new(source);
        let streamed = m.run_streamed(&q, &StreamConfig::serial()).unwrap();
        assert_eq!(streamed.outcome.rows, plain.rows, "streaming is a pure execution change");
        assert_eq!(streamed.outcome.meter, plain.meter, "identical transfer");
        assert_eq!(streamed.outcome.measured_cost, plain.measured_cost);
        let snap = m.metrics_snapshot();
        if m.obs().enabled() && cfg!(feature = "stream") {
            assert_eq!(snap.counter(names::EXEC_BATCHES), streamed.stats.batches);
            assert!(streamed.stats.batches > 0);
        }
    }

    #[test]
    fn run_streamed_each_feeds_the_sink_incrementally() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let want = Mediator::new(source.clone()).run(&q).unwrap().rows;
        let m = Mediator::new(source);
        let mut got: Vec<csqp_relation::tuple::Tuple> = Vec::new();
        let out = m
            .run_streamed_each(&q, &StreamConfig::serial(), &mut |b| {
                got.extend(b.into_tuples());
                true
            })
            .unwrap();
        assert!(out.outcome.rows.is_empty(), "the sink consumed the answer");
        assert_eq!(Relation::from_tuples(want.schema().clone(), got), want);
        assert_eq!(
            out.outcome.meter,
            Mediator::new(catalog.get("bookstore").unwrap().clone()).run(&q).unwrap().meter
        );
    }

    #[test]
    fn run_streamed_limit_stops_early() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let full = Mediator::new(source.clone()).run(&q).unwrap().rows;
        assert!(full.len() > 1, "need more than one row for the limit to bite");
        let m = Mediator::new(source);
        let limited = m.run_streamed(&q, &StreamConfig::serial().with_limit(1)).unwrap();
        assert_eq!(limited.outcome.rows.len(), 1);
        assert!(full.contains(&limited.outcome.rows.tuples()[0]));
    }

    #[test]
    fn run_streamed_resilient_survives_transient_faults() {
        use csqp_source::FaultProfile;
        use csqp_ssdl::templates;
        let data = csqp_relation::datagen::books(7, &Default::default());
        let source = Arc::new(
            Source::new(data, templates::bookstore(), csqp_source::CostParams::default())
                .with_fault_profile(FaultProfile::new(4).with_transient(0.5)),
        );
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["isbn", "author", "title"])
            .unwrap();
        let m = Mediator::new(source);
        let policy = RetryPolicy { max_retries: 20, ..Default::default() };
        let (out, res) = m.run_streamed_resilient(&q, &policy, &StreamConfig::serial()).unwrap();
        assert_eq!(out.outcome.rows, want, "answer exact despite the storm");
        assert!(res.retries > 0, "seed 4 at p=0.5 injects faults");
    }

    #[test]
    fn run_streamed_analyzed_renders_the_memory_footer() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let want = Mediator::new(source.clone()).run(&q).unwrap().rows;
        let m = Mediator::new(source).with_cardinality(CardKind::Oracle);
        let out = m.run_streamed_analyzed(&q, &StreamConfig::serial()).unwrap();
        assert_eq!(out.outcome.rows, want);
        let text = out.explain();
        assert!(text.contains("peak resident"), "{text}");
        assert_eq!(
            out.analysis.subqueries.len(),
            out.outcome.planned.plan.source_queries().len(),
            "no early termination: every source query observed"
        );
    }

    /// A source whose real data contradicts a uniform estimator: the
    /// `a ^ b` form looks vanishingly selective but actually matches 150
    /// of 200 rows, while the `c` form looks expensive but matches 5.
    fn drifty_source() -> Arc<Source> {
        use csqp_expr::{Value, ValueType};
        use csqp_relation::Schema;
        use csqp_ssdl::parse_ssdl;
        let schema = Schema::new(
            "t",
            vec![
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("c", ValueType::Int),
            ],
            &["k"],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..200i64)
            .map(|i| {
                let ab = i64::from(i < 150);
                let c = i64::from(i < 150 && i % 40 == 0);
                vec![Value::Int(i), Value::Int(ab), Value::Int(ab), Value::Int(c)]
            })
            .collect();
        let desc = parse_ssdl(
            "source drifty {\n\
             s1 -> a = $int ^ b = $int ;\n\
             s2 -> c = $int ;\n\
             attributes :: s1 : { k, a, b, c } ;\n\
             attributes :: s2 : { k, a, b, c } ;\n\
             }",
        )
        .unwrap();
        Arc::new(Source::new(
            Relation::from_rows(schema, rows),
            desc,
            csqp_source::CostParams::new(10.0, 1.0),
        ))
    }

    #[test]
    fn run_adaptive_matches_run_when_nothing_drifts() {
        let catalog = Catalog::demo_small(7);
        let source = catalog.get("bookstore").unwrap().clone();
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let plain = Mediator::new(source.clone()).run(&q).unwrap();
        // The oracle estimator is exact, so the drift band never trips.
        let m = Mediator::new(source).with_cardinality(CardKind::Oracle);
        let out = m.run_adaptive(&q, &AdaptiveConfig::default()).unwrap();
        assert_eq!(out.outcome.rows, plain.rows, "adaptive execution is answer-preserving");
        assert_eq!(out.splices, 0, "exact estimates leave nothing to re-plan");
        assert_eq!(out.outcome.meter, plain.meter, "no splice: identical transfer");
    }

    #[test]
    fn run_adaptive_splices_on_cardinality_drift() {
        use csqp_obs::FlightRecorder;
        let source = drifty_source();
        let q = TargetQuery::parse("a = 1 ^ b = 1 ^ c = 1", &["k"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["k"]).unwrap();
        assert_eq!(want.len(), 4, "rows 0, 40, 80, 120 match all three atoms");
        // The uniform estimator prices `a ^ b` at 200·0.05² = 0.5 rows and
        // `c` at 10, so planning picks the a^b form — which actually ships
        // 150 tuples.
        let recorder = Arc::new(FlightRecorder::new());
        let m = Mediator::new(source.clone())
            .with_cardinality(CardKind::Uniform { atom_selectivity: 0.05 })
            .with_flight_recorder(recorder);
        let cfg = AdaptiveConfig {
            stream: StreamConfig::serial().with_batch_size(2),
            ..Default::default()
        };
        let out = m.run_adaptive(&q, &cfg).unwrap();
        assert_eq!(out.outcome.rows, want, "splicing never changes the answer set");
        if cfg!(all(feature = "stream", feature = "adaptive")) {
            assert!(out.drift_triggers >= 1, "the a^b leaf exits the [½,2]× band");
            assert!(out.splices >= 1, "floored re-plan switches to the c form");
            let snap = m.metrics_snapshot();
            if m.obs().enabled() {
                assert_eq!(snap.counter(names::REPLAN_SPLICES), out.splices);
                assert!(snap.counter(names::REPLAN_DRIFT_TRIGGERS) >= out.drift_triggers);
                let why = m.explain_why();
                assert!(why.contains("[replan] drift"), "EXPLAIN WHY renders the splice:\n{why}");
            }
        } else {
            assert_eq!(out.splices, 0, "fallback path never consults the controller");
        }
        // Determinism: a second identical run takes the same decisions.
        let m2 = Mediator::new(drifty_source())
            .with_cardinality(CardKind::Uniform { atom_selectivity: 0.05 });
        let out2 = m2.run_adaptive(&q, &cfg).unwrap();
        assert_eq!(out2.outcome.rows, want);
        assert_eq!(out2.splices, out.splices);
        assert_eq!(out2.drift_triggers, out.drift_triggers);
        assert_eq!(out2.outcome.meter, out.outcome.meter);
    }

    #[test]
    fn run_adaptive_each_streams_the_same_answer() {
        let source = drifty_source();
        let q = TargetQuery::parse("a = 1 ^ b = 1 ^ c = 1", &["k"]).unwrap();
        let want = project(&select(source.relation(), Some(&q.cond)), &["k"]).unwrap();
        let m =
            Mediator::new(source).with_cardinality(CardKind::Uniform { atom_selectivity: 0.05 });
        let cfg = AdaptiveConfig {
            stream: StreamConfig::serial().with_batch_size(2),
            ..Default::default()
        };
        let mut got: Vec<csqp_relation::tuple::Tuple> = Vec::new();
        let out = m
            .run_adaptive_each(&q, &cfg, &mut |b| {
                got.extend(b.into_tuples());
                true
            })
            .unwrap();
        assert!(out.outcome.rows.is_empty(), "the sink consumed the answer");
        assert_eq!(Relation::from_tuples(want.schema().clone(), got), want);
    }

    #[test]
    fn calibration_learns_the_real_cost_constants() {
        use crate::calibrate::CalibratingCostModel;
        use csqp_plan::model::LatencyBandwidthCost;
        let source = drifty_source();
        // Start from a wildly wrong inner model; the source's real §6.2
        // constants are (10, 1) and measured cost is exact in them.
        let cal = Arc::new(CalibratingCostModel::new(Arc::new(LatencyBandwidthCost::default())));
        let m = Mediator::new(source)
            .with_cardinality(CardKind::Uniform { atom_selectivity: 0.05 })
            .with_calibration(cal.clone());
        let q1 = TargetQuery::parse("a = 1 ^ b = 1 ^ c = 1", &["k"]).unwrap();
        let q2 = TargetQuery::parse("c = 1", &["k"]).unwrap();
        m.run_adaptive(&q1, &AdaptiveConfig::default()).unwrap();
        m.run_adaptive(&q2, &AdaptiveConfig::default()).unwrap();
        assert_eq!(cal.samples(), 2, "every finished adaptive run feeds the fit");
        let (k1, k2) = cal.fitted().expect("two independent runs pin the constants");
        assert!((k1 - 10.0).abs() < 1e-6, "k1 converged: {k1}");
        assert!((k2 - 1.0).abs() < 1e-6, "k2 converged: {k2}");
        assert!(m.calibration().is_some());
    }

    #[test]
    fn federation_run_streamed_matches_run() {
        use crate::federation::Federation;
        let catalog = Catalog::demo_small(7);
        let fed = Federation::new()
            .with_member(catalog.get("bookstore").unwrap().clone())
            .with_member(catalog.get("car_dealer").unwrap().clone());
        let q = TargetQuery::parse(EX11, &["isbn", "author", "title"]).unwrap();
        let (_, plain) = fed.run(&q).unwrap();
        let (fp, streamed, stats) = fed.run_streamed(&q, &StreamConfig::serial()).unwrap();
        assert_eq!(streamed.rows, plain.rows, "federation streaming is execution-only");
        assert_eq!(fp.planned.plan, plain.planned.plan, "same chosen member plan");
        if cfg!(feature = "stream") {
            assert!(stats.batches > 0);
        }
    }
}
