//! GenCompact (§6): the paper's main contribution.
//!
//! Pipeline: distributive-only rewrite module (§6.1) → canonicalize (§6.4)
//! → IPG per CT → pick the overall best plan. Commutativity is handled by
//! the source's permutation-closed planning view; associativity and copy
//! rules are subsumed by IPG's subset exploration.

use crate::cache::CheckCache;
use crate::ipg::{ipg_entry, IpgConfig, IpgContext};
use crate::types::{PlanError, PlannedQuery, PlannerReport, TargetQuery};
use csqp_expr::rewrite::{enumerate_compact, RewriteBudget};
use csqp_obs::{PlanEvent, QueryFlight};
use csqp_plan::cost::Cardinality;
use csqp_plan::model::CostModel;
use csqp_source::Source;
use std::time::Instant;

/// Configuration of the GenCompact pipeline.
#[derive(Debug, Clone, Copy)]
pub struct GenCompactConfig {
    /// Budget for the distributive rewrite enumeration.
    pub rewrite_budget: RewriteBudget,
    /// IPG settings (pruning rules, MCSC solver).
    pub ipg: IpgConfig,
    /// Ablation switch (E11): plan against the source's *original* grammar
    /// instead of the permutation-closed planning view. Without the §6.1
    /// closure (and with the commutativity rewrite rule dropped), queries
    /// whose atom order differs from the grammar become infeasible.
    pub use_gate_view: bool,
}

impl Default for GenCompactConfig {
    fn default() -> Self {
        GenCompactConfig {
            rewrite_budget: RewriteBudget::compact(),
            ipg: IpgConfig::default(),
            use_gate_view: false,
        }
    }
}

/// Runs GenCompact: the cheapest feasible plan across the distributive
/// rewritings, or [`PlanError::NoFeasiblePlan`].
///
/// ```
/// use csqp_core::{plan_compact, GenCompactConfig, TargetQuery};
/// use csqp_plan::cost::StatsCard;
/// use csqp_relation::datagen;
/// use csqp_source::{CostParams, Source};
/// use csqp_ssdl::templates;
///
/// let source = Source::new(
///     datagen::cars(3, 200),
///     templates::car_dealer(),
///     CostParams::default(),
/// );
/// let query = TargetQuery::parse(
///     r#"(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")"#,
///     &["model", "year"],
/// ).unwrap();
/// let card = StatsCard::new(source.stats());
/// let planned =
///     plan_compact(&query, &source, &card, &GenCompactConfig::default()).unwrap();
/// // The color disjunction is unsupported: IPG pushes the make+price form
/// // (also fetching `color`) and filters locally.
/// assert!(planned.plan.to_string().contains("SP(make = \"BMW\" ^ price < 40000"));
/// ```
pub fn plan_compact(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenCompactConfig,
) -> Result<PlannedQuery, PlanError> {
    plan_compact_with_model(query, source, card, cfg, source.cost_params())
}

/// As [`plan_compact`] with an explicit cost model (§7 flexibility; see
/// `csqp_plan::model` for the monotonicity contract pruning relies on).
pub fn plan_compact_with_model(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenCompactConfig,
    model: &dyn CostModel,
) -> Result<PlannedQuery, PlanError> {
    plan_compact_recorded(query, source, card, cfg, model, QueryFlight::disabled())
}

/// As [`plan_compact_with_model`], recording every planner decision (per-CT
/// search, PR1/PR2/PR3 prunes, MCSC covers, candidate ranking) into the
/// given flight-recorder handle for `EXPLAIN WHY`. The handle is `Copy` and
/// ignores everything when disabled, so the unrecorded entry points simply
/// delegate here.
pub fn plan_compact_recorded(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenCompactConfig,
    model: &dyn CostModel,
    flight: QueryFlight<'_>,
) -> Result<PlannedQuery, PlanError> {
    plan_compact_traced(query, source, card, cfg, model, flight, None)
}

/// As [`plan_compact_recorded`], additionally opening hierarchical spans
/// (`rewrite`, one `ct N` per rewriting with nested `mcsc` covers, `rank`)
/// on the given tracer for query profiles. The tracer must only be supplied
/// from sequential program points — federation fan-outs pass `None` and let
/// the sequential merge loop do the recording.
pub fn plan_compact_traced(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    cfg: &GenCompactConfig,
    model: &dyn CostModel,
    flight: QueryFlight<'_>,
    tracer: Option<&csqp_obs::Tracer>,
) -> Result<PlannedQuery, PlanError> {
    // Runtime-disabled tracers drop out here so span labels are never built.
    let tracer = tracer.filter(|t| t.is_enabled());
    let start = Instant::now();
    // GenCompact reasons against the permutation-closed planning view
    // (unless the E11 ablation pins it to the original grammar).
    let cache = if cfg.use_gate_view {
        CheckCache::new(source.gate_view())
    } else {
        // Layered over the source's persistent memo: a federation planning
        // the same query repeatedly stops re-parsing the member's grammar.
        CheckCache::with_shared(source.planning_view(), source.planning_check_cache())
    };

    let rewrite_span = tracer.map(|t| t.span("rewrite"));
    let rewritten = enumerate_compact(&query.cond, cfg.rewrite_budget);
    drop(rewrite_span);
    let mut ctx =
        IpgContext::new(&cache, model, card, cfg.ipg).with_flight(flight).with_tracer(tracer);

    // Keep every per-CT winner: the overall best becomes the plan, the
    // losers become ranked failover alternatives.
    let mut candidates: Vec<(csqp_plan::Plan, f64)> = Vec::new();
    for (index, ct) in rewritten.cts.iter().enumerate() {
        flight.event_with(|| PlanEvent::CtBegin { index, cond: ct.to_string() });
        // Detailed spans (`ct N` + nested `mcsc`) stop past MAX_CT_SPANS so
        // CT-heavy queries don't drown the profile in micro-spans.
        let ct_tracer = if (index as u64) < crate::types::MAX_CT_SPANS { tracer } else { None };
        ctx.set_tracer(ct_tracer);
        let ct_span = ct_tracer.map(|t| t.span(&format!("ct {index}")));
        let outcome = ipg_entry(ct, &query.attrs, &mut ctx);
        drop(ct_span);
        match outcome {
            Some((plan, cost)) => {
                flight.event_with(|| PlanEvent::CtCandidate {
                    index,
                    cost,
                    plan: plan.to_string(),
                });
                candidates.push((plan, cost));
            }
            None => flight.event_with(|| PlanEvent::CtInfeasible { index }),
        }
    }
    flight.event_with(|| PlanEvent::CheckCacheStats {
        calls: cache.calls() as u64,
        hits: (cache.calls() - cache.parses()) as u64,
        misses: cache.parses() as u64,
    });

    let stats = ctx.stats;
    let report = PlannerReport {
        cts_processed: rewritten.cts.len(),
        checks: cache.calls(),
        plans_considered: stats.subplans_considered as u64,
        generator_calls: stats.calls,
        max_q: stats.max_q,
        truncated: rewritten.truncated || stats.truncated,
        stats: crate::types::PlannerStats {
            check_calls: cache.calls(),
            check_cache_hits: cache.calls() - cache.parses(),
            check_cache_misses: cache.parses(),
            rewrites_generated: rewritten.cts.len(),
            ipg_memo_hits: stats.memo_hits,
            pr1_prunes: stats.pr1_prunes,
            pr2_prunes: stats.pr2_prunes,
            pr3_prunes: stats.pr3_prunes,
            mcsc_covers_examined: stats.mcsc_nodes,
        },
        elapsed: start.elapsed(),
    };

    // Snapshot the candidate list (in CT order) before ranking consumes it,
    // so every loser's elimination can be recorded — but only when someone
    // is listening.
    let provenance: Vec<(String, f64)> = if flight.active() {
        candidates.iter().map(|(p, c)| (p.to_string(), *c)).collect()
    } else {
        Vec::new()
    };
    let _rank_span = tracer.map(|t| t.span("rank"));
    match crate::types::rank_candidates(candidates) {
        Some((plan, est_cost, alternatives)) => {
            crate::types::record_ranking_events(flight, &provenance, &plan, est_cost);
            Ok(PlannedQuery { plan, est_cost, report, alternatives })
        }
        None => {
            flight.event_with(|| PlanEvent::Note {
                text: "no feasible plan in any rewriting".to_string(),
            });
            Err(PlanError::NoFeasiblePlan { query: query.to_string(), scheme: "GenCompact" })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_plan::cost::StatsCard;
    use csqp_plan::{execute, is_feasible, Plan};
    use csqp_relation::datagen::{self, BookGenConfig, CarGenConfig};
    use csqp_relation::ops::{project, select};
    use csqp_source::CostParams;
    use csqp_ssdl::templates;

    fn plan_on(source: &Source, cond: &str, attrs: &[&str]) -> PlannedQuery {
        let q = TargetQuery::parse(cond, attrs).unwrap();
        let card = StatsCard::new(source.stats());
        plan_compact(&q, source, &card, &GenCompactConfig::default()).unwrap()
    }

    fn check_against_oracle(source: &Source, cond: &str, attrs: &[&str]) -> PlannedQuery {
        let planned = plan_on(source, cond, attrs);
        assert!(planned.plan.is_concrete());
        assert!(is_feasible(&planned.plan, source));
        let got = execute(&planned.plan, source).unwrap();
        let ct = csqp_expr::parse::parse_condition(cond).unwrap();
        let want = project(&select(source.relation(), Some(&ct)), attrs).unwrap();
        assert_eq!(got, want, "plan result mismatch for {cond}");
        planned
    }

    /// Example 1.1 end-to-end: GenCompact finds the two-query union plan.
    #[test]
    fn example_1_1_bookstore() {
        let s = Source::new(
            datagen::books(7, &BookGenConfig { n_books: 3000, ..Default::default() }),
            templates::bookstore(),
            CostParams::default(),
        );
        let cond = "(author = \"Sigmund Freud\" _ author = \"Carl Jung\") ^ \
                    title contains \"dreams\"";
        let planned = check_against_oracle(&s, cond, &["isbn", "title", "author"]);
        // Two source queries (one per author), union-combined.
        assert_eq!(planned.plan.source_queries().len(), 2, "{}", planned.plan);
        assert!(matches!(planned.plan, Plan::Union(_)), "{}", planned.plan);
    }

    /// Example 1.2 end-to-end: the two-query plan, one per make, each
    /// carrying style + size-list + price bound.
    #[test]
    fn example_1_2_car_guide() {
        let s = Source::new(
            datagen::car_listings(11, &CarGenConfig { n_listings: 3000 }),
            templates::car_guide(),
            CostParams::default(),
        );
        let cond = "style = \"sedan\" ^ (size = \"compact\" _ size = \"midsize\") ^ \
                    ((make = \"Toyota\" ^ price <= 20000) _ (make = \"BMW\" ^ price <= 40000))";
        let planned = check_against_oracle(&s, cond, &["listing_id", "model", "price"]);
        assert_eq!(
            planned.plan.source_queries().len(),
            2,
            "the paper's two-query plan: {}",
            planned.plan
        );
        // Each source query pushes all four form fields.
        for (c, _) in planned.plan.source_queries() {
            let c = c.as_ref().unwrap();
            let attrs = c.attrs();
            for field in ["style", "size", "make", "price"] {
                assert!(attrs.contains(field), "{c} missing {field}");
            }
        }
    }

    /// Example 4.1/5.x: the order-scrambled conjunction with a disjunctive
    /// tail plans via the closure + IPG.
    #[test]
    fn example_4_1_car_dealer() {
        let s = Source::new(datagen::cars(3, 400), templates::car_dealer(), CostParams::default());
        check_against_oracle(
            &s,
            "price < 40000 ^ color = \"red\" ^ make = \"BMW\"",
            &["model", "year"],
        );
        check_against_oracle(
            &s,
            "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
            &["model", "year"],
        );
    }

    #[test]
    fn bank_pin_example() {
        let s = Source::new(datagen::accounts(5, 100), templates::bank(), CostParams::default());
        // Balance requires the PIN in the condition.
        let with_pin =
            plan_on(&s, "acct_no = \"acct-00042\" ^ pin = \"pin-00042\"", &["owner", "balance"]);
        assert!(matches!(with_pin.plan, Plan::SourceQuery { .. }));
        // Without PIN there is no way to fetch balance.
        let q = TargetQuery::parse("acct_no = \"acct-00042\"", &["owner", "balance"]).unwrap();
        let card = StatsCard::new(s.stats());
        assert!(plan_compact(&q, &s, &card, &GenCompactConfig::default()).is_err());
    }

    #[test]
    fn infeasible_reports_error() {
        let s = Source::new(datagen::cars(3, 100), templates::car_dealer(), CostParams::default());
        let q = TargetQuery::parse("year = 1995", &["model"]).unwrap();
        let card = StatsCard::new(s.stats());
        let err = plan_compact(&q, &s, &card, &GenCompactConfig::default()).unwrap_err();
        assert!(matches!(err, PlanError::NoFeasiblePlan { .. }));
    }

    #[test]
    fn report_is_populated() {
        let s = Source::new(datagen::cars(3, 100), templates::car_dealer(), CostParams::default());
        let planned = plan_on(
            &s,
            "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
            &["model"],
        );
        let r = planned.report;
        assert!(r.cts_processed >= 1);
        assert!(r.checks > 0);
        assert!(r.generator_calls >= 1);
        assert!(!r.truncated);
    }

    /// DNF-shaped input gets factored back by the distributive rewrite when
    /// that is cheaper (the "CNF vs DNF vs neither" point of §1).
    #[test]
    fn dnf_input_refactored_when_cheaper() {
        let s = Source::new(
            datagen::car_listings(11, &CarGenConfig { n_listings: 3000 }),
            templates::car_guide(),
            CostParams::default(),
        );
        // Four-term DNF of Example 1.2's condition.
        let cond = "(style = \"sedan\" ^ size = \"compact\" ^ make = \"Toyota\" ^ price <= 20000) _ \
                    (style = \"sedan\" ^ size = \"midsize\" ^ make = \"Toyota\" ^ price <= 20000) _ \
                    (style = \"sedan\" ^ size = \"compact\" ^ make = \"BMW\" ^ price <= 40000) _ \
                    (style = \"sedan\" ^ size = \"midsize\" ^ make = \"BMW\" ^ price <= 40000)";
        let planned = check_against_oracle(&s, cond, &["listing_id", "model"]);
        // The two-query factored plan beats the four-query DNF plan under
        // k1 = 50 (same tuples, two fewer round trips).
        assert_eq!(planned.plan.source_queries().len(), 2, "{}", planned.plan);
    }
}
