//! Deterministic fan-out for embarrassingly-parallel planner loops.
//!
//! [`Federation::plan`](crate::federation::Federation::plan) plans the same
//! query against every member, and the bench drivers plan whole query
//! corpora — independent work items with no shared mutable state. [`par_map`]
//! fans them out over `std::thread::scope` workers behind the `parallel`
//! cargo feature (on by default); with the feature off it degenerates to a
//! sequential map, so callers need no cfg of their own.
//!
//! Determinism: results are returned **in input order** regardless of which
//! worker finished first, so any left-to-right reduce over the output (e.g.
//! "cheapest plan, earliest member on ties") picks the same winner as the
//! sequential loop it replaced (see DESIGN.md, "Implementation notes:
//! interning & bitsets").

/// Order-preserving parallel map.
#[cfg(feature = "parallel")]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Work-stealing by atomic cursor; each worker tags results with the
    // input index so the merge restores input order exactly.
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("par_map worker panicked")).collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Order-preserving parallel map (sequential fallback: `parallel` feature
/// disabled).
#[cfg(not(feature = "parallel"))]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..200).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn left_to_right_reduce_is_deterministic() {
        // The federation tie-break: cheapest cost, earliest index on ties.
        let costs = [5.0, 3.0, 3.0, 9.0];
        let out = par_map(&costs, |&c| c);
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in out.into_iter().enumerate() {
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((i, c));
            }
        }
        assert_eq!(best.unwrap().0, 1, "earliest of the tied members wins");
    }
}
