//! The federation capability index: compiled source pre-selection.
//!
//! A federation walking N members re-runs full `Check()`-based planning on
//! every member for every query — O(N × parse), fatal at thousands of
//! sources. This module denormalizes each member's compiled
//! [`CapabilityFacts`](csqp_ssdl::facts::CapabilityFacts) into
//! federation-wide inverted bitset postings over dense member ids, so
//! "which sources could possibly answer this condition shape?" resolves by
//! a handful of [`SymSet`] intersections — no grammar is parsed for members
//! the index rules out.
//!
//! ## Layout
//!
//! One federation-level [`Interner`] maps namespaced keys to dense symbols:
//!
//! - `x:{attr}` — *export postings*: members with `attr` in some form's
//!   export set;
//! - `m:{attr}:{op}` / `m:{attr}:*` — *may postings*: members whose grammar
//!   can accept an atom of that class (`*` = operator unknown/any);
//! - `c:{attr}:{op}` / `c:{attr}:*` — *required-class keys*: the alphabet of
//!   per-form required-class sets. Forms sharing a required set collapse
//!   into one *required group* (`SymSet` of class keys → `SymSet` of member
//!   ids), so the per-query scan is over distinct requirement shapes, not
//!   over members.
//!
//! ## Soundness
//!
//! Candidates are a **superset** of the truly feasible members — full
//! `Check`-based planning remains the oracle and answers stay
//! byte-identical (the differential suite in
//! `tests/capindex_differential.rs` enforces this). Three pruning rules,
//! each justified by "rewritings never invent atoms absent from the query":
//!
//! 1. **Projection** — every requested attribute must be in the member's
//!    export union.
//! 2. **Entry** — the member is downloadable, or some form's required
//!    classes are contained in the query's atom classes.
//! 3. **Enforcement** — each query atom's class is accepted somewhere in
//!    the grammar, or its attribute is exportable (locally filterable).
//!    Applied **only when the query's atoms are pairwise distinct**: with
//!    duplicated atoms the absorption rewrite `a _ (a ^ y) ≡ a` can drop an
//!    atom entirely, and the rule would over-prune.

use crate::types::TargetQuery;
use csqp_expr::{Interner, Sym, SymSet};
use csqp_source::Source;
use csqp_ssdl::facts::CapabilityFacts;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The outcome of an index probe for one query: the surviving member ids
/// plus the counts the observability layer reports.
#[derive(Debug, Clone)]
pub struct IndexDecision {
    /// Members in the federation.
    pub total: usize,
    /// Surviving member ids (dense, in federation member order).
    pub candidates: SymSet,
    /// `total - |candidates|`.
    pub pruned: usize,
}

impl IndexDecision {
    /// Is the member a candidate?
    pub fn is_candidate(&self, member_idx: usize) -> bool {
        self.candidates.contains(member_idx as Sym)
    }
}

/// A federation-wide inverted/bitset index over member capability facts.
#[derive(Debug, Default)]
pub struct CapabilityIndex {
    interner: Interner,
    /// Postings per interned key (`x:`/`m:` namespaces), indexed by symbol.
    postings: Vec<SymSet>,
    /// Distinct per-form required-class sets → members owning such a form.
    /// Keys are sorted symbol lists, not bitsets: class symbols are sparse
    /// in the federation-wide interner space, so a bitset key would cost
    /// O(interner size) to build and hash per form.
    required_groups: Vec<(Box<[Sym]>, SymSet)>,
    group_ids: HashMap<Box<[Sym]>, usize>,
    /// Group ids keyed by a representative class key (the group's minimum
    /// symbol): a group's required set can only be contained in the query's
    /// class keys if its representative is one of them, so the per-query
    /// scan touches O(query atoms) groups instead of all of them.
    groups_by_rep: HashMap<Sym, Vec<usize>>,
    /// Members owning a form with an empty required set (always enterable).
    always_entry: SymSet,
    /// Members with a download (`true`) rule.
    downloadables: SymSet,
    /// All member ids.
    all: SymSet,
    n_sources: usize,
}

impl CapabilityIndex {
    /// An empty index.
    pub fn new() -> Self {
        CapabilityIndex::default()
    }

    /// Builds the index over a federation's members, in member order (the
    /// dense member ids are the `members` indices).
    pub fn build(members: &[Arc<Source>]) -> Self {
        let mut idx = CapabilityIndex::new();
        for m in members {
            idx.add_source(m.capability_facts());
        }
        idx
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.n_sources
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.n_sources == 0
    }

    fn posting_mut(&mut self, key: &str) -> &mut SymSet {
        let sym = self.interner.intern(key) as usize;
        if self.postings.len() <= sym {
            self.postings.resize(sym + 1, SymSet::new());
        }
        &mut self.postings[sym]
    }

    fn posting(&self, key: &str) -> Option<&SymSet> {
        self.interner.lookup(key).and_then(|sym| self.postings.get(sym as usize))
    }

    /// Indexes one member's facts; returns its dense member id.
    pub fn add_source(&mut self, facts: &CapabilityFacts) -> usize {
        let id = self.n_sources as Sym;
        self.n_sources += 1;
        self.all.insert(id);

        for attr in &facts.exports_union {
            self.posting_mut(&format!("x:{attr}")).insert(id);
        }
        for class in &facts.may {
            let key = match class.op {
                Some(op) => format!("m:{}:{}", class.attr, op),
                None => format!("m:{}:*", class.attr),
            };
            self.posting_mut(&key).insert(id);
        }
        if facts.downloadable {
            self.downloadables.insert(id);
        }
        for form in &facts.forms {
            // ⊤ (non-productive) forms can never match — not indexed.
            let Some(required) = &form.required else { continue };
            let mut keys: Vec<Sym> = required
                .iter()
                .map(|class| {
                    let key = match class.op {
                        Some(op) => format!("c:{}:{}", class.attr, op),
                        None => format!("c:{}:*", class.attr),
                    };
                    self.interner.intern(&key)
                })
                .collect();
            keys.sort_unstable();
            if keys.is_empty() {
                self.always_entry.insert(id);
                continue;
            }
            let keys: Box<[Sym]> = keys.into();
            let gid = match self.group_ids.get(&keys) {
                Some(&gid) => gid,
                None => {
                    let gid = self.required_groups.len();
                    let rep = keys[0];
                    self.required_groups.push((keys.clone(), SymSet::new()));
                    self.group_ids.insert(keys, gid);
                    self.groups_by_rep.entry(rep).or_default().push(gid);
                    gid
                }
            };
            self.required_groups[gid].1.insert(id);
        }
        id as usize
    }

    /// Resolves the candidate member set for a query by set intersections.
    /// The result is a superset of the members for which full planning is
    /// feasible; everything outside it is infeasible with certainty.
    pub fn candidates(&self, query: &TargetQuery) -> IndexDecision {
        let done = |candidates: SymSet| {
            let pruned = self.n_sources - candidates.len();
            IndexDecision { total: self.n_sources, candidates, pruned }
        };
        let mut cand = self.all.clone();

        // Rule 1 — projection: intersect export postings over requested
        // attributes. An attribute no member exports empties the result.
        for attr in &query.attrs {
            match self.posting(&format!("x:{attr}")) {
                Some(p) => cand.intersect_with(p),
                None => return done(SymSet::new()),
            }
            if cand.is_empty() {
                return done(cand);
            }
        }

        let atoms = query.cond.atoms();
        // The query's class-key set, for required-group containment: each
        // atom satisfies both its exact class key and the wildcard key.
        // (A hash set, not a SymSet: class symbols are sparse in the
        // federation-wide interner space.)
        let mut class_syms: HashSet<Sym> = HashSet::new();
        for a in &atoms {
            if let Some(sym) = self.interner.lookup(&format!("c:{}:{}", a.attr, a.op)) {
                class_syms.insert(sym);
            }
            if let Some(sym) = self.interner.lookup(&format!("c:{}:*", a.attr)) {
                class_syms.insert(sym);
            }
        }

        // Rule 2 — entry: downloadable/always-enterable members plus
        // members owning a form whose required classes the query contains.
        // Only groups whose representative key is among the query's class
        // keys can match, so the scan is O(query atoms), not O(groups).
        // (Union order over an unordered set is irrelevant: the result set
        // is the same whichever way the unions associate.)
        let mut entry = self.downloadables.union(&self.always_entry);
        for key in &class_syms {
            for &gid in self.groups_by_rep.get(key).map_or(&[][..], Vec::as_slice) {
                let (required, members) = &self.required_groups[gid];
                if required.iter().all(|k| class_syms.contains(k)) {
                    entry.union_with(members);
                }
            }
        }
        cand.intersect_with(&entry);
        if cand.is_empty() {
            return done(cand);
        }

        // Rule 3 — enforcement, only under pairwise-distinct atoms (see
        // module docs: absorption can drop duplicated atoms).
        let distinct = atoms.iter().enumerate().all(|(i, a)| !atoms[..i].contains(a));
        if distinct {
            for a in &atoms {
                let mut ok = SymSet::new();
                if let Some(p) = self.posting(&format!("m:{}:{}", a.attr, a.op)) {
                    ok.union_with(p);
                }
                if let Some(p) = self.posting(&format!("m:{}:*", a.attr)) {
                    ok.union_with(p);
                }
                if let Some(p) = self.posting(&format!("x:{}", a.attr)) {
                    ok.union_with(p);
                }
                cand.intersect_with(&ok);
                if cand.is_empty() {
                    return done(cand);
                }
            }
        }
        done(cand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::ValueType;
    use csqp_relation::datagen;
    use csqp_source::CostParams;
    use csqp_ssdl::{parse_ssdl, templates};
    use std::collections::BTreeSet;

    fn mirrors() -> Vec<Arc<Source>> {
        let data = datagen::cars(3, 60);
        vec![
            Arc::new(Source::new(
                data.clone(),
                templates::car_dealer(),
                CostParams::new(10.0, 1.0),
            )),
            Arc::new(Source::new(
                data.clone(),
                templates::download_only(
                    "dump",
                    &[
                        ("make", ValueType::Str),
                        ("model", ValueType::Str),
                        ("year", ValueType::Int),
                        ("color", ValueType::Str),
                        ("price", ValueType::Int),
                    ],
                ),
                CostParams::new(200.0, 5.0),
            )),
            Arc::new(Source::new(
                data,
                parse_ssdl(
                    "source color_only {\n\
                     s1 -> color = $str ;\n\
                     attributes :: s1 : { make, model, year, color } ;\n}",
                )
                .unwrap(),
                CostParams::new(10.0, 1.0),
            )),
        ]
    }

    fn q(cond: &str, attrs: &[&str]) -> TargetQuery {
        TargetQuery::parse(cond, attrs).unwrap()
    }

    fn ids(d: &IndexDecision) -> Vec<u32> {
        d.candidates.iter().collect()
    }

    #[test]
    fn routes_by_capability_shape() {
        let members = mirrors();
        let idx = CapabilityIndex::build(&members);
        assert_eq!(idx.len(), 3);
        // make+price form: dealer and dump qualify; color_only lacks both
        // an entry form and the price export.
        let d = idx.candidates(&q("make = \"BMW\" ^ price < 40000", &["model", "year"]));
        assert_eq!(ids(&d), vec![0, 1]);
        assert_eq!((d.total, d.pruned), (3, 1));
        // Bare color query: the dealer has no color-only form.
        let d = idx.candidates(&q("color = \"red\"", &["make", "model"]));
        assert_eq!(ids(&d), vec![1, 2]);
        // year-only: only the dump can enter.
        let d = idx.candidates(&q("year = 1995", &["make"]));
        assert_eq!(ids(&d), vec![1]);
    }

    #[test]
    fn unexported_attribute_empties_candidates() {
        let members = mirrors();
        let idx = CapabilityIndex::build(&members);
        let d = idx.candidates(&q("make = \"BMW\"", &["mileage"]));
        assert!(d.candidates.is_empty());
        assert_eq!(d.pruned, 3);
    }

    #[test]
    fn duplicate_atoms_disable_rule_three_only() {
        let members = mirrors();
        let idx = CapabilityIndex::build(&members);
        // Duplicated atom (absorption territory): rule 3 must not fire, but
        // rules 1–2 still prune the form-only members.
        let d = idx.candidates(&q("year = 1995 _ (year = 1995 ^ make = \"BMW\")", &["make"]));
        assert_eq!(ids(&d), vec![1], "entry rule still applies");
    }

    #[test]
    fn agrees_with_per_source_facts_oracle() {
        let members = mirrors();
        let idx = CapabilityIndex::build(&members);
        let queries = [
            q("make = \"BMW\" ^ price < 40000", &["model", "year"]),
            q("color = \"red\"", &["make", "model"]),
            q("year = 1995", &["make", "model"]),
            q("make = \"BMW\" ^ color = \"red\"", &["year"]),
            q("price < 10000", &["price"]),
            q("make = \"BMW\"", &["mileage"]),
        ];
        for query in &queries {
            let d = idx.candidates(query);
            let classes = CapabilityFacts::query_classes(&query.cond);
            let atoms = query.cond.atoms();
            let distinct = atoms.iter().enumerate().all(|(i, a)| !atoms[..i].contains(a));
            let attrs: BTreeSet<String> = query.attrs.iter().cloned().collect();
            for (i, m) in members.iter().enumerate() {
                assert_eq!(
                    d.is_candidate(i),
                    m.capability_facts().may_support(&classes, &attrs, distinct),
                    "index and facts oracle disagree on member {i} for {query}"
                );
            }
        }
    }

    #[test]
    fn empty_index_prunes_nothing_nonexistent() {
        let idx = CapabilityIndex::new();
        let d = idx.candidates(&q("a = 1", &["k"]));
        assert_eq!((d.total, d.pruned), (0, 0));
        assert!(d.candidates.is_empty());
    }
}
