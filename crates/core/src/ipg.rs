//! IPG — the Integrated Plan Generator of GenCompact (Algorithm 6.1,
//! Figures 4, 5 and 6).
//!
//! IPG integrates GenModular's mark, generate and cost modules: it returns a
//! single best plan per canonical CT, using the pruning rules of §6.3:
//!
//! - **PR1** — return the pure plan immediately when feasible;
//! - **PR2** — keep only the cheapest sub-plan per children subset;
//! - **PR3** — prune dominated sub-plans (a sub-plan covering a superset of
//!   children at no greater cost dominates).
//!
//! Each rule can be disabled individually (experiment E5 measures the
//! dividends). Sub-plan combination is Minimum-Cost Set Cover, solved
//! exactly (`O(2^Q)`) or greedily ([`crate::mcsc`]; experiment E9).
//!
//! ## Hot-path representation
//!
//! Attribute sets travel as interned [`SymSet`] bitsets and conditions as
//! 128-bit fingerprints, so the per-subset work — feasibility tests,
//! MaxEval, memo probes — does no string hashing or `BTreeSet` allocation.
//! Sub-condition trees are built **only after** the masked `Check` says the
//! subset is supported, and candidate sub-plans are `Rc`-shared so losing
//! candidates are never deep-copied (see DESIGN.md, "Implementation notes:
//! interning & bitsets").

use crate::cache::CheckCache;
use crate::maxeval::max_eval;
use crate::mcsc::{solve_exact, solve_greedy, CoverItem};
use csqp_expr::canonical::canonicalize;
use csqp_expr::{CondTree, Connector, Interner, SymSet};
use csqp_obs::{PlanEvent, QueryFlight};
use csqp_plan::cost::Cardinality;
use csqp_plan::model::CostModel;
use csqp_plan::{AttrSet, Plan};
use csqp_ssdl::linearize::{cond_fingerprint, Fingerprint};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// IPG configuration: pruning-rule toggles and MCSC solver choice.
#[derive(Debug, Clone, Copy)]
pub struct IpgConfig {
    /// PR1: prune impure plans when a pure plan exists.
    pub pr1: bool,
    /// PR2: prune locally sub-optimal plans (cheapest per subset).
    pub pr2: bool,
    /// PR3: prune dominated sub-plans.
    pub pr3: bool,
    /// Solve MCSC exactly (branch-and-bound) or greedily.
    pub exact_mcsc: bool,
    /// Cap on a node's children for subset enumeration (2^k subsets).
    pub max_children: usize,
}

impl Default for IpgConfig {
    fn default() -> Self {
        IpgConfig { pr1: true, pr2: true, pr3: true, exact_mcsc: true, max_children: 14 }
    }
}

/// Search statistics from IPG (E4/E5/E9 measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct IpgStats {
    /// IPG invocations (including memo hits).
    pub calls: usize,
    /// IPG invocations answered from the memo table (whole sub-searches
    /// skipped).
    pub memo_hits: usize,
    /// Largest sub-plan array `Q` handed to MCSC after pruning.
    pub max_q: usize,
    /// Candidate sub-plans generated (before pruning).
    pub subplans_considered: usize,
    /// Sub-searches short-circuited or skipped by PR1 (a pure plan
    /// existed).
    pub pr1_prunes: usize,
    /// Candidate sub-plans discarded by PR2 (costlier than the kept plan
    /// for the same children subset).
    pub pr2_prunes: usize,
    /// Sub-plans discarded by PR3 (dominated by a superset cover at no
    /// greater cost), plus line-12 recursions skipped on a pure superset.
    pub pr3_prunes: usize,
    /// MCSC search nodes expanded.
    pub mcsc_nodes: usize,
    /// Set when a fan-out cap truncated subset enumeration.
    pub truncated: bool,
}

/// A candidate sub-plan for a subset of a node's children. The plan is
/// `Rc`-shared: only plans that survive MCSC selection are ever deep-copied.
#[derive(Debug, Clone)]
struct SubPlan {
    plan: Rc<Plan>,
    cost: f64,
    pure: bool,
}

/// A memoized IPG outcome: the best shared plan and its cost, or φ.
type MemoEntry = Option<(Rc<Plan>, f64)>;

/// The IPG search context.
pub struct IpgContext<'a, 'b> {
    cache: &'a CheckCache<'b>,
    model: &'a dyn CostModel,
    card: &'a dyn Cardinality,
    cfg: IpgConfig,
    /// Mutable statistics.
    pub stats: IpgStats,
    interner: Arc<Interner>,
    memo: HashMap<(Fingerprint, SymSet), MemoEntry>,
    /// Materialized name sets per symbol set, shared across all plans that
    /// fetch the same attributes.
    attr_names: HashMap<SymSet, Arc<AttrSet>>,
    /// Flight-recorder handle for plan provenance (disabled by default;
    /// armed via [`IpgContext::with_flight`]).
    flight: QueryFlight<'a>,
    /// Span tracer for the hierarchical query profile (absent by default;
    /// attached via [`IpgContext::with_tracer`]). Must only be set when the
    /// search runs from a sequential program point.
    tracer: Option<&'a csqp_obs::Tracer>,
}

impl<'a, 'b> IpgContext<'a, 'b> {
    /// Creates a context. Symbols are interned through the cache's source,
    /// so `Check` results compare against query attributes bitwise.
    pub fn new(
        cache: &'a CheckCache<'b>,
        model: &'a dyn CostModel,
        card: &'a dyn Cardinality,
        cfg: IpgConfig,
    ) -> Self {
        IpgContext {
            cache,
            model,
            card,
            cfg,
            stats: IpgStats::default(),
            interner: cache.source().interner().clone(),
            memo: HashMap::new(),
            attr_names: HashMap::new(),
            flight: QueryFlight::disabled(),
            tracer: None,
        }
    }

    /// Attaches a flight-recorder handle: every PR1/PR2/PR3 decision, MCSC
    /// cover choice, and memo hit of the search is recorded as a
    /// [`PlanEvent`] for `EXPLAIN WHY`.
    pub fn with_flight(mut self, flight: QueryFlight<'a>) -> Self {
        self.flight = flight;
        self
    }

    /// Attaches a span tracer: MCSC cover searches open `mcsc` spans under
    /// the caller's per-CT span, so query profiles attribute planning ticks
    /// to the cover solver.
    pub fn with_tracer(mut self, tracer: Option<&'a csqp_obs::Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Swaps (or detaches) the tracer mid-search: the planners cap per-CT
    /// span detail at [`crate::types::MAX_CT_SPANS`] and hand later CTs a
    /// `None` here so their cover searches stop opening `mcsc` spans.
    pub fn set_tracer(&mut self, tracer: Option<&'a csqp_obs::Tracer>) {
        self.tracer = tracer;
    }

    fn source_query_cost(&self, cond: Option<&CondTree>, n_attrs: usize) -> f64 {
        self.model.source_query_cost(cond, n_attrs, self.card.estimate(cond))
    }

    /// `Attr(n)` as interned symbols, without a string-set detour.
    fn tree_syms(&self, n: &CondTree) -> SymSet {
        let mut out = SymSet::new();
        n.for_each_attr(&mut |a| out.insert(self.interner.intern(a)));
        out
    }

    /// The shared name set behind a symbol set (memoized).
    fn materialize(&mut self, set: &SymSet) -> Arc<AttrSet> {
        if let Some(hit) = self.attr_names.get(set) {
            return hit.clone();
        }
        let names: Arc<AttrSet> = Arc::new(set.iter().map(|sym| self.interner.name(sym)).collect());
        self.attr_names.insert(set.clone(), names.clone());
        names
    }
}

/// Runs IPG on a condition tree (canonicalized first, per §6.4) and
/// requested attributes. Returns the best feasible plan and its cost, or
/// `None` (φ).
pub fn ipg_entry(
    cond: &CondTree,
    attrs: &AttrSet,
    ctx: &mut IpgContext<'_, '_>,
) -> Option<(Plan, f64)> {
    let canon = canonicalize(cond);
    let a: SymSet = attrs.iter().map(|s| ctx.interner.intern(s)).collect();
    let (plan, cost) = ipg(&canon, &a, ctx)?;
    Some((plan.as_ref().clone(), cost))
}

/// Algorithm 6.1 (expects canonical input).
fn ipg(n: &CondTree, a: &SymSet, ctx: &mut IpgContext<'_, '_>) -> Option<(Rc<Plan>, f64)> {
    ctx.stats.calls += 1;
    // Fingerprints key the memo: linearization is injective on trees, so
    // equal fingerprints mean equal conditions (up to 2^-128 collisions).
    let key = (cond_fingerprint(Some(n)), a.clone());
    if let Some(hit) = ctx.memo.get(&key) {
        ctx.stats.memo_hits += 1;
        ctx.flight.event_with(|| PlanEvent::MemoHit { node: n.to_string() });
        return hit.clone();
    }

    // Pure plan (Fig. 4, first check).
    let pure: Option<(Rc<Plan>, f64)> = if ctx.cache.check(Some(n)).covers_syms(a) {
        let cost = ctx.source_query_cost(Some(n), a.len());
        let attrs = ctx.materialize(a);
        Some((Rc::new(Plan::source(Some(n.clone()), attrs)), cost))
    } else {
        None
    };
    if ctx.cfg.pr1 {
        if let Some(p) = pure {
            ctx.stats.pr1_prunes += 1;
            ctx.flight.event_with(|| PlanEvent::Pr1ShortCircuit { node: n.to_string(), cost: p.1 });
            ctx.memo.insert(key, Some(p.clone()));
            return Some(p);
        }
    }

    // Download-based impure plan.
    let mut needed = a.clone();
    needed.union_with(&ctx.tree_syms(n));
    let mut plan_impure: Option<(Rc<Plan>, f64)> = if ctx.cache.check(None).covers_syms(&needed) {
        let cost = ctx.source_query_cost(None, needed.len());
        let out_attrs = ctx.materialize(a);
        let fetched = ctx.materialize(&needed);
        Some((Rc::new(Plan::local(Some(n.clone()), out_attrs, Plan::source(None, fetched))), cost))
    } else {
        None
    };

    match n.connector() {
        None => {} // leaf: no further impure plans
        Some(Connector::Or) => {
            if let Some(candidate) = or_node(n, a, ctx) {
                plan_impure = min_plan(plan_impure, Some(candidate));
            }
        }
        Some(Connector::And) => {
            if let Some(candidate) = and_node(n, a, ctx) {
                plan_impure = min_plan(plan_impure, Some(candidate));
            }
        }
    }

    // With PR1 disabled, the pure plan competes as an ordinary candidate.
    let result = min_plan(pure, plan_impure);
    ctx.memo.insert(key, result.clone());
    result
}

fn min_plan(a: Option<(Rc<Plan>, f64)>, b: Option<(Rc<Plan>, f64)>) -> Option<(Rc<Plan>, f64)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.1 <= y.1 { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// `OR(N)` / `AND(N)`: the sub-condition of a children subset (bitmask),
/// order-preserving; singletons collapse to the child itself. Built only
/// for subsets the masked `Check` accepted.
fn sub_cond(conn: Connector, children: &[CondTree], mask: u64) -> CondTree {
    let picked: Vec<CondTree> = children
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| c.clone())
        .collect();
    if picked.len() == 1 {
        picked.into_iter().next().expect("len checked")
    } else {
        CondTree::Node(conn, picked)
    }
}

/// Union of the pre-interned child attribute sets selected by `mask`.
fn syms_of_mask(child_attrs: &[SymSet], mask: u64) -> SymSet {
    let mut out = SymSet::new();
    for (i, ca) in child_attrs.iter().enumerate() {
        if mask & (1 << i) != 0 {
            out.union_with(ca);
        }
    }
    out
}

/// Inserts a candidate into the sub-plan array, honoring PR2.
fn push_subplan(
    p: &mut HashMap<u64, Vec<SubPlan>>,
    mask: u64,
    sub: SubPlan,
    ctx: &mut IpgContext<'_, '_>,
) {
    ctx.stats.subplans_considered += 1;
    ctx.flight.event_with(|| PlanEvent::Admitted {
        mask,
        cost: sub.cost,
        pure: sub.pure,
        plan: sub.plan.to_string(),
    });
    let entry = p.entry(mask).or_default();
    if ctx.cfg.pr2 {
        match entry.first() {
            Some(existing) if existing.cost <= sub.cost => {
                // One of the two candidates loses either way; keep pureness
                // information even when costs tie, so the line-12 guard of
                // Fig. 6 stays sound.
                ctx.stats.pr2_prunes += 1;
                ctx.flight.event_with(|| PlanEvent::Pr2Evicted {
                    mask,
                    kept_cost: existing.cost,
                    evicted_cost: sub.cost,
                });
                if sub.pure && !existing.pure && sub.cost <= existing.cost {
                    entry[0] = sub;
                }
            }
            _ => {
                ctx.stats.pr2_prunes += entry.len();
                for evicted in entry.iter() {
                    ctx.flight.event_with(|| PlanEvent::Pr2Evicted {
                        mask,
                        kept_cost: sub.cost,
                        evicted_cost: evicted.cost,
                    });
                }
                entry.clear();
                entry.push(sub);
            }
        }
    } else {
        entry.push(sub);
    }
}

/// PR3: removes sub-plans dominated by another entry covering a superset of
/// children at no greater cost. Returns how many were removed (the
/// domination test is pointwise against a snapshot, so the count is
/// independent of map iteration order).
fn prune_dominated(p: &mut HashMap<u64, Vec<SubPlan>>, flight: QueryFlight<'_>) -> usize {
    let snapshot: Vec<(u64, f64)> =
        p.iter().flat_map(|(m, subs)| subs.iter().map(move |s| (*m, s.cost))).collect();
    let before = snapshot.len();
    if flight.active() {
        // Report victims from a *sorted* view (HashMap order must not leak
        // into the flight record), naming each victim's deterministic
        // dominator: minimal cost, then minimal mask. The predicate is the
        // same one `retain` applies below, so events match removals 1:1.
        let mut sorted = snapshot.clone();
        sorted.sort_unstable_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        for &(mask, cost) in &sorted {
            let dominator = sorted
                .iter()
                .filter(|(m2, c2)| {
                    (*m2 != mask || *c2 < cost) && (mask & *m2) == mask && *c2 <= cost
                })
                .min_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
            if let Some(&(by_mask, by_cost)) = dominator {
                flight.event_with(|| PlanEvent::Pr3Dominated { mask, cost, by_mask, by_cost });
            }
        }
    }
    p.retain(|mask, subs| {
        subs.retain(|s| {
            !snapshot.iter().any(|(m2, c2)| {
                // (m2, c2) dominates s?
                (*m2 != *mask || *c2 < s.cost)
                    && (*mask & *m2) == *mask // mask ⊆ m2
                    && *c2 <= s.cost
            })
        });
        !subs.is_empty()
    });
    before - p.values().map(Vec::len).sum::<usize>()
}

/// Runs MCSC over the sub-plan array and builds the combined plan.
fn combine(
    p: &HashMap<u64, Vec<SubPlan>>,
    universe: u64,
    conn: Connector,
    ctx: &mut IpgContext<'_, '_>,
) -> Option<(Rc<Plan>, f64)> {
    let mut items: Vec<CoverItem> = Vec::new();
    let mut plans: Vec<&SubPlan> = Vec::new();
    // Feed MCSC in ascending-mask order, not HashMap order: solver
    // tie-breaks between equal-cost covers and the child order of the
    // combined plan both follow item order, and they must replay
    // identically run to run (the EXPLAIN ANALYZE golden and the trace
    // depend on it).
    let mut entries: Vec<(&u64, &Vec<SubPlan>)> = p.iter().collect();
    entries.sort_unstable_by_key(|(mask, _)| **mask);
    for (mask, subs) in entries {
        for s in subs {
            items.push(CoverItem { set: *mask, cost: s.cost });
            plans.push(s);
        }
    }
    ctx.stats.max_q = ctx.stats.max_q.max(items.len());
    let _mcsc_span = ctx.tracer.map(|t| t.span("mcsc"));
    let (solution, mstats) = if ctx.cfg.exact_mcsc {
        solve_exact(&items, universe)
    } else {
        solve_greedy(&items, universe)
    };
    ctx.stats.mcsc_nodes += mstats.nodes;
    let Some(chosen) = solution else {
        ctx.flight.event_with(|| PlanEvent::McscNoCover { universe });
        return None;
    };
    if ctx.flight.active() {
        let tie_break = if ctx.cfg.exact_mcsc {
            "lowest-cost cover; ascending-mask item order"
        } else {
            "greedy best cost/coverage ratio"
        };
        let covers_examined = mstats.nodes;
        ctx.flight.event_with(|| PlanEvent::McscCover {
            chosen_masks: chosen.iter().map(|&i| items[i].set).collect(),
            total_cost: chosen.iter().map(|&i| plans[i].cost).sum(),
            covers_examined,
            tie_break,
        });
    }
    if let [only] = chosen.as_slice() {
        // Singleton cover: share the sub-plan, no copy at all.
        return Some((plans[*only].plan.clone(), plans[*only].cost));
    }
    let chosen_plans: Vec<Plan> = chosen.iter().map(|&i| plans[i].plan.as_ref().clone()).collect();
    let total: f64 = chosen.iter().map(|&i| plans[i].cost).sum();
    let combined = match conn {
        Connector::And => Plan::intersect(chosen_plans),
        Connector::Or => Plan::union(chosen_plans),
    };
    Some((Rc::new(combined), total))
}

/// Figure 5: the best impure plan for an `_` node.
fn or_node(n: &CondTree, a: &SymSet, ctx: &mut IpgContext<'_, '_>) -> Option<(Rc<Plan>, f64)> {
    let children = n.children();
    let k = children.len();
    if k > ctx.cfg.max_children {
        ctx.stats.truncated = true;
        return None;
    }
    let full: u64 = (1u64 << k) - 1;
    let mut p: HashMap<u64, Vec<SubPlan>> = HashMap::new();

    // Step 1a (lines 3–5): pure sub-plans for every non-empty subset. The
    // masked check decides support before any sub-condition tree exists.
    for mask in 1..=full {
        if ctx.cache.check_masked(Connector::Or, children, mask).covers_syms(a) {
            let cond = sub_cond(Connector::Or, children, mask);
            let cost = ctx.source_query_cost(Some(&cond), a.len());
            let attrs = ctx.materialize(a);
            push_subplan(
                &mut p,
                mask,
                SubPlan { plan: Rc::new(Plan::source(Some(cond), attrs)), cost, pure: true },
                ctx,
            );
        }
    }

    // Step 1b (lines 6–7): impure sub-plans for single children, only where
    // no pure singleton exists (PR1).
    for (i, child) in children.iter().enumerate() {
        let mask = 1u64 << i;
        let has_pure = p.get(&mask).is_some_and(|subs| subs.iter().any(|s| s.pure));
        if ctx.cfg.pr1 && has_pure {
            ctx.stats.pr1_prunes += 1;
            ctx.flight.event_with(|| PlanEvent::Pr1Skip { mask });
            continue;
        }
        if let Some((plan, cost)) = ipg(child, a, ctx) {
            push_subplan(&mut p, mask, SubPlan { plan, cost, pure: false }, ctx);
        }
    }

    // Step 2 (lines 8–14): prune dominated, then MCSC with ∪ combination.
    if ctx.cfg.pr3 {
        ctx.stats.pr3_prunes += prune_dominated(&mut p, ctx.flight);
    }
    combine(&p, full, Connector::Or, ctx)
}

/// Figure 6: the best impure plan for an `^` node.
fn and_node(n: &CondTree, a: &SymSet, ctx: &mut IpgContext<'_, '_>) -> Option<(Rc<Plan>, f64)> {
    let children = n.children().to_vec();
    let k = children.len();
    if k > ctx.cfg.max_children {
        ctx.stats.truncated = true;
        return None;
    }
    let full: u64 = (1u64 << k) - 1;
    let mut p: HashMap<u64, Vec<SubPlan>> = HashMap::new();
    // `Attr(child)` interned once per node; every MaxEval / widening below
    // is bitset arithmetic over these.
    let child_attrs: Vec<SymSet> = children.iter().map(|c| ctx.tree_syms(c)).collect();

    // Lines 3–9: pure sub-plans, plus mediator-side evaluation of additional
    // children on a supported query's exports (MaxEval).
    for mask in 1..=full {
        let export = ctx.cache.check_masked(Connector::And, &children, mask);
        if export.is_empty() {
            continue;
        }
        let cond_n = sub_cond(Connector::And, &children, mask);
        if export.covers_syms(a) {
            let cost = ctx.source_query_cost(Some(&cond_n), a.len());
            let attrs = ctx.materialize(a);
            push_subplan(
                &mut p,
                mask,
                SubPlan {
                    plan: Rc::new(Plan::source(Some(cond_n.clone()), attrs)),
                    cost,
                    pure: true,
                },
                ctx,
            );
        }
        // For each maximal exported attribute set AN (antichain element):
        for an in export.sym_sets() {
            if !a.is_subset(an) {
                continue; // the nested query must still deliver A
            }
            let evaluable = max_eval(an, &child_attrs);
            let nadd: Vec<usize> = evaluable.into_iter().filter(|i| mask & (1 << i) == 0).collect();
            if nadd.is_empty() {
                continue;
            }
            let m_count = nadd.len();
            for m_bits in 1u64..(1 << m_count) {
                let m_mask: u64 = nadd
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| m_bits & (1 << j) != 0)
                    .map(|(_, &i)| 1u64 << i)
                    .sum();
                let mut fetched = a.clone();
                fetched.union_with(&syms_of_mask(&child_attrs, m_mask));
                // Attr(AND(M)) ⊆ AN by MaxEval; A ⊆ AN checked above.
                let cost = ctx.source_query_cost(Some(&cond_n), fetched.len());
                let cond_m = sub_cond(Connector::And, &children, m_mask);
                let out_attrs = ctx.materialize(a);
                let fetched_attrs = ctx.materialize(&fetched);
                let plan = Plan::local(
                    Some(cond_m),
                    out_attrs,
                    Plan::source(Some(cond_n.clone()), fetched_attrs),
                );
                push_subplan(
                    &mut p,
                    mask | m_mask,
                    SubPlan { plan: Rc::new(plan), cost, pure: false },
                    ctx,
                );
            }
        }
    }

    // Lines 10–13: recursive sub-plans — evaluate one child via IPG, the
    // rest of N' locally on its result.
    for i in 0..k {
        let child_bit = 1u64 << i;
        for mask in 1..=full {
            if mask & child_bit == 0 {
                continue;
            }
            // Line 12 guard: skip when a pure plan exists for N' (PR1) or a
            // superset of N' (PR3). Checked in that order so the per-rule
            // prune counters stay deterministic.
            if ctx.cfg.pr1 && p.get(&mask).is_some_and(|subs| subs.iter().any(|s| s.pure)) {
                ctx.stats.pr1_prunes += 1;
                ctx.flight.event_with(|| PlanEvent::Pr1Skip { mask });
                continue;
            }
            if ctx.cfg.pr3 {
                // `.min()` makes the reported dominator deterministic even
                // though any pure superset justifies the skip.
                let dominating = p
                    .iter()
                    .filter(|(m2, subs)| {
                        **m2 != mask && (mask & **m2) == mask && subs.iter().any(|s| s.pure)
                    })
                    .map(|(m2, _)| *m2)
                    .min();
                if let Some(by_mask) = dominating {
                    ctx.stats.pr3_prunes += 1;
                    ctx.flight.event_with(|| PlanEvent::Pr3Skip { mask, by_mask });
                    continue;
                }
            }
            let rest_mask = mask & !child_bit;
            let widened = if rest_mask == 0 {
                a.clone()
            } else {
                let mut w = a.clone();
                w.union_with(&syms_of_mask(&child_attrs, rest_mask));
                w
            };
            let Some((sub_plan, sub_cost)) = ipg(&children[i], &widened, ctx) else {
                continue;
            };
            let plan = if rest_mask == 0 {
                sub_plan // shared as-is: no wrapper, no copy
            } else {
                let rest_cond = sub_cond(Connector::And, &children, rest_mask);
                let out_attrs = ctx.materialize(a);
                Rc::new(Plan::local(Some(rest_cond), out_attrs, sub_plan.as_ref().clone()))
            };
            push_subplan(&mut p, mask, SubPlan { plan, cost: sub_cost, pure: false }, ctx);
        }
    }

    // Lines 14–20.
    if ctx.cfg.pr3 {
        ctx.stats.pr3_prunes += prune_dominated(&mut p, ctx.flight);
    }
    combine(&p, full, Connector::And, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_plan::attrs;
    use csqp_plan::cost::UniformCard;
    use csqp_ssdl::check::CompiledSource;
    use csqp_ssdl::closure::permutation_closure;
    use csqp_ssdl::{parse_ssdl, templates};

    fn run_ipg(
        desc: csqp_ssdl::SsdlDesc,
        cond: &str,
        a: &[&str],
        cfg: IpgConfig,
    ) -> (Option<(Plan, f64)>, IpgStats) {
        let closed = permutation_closure(&desc, 5).desc;
        let compiled = CompiledSource::new(closed);
        let cache = CheckCache::new(&compiled);
        let params = csqp_source::CostParams::new(10.0, 1.0);
        let card = UniformCard { rows: 1000.0, atom_selectivity: 0.1 };
        let mut ctx = IpgContext::new(&cache, &params, &card, cfg);
        let ct = parse_condition(cond).unwrap();
        let result = ipg_entry(&ct, &attrs(a.iter().copied()), &mut ctx);
        let stats = ctx.stats;
        (result, stats)
    }

    #[test]
    fn pure_plan_short_circuits_with_pr1() {
        let (res, stats) = run_ipg(
            templates::car_dealer(),
            "make = \"BMW\" ^ price < 40000",
            &["model", "year"],
            IpgConfig::default(),
        );
        let (plan, _) = res.unwrap();
        assert!(matches!(plan, Plan::SourceQuery { .. }));
        // PR1 stops the traversal after the root check.
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn example_4_1_nested_plan_found() {
        // Target: (make=BMW ^ price<40000) ^ (color=red _ color=black),
        // A = {model, year}. The intersect plan is infeasible (n2
        // unsupported); IPG must find the nested local-evaluation plan.
        let (res, _) = run_ipg(
            templates::car_dealer(),
            "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")",
            &["model", "year"],
            IpgConfig::default(),
        );
        let (plan, _) = res.unwrap();
        match &plan {
            Plan::LocalSp { cond, input, .. } => {
                assert!(cond.as_ref().unwrap().to_string().contains("color"));
                assert!(matches!(**input, Plan::SourceQuery { .. }));
            }
            other => panic!("expected nested local plan, got {other}"),
        }
    }

    /// Example 6.1: the ∧-node machinery explores the MaxEval-based nested
    /// sub-plans and picks the cheaper combination.
    #[test]
    fn example_6_1_subplan_combination() {
        // R supports SP(c1,A,R), SP(c2, A∪Attr(c3), R), SP(c3, A∪Attr(c2), R)
        // where c1: a=.., c2: b=.., c3: c=.. and A={k}.
        let desc = parse_ssdl(
            "source ex61 {\n\
             s1 -> a = $int ;\n\
             s2 -> b = $int ;\n\
             s3 -> c = $int ;\n\
             attributes :: s1 : { k } ;\n\
             attributes :: s2 : { k, c } ;\n\
             attributes :: s3 : { k, b } ;\n}",
        )
        .unwrap();
        let (res, stats) = run_ipg(desc, "a = 1 ^ b = 2 ^ c = 3", &["k"], IpgConfig::default());
        let (plan, _) = res.unwrap();
        // Best plan intersects SP(c1) with a nested plan covering {c2, c3}
        // via one source query (Plan 3 of the example), beating the
        // three-query Plan 2 under k1=10.
        let rendered = plan.to_string();
        assert!(rendered.contains("∩"), "{rendered}");
        let sqs = plan.source_queries();
        assert_eq!(sqs.len(), 2, "two source queries, not three: {rendered}");
        assert!(stats.max_q >= 2);
    }

    #[test]
    fn or_node_set_cover_groups_disjuncts() {
        // Source supports the two-disjunct form only pairwise (via the list
        // rule); a 3-way disjunction must be covered by supported subsets.
        let desc = parse_ssdl(
            "source lists {\n\
             s1 -> sizes ;\n\
             sizes -> size = $str | size = $str _ sizes ;\n\
             attributes :: s1 : { k, size } ;\n}",
        )
        .unwrap();
        let (res, _) = run_ipg(
            desc,
            "size = \"a\" _ size = \"b\" _ size = \"c\"",
            &["k"],
            IpgConfig::default(),
        );
        let (plan, _) = res.unwrap();
        // The whole disjunction is supported by the recursive list rule —
        // pure plan wins.
        assert!(matches!(plan, Plan::SourceQuery { .. }));
    }

    #[test]
    fn or_node_unsupported_disjunct_recursion() {
        // Only author-equality is supported; the second disjunct needs its
        // own recursive plan (which exists), union-combined.
        let (res, _) = run_ipg(
            templates::bookstore(),
            "author = \"Sigmund Freud\" _ (author = \"Carl Jung\" ^ title contains \"dreams\")",
            &["isbn"],
            IpgConfig::default(),
        );
        let (plan, _) = res.unwrap();
        assert!(matches!(plan, Plan::Union(_)), "{plan}");
        assert_eq!(plan.source_queries().len(), 2);
    }

    #[test]
    fn infeasible_returns_none() {
        let (res, _) =
            run_ipg(templates::car_dealer(), "year = 1995", &["model"], IpgConfig::default());
        assert!(res.is_none());
    }

    #[test]
    fn disabling_pr1_still_finds_optimal() {
        let cond = "(make = \"BMW\" ^ price < 40000) ^ (color = \"red\" _ color = \"black\")";
        let cfg_on = IpgConfig::default();
        let cfg_off = IpgConfig { pr1: false, ..IpgConfig::default() };
        let (res_on, stats_on) = run_ipg(templates::car_dealer(), cond, &["model", "year"], cfg_on);
        let (res_off, stats_off) =
            run_ipg(templates::car_dealer(), cond, &["model", "year"], cfg_off);
        assert_eq!(res_on.unwrap().1, res_off.unwrap().1, "same optimal cost");
        assert!(
            stats_off.subplans_considered >= stats_on.subplans_considered,
            "PR1 never increases work"
        );
    }

    #[test]
    fn disabling_pr2_pr3_still_finds_optimal() {
        let cond = "a = 1 ^ b = 2 ^ c = 3";
        let desc = || {
            parse_ssdl(
                "source ex61 {\n\
                 s1 -> a = $int ;\n\
                 s2 -> b = $int ;\n\
                 s3 -> c = $int ;\n\
                 s4 -> a = $int ^ b = $int ;\n\
                 attributes :: s1 : { k } ;\n\
                 attributes :: s2 : { k, c } ;\n\
                 attributes :: s3 : { k, b } ;\n\
                 attributes :: s4 : { k } ;\n}",
            )
            .unwrap()
        };
        let (res_full, stats_full) = run_ipg(desc(), cond, &["k"], IpgConfig::default());
        let cfg_bare = IpgConfig { pr2: false, pr3: false, ..IpgConfig::default() };
        let (res_bare, stats_bare) = run_ipg(desc(), cond, &["k"], cfg_bare);
        assert_eq!(res_full.unwrap().1, res_bare.unwrap().1);
        assert!(stats_bare.max_q >= stats_full.max_q, "pruning keeps Q small");
    }

    #[test]
    fn greedy_mcsc_is_feasible_but_may_cost_more() {
        let desc = || {
            parse_ssdl(
                "source g {\n\
                 s1 -> a = $int ;\ns2 -> b = $int ;\ns3 -> c = $int ;\n\
                 s4 -> a = $int ^ b = $int ^ c = $int ;\n\
                 attributes :: s1 : { k } ;\nattributes :: s2 : { k } ;\n\
                 attributes :: s3 : { k } ;\nattributes :: s4 : { k } ;\n}",
            )
            .unwrap()
        };
        // Note: the full conjunction is supported (s4) so the pure plan
        // wins under PR1; disable PR1 to exercise MCSC.
        let cfg_exact = IpgConfig { pr1: false, ..IpgConfig::default() };
        let cfg_greedy = IpgConfig { pr1: false, exact_mcsc: false, ..IpgConfig::default() };
        let (res_e, _) = run_ipg(desc(), "a = 1 ^ b = 2 ^ c = 3", &["k"], cfg_exact);
        let (res_g, _) = run_ipg(desc(), "a = 1 ^ b = 2 ^ c = 3", &["k"], cfg_greedy);
        let (_, ce) = res_e.unwrap();
        let (_, cg) = res_g.unwrap();
        assert!(cg >= ce);
    }

    #[test]
    fn fan_out_cap_reports_truncation() {
        let desc =
            parse_ssdl("source t {\ns1 -> a = $int ;\nattributes :: s1 : { k } ;\n}").unwrap();
        let parts: Vec<String> = (0..16).map(|i| format!("a = {i}")).collect();
        let cond = parts.join(" _ ");
        let cfg = IpgConfig { max_children: 8, ..IpgConfig::default() };
        let (_, stats) = run_ipg(desc, &cond, &["k"], cfg);
        assert!(stats.truncated);
    }

    #[test]
    fn download_fallback_when_nothing_else_works() {
        let (res, _) = run_ipg(
            templates::download_only(
                "dl",
                &[("a", csqp_expr::ValueType::Int), ("k", csqp_expr::ValueType::Int)],
            ),
            "a = 1",
            &["k"],
            IpgConfig::default(),
        );
        let (plan, _) = res.unwrap();
        assert!(plan.to_string().contains("SP(true"), "{plan}");
    }
}
