//! `MaxEval(AN, n)` — §6.4.3.
//!
//! Given the attribute set `AN` a source query exports, returns the children
//! of `n` whose conditions the *mediator* can evaluate locally on the
//! query's result: those with `Attr(child) ⊆ AN`.
//!
//! Attribute sets arrive pre-interned as [`SymSet`] bitsets (the IPG planner
//! interns each child's attributes once per node), so each child test is a
//! word-wide subset check rather than a string-set comparison.

use csqp_expr::SymSet;

/// Indices of children evaluable from the exported attributes `an`;
/// `child_attrs[i]` is `Attr(children[i])` interned against the same
/// interner as `an`.
pub fn max_eval(an: &SymSet, child_attrs: &[SymSet]) -> Vec<usize> {
    child_attrs.iter().enumerate().filter(|(_, c)| c.is_subset(an)).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_expr::Interner;

    fn setup(cond: &str) -> (Interner, Vec<SymSet>) {
        let ct = parse_condition(cond).unwrap();
        let interner = Interner::new();
        let child_attrs = ct
            .children()
            .iter()
            .map(|c| {
                let mut set = SymSet::new();
                c.for_each_attr(&mut |a| set.insert(interner.intern(a)));
                set
            })
            .collect();
        (interner, child_attrs)
    }

    fn syms(interner: &Interner, names: &[&str]) -> SymSet {
        names.iter().map(|a| interner.intern(a)).collect()
    }

    #[test]
    fn selects_evaluable_children() {
        let (i, children) =
            setup("make = \"BMW\" ^ (color = \"red\" _ color = \"black\") ^ price < 40000");
        assert_eq!(max_eval(&syms(&i, &["color"]), &children), vec![1]);
        assert_eq!(max_eval(&syms(&i, &["make", "color"]), &children), vec![0, 1]);
        assert_eq!(max_eval(&syms(&i, &["make", "color", "price"]), &children), vec![0, 1, 2]);
        assert!(max_eval(&syms(&i, &["year"]), &children).is_empty());
    }

    #[test]
    fn empty_attr_set_evaluates_nothing() {
        let (_, children) = setup("a = 1 ^ b = 2");
        assert!(max_eval(&SymSet::new(), &children).is_empty());
    }
}
