//! `MaxEval(AN, n)` — §6.4.3.
//!
//! Given the attribute set `AN` a source query exports, returns the children
//! of `n` whose conditions the *mediator* can evaluate locally on the
//! query's result: those with `Attr(child) ⊆ AN`.

use csqp_expr::CondTree;
use std::collections::BTreeSet;

/// Indices of `children` evaluable from the exported attributes `an`.
pub fn max_eval(an: &BTreeSet<String>, children: &[CondTree]) -> Vec<usize> {
    children
        .iter()
        .enumerate()
        .filter(|(_, c)| c.attrs().iter().all(|a| an.contains(a)))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;

    fn attrs(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn selects_evaluable_children() {
        let ct = parse_condition(
            "make = \"BMW\" ^ (color = \"red\" _ color = \"black\") ^ price < 40000",
        )
        .unwrap();
        let children = ct.children().to_vec();
        assert_eq!(max_eval(&attrs(&["color"]), &children), vec![1]);
        assert_eq!(max_eval(&attrs(&["make", "color"]), &children), vec![0, 1]);
        assert_eq!(
            max_eval(&attrs(&["make", "color", "price"]), &children),
            vec![0, 1, 2]
        );
        assert!(max_eval(&attrs(&["year"]), &children).is_empty());
    }

    #[test]
    fn empty_attr_set_evaluates_nothing() {
        let ct = parse_condition("a = 1 ^ b = 2").unwrap();
        assert!(max_eval(&BTreeSet::new(), ct.children()).is_empty());
    }
}
