//! Baseline planning strategies the paper compares against (§1, §2):
//!
//! - **CNF pushdown** (Garlic): normalize to CNF; push the supported
//!   clauses as one conjunctive source query, apply the rest at the
//!   mediator; if no clause is supported, attempt to download the source.
//! - **DNF pushdown**: normalize to DNF; plan each term independently
//!   (pushing its supported part, filtering the rest locally) and union.
//! - **DISCO**: all-or-nothing — push the whole condition, or download the
//!   whole source; never split the condition.
//! - **Naive pushdown** (System R / DB2-class): assume full relational
//!   capability and push the whole query; fails on any limitation.

use crate::cache::CheckCache;
use crate::types::{PlanError, PlannedQuery, PlannerReport, TargetQuery};
use csqp_expr::normal::{cnf_clauses, dnf_terms};
use csqp_expr::CondTree;
use csqp_plan::cost::plan_cost;
use csqp_plan::cost::Cardinality;
use csqp_plan::model::CostModel;
use csqp_plan::{AttrSet, Plan};
use csqp_source::Source;
use std::time::Instant;

/// Cap on CNF clauses / DNF terms a baseline will enumerate subsets of.
pub const MAX_BASELINE_PARTS: usize = 14;

fn and_of(parts: &[CondTree]) -> Option<CondTree> {
    match parts.len() {
        0 => None,
        1 => Some(parts[0].clone()),
        _ => Some(CondTree::and(parts.to_vec())),
    }
}

fn attrs_of(parts: &[CondTree]) -> AttrSet {
    parts.iter().flat_map(|p| p.attrs()).collect()
}

/// Splits `parts` into the largest supported conjunctive prefix-set and the
/// locally-evaluated remainder, preferring larger pushed sets (ties broken
/// by first-found). Returns `(pushed, local)` or `None` if no non-empty
/// subset is supported.
fn best_supported_split(
    parts: &[CondTree],
    attrs: &AttrSet,
    cache: &CheckCache<'_>,
) -> Option<(Vec<CondTree>, Vec<CondTree>)> {
    let k = parts.len();
    if k > MAX_BASELINE_PARTS {
        return None;
    }
    let full: u32 = (1u32 << k) - 1;
    // Decreasing popcount order: push as much as possible (the Garlic
    // heuristic), requesting the attributes the local remainder needs.
    let mut masks: Vec<u32> = (1..=full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let pushed: Vec<CondTree> =
            (0..k).filter(|i| mask & (1 << i) != 0).map(|i| parts[i].clone()).collect();
        let local: Vec<CondTree> =
            (0..k).filter(|i| mask & (1 << i) == 0).map(|i| parts[i].clone()).collect();
        let cond = and_of(&pushed).expect("pushed non-empty");
        let mut needed = attrs.clone();
        needed.extend(attrs_of(&local));
        if cache.check(Some(&cond)).covers(&needed) {
            return Some((pushed, local));
        }
    }
    None
}

/// Builds the plan for a supported split: push `pushed`, filter `local` at
/// the mediator.
fn split_plan(pushed: Vec<CondTree>, local: Vec<CondTree>, attrs: &AttrSet) -> Plan {
    let cond = and_of(&pushed).expect("pushed non-empty");
    match and_of(&local) {
        None => Plan::source(Some(cond), attrs.clone()),
        Some(local_cond) => {
            let mut fetched = attrs.clone();
            fetched.extend(local_cond.attrs());
            Plan::local(Some(local_cond), attrs.clone(), Plan::source(Some(cond), fetched))
        }
    }
}

/// The download-everything fallback, if the source permits it.
fn download_plan(cond: &CondTree, attrs: &AttrSet, cache: &CheckCache<'_>) -> Option<Plan> {
    let mut needed = attrs.clone();
    needed.extend(cond.attrs());
    cache
        .check(None)
        .covers(&needed)
        .then(|| Plan::local(Some(cond.clone()), attrs.clone(), Plan::source(None, needed)))
}

fn finish(
    plan: Option<Plan>,
    query: &TargetQuery,
    scheme: &'static str,
    model: &dyn CostModel,
    card: &dyn Cardinality,
    cache: &CheckCache<'_>,
    start: Instant,
) -> Result<PlannedQuery, PlanError> {
    match plan {
        Some(plan) => {
            let est_cost = plan_cost(&plan, model, card);
            Ok(PlannedQuery {
                plan,
                est_cost,
                // The baselines are single-strategy: no losers to keep.
                alternatives: Vec::new(),
                report: PlannerReport {
                    cts_processed: 1,
                    checks: cache.calls(),
                    plans_considered: 1,
                    generator_calls: 1,
                    max_q: 0,
                    truncated: false,
                    stats: crate::types::PlannerStats {
                        check_calls: cache.calls(),
                        check_cache_hits: cache.calls() - cache.parses(),
                        check_cache_misses: cache.parses(),
                        rewrites_generated: 1,
                        ..Default::default()
                    },
                    elapsed: start.elapsed(),
                },
            })
        }
        None => Err(PlanError::NoFeasiblePlan { query: query.to_string(), scheme }),
    }
}

/// The Garlic-style CNF strategy (§2).
pub fn plan_cnf(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
) -> Result<PlannedQuery, PlanError> {
    plan_cnf_with_model(query, source, card, source.cost_params())
}

/// As [`plan_cnf`] with an explicit cost model.
pub fn plan_cnf_with_model(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    model: &dyn CostModel,
) -> Result<PlannedQuery, PlanError> {
    let start = Instant::now();
    let cache = CheckCache::new(source.planning_view());
    let clauses = cnf_clauses(&query.cond)
        .map_err(|e| PlanError::MalformedQuery(e.to_string()))?
        .into_iter()
        .map(|clause| {
            if clause.len() == 1 {
                clause.into_iter().next().expect("len checked")
            } else {
                CondTree::or(clause)
            }
        })
        .collect::<Vec<_>>();
    let plan = match best_supported_split(&clauses, &query.attrs, &cache) {
        Some((pushed, local)) => Some(split_plan(pushed, local, &query.attrs)),
        // Garlic: "if none of the clauses ... can be evaluated at the
        // source, Garlic attempts to download the entire source."
        None => download_plan(&query.cond, &query.attrs, &cache),
    };
    finish(plan, query, "CNF", model, card, &cache, start)
}

/// The DNF strategy: per-term pushdown, union-combined.
pub fn plan_dnf(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
) -> Result<PlannedQuery, PlanError> {
    plan_dnf_with_model(query, source, card, source.cost_params())
}

/// As [`plan_dnf`] with an explicit cost model.
pub fn plan_dnf_with_model(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    model: &dyn CostModel,
) -> Result<PlannedQuery, PlanError> {
    let start = Instant::now();
    let cache = CheckCache::new(source.planning_view());
    let terms = dnf_terms(&query.cond).map_err(|e| PlanError::MalformedQuery(e.to_string()))?;
    let mut term_plans: Vec<Plan> = Vec::with_capacity(terms.len());
    let mut ok = true;
    for term in &terms {
        match best_supported_split(term, &query.attrs, &cache) {
            Some((pushed, local)) => term_plans.push(split_plan(pushed, local, &query.attrs)),
            None => {
                // Per-term download fallback.
                let term_cond = and_of(term).expect("DNF terms are non-empty");
                match download_plan(&term_cond, &query.attrs, &cache) {
                    Some(p) => term_plans.push(p),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
    }
    let plan = ok.then(|| Plan::union(term_plans));
    finish(plan, query, "DNF", model, card, &cache, start)
}

/// The DISCO strategy (§2): whole condition at the source, or none of it.
pub fn plan_disco(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
) -> Result<PlannedQuery, PlanError> {
    plan_disco_with_model(query, source, card, source.cost_params())
}

/// As [`plan_disco`] with an explicit cost model.
pub fn plan_disco_with_model(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    model: &dyn CostModel,
) -> Result<PlannedQuery, PlanError> {
    let start = Instant::now();
    let cache = CheckCache::new(source.planning_view());
    let plan = if cache.check(Some(&query.cond)).covers(&query.attrs) {
        Some(Plan::source(Some(query.cond.clone()), query.attrs.clone()))
    } else {
        download_plan(&query.cond, &query.attrs, &cache)
    };
    finish(plan, query, "DISCO", model, card, &cache, start)
}

/// The naive full-relational assumption: push the whole query, no fallback.
pub fn plan_naive(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
) -> Result<PlannedQuery, PlanError> {
    plan_naive_with_model(query, source, card, source.cost_params())
}

/// As [`plan_naive`] with an explicit cost model.
pub fn plan_naive_with_model(
    query: &TargetQuery,
    source: &Source,
    card: &dyn Cardinality,
    model: &dyn CostModel,
) -> Result<PlannedQuery, PlanError> {
    let start = Instant::now();
    let cache = CheckCache::new(source.planning_view());
    let plan = cache
        .check(Some(&query.cond))
        .covers(&query.attrs)
        .then(|| Plan::source(Some(query.cond.clone()), query.attrs.clone()));
    finish(plan, query, "NaivePush", model, card, &cache, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_plan::cost::StatsCard;
    use csqp_plan::execute;
    use csqp_relation::datagen::{self, BookGenConfig, CarGenConfig};
    use csqp_relation::ops::{project, select};
    use csqp_source::CostParams;
    use csqp_ssdl::templates;

    fn bookstore() -> Source {
        Source::new(
            datagen::books(7, &BookGenConfig { n_books: 3000, ..Default::default() }),
            templates::bookstore(),
            CostParams::default(),
        )
    }

    const EX11: &str = "(author = \"Sigmund Freud\" _ author = \"Carl Jung\") ^ \
                        title contains \"dreams\"";

    #[test]
    fn cnf_on_bookstore_ships_all_dreams_books() {
        // Garlic pushes only the `title contains` clause and filters the
        // author disjunction locally — the paper's >2,000-entry plan.
        let s = bookstore();
        let q = TargetQuery::parse(EX11, &["isbn", "author"]).unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_cnf(&q, &s, &card).unwrap();
        assert_eq!(planned.plan.source_queries().len(), 1);
        let (result, meter) = csqp_plan::execute_measured(&planned.plan, &s).unwrap();
        // Correct answer, wasteful transfer.
        let want = project(&select(s.relation(), Some(&q.cond)), &["isbn", "author"]).unwrap();
        assert_eq!(result, want);
        let dreams = select(
            s.relation(),
            Some(&csqp_expr::parse::parse_condition("title contains \"dreams\"").unwrap()),
        )
        .len() as u64;
        assert_eq!(meter.tuples_shipped, dreams, "ships every dreams-titled book");
        assert!(meter.tuples_shipped > 5 * result.len() as u64);
    }

    #[test]
    fn dnf_on_bookstore_finds_the_good_plan() {
        let s = bookstore();
        let q = TargetQuery::parse(EX11, &["isbn", "author"]).unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_dnf(&q, &s, &card).unwrap();
        assert_eq!(planned.plan.source_queries().len(), 2);
        let result = execute(&planned.plan, &s).unwrap();
        let want = project(&select(s.relation(), Some(&q.cond)), &["isbn", "author"]).unwrap();
        assert_eq!(result, want);
    }

    #[test]
    fn disco_fails_on_both_intro_examples() {
        // "DISCO fails to generate feasible plans for both the example
        // queries of Section 1."
        let s = bookstore();
        let q = TargetQuery::parse(EX11, &["isbn"]).unwrap();
        let card = StatsCard::new(s.stats());
        assert!(plan_disco(&q, &s, &card).is_err());

        let cars = Source::new(
            datagen::car_listings(11, &CarGenConfig { n_listings: 500 }),
            templates::car_guide(),
            CostParams::default(),
        );
        let q2 = TargetQuery::parse(
            "style = \"sedan\" ^ (size = \"compact\" _ size = \"midsize\") ^ \
             ((make = \"Toyota\" ^ price <= 20000) _ (make = \"BMW\" ^ price <= 40000))",
            &["listing_id"],
        )
        .unwrap();
        let card2 = StatsCard::new(cars.stats());
        assert!(plan_disco(&q2, &cars, &card2).is_err());
    }

    #[test]
    fn disco_succeeds_on_supported_whole_condition() {
        let s = bookstore();
        let q =
            TargetQuery::parse("author = \"Sigmund Freud\" ^ title contains \"dreams\"", &["isbn"])
                .unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_disco(&q, &s, &card).unwrap();
        assert!(matches!(planned.plan, Plan::SourceQuery { .. }));
    }

    #[test]
    fn disco_download_fallback() {
        let r = datagen::cars(1, 100);
        let desc = templates::download_only(
            "dl",
            &[("make", csqp_expr::ValueType::Str), ("price", csqp_expr::ValueType::Int)],
        );
        let s = Source::new(r, desc, CostParams::default());
        let q = TargetQuery::parse("make = \"BMW\"", &["price"]).unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_disco(&q, &s, &card).unwrap();
        assert!(planned.plan.to_string().contains("SP(true"));
        let result = execute(&planned.plan, &s).unwrap();
        let want = project(&select(s.relation(), Some(&q.cond)), &["price"]).unwrap();
        assert_eq!(result, want);
    }

    #[test]
    fn naive_fails_unless_fully_supported() {
        let s = bookstore();
        let q = TargetQuery::parse(EX11, &["isbn"]).unwrap();
        let card = StatsCard::new(s.stats());
        assert!(plan_naive(&q, &s, &card).is_err());
        let ok = TargetQuery::parse("author = \"Carl Jung\"", &["isbn"]).unwrap();
        assert!(plan_naive(&ok, &s, &card).is_ok());
    }

    #[test]
    fn cnf_pushes_multiple_supported_clauses_together() {
        // Bookstore form takes author AND keyword at once: CNF over a plain
        // conjunction pushes both clauses as one query.
        let s = bookstore();
        let q =
            TargetQuery::parse("author = \"Sigmund Freud\" ^ title contains \"dreams\"", &["isbn"])
                .unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_cnf(&q, &s, &card).unwrap();
        assert!(matches!(planned.plan, Plan::SourceQuery { .. }), "{}", planned.plan);
    }

    #[test]
    fn dnf_term_partial_pushdown() {
        // One term has an unsupported conjunct (publisher); the supported
        // part is pushed and the rest filtered locally.
        let s = bookstore();
        let q = TargetQuery::parse(
            "(author = \"Carl Jung\" ^ publisher = \"Norton\") _ author = \"Sigmund Freud\"",
            &["isbn"],
        )
        .unwrap();
        let card = StatsCard::new(s.stats());
        let planned = plan_dnf(&q, &s, &card).unwrap();
        let result = execute(&planned.plan, &s).unwrap();
        let want = project(&select(s.relation(), Some(&q.cond)), &["isbn"]).unwrap();
        assert_eq!(result, want);
    }
}
