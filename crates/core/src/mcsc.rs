//! Minimum-Cost Set Cover — the combination step of IPG (§6.4.2).
//!
//! Choosing the cheapest set of sub-plans that together evaluate all of a
//! node's children is MCSC, which is NP-complete [Hochbaum 82]; the paper's
//! IPG solves it exactly in `O(2^Q)` after pruning keeps `Q` small. We
//! provide the exact solver (branch-and-bound over the pruned sub-plan
//! array) plus the classic greedy `ln(n)`-approximation as a planner option
//! and ablation (experiment E9).

/// One candidate sub-plan: which children it covers (bitmask) and its cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverItem {
    /// Bitmask of covered children.
    pub set: u64,
    /// Cost of the sub-plan.
    pub cost: f64,
}

/// Statistics from one MCSC solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct McscStats {
    /// Branch-and-bound nodes expanded (or greedy iterations).
    pub nodes: usize,
}

impl McscStats {
    /// Covers examined by the solver — the quantity surfaced as the
    /// `planner.mcsc_covers_examined` metric (see
    /// [`PlannerStats`](crate::types::PlannerStats)).
    pub fn covers_examined(&self) -> usize {
        self.nodes
    }
}

/// Exact MCSC via branch-and-bound: returns indices of the chosen items
/// (minimal total cost whose union is `universe`), or `None` if `universe`
/// cannot be covered.
pub fn solve_exact(items: &[CoverItem], universe: u64) -> (Option<Vec<usize>>, McscStats) {
    let stats = McscStats::default();
    if universe == 0 {
        return (Some(Vec::new()), stats);
    }
    // Reachability check: the union of all items must cover the universe.
    let all: u64 = items.iter().fold(0, |acc, it| acc | it.set);
    if all & universe != universe {
        return (None, stats);
    }
    // Order by cost ascending — good upper bounds early.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[a].cost.partial_cmp(&items[b].cost).expect("finite costs"));

    // Suffix masks: what the items from position i onward can still cover.
    let mut suffix_cover = vec![0u64; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix_cover[i] = suffix_cover[i + 1] | items[order[i]].set;
    }

    struct Search<'a> {
        items: &'a [CoverItem],
        order: &'a [usize],
        suffix_cover: &'a [u64],
        universe: u64,
        chosen: Vec<usize>,
        best_cost: f64,
        best: Option<Vec<usize>>,
        stats: McscStats,
    }

    impl Search<'_> {
        fn dfs(&mut self, pos: usize, covered: u64, cost: f64) {
            self.stats.nodes += 1;
            if covered & self.universe == self.universe {
                if cost < self.best_cost {
                    self.best_cost = cost;
                    self.best = Some(self.chosen.clone());
                }
                return;
            }
            if pos >= self.order.len() || cost >= self.best_cost {
                return;
            }
            // Bound: remaining items cannot complete the cover.
            if (covered | self.suffix_cover[pos]) & self.universe != self.universe {
                return;
            }
            let idx = self.order[pos];
            let item = self.items[idx];
            // Branch 1: take it (only if it adds coverage).
            if item.set & self.universe & !covered != 0 {
                self.chosen.push(idx);
                self.dfs(pos + 1, covered | item.set, cost + item.cost);
                self.chosen.pop();
            }
            // Branch 2: skip it.
            self.dfs(pos + 1, covered, cost);
        }
    }

    let mut search = Search {
        items,
        order: &order,
        suffix_cover: &suffix_cover,
        universe,
        chosen: Vec::new(),
        best_cost: f64::INFINITY,
        best: None,
        stats,
    };
    search.dfs(0, 0, 0.0);
    (search.best, search.stats)
}

/// Greedy MCSC (Hochbaum/Chvátal): repeatedly take the item minimizing
/// cost per newly covered element. `ln(n)`-approximate, near-linear time.
pub fn solve_greedy(items: &[CoverItem], universe: u64) -> (Option<Vec<usize>>, McscStats) {
    let mut stats = McscStats::default();
    if universe == 0 {
        return (Some(Vec::new()), stats);
    }
    let mut covered = 0u64;
    let mut chosen: Vec<usize> = Vec::new();
    while covered & universe != universe {
        stats.nodes += 1;
        let mut best_idx = None;
        let mut best_ratio = f64::INFINITY;
        for (i, it) in items.iter().enumerate() {
            let new = (it.set & universe & !covered).count_ones();
            if new == 0 {
                continue;
            }
            let ratio = it.cost / new as f64;
            if ratio < best_ratio {
                best_ratio = ratio;
                best_idx = Some(i);
            }
        }
        match best_idx {
            Some(i) => {
                covered |= items[i].set;
                chosen.push(i);
            }
            None => return (None, stats),
        }
    }
    (Some(chosen), stats)
}

/// Total cost of a chosen item set.
pub fn cover_cost(items: &[CoverItem], chosen: &[usize]) -> f64 {
    chosen.iter().map(|&i| items[i].cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(set: u64, cost: f64) -> CoverItem {
        CoverItem { set, cost }
    }

    #[test]
    fn trivial_cases() {
        let (sol, _) = solve_exact(&[], 0);
        assert_eq!(sol, Some(vec![]));
        let (sol, _) = solve_exact(&[], 0b1);
        assert_eq!(sol, None);
        let (sol, _) = solve_greedy(&[item(0b1, 1.0)], 0b1);
        assert_eq!(sol, Some(vec![0]));
    }

    #[test]
    fn exact_prefers_cheap_combined_cover() {
        // Example 6.1's shape: {c1}, {c2}, {c3}, {c2,c3}.
        let items = [
            item(0b001, 10.0), // c1
            item(0b010, 10.0), // c2
            item(0b100, 10.0), // c3
            item(0b110, 12.0), // c2,c3 (nested plan)
        ];
        let (sol, _) = solve_exact(&items, 0b111);
        let mut chosen = sol.unwrap();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 3]); // c1 + {c2,c3}: cost 22 < 30
        assert!((cover_cost(&items, &chosen) - 22.0).abs() < 1e-9);
    }

    #[test]
    fn exact_beats_greedy_on_adversarial_input() {
        // Classic greedy trap: one big slightly-pricier set vs chained
        // cheap-ratio picks.
        let items = [item(0b1111, 4.1), item(0b0011, 2.0), item(0b1100, 2.0), item(0b0001, 0.9)];
        let (ex, _) = solve_exact(&items, 0b1111);
        let ex_cost = cover_cost(&items, &ex.unwrap());
        assert!((ex_cost - 4.0).abs() < 1e-9, "exact picks the two pairs: {ex_cost}");
        let (gr, _) = solve_greedy(&items, 0b1111);
        let gr_cost = cover_cost(&items, &gr.unwrap());
        assert!(gr_cost >= ex_cost, "greedy never beats exact");
    }

    #[test]
    fn uncoverable_universe() {
        let items = [item(0b001, 1.0), item(0b010, 1.0)];
        assert_eq!(solve_exact(&items, 0b111).0, None);
        assert_eq!(solve_greedy(&items, 0b111).0, None);
    }

    #[test]
    fn overlapping_covers_allowed() {
        // Overlap is fine for both ∧ (intersection) and ∨ (union)
        // combination.
        let items = [item(0b011, 3.0), item(0b110, 3.0), item(0b101, 3.0)];
        let (sol, _) = solve_exact(&items, 0b111);
        assert_eq!(sol.unwrap().len(), 2);
    }

    #[test]
    fn exact_matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random instances; compare against 2^n brute
        // force.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let n_items = 3 + (next() % 6) as usize;
            let universe_bits = 2 + (next() % 5) as u32;
            let universe = (1u64 << universe_bits) - 1;
            let items: Vec<CoverItem> = (0..n_items)
                .map(|_| item(next() % (universe + 1), ((next() % 100) + 1) as f64))
                .collect();
            let (sol, _) = solve_exact(&items, universe);
            // Brute force.
            let mut brute: Option<f64> = None;
            for mask in 0u32..(1 << n_items) {
                let mut cov = 0u64;
                let mut cost = 0.0;
                for (i, it) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        cov |= it.set;
                        cost += it.cost;
                    }
                }
                if cov & universe == universe && brute.is_none_or(|b| cost < b) {
                    brute = Some(cost);
                }
            }
            match (sol, brute) {
                (Some(chosen), Some(bcost)) => {
                    let c = cover_cost(&items, &chosen);
                    assert!((c - bcost).abs() < 1e-9, "trial {trial}: {c} vs {bcost}");
                }
                (None, None) => {}
                (a, b) => panic!("trial {trial}: exact={a:?} brute={b:?}"),
            }
        }
    }

    #[test]
    fn greedy_is_fast_and_feasible_on_large_instances() {
        let items: Vec<CoverItem> =
            (0..40).map(|i| item(0b11 << (i % 32), 1.0 + (i % 7) as f64)).collect();
        let universe = (1u64 << 33) - 1;
        let (sol, stats) = solve_greedy(&items, universe);
        assert!(sol.is_some());
        assert!(stats.nodes <= 40);
    }
}
