//! Federation-wide prepared-plan cache keyed on *parameterized* shape
//! fingerprints.
//!
//! Two queries that differ only in their constants — `make = "BMW" ^
//! price < 40000` and `make = "Audi" ^ price < 25000` — walk the exact
//! same planner search: capability checks depend on constant *types*
//! (SSDL placeholders match `$str`/`$int`/…, not values), so the winning
//! plan differs only in the constants bound at its leaves. This cache
//! exploits that: the first query plans cold and the winner is stored
//! under its [`shape_fingerprint`]; later queries with the same shape
//! rebind their constants into the stored plan slot-by-slot
//! ([`csqp_expr::param`]) and skip the planning fan-out entirely.
//!
//! ## Soundness
//!
//! Rebinding substitutes atoms homomorphically, so the Boolean
//! equivalences the planner relied on (commutativity, associativity,
//! distributivity, maxeval weakening + local re-filter) transfer to the
//! rebound condition verbatim. Three hazards remain, each handled:
//!
//! - **Aliased slots**: if one prepare-time atom fills several slots but
//!   the incoming query binds those slots to *different* values,
//!   substitution is ambiguous — [`csqp_expr::param::rebind_map`] reports
//!   a [`RebindError::SlotConflict`] and the query falls back to cold
//!   planning.
//! - **Const-literal grammars**: an SSDL description can match literal
//!   constants (`style = "sedan"`), making feasibility depend on values.
//!   For such sources ([`Source::has_const_literals`]) every rebound
//!   source-query condition is re-validated: `Check` must export the
//!   same sets (under both the planning and the gate view) as the
//!   prepare-time condition, otherwise the entry is rejected.
//! - **Stale world**: breaker transitions and cost-model recalibration
//!   change which member/plan *should* win, so both bump the cache epoch
//!   ([`PlanCache::invalidate_all`]) and every cached entry dies.
//!
//! A cache hit's `est_cost` is the prepare-time estimate — constants
//! shift selectivities, so the cached plan may be slightly suboptimal
//! for the rebound values, but it is always *correct*: answers are
//! byte-identical to a cold plan's (pinned by the differential suite).

use crate::types::{PlannedQuery, RankedPlan, TargetQuery};
use csqp_expr::param::{rebind_map, substitute, RebindError};
use csqp_expr::{Atom, CondTree, Value};
use csqp_plan::{AttrSet, Plan};
use csqp_source::Source;
use csqp_ssdl::linearize::{shape_fingerprint, Fingerprint, FingerprintHasher};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default entry capacity ([`PlanCache::with_capacity`] overrides).
pub const DEFAULT_CAPACITY: usize = 256;

/// One cached prepared plan.
#[derive(Debug)]
struct Entry {
    /// Index of the winning federation member at prepare time.
    member: usize,
    /// The prepare-time condition — the rebind template.
    cond: CondTree,
    /// The prepare-time projection (collision guard: the key folds the
    /// attrs in, but equality is re-checked structurally).
    attrs: AttrSet,
    /// The winner (plan + ranked alternatives) as planned cold.
    planned: PlannedQuery,
    /// Epoch stamp; entries from older epochs are dead.
    epoch: u64,
    /// Monotonic use stamp for least-recently-used eviction.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Fingerprint, Entry, BuildHasherDefault<FingerprintHasher>>,
    /// Monotonic use counter (not wall clock — deterministic).
    tick: u64,
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Lookup {
    /// Shape matched and every constant rebound cleanly: execute this.
    Hit {
        /// The cached winner's member index.
        member: usize,
        /// The cached plan with the incoming constants substituted in.
        /// Boxed: a full plan tree dwarfs the other variants.
        planned: Box<PlannedQuery>,
    },
    /// No live entry for the shape.
    Miss,
    /// An entry exists but could not be reused; the reason is a stable
    /// label (`slot-conflict`, `shape-mismatch`, `unknown-atom`,
    /// `const-literal-check`, `attr-mismatch`, `member-gone`).
    Rejected(&'static str),
}

/// How the federation satisfied a `prepare` call — surfaced in the serve
/// trailer, the query profile, and the audit journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDecision {
    /// Served from the prepared-plan cache.
    Hit,
    /// Planned cold; the winner was inserted.
    Miss,
    /// An entry existed but was rejected at rebind time; planned cold and
    /// the entry was replaced.
    Rejected(&'static str),
    /// No cache installed on this federation.
    Bypass,
}

impl CacheDecision {
    /// Stable label for trailers and journals.
    pub fn label(&self) -> &'static str {
        match self {
            CacheDecision::Hit => "hit",
            CacheDecision::Miss => "miss",
            CacheDecision::Rejected(_) => "rejected",
            CacheDecision::Bypass => "bypass",
        }
    }
}

/// Point-in-time cache counters ([`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered with a rebound plan.
    pub hits: u64,
    /// Probes with no live entry.
    pub misses: u64,
    /// Probes whose entry failed rebinding/validation.
    pub rejected: u64,
    /// Entries displaced by capacity.
    pub evictions: u64,
    /// Epoch bumps that wiped the cache.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
}

/// A bounded, epoch-invalidated map from parameterized query shapes to
/// prepared plans. Thread-safe: probes and inserts take a mutex, epoch
/// bumps are lock-free on the read side (entries are checked lazily).
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A cache with the [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        PlanCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounded to `capacity` entries (minimum 1); the
    /// least-recently-used entry is evicted on overflow.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The cache key: the condition's parameterized shape folded with the
    /// projected attributes (two queries with the same condition shape but
    /// different projections plan differently).
    pub fn key(query: &TargetQuery) -> Fingerprint {
        let shape = shape_fingerprint(Some(&query.cond));
        // Fold the attrs into both 64-bit lanes with the same FNV-style
        // mixing the shape fingerprint itself uses; names are
        // length-prefixed so distinct attr lists give distinct streams.
        let mut a = (shape >> 64) as u64;
        let mut b = shape as u64;
        let mut mix = |x: u8| {
            a = (a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01B3);
            b = (b ^ (u64::from(x) << 17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        };
        for attr in &query.attrs {
            for &byte in (attr.len() as u64).to_le_bytes().iter() {
                mix(byte);
            }
            for &byte in attr.as_bytes() {
                mix(byte);
            }
        }
        (u128::from(a) << 64) | u128::from(b)
    }

    /// Probes the cache for `query`. On a hit the stored plan is returned
    /// with the incoming constants rebound; `members` is the federation's
    /// member list (for const-literal revalidation on the cached winner).
    pub fn lookup(&self, query: &TargetQuery, members: &[Arc<Source>]) -> Lookup {
        let epoch = self.epoch.load(Ordering::Acquire);
        let key = Self::key(query);
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.get(&key).is_some_and(|e| e.epoch != epoch) {
            // Lazily reap an entry that survived an epoch bump.
            inner.map.remove(&key);
        }
        let Some(entry) = inner.map.get_mut(&key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        };
        entry.last_used = tick;
        let reject = |counter: &AtomicU64, reason: &'static str| {
            counter.fetch_add(1, Ordering::Relaxed);
            Lookup::Rejected(reason)
        };
        if entry.attrs != query.attrs {
            // A key collision across different projections: vanishingly
            // unlikely, but rebinding across it would be unsound.
            return reject(&self.rejected, "attr-mismatch");
        }
        let Some(source) = members.get(entry.member) else {
            return reject(&self.rejected, "member-gone");
        };
        let map = match rebind_map(&entry.cond, &query.cond) {
            Ok(m) => m,
            Err(RebindError::SlotConflict) => return reject(&self.rejected, "slot-conflict"),
            Err(RebindError::ShapeMismatch) => return reject(&self.rejected, "shape-mismatch"),
            Err(RebindError::UnknownAtom) => return reject(&self.rejected, "unknown-atom"),
        };
        let plan = match rebind_plan(&entry.planned.plan, &map) {
            Ok(p) => p,
            Err(_) => return reject(&self.rejected, "unknown-atom"),
        };
        // Value-sensitive grammars: every rebound source-query condition
        // must export exactly what its prepare-time twin did, under both
        // the planning and the execution-gate views.
        if source.has_const_literals() && !checks_match(source, &entry.planned.plan, &plan) {
            return reject(&self.rejected, "const-literal-check");
        }
        // Alternatives are best-effort failover material: one that fails
        // to rebind is dropped rather than rejecting the whole entry.
        let alternatives: Vec<RankedPlan> = entry
            .planned
            .alternatives
            .iter()
            .filter_map(|alt| {
                let plan = rebind_plan(&alt.plan, &map).ok()?;
                if source.has_const_literals() && !checks_match(source, &alt.plan, &plan) {
                    return None;
                }
                Some(RankedPlan { plan, est_cost: alt.est_cost })
            })
            .collect();
        self.hits.fetch_add(1, Ordering::Relaxed);
        Lookup::Hit {
            member: entry.member,
            planned: Box::new(PlannedQuery {
                plan,
                est_cost: entry.planned.est_cost,
                report: entry.planned.report,
                alternatives,
            }),
        }
    }

    /// Stores (or replaces) the prepared plan for `query`'s shape,
    /// evicting the least-recently-used entry when full. Returns the
    /// number of entries evicted (0 or 1).
    pub fn insert(&self, query: &TargetQuery, member: usize, planned: PlannedQuery) -> u64 {
        let epoch = self.epoch.load(Ordering::Acquire);
        let key = Self::key(query);
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = 0;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(capacity) victim scan: at the bounded sizes this cache
            // runs at, a scan beats maintaining an ordered index.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| if e.epoch == epoch { e.last_used } else { 0 })
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
                evicted = 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                member,
                cond: query.cond.clone(),
                attrs: query.attrs.clone(),
                planned,
                epoch,
                last_used: tick,
            },
        );
        evicted
    }

    /// Wipes the cache by bumping the epoch (breaker transition,
    /// cost-model recalibration, membership change). Returns how many
    /// live entries were dropped.
    pub fn invalidate_all(&self) -> usize {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("plan cache lock");
        let n = inner.map.len();
        inner.map.clear();
        n
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Rebinds every condition in `plan` through `map`, preserving structure
/// and shared attribute sets.
fn rebind_plan(plan: &Plan, map: &HashMap<Atom, Value>) -> Result<Plan, RebindError> {
    let rebind_cond = |cond: &Option<CondTree>| -> Result<Option<CondTree>, RebindError> {
        cond.as_ref().map(|c| substitute(c, map)).transpose()
    };
    match plan {
        Plan::SourceQuery { cond, attrs } => {
            Ok(Plan::SourceQuery { cond: rebind_cond(cond)?, attrs: attrs.clone() })
        }
        Plan::LocalSp { cond, attrs, input } => Ok(Plan::LocalSp {
            cond: rebind_cond(cond)?,
            attrs: attrs.clone(),
            input: Box::new(rebind_plan(input, map)?),
        }),
        Plan::Intersect(cs) => {
            Ok(Plan::Intersect(cs.iter().map(|c| rebind_plan(c, map)).collect::<Result<_, _>>()?))
        }
        Plan::Union(cs) => {
            Ok(Plan::Union(cs.iter().map(|c| rebind_plan(c, map)).collect::<Result<_, _>>()?))
        }
        Plan::Choice(cs) => {
            Ok(Plan::Choice(cs.iter().map(|c| rebind_plan(c, map)).collect::<Result<_, _>>()?))
        }
    }
}

/// For value-sensitive (const-literal) grammars: does every rebound
/// source-query condition export exactly what its prepare-time twin did,
/// under both capability views? Source queries are compared positionally —
/// [`rebind_plan`] preserves plan structure, so the lists zip 1:1.
fn checks_match(source: &Source, prepared: &Plan, rebound: &Plan) -> bool {
    let before = prepared.source_queries();
    let after = rebound.source_queries();
    debug_assert_eq!(before.len(), after.len(), "rebind preserves plan structure");
    before.iter().zip(&after).all(|((pc, _), (rc, _))| {
        source.check(pc.as_ref()) == source.check(rc.as_ref())
            && source.gate_view().check(pc.as_ref()) == source.gate_view().check(rc.as_ref())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use csqp_relation::datagen;
    use csqp_source::CostParams;
    use csqp_ssdl::{parse_ssdl, templates};

    fn car_source() -> Arc<Source> {
        Arc::new(Source::new(
            datagen::cars(3, 400),
            templates::car_dealer(),
            CostParams::new(10.0, 1.0),
        ))
    }

    fn planned_for(source: &Arc<Source>, q: &TargetQuery) -> PlannedQuery {
        Mediator::new(source.clone()).plan(q).expect("feasible")
    }

    fn q(cond: &str) -> TargetQuery {
        TargetQuery::parse(cond, &["model", "year"]).unwrap()
    }

    #[test]
    fn same_shape_hits_and_rebinds_constants() {
        let source = car_source();
        let cache = PlanCache::new();
        let members = vec![source.clone()];
        let prepare = q("make = \"BMW\" ^ price < 40000");
        let incoming = q("make = \"Audi\" ^ price < 25000");
        assert!(matches!(cache.lookup(&prepare, &members), Lookup::Miss));
        cache.insert(&prepare, 0, planned_for(&source, &prepare));
        let Lookup::Hit { member, planned } = cache.lookup(&incoming, &members) else {
            panic!("expected hit");
        };
        assert_eq!(member, 0);
        // The rebound plan matches what cold planning would produce for
        // the incoming query (same shape, same grammar, value-insensitive).
        let cold = planned_for(&source, &incoming);
        assert_eq!(planned.plan, cold.plan);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_shapes_miss_and_projections_are_part_of_the_key() {
        let source = car_source();
        let cache = PlanCache::new();
        let members = vec![source.clone()];
        let prepare = q("make = \"BMW\" ^ price < 40000");
        cache.insert(&prepare, 0, planned_for(&source, &prepare));
        // Different condition shape: same attrs/ops but a different tree.
        let other = q("make = \"BMW\" ^ color = \"red\"");
        assert!(matches!(cache.lookup(&other, &members), Lookup::Miss));
        // Same condition shape, different projection: distinct key.
        let narrower = TargetQuery::parse("make = \"Audi\" ^ price < 25000", &["model"]).unwrap();
        assert!(matches!(cache.lookup(&narrower, &members), Lookup::Miss));
        // Same shape, different constant *type*: distinct key ($int vs $str).
        let retyped = q("make = \"BMW\" ^ price < \"x\"");
        assert!(matches!(cache.lookup(&retyped, &members), Lookup::Miss));
    }

    #[test]
    fn aliased_slots_with_conflicting_values_reject() {
        let source = car_source();
        let cache = PlanCache::new();
        let members = vec![source.clone()];
        // The same atom fills two slots at prepare time…
        let prepare = TargetQuery::parse(
            "(make = \"BMW\" ^ price < 40000) _ (make = \"BMW\" ^ color = \"red\")",
            &["model", "year"],
        )
        .unwrap();
        cache.insert(&prepare, 0, planned_for(&source, &prepare));
        // …but the incoming query binds those slots to different values.
        let conflicted = TargetQuery::parse(
            "(make = \"BMW\" ^ price < 40000) _ (make = \"Audi\" ^ color = \"red\")",
            &["model", "year"],
        )
        .unwrap();
        match cache.lookup(&conflicted, &members) {
            Lookup::Rejected(reason) => assert_eq!(reason, "slot-conflict"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(cache.stats().rejected, 1);
        // Consistent aliasing still hits.
        let consistent = TargetQuery::parse(
            "(make = \"Audi\" ^ price < 9000) _ (make = \"Audi\" ^ color = \"blue\")",
            &["model", "year"],
        )
        .unwrap();
        assert!(matches!(cache.lookup(&consistent, &members), Lookup::Hit { .. }));
    }

    #[test]
    fn const_literal_grammars_revalidate_check_on_rebind() {
        // A grammar that matches ONE literal make besides the generic
        // price form: feasibility depends on the constant's value.
        let desc = parse_ssdl(
            "source picky {\n\
             s1 -> make = \"BMW\" ^ price < $int ;\n\
             attributes :: s1 : { make, model, year, price } ;\n}",
        )
        .unwrap();
        let source = Arc::new(Source::new(datagen::cars(3, 400), desc, CostParams::default()));
        assert!(source.has_const_literals());
        let cache = PlanCache::new();
        let members = vec![source.clone()];
        let prepare = q("make = \"BMW\" ^ price < 40000");
        cache.insert(&prepare, 0, planned_for(&source, &prepare));
        // Same shape, but the literal no longer matches: the prepared
        // plan would push an unsupported source query. Must reject.
        let other = q("make = \"Audi\" ^ price < 40000");
        match cache.lookup(&other, &members) {
            Lookup::Rejected(reason) => assert_eq!(reason, "const-literal-check"),
            other => panic!("expected rejection, got {other:?}"),
        }
        // The matching literal still hits.
        let same = q("make = \"BMW\" ^ price < 10000");
        assert!(matches!(cache.lookup(&same, &members), Lookup::Hit { .. }));
    }

    #[test]
    fn invalidation_wipes_and_lru_eviction_bounds_the_map() {
        let source = car_source();
        let members = vec![source.clone()];
        let cache = PlanCache::with_capacity(2);
        let q1 = q("make = \"BMW\" ^ price < 40000");
        let q2 = q("make = \"BMW\" ^ color = \"red\"");
        let q3 = q("(make = \"VW\" ^ price < 1000) _ (make = \"VW\" ^ color = \"red\")");
        cache.insert(&q1, 0, planned_for(&source, &q1));
        cache.insert(&q2, 0, planned_for(&source, &q2));
        // Touch q1 so q2 is the LRU victim.
        assert!(matches!(cache.lookup(&q1, &members), Lookup::Hit { .. }));
        cache.insert(&q3, 0, planned_for(&source, &q3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.lookup(&q1, &members), Lookup::Hit { .. }), "recently used kept");
        assert!(matches!(cache.lookup(&q2, &members), Lookup::Miss), "LRU victim evicted");
        assert!(matches!(cache.lookup(&q3, &members), Lookup::Hit { .. }));
        // Epoch bump kills everything.
        assert_eq!(cache.invalidate_all(), 2);
        assert!(matches!(cache.lookup(&q1, &members), Lookup::Miss));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn decision_labels_are_stable() {
        assert_eq!(CacheDecision::Hit.label(), "hit");
        assert_eq!(CacheDecision::Miss.label(), "miss");
        assert_eq!(CacheDecision::Rejected("x").label(), "rejected");
        assert_eq!(CacheDecision::Bypass.label(), "bypass");
    }
}
