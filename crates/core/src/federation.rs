//! Source selection across mirrors: the same logical data offered by
//! several Internet sources with *different* capabilities and cost
//! constants (e.g. two bookstores, one searchable by author only, one
//! downloadable but slow).
//!
//! The federation plans the target query against every member and executes
//! the cheapest feasible plan — capability-sensitivity applied one level up
//! from [`crate::mediator::Mediator`].

use crate::capindex::{CapabilityIndex, IndexDecision};
use crate::mediator::{execute_with_failover, CardKind, Mediator, MediatorError, RunOutcome};
use crate::plancache::{CacheDecision, Lookup, PlanCache};
use crate::types::{PlanError, PlannedQuery, TargetQuery};
use csqp_obs::{names, FlightRecorder, Obs, PlanEvent, QueryFlight};
use csqp_plan::exec::{execute_measured, ExecError, RetryPolicy};
use csqp_plan::exec_stream::{
    execute_stream_adaptive_traced, execute_stream_measured_traced, plan_condition,
    ReplanController, ReplanProbe, SpliceAction, StreamConfig, StreamStats,
};
use csqp_plan::AttrSet;
use csqp_source::{Meter, ResilienceMeter, Source};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Circuit-breaker policy for federation members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreakerConfig {
    /// Consecutive execution failures that open the breaker (quarantine).
    pub failure_threshold: u32,
    /// Federated runs the member sits out once quarantined; afterwards it
    /// is *half-open* — offered one probe, closing on success and
    /// re-opening on failure.
    pub cooldown_ticks: u64,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig { failure_threshold: 3, cooldown_ticks: 2 }
    }
}

/// Per-member breaker state. The clock is the federation's own run counter
/// (one tick per [`Federation::run_resilient`] call) — no wall-clock, so
/// quarantine windows replay deterministically.
#[derive(Debug, Default)]
struct BreakerState {
    consecutive_failures: AtomicU32,
    /// 0 = closed; otherwise the tick at which the member turns half-open.
    half_open_at: AtomicU64,
}

/// What the breaker allows a member to do in the current run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerGate {
    Closed,
    Quarantined,
    HalfOpen,
}

impl BreakerState {
    fn gate(&self, now: u64) -> BreakerGate {
        let at = self.half_open_at.load(Ordering::Relaxed);
        if at == 0 {
            BreakerGate::Closed
        } else if now < at {
            BreakerGate::Quarantined
        } else {
            BreakerGate::HalfOpen
        }
    }

    /// Resets the breaker; returns `true` when this actually closed an
    /// open/half-open breaker (a state transition worth counting).
    fn record_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.half_open_at.swap(0, Ordering::Relaxed) != 0
    }

    /// Registers a failed run; returns `true` when this opened (or
    /// re-opened) the breaker.
    fn record_failure(&self, now: u64, cfg: &CircuitBreakerConfig) -> bool {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let half_open = self.half_open_at.load(Ordering::Relaxed);
        // A failed half-open probe re-opens immediately; otherwise open
        // once the threshold is crossed.
        if half_open != 0 || failures >= cfg.failure_threshold {
            self.half_open_at.store(now + cfg.cooldown_ticks + 1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// A set of interchangeable sources for one logical relation.
#[derive(Debug)]
pub struct Federation {
    members: Vec<Arc<Source>>,
    breakers: Vec<BreakerState>,
    card: CardKind,
    breaker_cfg: CircuitBreakerConfig,
    /// Virtual clock: one tick per resilient run.
    clock: AtomicU64,
    obs: Arc<Obs>,
    flight: Arc<FlightRecorder>,
    /// Compiled capability index over the members (source pre-selection).
    /// Built lazily on first plan; invalidated by membership changes.
    capindex: OnceLock<CapabilityIndex>,
    use_capindex: bool,
    /// Prepared-plan cache consulted by [`Federation::prepare`]; absent by
    /// default (every prepare bypasses to cold planning).
    plan_cache: Option<Arc<PlanCache>>,
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

/// One entry of a federated failover trace: what happened to a member
/// during a resilient run, in the order members were considered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberEvent {
    /// Skipped: the circuit breaker is open.
    Quarantined,
    /// Planning failed (the member cannot answer this query).
    Infeasible,
    /// The breaker was half-open and this attempt was its probe.
    Probed,
    /// Every plan (primary + alternatives) failed at execution; the last
    /// error, rendered.
    ExecFailed(String),
    /// This member was spliced into a running adaptive pipeline to serve
    /// the residual of the named member, which failed mid-stream.
    Spliced(String),
    /// This member served the answer.
    Served,
}

/// Externally observable health of one member's circuit breaker, as
/// exposed by [`Federation::breaker_states`] and the `breaker.state.*`
/// gauges: what the breaker would allow the *next* federated run to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerHealth {
    /// Healthy: the member participates normally.
    Closed,
    /// Cooling down: the member sits runs out.
    Open,
    /// Cooldown elapsed: the member gets one probe attempt.
    HalfOpen,
}

impl BreakerHealth {
    /// Stable gauge encoding: 0 closed, 1 half-open, 2 open.
    pub fn as_gauge(&self) -> f64 {
        match self {
            BreakerHealth::Closed => 0.0,
            BreakerHealth::HalfOpen => 1.0,
            BreakerHealth::Open => 2.0,
        }
    }

    /// Human-readable label (`closed` / `half-open` / `open`), used by the
    /// serve trailer.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerHealth::Closed => "closed",
            BreakerHealth::HalfOpen => "half-open",
            BreakerHealth::Open => "open",
        }
    }
}

/// A member-ordered failover trace (member name, event). A member can
/// appear twice: once `Probed`, then `Served`/`ExecFailed`.
pub type FailoverTrace = Vec<(String, MemberEvent)>;

/// The outcome of a resilient federated run.
#[derive(Debug)]
pub struct FederatedRun {
    /// The plan-and-execute outcome on the serving member.
    pub outcome: RunOutcome,
    /// Name of the member that served the answer.
    pub source_name: String,
    /// Rank of the serving plan on that member (0 = its primary plan).
    pub plan_rank: usize,
    /// Cumulative resilience metrics across every member and plan tried
    /// (member switches count as failovers, on top of plan switches).
    pub resilience: ResilienceMeter,
    /// The failover trace, for explainability and determinism checks.
    pub trace: FailoverTrace,
}

/// The outcome of an adaptive federated run
/// ([`Federation::run_adaptive`]).
#[derive(Debug)]
pub struct FederatedAdaptiveRun {
    /// The resilient-run outcome. `outcome.planned` is the *primary*
    /// member's plan; `source_name` names the member that finished the
    /// stream (the last splice target when splices fired); `outcome.meter`
    /// and `measured_cost` aggregate over every member that shipped
    /// tuples, each charged at its own §6.2 constants.
    pub run: FederatedRun,
    /// Batch/memory stats accumulated across every pipeline segment.
    pub stats: StreamStats,
    /// How many mid-stream member splices the breaker controller made.
    pub splices: u64,
}

impl FederatedAdaptiveRun {
    /// The per-member event trace, in the order events happened.
    pub fn trace(&self) -> &FailoverTrace {
        &self.run.trace
    }
}

/// Outcome of [`Federation::prepare`]: the member to execute on, the plan
/// (rebound from the prepared-plan cache, or cold-planned), and how the
/// cache answered.
#[derive(Debug)]
pub struct PreparedFederated {
    /// Index of the winning member in [`Federation::members`].
    pub member: usize,
    /// The plan to execute on that member.
    pub planned: PlannedQuery,
    /// How the prepared-plan cache probe went.
    pub decision: CacheDecision,
    /// Per-member planning outcomes — empty on a cache hit, where no
    /// fan-out ran.
    pub considered: Vec<(String, Result<f64, PlanError>)>,
    /// The flight record narrating this prepare (0 with a disarmed
    /// recorder). Captured from the begin handle itself, so it stays
    /// correct when concurrent queries interleave their flights.
    pub flight_id: u64,
}

/// A federation planning decision.
#[derive(Debug)]
pub struct FederatedPlan {
    /// The chosen source.
    pub source: Arc<Source>,
    /// Its plan.
    pub planned: PlannedQuery,
    /// Per-member outcomes (member name, estimated cost or the error),
    /// for explainability.
    pub considered: Vec<(String, Result<f64, PlanError>)>,
    /// The flight record narrating this plan (0 with a disarmed recorder).
    pub flight_id: u64,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Federation {
            members: Vec::new(),
            breakers: Vec::new(),
            card: CardKind::Stats,
            breaker_cfg: CircuitBreakerConfig::default(),
            clock: AtomicU64::new(0),
            obs: Arc::new(Obs::new()),
            flight: Arc::new(FlightRecorder::off()),
            capindex: OnceLock::new(),
            use_capindex: true,
            plan_cache: None,
        }
    }

    /// Arms this federation with a flight recorder: every `plan` /
    /// `run_resilient` call leaves a per-query record of member selection,
    /// breaker transitions, and failovers, replayable via
    /// [`Federation::explain_why`]. Events are only recorded in the
    /// sequential merge sections, so records are identical with the
    /// `parallel` feature on or off.
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = recorder;
        self
    }

    /// The flight recorder (disarmed by default).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Renders the `EXPLAIN WHY` report for the most recent federated
    /// query (see [`csqp_plan::why::explain_why`]).
    pub fn explain_why(&self) -> String {
        csqp_plan::why::explain_why(self.flight.latest().as_ref())
    }

    /// Shares an observability handle with this federation. Member
    /// mediators used for the planning fan-out keep private handles — the
    /// federation flushes their reports into this registry *after* the
    /// order-preserving merge, so counters and trace stay deterministic
    /// with the `parallel` feature on or off.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Member-attributed health-tap counter: `<prefix><member>` += 1. The
    /// suffix-named `member.*` families feed the windowed health scorer
    /// (`csqp_obs::health::signals_from_window`). Gated on the recording
    /// build so obs-off pays for neither the formatting nor the lock.
    fn tap(&self, prefix: &str, member: &str) {
        self.tap_add(prefix, member, 1);
    }

    /// Like [`Federation::tap`] with an explicit delta; zero deltas are
    /// skipped so windows only carry members with activity.
    fn tap_add(&self, prefix: &str, member: &str, delta: u64) {
        if self.obs.enabled() && delta > 0 {
            self.obs.metrics.add(&format!("{prefix}{member}"), delta);
        }
    }

    /// Cost tap: both cost signals are kept in integral millis so they ride
    /// the counter machinery (and its windowed deltas) unchanged.
    fn tap_costs(&self, member: &str, est_cost: f64, observed_cost: f64) {
        self.tap_add(names::MEMBER_EST_COST_MILLI_PREFIX, member, to_milli(est_cost));
        self.tap_add(names::MEMBER_OBS_COST_MILLI_PREFIX, member, to_milli(observed_cost));
    }

    /// A point-in-time snapshot of every metric this federation recorded.
    /// The per-member `breaker.state.<member>` gauges are refreshed from
    /// the live breakers first, so `/metrics` always shows current health
    /// (the refresh is a pure function of the deterministic run clock).
    pub fn metrics_snapshot(&self) -> csqp_obs::MetricsSnapshot {
        for (name, health) in self.breaker_states() {
            self.obs
                .metrics
                .gauge_set(&format!("{}{name}", names::BREAKER_STATE_PREFIX), health.as_gauge());
        }
        self.obs.metrics.snapshot()
    }

    /// Live per-member breaker health, in member order: what the breaker
    /// would allow each member to do in the next federated run. Reads the
    /// run clock without advancing it.
    pub fn breaker_states(&self) -> Vec<(String, BreakerHealth)> {
        let next = self.clock.load(Ordering::Relaxed) + 1;
        self.members
            .iter()
            .zip(&self.breakers)
            .map(|(m, b)| {
                let health = match b.gate(next) {
                    BreakerGate::Closed => BreakerHealth::Closed,
                    BreakerGate::Quarantined => BreakerHealth::Open,
                    BreakerGate::HalfOpen => BreakerHealth::HalfOpen,
                };
                (m.name.clone(), health)
            })
            .collect()
    }

    /// Adds a member source.
    pub fn with_member(mut self, source: Arc<Source>) -> Self {
        self.members.push(source);
        self.breakers.push(BreakerState::default());
        // Membership changed: any compiled index is stale, and cached
        // prepared plans chose their winner against the old member set.
        self.capindex = OnceLock::new();
        self.plancache_invalidate("membership change");
        self
    }

    /// Installs a prepared-plan cache: [`Federation::prepare`] serves
    /// repeat query *shapes* out of it instead of re-running the planning
    /// fan-out, and every breaker transition or membership change wipes it
    /// (the cached winners were chosen against a world that no longer
    /// holds). Share the same handle with the member mediators
    /// ([`Mediator::with_plan_cache`]) so cost-model recalibration wipes
    /// it too.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The installed prepared-plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Wipes the prepared-plan cache (no-op without one): the world the
    /// cached winners were ranked against changed.
    fn plancache_invalidate(&self, why: &str) {
        if let Some(cache) = &self.plan_cache {
            let dropped = cache.invalidate_all();
            self.obs.metrics.inc(names::PLANCACHE_INVALIDATIONS);
            self.obs.metrics.gauge_set(names::PLANCACHE_ENTRIES, 0.0);
            self.obs.tracer.event_with(|| {
                format!("plan cache invalidated ({why}): {dropped} entries dropped")
            });
        }
    }

    /// Enables or disables the compiled capability index pre-filter
    /// (enabled by default). With the index off every member is planned in
    /// full — the reference behaviour the differential suite compares
    /// against; plans and answers are identical either way.
    pub fn with_capability_index(mut self, on: bool) -> Self {
        self.use_capindex = on;
        self
    }

    /// The compiled capability index, building it on first use. `None`
    /// when the pre-filter is disabled.
    pub fn capability_index(&self) -> Option<&CapabilityIndex> {
        if !self.use_capindex {
            return None;
        }
        Some(self.capindex.get_or_init(|| {
            let idx = CapabilityIndex::build(&self.members);
            // One virtual tick per member's facts compilation —
            // deterministic, so it is safe under golden snapshots.
            self.obs.metrics.add(names::CAPINDEX_BUILD_TICKS, idx.len() as u64);
            idx
        }))
    }

    /// Runs the capability-index pre-filter for one query (when enabled)
    /// and records the candidate/pruned counters.
    fn index_decision(&self, query: &TargetQuery) -> Option<IndexDecision> {
        let idx = self.capability_index()?;
        let _span = self.obs.tracer.span("capindex select");
        let decision = idx.candidates(query);
        self.obs.metrics.add(names::CAPINDEX_CANDIDATES, decision.candidates.len() as u64);
        self.obs.metrics.add(names::CAPINDEX_PRUNED, decision.pruned as u64);
        Some(decision)
    }

    /// Fans full planning out over the members that survive `decision`
    /// (all members when `decision` is `None`), returning `(member index,
    /// outcome)` pairs in member order — pruned members are absent, so the
    /// planning cost and the result size scale with the candidate set, not
    /// the federation.
    #[allow(clippy::type_complexity)]
    fn plan_candidates(
        &self,
        query: &TargetQuery,
        decision: Option<&IndexDecision>,
    ) -> Vec<(usize, Result<PlannedQuery, PlanError>)> {
        let work: Vec<usize> = (0..self.members.len())
            .filter(|&i| decision.is_none_or(|d| d.is_candidate(i)))
            .collect();
        let card = self.card;
        let outcomes = crate::par::par_map(&work, |&i| {
            Mediator::new(self.members[i].clone()).with_cardinality(card).plan(query)
        });
        work.into_iter().zip(outcomes).collect()
    }

    /// Selects the cardinality estimator used for every member.
    pub fn with_cardinality(mut self, card: CardKind) -> Self {
        self.card = card;
        self
    }

    /// Overrides the circuit-breaker policy used by
    /// [`run_resilient`](Federation::run_resilient).
    pub fn with_breaker(mut self, cfg: CircuitBreakerConfig) -> Self {
        self.breaker_cfg = cfg;
        self
    }

    /// The member sources.
    pub fn members(&self) -> &[Arc<Source>] {
        &self.members
    }

    /// Plans `query` against every member and picks the cheapest feasible
    /// plan (estimated cost under each member's own cost constants).
    ///
    /// Members are planned concurrently when the `parallel` feature is on
    /// (each mediator is self-contained — no shared planner state). The
    /// reduce runs left-to-right over results in member order, keeping the
    /// earliest member on cost ties, so the choice is identical to the
    /// sequential loop regardless of thread scheduling.
    pub fn plan(&self, query: &TargetQuery) -> Result<FederatedPlan, PlanError> {
        let span = self.obs.tracer.span("federation plan");
        let flight = self.flight.begin_with(|| (query.to_string(), "Federation".to_string()));
        let decision = self.index_decision(query);
        let outcomes = self.plan_candidates(query, decision.as_ref());
        let mut best: Option<(Arc<Source>, PlannedQuery)> = None;
        let mut considered = Vec::with_capacity(self.members.len());
        // Member plans retained for provenance (name, cost, rendered plan);
        // only captured when a recorder is armed.
        let mut member_plans: Vec<(String, f64, String)> = Vec::new();
        // Sequential, member-ordered merge: the only place planner counters
        // and trace events are recorded, so the output is identical with
        // the `parallel` feature on or off.
        if let Some(d) = &decision {
            // Pruned members are aggregated — one metric add, one trace
            // event, one flight event — so the per-query bookkeeping cost
            // scales with the candidate set, not the federation.
            self.obs.metrics.add(names::FEDERATION_INFEASIBLE, d.pruned as u64);
            self.obs.tracer.event_with(|| {
                format!(
                    "capability index: {} of {} members remain ({} pruned)",
                    d.candidates.len(),
                    d.total,
                    d.pruned
                )
            });
            flight.event_with(|| PlanEvent::IndexPrune {
                total: d.total,
                candidates: d.candidates.len(),
                pruned: d.pruned,
            });
        }
        // One pre-rendered query string shared by every pruned member's
        // `considered` entry (cloning beats re-rendering 10k times).
        let pruned_query = if decision.as_ref().is_some_and(|d| d.pruned > 0) {
            query.to_string()
        } else {
            String::new()
        };
        let mut next = outcomes.into_iter().peekable();
        for (idx, member) in self.members.iter().enumerate() {
            let outcome = if next.peek().is_some_and(|(i, _)| *i == idx) {
                next.next().expect("peeked entry exists").1
            } else {
                // Pruned by the capability index: infeasible with
                // certainty, no full planning was spent on it.
                considered.push((
                    member.name.clone(),
                    Err(PlanError::NoFeasiblePlan {
                        query: pruned_query.clone(),
                        scheme: "CapIndex",
                    }),
                ));
                continue;
            };
            // One span per *planned* candidate; pruned members keep their
            // O(1) aggregated bookkeeping above. Guarded so a disabled
            // tracer skips the label formatting entirely.
            let _member_span = self
                .obs
                .tracer
                .is_enabled()
                .then(|| self.obs.tracer.span(&format!("member {}", member.name)));
            match outcome {
                Ok(planned) => {
                    planned.report.record_into(&self.obs.metrics);
                    self.obs.tracer.event_with(|| {
                        format!("member {}: est cost {:.2}", member.name, planned.est_cost)
                    });
                    if flight.active() {
                        member_plans.push((
                            member.name.clone(),
                            planned.est_cost,
                            planned.plan.to_string(),
                        ));
                    }
                    considered.push((member.name.clone(), Ok(planned.est_cost)));
                    if best.as_ref().is_none_or(|(_, b)| planned.est_cost < b.est_cost) {
                        best = Some((member.clone(), planned));
                    }
                }
                Err(e) => {
                    self.obs.metrics.inc(names::FEDERATION_INFEASIBLE);
                    self.obs
                        .tracer
                        .event_with(|| format!("member {}: infeasible ({e})", member.name));
                    flight.event_with(|| PlanEvent::Note {
                        text: format!("member {}: infeasible ({e})", member.name),
                    });
                    considered.push((member.name.clone(), Err(e)));
                }
            }
        }
        if let Some((source, planned)) = &best {
            self.obs.tracer.event_with(|| {
                format!("chose {} at est cost {:.2}", source.name, planned.est_cost)
            });
            flight.event_with(|| PlanEvent::Winner {
                cost: planned.est_cost,
                plan: planned.plan.to_string(),
            });
            // Every losing member gets an elimination reason: the winner
            // undercut its estimated cost (earliest member wins ties).
            let mut winner_seen = false;
            for (name, cost, plan) in &member_plans {
                if !winner_seen && name == &source.name && *cost == planned.est_cost {
                    winner_seen = true;
                    continue;
                }
                flight.event_with(|| PlanEvent::Eliminated {
                    rule: "cost",
                    cost: *cost,
                    plan: plan.clone(),
                    detail: format!(
                        "member {name}: est cost {cost:.2} vs winner {:.2} on {}",
                        planned.est_cost, source.name
                    ),
                });
            }
        }
        span.close();
        match best {
            Some((source, planned)) => {
                Ok(FederatedPlan { source, planned, considered, flight_id: flight.id() })
            }
            None => {
                Err(PlanError::NoFeasiblePlan { query: query.to_string(), scheme: "Federation" })
            }
        }
    }

    /// Plans `query`, consulting the prepared-plan cache first (when one
    /// is installed with [`Federation::with_plan_cache`]).
    ///
    /// - **Hit**: the query's parameterized shape matched a cached entry
    ///   and its constants rebound cleanly — the planning fan-out is
    ///   skipped entirely. A fresh flight record still narrates the hit so
    ///   journal/profile ids stay unique per query.
    /// - **Miss / rejected**: falls back to [`Federation::plan`]
    ///   (byte-identical behaviour to calling it directly) and stores the
    ///   winner for the next query of this shape.
    pub fn prepare(&self, query: &TargetQuery) -> Result<PreparedFederated, PlanError> {
        let decision = match &self.plan_cache {
            None => CacheDecision::Bypass,
            Some(cache) => match cache.lookup(query, &self.members) {
                Lookup::Hit { member, planned } => {
                    self.obs.metrics.inc(names::PLANCACHE_HITS);
                    self.obs.metrics.gauge_set(names::PLANCACHE_ENTRIES, cache.len() as f64);
                    let flight =
                        self.flight.begin_with(|| (query.to_string(), "Federation".to_string()));
                    let name = &self.members[member].name;
                    self.obs.tracer.event_with(|| {
                        format!(
                            "plan cache hit: member {name}, prepared est cost {:.2}",
                            planned.est_cost
                        )
                    });
                    flight.event_with(|| PlanEvent::Note {
                        text: format!(
                            "prepared-plan cache hit on member {name}: constants rebound, \
                             planner skipped"
                        ),
                    });
                    flight.event_with(|| PlanEvent::Winner {
                        cost: planned.est_cost,
                        plan: planned.plan.to_string(),
                    });
                    return Ok(PreparedFederated {
                        member,
                        planned: *planned,
                        decision: CacheDecision::Hit,
                        considered: Vec::new(),
                        flight_id: flight.id(),
                    });
                }
                Lookup::Miss => {
                    self.obs.metrics.inc(names::PLANCACHE_MISSES);
                    CacheDecision::Miss
                }
                Lookup::Rejected(reason) => {
                    self.obs.metrics.inc(names::PLANCACHE_REJECTED);
                    self.obs.tracer.event_with(|| {
                        format!("plan cache entry rejected ({reason}); planning cold")
                    });
                    CacheDecision::Rejected(reason)
                }
            },
        };
        let fp = self.plan(query)?;
        let member = self
            .members
            .iter()
            .position(|m| Arc::ptr_eq(m, &fp.source))
            .expect("federated winner is a member");
        if let Some(cache) = &self.plan_cache {
            cache.insert(query, member, fp.planned.clone());
            self.obs.metrics.gauge_set(names::PLANCACHE_ENTRIES, cache.len() as f64);
        }
        Ok(PreparedFederated {
            member,
            planned: fp.planned,
            decision,
            considered: fp.considered,
            flight_id: fp.flight_id,
        })
    }

    /// Plans and executes on the chosen member. The already-chosen plan is
    /// executed directly — the query is *not* re-planned.
    pub fn run(&self, query: &TargetQuery) -> Result<(FederatedPlan, RunOutcome), MediatorError> {
        let fp = self.plan(query)?;
        let (rows, meter) = execute_measured(&fp.planned.plan, &fp.source)?;
        let measured_cost = meter.cost(fp.source.cost_params());
        meter.record_into(&self.obs.metrics);
        self.obs.metrics.inc(names::FEDERATION_SERVED);
        self.tap(names::MEMBER_QUERIES_PREFIX, &fp.source.name);
        self.tap_costs(&fp.source.name, fp.planned.est_cost, measured_cost);
        let outcome = RunOutcome { planned: fp.planned.clone(), rows, meter, measured_cost };
        Ok((fp, outcome))
    }

    /// Plans and executes on the chosen member through the streaming
    /// engine: the member's answer pulls through a bounded batch pipeline
    /// (honoring [`StreamConfig::limit`] for early termination) instead of
    /// materializing at once, and the run's [`StreamStats`] land in the
    /// `exec.*` metrics.
    pub fn run_streamed(
        &self,
        query: &TargetQuery,
        cfg: &StreamConfig,
    ) -> Result<(FederatedPlan, RunOutcome, StreamStats), MediatorError> {
        let fp = self.plan(query)?;
        let (rows, meter, stats) = execute_stream_measured_traced(
            &fp.planned.plan,
            &fp.source,
            cfg,
            Some(&self.obs.tracer),
        )?;
        let measured_cost = meter.cost(fp.source.cost_params());
        meter.record_into(&self.obs.metrics);
        stats.record_into(&self.obs.metrics);
        self.obs.metrics.inc(names::FEDERATION_SERVED);
        self.tap(names::MEMBER_QUERIES_PREFIX, &fp.source.name);
        self.tap_costs(&fp.source.name, fp.planned.est_cost, measured_cost);
        let outcome = RunOutcome { planned: fp.planned.clone(), rows, meter, measured_cost };
        Ok((fp, outcome, stats))
    }

    /// Snapshots the breaker gates at tick `now`, fans planning out over
    /// the capability-index survivors, and merges the results into a
    /// cheapest-first candidate list (stable: earliest member wins ties).
    /// Pruned, infeasible and quarantined members are traced and counted
    /// here — [`Federation::run_resilient`] and
    /// [`Federation::run_adaptive`] record identical selection events.
    /// Metrics/trace only from the sequential merge — deterministic across
    /// the `parallel` feature.
    #[allow(clippy::type_complexity)]
    fn gated_candidates(
        &self,
        query: &TargetQuery,
        now: u64,
        flight: QueryFlight<'_>,
        trace: &mut FailoverTrace,
    ) -> (Vec<(usize, PlannedQuery)>, Vec<BreakerGate>, bool) {
        // Gate decisions are snapshotted up front so the planning fan-out
        // below cannot interleave with breaker updates.
        let gates: Vec<BreakerGate> = self.breakers.iter().map(|b| b.gate(now)).collect();
        let decision = self.index_decision(query);
        let outcomes = self.plan_candidates(query, decision.as_ref());

        if let Some(d) = &decision {
            // Aggregated like in `plan`: pruned-member bookkeeping must not
            // scale with the federation.
            self.obs.metrics.add(names::FEDERATION_INFEASIBLE, d.pruned as u64);
            flight.event_with(|| PlanEvent::IndexPrune {
                total: d.total,
                candidates: d.candidates.len(),
                pruned: d.pruned,
            });
        }
        let mut candidates: Vec<(usize, PlannedQuery)> = Vec::new();
        let mut any_feasible = false;
        let mut next = outcomes.into_iter().peekable();
        for (idx, gate) in gates.iter().enumerate() {
            let outcome = if next.peek().is_some_and(|(i, _)| *i == idx) {
                next.next().expect("peeked entry exists").1
            } else {
                // Pruned by the capability index without planning: the
                // member is infeasible with certainty, so the trace entry
                // is identical to a planning failure's.
                trace.push((self.members[idx].name.clone(), MemberEvent::Infeasible));
                continue;
            };
            // Planned candidates get a span each; pruned members stay O(1).
            let _member_span = self
                .obs
                .tracer
                .is_enabled()
                .then(|| self.obs.tracer.span(&format!("member {}", self.members[idx].name)));
            match outcome {
                Ok(planned) => {
                    any_feasible = true;
                    planned.report.record_into(&self.obs.metrics);
                    if *gate == BreakerGate::Quarantined {
                        self.obs.metrics.inc(names::FEDERATION_QUARANTINED);
                        self.tap(names::MEMBER_QUARANTINED_PREFIX, &self.members[idx].name);
                        self.obs.tracer.event_with(|| {
                            format!("member {}: quarantined (breaker open)", self.members[idx].name)
                        });
                        flight.event_with(|| PlanEvent::Breaker {
                            member: self.members[idx].name.clone(),
                            transition: "quarantined",
                        });
                        trace.push((self.members[idx].name.clone(), MemberEvent::Quarantined));
                    } else {
                        candidates.push((idx, planned));
                    }
                }
                Err(_) => {
                    self.obs.metrics.inc(names::FEDERATION_INFEASIBLE);
                    self.obs
                        .tracer
                        .event_with(|| format!("member {}: infeasible", self.members[idx].name));
                    flight.event_with(|| PlanEvent::Note {
                        text: format!("member {}: infeasible", self.members[idx].name),
                    });
                    trace.push((self.members[idx].name.clone(), MemberEvent::Infeasible));
                }
            }
        }
        candidates
            .sort_by(|a, b| a.1.est_cost.partial_cmp(&b.1.est_cost).expect("finite plan costs"));
        (candidates, gates, any_feasible)
    }

    /// Plans against every non-quarantined member and executes with full
    /// resilience: members are tried cheapest-first; within a member the
    /// mediator-level failover applies (retry/backoff per `policy`, then
    /// ranked plan alternatives); when a member still fails the federation
    /// fails over to the next-cheapest member. A member that fails
    /// [`CircuitBreakerConfig::failure_threshold`] consecutive runs is
    /// quarantined for `cooldown_ticks` runs, then offered a half-open
    /// probe.
    ///
    /// The whole decision sequence is deterministic: planning fans out via
    /// [`crate::par::par_map`] (order-preserving), execution visits members
    /// in a cost-sorted order with member index as tie-break, and the
    /// breaker clock counts runs, not wall time — the same seed yields the
    /// same [`FederatedRun::trace`] with the `parallel` feature on or off.
    pub fn run_resilient(
        &self,
        query: &TargetQuery,
        policy: &RetryPolicy,
    ) -> Result<FederatedRun, MediatorError> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let span = self.obs.tracer.span("federation run");
        let flight = self.flight.begin_with(|| (query.to_string(), "Federation".to_string()));
        let mut trace: FailoverTrace = Vec::new();
        let (candidates, gates, any_feasible) =
            self.gated_candidates(query, now, flight, &mut trace);

        let mut resilience = ResilienceMeter::default();
        let mut last_error: Option<ExecError> = None;
        let mut tried_any = false;
        for (idx, planned) in candidates {
            let member = &self.members[idx];
            if gates[idx] == BreakerGate::HalfOpen {
                self.obs.metrics.inc(names::BREAKER_HALF_OPENED);
                self.obs.tracer.event_with(|| format!("member {}: half-open probe", member.name));
                flight.event_with(|| PlanEvent::Breaker {
                    member: member.name.clone(),
                    transition: "half-open",
                });
                trace.push((member.name.clone(), MemberEvent::Probed));
            }
            if tried_any {
                resilience.failovers += 1;
            }
            tried_any = true;
            let retries_before = resilience.retries;
            match execute_with_failover(&planned, member, policy, &mut resilience) {
                Ok((plan_rank, rows, meter, _failures)) => {
                    if self.breakers[idx].record_success() {
                        self.obs.metrics.inc(names::BREAKER_CLOSED);
                        flight.event_with(|| PlanEvent::Breaker {
                            member: member.name.clone(),
                            transition: "closed",
                        });
                        self.plancache_invalidate("breaker closed");
                    }
                    self.obs.metrics.inc(names::FEDERATION_SERVED);
                    self.tap(names::MEMBER_QUERIES_PREFIX, &member.name);
                    self.tap_add(
                        names::MEMBER_RETRIES_PREFIX,
                        &member.name,
                        resilience.retries - retries_before,
                    );
                    meter.record_into(&self.obs.metrics);
                    resilience.record_into(&self.obs.metrics);
                    self.obs.tracer.event_with(|| {
                        format!(
                            "member {}: served (plan rank {plan_rank}, {} rows)",
                            member.name,
                            rows.len()
                        )
                    });
                    flight.event_with(|| PlanEvent::Winner {
                        cost: planned.est_cost,
                        plan: planned.plan.to_string(),
                    });
                    flight.event_with(|| PlanEvent::Note {
                        text: format!("served by member {} (plan rank {plan_rank})", member.name),
                    });
                    trace.push((member.name.clone(), MemberEvent::Served));
                    span.close();
                    let measured_cost = meter.cost(member.cost_params());
                    self.tap_costs(&member.name, planned.est_cost, measured_cost);
                    return Ok(FederatedRun {
                        outcome: RunOutcome { planned, rows, meter, measured_cost },
                        source_name: member.name.clone(),
                        plan_rank,
                        resilience,
                        trace,
                    });
                }
                Err(mut failures) => {
                    if self.breakers[idx].record_failure(now, &self.breaker_cfg) {
                        self.obs.metrics.inc(names::BREAKER_OPENED);
                        self.tap(names::BREAKER_OPENED_PREFIX, &member.name);
                        self.obs
                            .tracer
                            .event_with(|| format!("member {}: breaker opened", member.name));
                        flight.event_with(|| PlanEvent::Breaker {
                            member: member.name.clone(),
                            transition: "opened",
                        });
                        self.plancache_invalidate("breaker opened");
                    }
                    self.obs.metrics.inc(names::FEDERATION_EXEC_FAILED);
                    self.tap(names::MEMBER_ERRORS_PREFIX, &member.name);
                    self.tap_add(
                        names::MEMBER_RETRIES_PREFIX,
                        &member.name,
                        resilience.retries - retries_before,
                    );
                    let (_, err) = failures.pop().expect("at least one plan was tried");
                    self.obs
                        .tracer
                        .event_with(|| format!("member {}: execution failed ({err})", member.name));
                    flight.event_with(|| PlanEvent::Failover {
                        rank: idx,
                        detail: format!("member {}: {err}", member.name),
                    });
                    trace.push((member.name.clone(), MemberEvent::ExecFailed(err.to_string())));
                    last_error = Some(err);
                }
            }
        }

        // Every candidate failed (or none was tried): the retry/breaker
        // counters still reach the registry.
        resilience.record_into(&self.obs.metrics);
        span.close();
        match last_error {
            Some(err) => Err(MediatorError::Exec(err)),
            // No member was even tried: everything was infeasible or
            // quarantined.
            None if any_feasible => Err(MediatorError::Plan(PlanError::NoFeasiblePlan {
                query: query.to_string(),
                scheme: "Federation (all capable members quarantined)",
            })),
            None => Err(MediatorError::Plan(PlanError::NoFeasiblePlan {
                query: query.to_string(),
                scheme: "Federation",
            })),
        }
    }

    /// Streams the cheapest member's plan adaptively: when the serving
    /// member dies *mid-pipeline* (per-batch retries exhausted), its
    /// breaker opens, the residual condition of the paused pipeline is
    /// re-planned on the next-cheapest gated candidate, and that member's
    /// plan is spliced into the running stream — already-emitted tuples
    /// are deduplicated away, so the answer matches a fault-free run.
    /// Unlike [`Federation::run_resilient`], work done before the fault is
    /// not thrown away and the failed member's whole plan is not re-run.
    ///
    /// With the `adaptive` (or `stream`) feature off this degrades to
    /// resilient streaming on the primary member only (splices stay 0).
    pub fn run_adaptive(
        &self,
        query: &TargetQuery,
        policy: &RetryPolicy,
        cfg: &StreamConfig,
    ) -> Result<FederatedAdaptiveRun, MediatorError> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let span = self.obs.tracer.span("federation run (adaptive)");
        let flight = self.flight.begin_with(|| (query.to_string(), "Federation".to_string()));
        let mut trace: FailoverTrace = Vec::new();
        let (mut candidates, gates, any_feasible) =
            self.gated_candidates(query, now, flight, &mut trace);

        if candidates.is_empty() {
            span.close();
            let scheme = if any_feasible {
                "Federation (all capable members quarantined)"
            } else {
                "Federation"
            };
            return Err(MediatorError::Plan(PlanError::NoFeasiblePlan {
                query: query.to_string(),
                scheme,
            }));
        }
        let (primary_idx, primary) = candidates.remove(0);
        let primary_member = &self.members[primary_idx];
        if gates[primary_idx] == BreakerGate::HalfOpen {
            self.obs.metrics.inc(names::BREAKER_HALF_OPENED);
            self.obs
                .tracer
                .event_with(|| format!("member {}: half-open probe", primary_member.name));
            flight.event_with(|| PlanEvent::Breaker {
                member: primary_member.name.clone(),
                transition: "half-open",
            });
            trace.push((primary_member.name.clone(), MemberEvent::Probed));
        }

        // Transfer is metered per member and summed afterwards — a spliced
        // run legitimately ships tuples from several members, each charged
        // at its own cost constants.
        let before: Vec<Meter> = self.members.iter().map(|m| m.meter()).collect();
        let mut resilience = ResilienceMeter::default();
        let mut ctl = BreakerSpliceController {
            fed: self,
            now,
            flight,
            queue: candidates.into_iter().collect(),
            current: primary_idx,
            attrs: query.attrs.clone(),
            trace: &mut trace,
            gates,
            splices: 0,
        };
        let result = execute_stream_adaptive_traced(
            &primary.plan,
            primary_member,
            Some(policy),
            &mut resilience,
            cfg,
            &mut ctl,
            Some(&self.obs.tracer),
        );
        let serving_idx = ctl.current;
        let (rows, stats, splices) = match result {
            Ok(ok) => ok,
            Err(e) => {
                // The controller already opened breakers and traced every
                // member that died; nobody was left to splice to.
                resilience.record_into(&self.obs.metrics);
                self.obs.tracer.event_with(|| format!("adaptive run died: {e}"));
                span.close();
                return Err(MediatorError::Exec(e));
            }
        };

        let member = &self.members[serving_idx];
        if self.breakers[serving_idx].record_success() {
            self.obs.metrics.inc(names::BREAKER_CLOSED);
            flight.event_with(|| PlanEvent::Breaker {
                member: member.name.clone(),
                transition: "closed",
            });
            self.plancache_invalidate("breaker closed");
        }
        self.obs.metrics.inc(names::FEDERATION_SERVED);
        let mut meter = Meter::default();
        let mut measured_cost = 0.0;
        for (i, m) in self.members.iter().enumerate() {
            let after = m.meter();
            let delta = Meter {
                queries: after.queries - before[i].queries,
                tuples_shipped: after.tuples_shipped - before[i].tuples_shipped,
                rejected: after.rejected - before[i].rejected,
            };
            measured_cost += delta.cost(m.cost_params());
            meter.queries += delta.queries;
            meter.tuples_shipped += delta.tuples_shipped;
            meter.rejected += delta.rejected;
        }
        self.tap(names::MEMBER_QUERIES_PREFIX, &member.name);
        self.tap_costs(&member.name, primary.est_cost, measured_cost);
        meter.record_into(&self.obs.metrics);
        stats.record_into(&self.obs.metrics);
        // A mid-stream member switch is a failover, just a cheaper one.
        resilience.failovers += splices;
        resilience.record_into(&self.obs.metrics);
        self.obs.tracer.event_with(|| {
            format!(
                "member {}: served adaptively ({} rows, {splices} splice(s))",
                member.name,
                rows.len()
            )
        });
        flight.event_with(|| PlanEvent::Winner {
            cost: primary.est_cost,
            plan: primary.plan.to_string(),
        });
        flight.event_with(|| PlanEvent::Note {
            text: format!("served by member {} after {splices} splice(s)", member.name),
        });
        trace.push((member.name.clone(), MemberEvent::Served));
        span.close();
        Ok(FederatedAdaptiveRun {
            run: FederatedRun {
                outcome: RunOutcome { planned: primary, rows, meter, measured_cost },
                source_name: member.name.clone(),
                plan_rank: 0,
                resilience,
                trace,
            },
            stats,
            splices,
        })
    }
}

/// Cost-to-counter conversion for the `member.*_cost_milli.*` taps.
fn to_milli(cost: f64) -> u64 {
    if cost.is_finite() && cost > 0.0 {
        (cost * 1000.0).round() as u64
    } else {
        0
    }
}

/// The breaker-triggered [`ReplanController`] of
/// [`Federation::run_adaptive`]: on a terminal mid-stream leaf failure it
/// opens the serving member's breaker, re-plans the pipeline's residual
/// condition on the next-cheapest gated candidate, and splices that
/// member in. Batch boundaries are left alone — cardinality drift is the
/// mediator-level controller's job.
struct BreakerSpliceController<'a> {
    fed: &'a Federation,
    now: u64,
    flight: QueryFlight<'a>,
    /// Remaining gated candidates, cheapest-first.
    queue: VecDeque<(usize, PlannedQuery)>,
    /// Index of the member currently feeding the pipeline.
    current: usize,
    attrs: AttrSet,
    trace: &'a mut FailoverTrace,
    gates: Vec<BreakerGate>,
    splices: u64,
}

impl ReplanController for BreakerSpliceController<'_> {
    fn on_batch(&mut self, _probe: &ReplanProbe<'_>) -> Option<SpliceAction> {
        None
    }

    fn on_leaf_error(&mut self, probe: &ReplanProbe<'_>, err: &ExecError) -> Option<SpliceAction> {
        let fed = self.fed;
        let failed = &fed.members[self.current];
        if fed.breakers[self.current].record_failure(self.now, &fed.breaker_cfg) {
            fed.obs.metrics.inc(names::BREAKER_OPENED);
            fed.tap(names::BREAKER_OPENED_PREFIX, &failed.name);
            fed.obs.tracer.event_with(|| format!("member {}: breaker opened", failed.name));
            self.flight.event_with(|| PlanEvent::Breaker {
                member: failed.name.clone(),
                transition: "opened",
            });
            fed.plancache_invalidate("breaker opened");
        }
        fed.obs.metrics.inc(names::FEDERATION_EXEC_FAILED);
        fed.tap(names::MEMBER_ERRORS_PREFIX, &failed.name);
        fed.obs.metrics.inc(names::REPLAN_TRIGGERED);
        fed.obs.metrics.inc(names::REPLAN_BREAKER_TRIGGERS);
        fed.obs.tracer.event_with(|| format!("member {}: died mid-stream ({err})", failed.name));
        self.trace.push((failed.name.clone(), MemberEvent::ExecFailed(err.to_string())));

        let remaining = probe.remaining_plan()?;
        let residual = plan_condition(&remaining)?;
        while let Some((idx, _)) = self.queue.pop_front() {
            let next = &fed.members[idx];
            if self.gates[idx] == BreakerGate::HalfOpen {
                fed.obs.metrics.inc(names::BREAKER_HALF_OPENED);
                fed.obs.tracer.event_with(|| format!("member {}: half-open probe", next.name));
                self.flight.event_with(|| PlanEvent::Breaker {
                    member: next.name.clone(),
                    transition: "half-open",
                });
                self.trace.push((next.name.clone(), MemberEvent::Probed));
            }
            // Re-plan the *residual* on the splice target — its
            // capabilities may shape the cover differently than the dead
            // member's did. The fan-out plan for the full query is not
            // reused: the pipeline only needs what has not been emitted.
            let q = TargetQuery::new(residual.clone(), self.attrs.clone());
            let planned = Mediator::new(next.clone()).with_cardinality(fed.card).plan(&q);
            match planned {
                Ok(p) => {
                    p.report.record_into(&fed.obs.metrics);
                    self.splices += 1;
                    fed.obs.metrics.inc(names::REPLAN_SPLICES);
                    // The splice is charged to the member that died — it is
                    // the health signal, not the rescuer.
                    fed.tap(names::MEMBER_SPLICES_PREFIX, &failed.name);
                    self.flight.event_with(|| PlanEvent::Replan {
                        trigger: "breaker-open",
                        detail: format!("member {} died mid-stream: {err}", failed.name),
                        batch: probe.batches,
                        emitted: probe.emitted,
                        old_plan: remaining.to_string(),
                        new_plan: p.plan.to_string(),
                    });
                    fed.obs.tracer.event_with(|| {
                        format!(
                            "replan (breaker): splice to member {} at batch {} after {} rows",
                            next.name, probe.batches, probe.emitted
                        )
                    });
                    self.trace.push((next.name.clone(), MemberEvent::Spliced(failed.name.clone())));
                    self.current = idx;
                    return Some(SpliceAction { plan: p.plan, source: next.clone() });
                }
                Err(_) => {
                    // The residual may be narrower than the original query,
                    // so a member that was feasible for the whole query can
                    // still fail here (and vice versa never happens — the
                    // residual only drops satisfied disjuncts).
                    fed.obs.metrics.inc(names::FEDERATION_INFEASIBLE);
                    fed.obs
                        .tracer
                        .event_with(|| format!("member {}: residual infeasible", next.name));
                    self.flight.event_with(|| PlanEvent::Note {
                        text: format!("member {}: residual infeasible", next.name),
                    });
                    self.trace.push((next.name.clone(), MemberEvent::Infeasible));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::ValueType;
    use csqp_relation::datagen;
    use csqp_source::CostParams;
    use csqp_ssdl::{parse_ssdl, templates};

    /// Three mirrors of the same car data: a form-limited fast one, a
    /// download-only slow one, and one that cannot answer price queries at
    /// all.
    fn mirrors() -> Federation {
        let data = datagen::cars(3, 400);
        let fast_form = Arc::new(Source::new(
            data.clone(),
            templates::car_dealer(), // make+price / make+color forms
            CostParams::new(10.0, 1.0),
        ));
        let slow_dump = Arc::new(Source::new(
            data.clone(),
            templates::download_only(
                "dump",
                &[
                    ("make", ValueType::Str),
                    ("model", ValueType::Str),
                    ("year", ValueType::Int),
                    ("color", ValueType::Str),
                    ("price", ValueType::Int),
                ],
            ),
            CostParams::new(200.0, 5.0),
        ));
        let color_only = Arc::new(Source::new(
            data,
            parse_ssdl(
                "source color_only {\n\
                 s1 -> color = $str ;\n\
                 attributes :: s1 : { make, model, year, color } ;\n}",
            )
            .unwrap(),
            CostParams::new(10.0, 1.0),
        ));
        Federation::new().with_member(fast_form).with_member(slow_dump).with_member(color_only)
    }

    #[test]
    fn picks_the_cheapest_capable_member() {
        let f = mirrors();
        // Form query: the fast form source wins over the expensive dump.
        let q = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();
        let fp = f.plan(&q).unwrap();
        assert_eq!(fp.source.name, "car_dealer");
        assert_eq!(fp.considered.len(), 3);
        // The dump could also answer (download + filter) but at higher cost.
        let dump = fp.considered.iter().find(|(n, _)| n == "dump").unwrap();
        assert!(matches!(&dump.1, Ok(c) if *c > fp.planned.est_cost));
        // color_only cannot answer a price query.
        let co = fp.considered.iter().find(|(n, _)| n == "color_only").unwrap();
        assert!(co.1.is_err());
    }

    #[test]
    fn prepare_hits_on_repeat_shapes_and_breaker_transitions_invalidate() {
        let f = mirrors().with_plan_cache(Arc::new(PlanCache::new()));
        let q1 = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();
        let q2 = TargetQuery::parse("make = \"Audi\" ^ price < 25000", &["model", "year"]).unwrap();
        let cold = f.prepare(&q1).unwrap();
        assert_eq!(cold.decision, CacheDecision::Miss);
        assert_eq!(f.members()[cold.member].name, "car_dealer");
        assert_eq!(cold.considered.len(), 3, "miss runs the full fan-out");
        let warm = f.prepare(&q2).unwrap();
        assert_eq!(warm.decision, CacheDecision::Hit);
        assert_eq!(warm.member, cold.member);
        assert!(warm.considered.is_empty(), "hit skips the fan-out");
        // The rebound plan equals what cold planning would have produced.
        assert_eq!(warm.planned.plan, f.plan(&q2).unwrap().planned.plan);
        // A breaker transition wipes the cache: the next prepare is cold.
        f.plancache_invalidate("test");
        assert_eq!(f.prepare(&q2).unwrap().decision, CacheDecision::Miss);
        let stats = f.plan_cache().unwrap().stats();
        assert_eq!((stats.hits, stats.invalidations), (1, 1));
    }

    #[test]
    fn prepare_without_a_cache_bypasses() {
        let f = mirrors();
        let q = TargetQuery::parse("color = \"red\"", &["make", "model"]).unwrap();
        let p = f.prepare(&q).unwrap();
        assert_eq!(p.decision, CacheDecision::Bypass);
        assert_eq!(f.members()[p.member].name, "color_only");
    }

    #[test]
    fn routes_queries_by_capability() {
        let f = mirrors();
        // A bare color query: only color_only answers it natively; the form
        // source has no color-only form, the dump can but costs more.
        let q = TargetQuery::parse("color = \"red\"", &["make", "model"]).unwrap();
        let fp = f.plan(&q).unwrap();
        assert_eq!(fp.source.name, "color_only", "{:?}", fp.considered);
    }

    #[test]
    fn download_only_member_is_the_last_resort() {
        let f = mirrors();
        // year-only queries: no form anywhere — only the dump survives.
        let q = TargetQuery::parse("year = 1995", &["make", "model"]).unwrap();
        let fp = f.plan(&q).unwrap();
        assert_eq!(fp.source.name, "dump");
        // Executing it returns the exact answer.
        let (fp2, out) = f.run(&q).unwrap();
        assert_eq!(fp2.source.name, "dump");
        let want = csqp_relation::ops::project(
            &csqp_relation::ops::select(fp2.source.relation(), Some(&q.cond)),
            &["make", "model"],
        )
        .unwrap();
        assert_eq!(out.rows, want);
    }

    /// Two mirrors: a cheap member with injected faults and an expensive,
    /// reliable dump.
    fn faulty_pair(profile: csqp_source::FaultProfile, cfg: CircuitBreakerConfig) -> Federation {
        let data = datagen::cars(3, 400);
        let flaky = Arc::new(
            Source::new(data.clone(), templates::car_dealer(), CostParams::new(10.0, 1.0))
                .with_fault_profile(profile),
        );
        let dump = Arc::new(Source::new(
            data,
            templates::download_only(
                "dump",
                &[
                    ("make", ValueType::Str),
                    ("model", ValueType::Str),
                    ("year", ValueType::Int),
                    ("color", ValueType::Str),
                    ("price", ValueType::Int),
                ],
            ),
            CostParams::new(200.0, 5.0),
        ));
        Federation::new().with_member(flaky).with_member(dump).with_breaker(cfg)
    }

    fn car_query() -> TargetQuery {
        TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap()
    }

    #[test]
    fn exec_failure_fails_over_to_next_member() {
        use csqp_source::FaultProfile;
        // The cheap member is hard-down; retries are off so it dies fast.
        let f = faulty_pair(
            FaultProfile::new(0).with_outage(0, u64::MAX),
            CircuitBreakerConfig::default(),
        );
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let q = car_query();
        let run = f.run_resilient(&q, &policy).unwrap();
        assert_eq!(run.source_name, "dump", "failed over to the expensive mirror");
        assert!(run.resilience.failovers >= 1);
        let want = csqp_relation::ops::project(
            &csqp_relation::ops::select(f.members()[1].relation(), Some(&q.cond)),
            &["model", "year"],
        )
        .unwrap();
        assert_eq!(run.outcome.rows, want, "the failover answer is exact");
        // Trace: the dealer failed, then the dump served.
        assert!(run
            .trace
            .iter()
            .any(|(n, e)| n == "car_dealer" && matches!(e, MemberEvent::ExecFailed(_))));
        assert_eq!(run.trace.last().unwrap(), &("dump".to_string(), MemberEvent::Served));
    }

    #[test]
    fn breaker_quarantines_then_probes_then_closes() {
        use csqp_source::FaultProfile;
        // Attempts 0 and 1 are outages, everything after succeeds. With
        // threshold 2 / cooldown 2 the member: fails (run 1), fails + opens
        // (run 2), sits out runs 3–4, probes successfully at run 5, and is
        // fully closed again at run 6.
        let f = faulty_pair(
            FaultProfile::new(0).with_outage(0, 2),
            CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 2 },
        );
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let q = car_query();
        let event_for = |run: &FederatedRun, name: &str| -> Vec<MemberEvent> {
            run.trace.iter().filter(|(n, _)| n == name).map(|(_, e)| e.clone()).collect()
        };

        let r1 = f.run_resilient(&q, &policy).unwrap();
        assert!(matches!(event_for(&r1, "car_dealer")[..], [MemberEvent::ExecFailed(_)]));
        let r2 = f.run_resilient(&q, &policy).unwrap();
        assert!(matches!(event_for(&r2, "car_dealer")[..], [MemberEvent::ExecFailed(_)]));
        for _ in 0..2 {
            let r = f.run_resilient(&q, &policy).unwrap();
            assert_eq!(event_for(&r, "car_dealer"), vec![MemberEvent::Quarantined]);
            assert_eq!(r.source_name, "dump", "quarantine shields the run from the dealer");
        }
        let r5 = f.run_resilient(&q, &policy).unwrap();
        assert_eq!(
            event_for(&r5, "car_dealer"),
            vec![MemberEvent::Probed, MemberEvent::Served],
            "half-open probe succeeds"
        );
        assert_eq!(r5.source_name, "car_dealer");
        let r6 = f.run_resilient(&q, &policy).unwrap();
        assert_eq!(
            event_for(&r6, "car_dealer"),
            vec![MemberEvent::Served],
            "breaker closed after the successful probe"
        );
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        use csqp_source::FaultProfile;
        let f = faulty_pair(
            FaultProfile::new(0).with_outage(0, u64::MAX),
            CircuitBreakerConfig { failure_threshold: 1, cooldown_ticks: 1 },
        );
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let q = car_query();
        let r1 = f.run_resilient(&q, &policy).unwrap(); // fails, opens
        assert!(r1.trace.iter().any(|(_, e)| matches!(e, MemberEvent::ExecFailed(_))));
        let r2 = f.run_resilient(&q, &policy).unwrap(); // quarantined
        assert!(r2.trace.iter().any(|(_, e)| *e == MemberEvent::Quarantined));
        let r3 = f.run_resilient(&q, &policy).unwrap(); // probe fails, reopens
        assert!(r3.trace.iter().any(|(_, e)| *e == MemberEvent::Probed));
        let r4 = f.run_resilient(&q, &policy).unwrap(); // quarantined again
        assert!(r4.trace.iter().any(|(_, e)| *e == MemberEvent::Quarantined));
    }

    #[test]
    fn metrics_count_breaker_transitions_and_member_events() {
        use csqp_source::FaultProfile;
        // Same schedule as `breaker_quarantines_then_probes_then_closes`:
        // fail, fail+open, 2×quarantine, successful probe (close), serve.
        let f = faulty_pair(
            FaultProfile::new(0).with_outage(0, 2),
            CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 2 },
        );
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let q = car_query();
        for _ in 0..6 {
            f.run_resilient(&q, &policy).unwrap();
        }
        let snap = f.metrics_snapshot();
        if f.obs().enabled() {
            assert_eq!(snap.counter(names::BREAKER_OPENED), 1, "{}", snap.to_json());
            assert_eq!(snap.counter(names::BREAKER_HALF_OPENED), 1, "{}", snap.to_json());
            assert_eq!(snap.counter(names::BREAKER_CLOSED), 1, "{}", snap.to_json());
            assert_eq!(snap.counter(names::FEDERATION_QUARANTINED), 2);
            assert_eq!(snap.counter(names::FEDERATION_EXEC_FAILED), 2);
            assert_eq!(snap.counter(names::FEDERATION_SERVED), 6);
            assert_eq!(snap.counter(names::RESILIENCE_FAILOVERS), 2, "dealer→dump twice");
            assert!(snap.counter(names::PLANNER_CHECK_CALLS) > 0, "planning fan-out recorded");
            // The decision trace replays deterministically: a fresh
            // federation with the same schedule produces the same trace.
            let f2 = faulty_pair(
                FaultProfile::new(0).with_outage(0, 2),
                CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 2 },
            );
            for _ in 0..6 {
                f2.run_resilient(&q, &policy).unwrap();
            }
            assert_eq!(f2.obs().tracer.render(), f.obs().tracer.render());
            assert_eq!(f2.metrics_snapshot(), snap);
        } else {
            assert_eq!(snap.counter(names::FEDERATION_SERVED), 0, "no-op recorder stays empty");
        }
    }

    #[test]
    fn all_members_down_reports_exec_error() {
        use csqp_source::FaultProfile;
        let data = datagen::cars(3, 100);
        let down = |name_seed: u64| {
            Arc::new(
                Source::new(data.clone(), templates::car_dealer(), CostParams::default())
                    .with_fault_profile(FaultProfile::new(name_seed).with_outage(0, u64::MAX)),
            )
        };
        let f = Federation::new().with_member(down(1)).with_member(down(2));
        let policy = RetryPolicy { max_retries: 1, ..Default::default() };
        match f.run_resilient(&car_query(), &policy) {
            Err(MediatorError::Exec(e)) => {
                assert!(e.to_string().contains("unavailable") || e.to_string().contains("retries"))
            }
            other => panic!("expected Exec error, got {other:?}"),
        }
    }

    #[test]
    fn run_executes_the_already_chosen_plan() {
        let f = mirrors();
        let q = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();
        let (fp, out) = f.run(&q).unwrap();
        // The outcome's plan IS the federated choice — no re-planning.
        assert_eq!(out.planned.plan, fp.planned.plan);
        assert_eq!(out.planned.est_cost, fp.planned.est_cost);
        let want = csqp_relation::ops::project(
            &csqp_relation::ops::select(fp.source.relation(), Some(&q.cond)),
            &["model", "year"],
        )
        .unwrap();
        assert_eq!(out.rows, want);
    }

    #[test]
    fn all_infeasible_reports_federation_error() {
        let f = Federation::new().with_member(Arc::new(Source::new(
            datagen::cars(3, 50),
            templates::car_dealer(),
            CostParams::default(),
        )));
        let q = TargetQuery::parse("year = 1995", &["model"]).unwrap();
        match f.plan(&q) {
            Err(PlanError::NoFeasiblePlan { scheme, .. }) => {
                assert_eq!(scheme, "Federation")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_federation_is_infeasible() {
        let f = Federation::new();
        let q = TargetQuery::parse("a = 1", &["k"]).unwrap();
        assert!(f.plan(&q).is_err());
    }

    #[test]
    fn breaker_states_report_live_health() {
        use csqp_source::FaultProfile;
        let f = faulty_pair(
            FaultProfile::new(0).with_outage(0, 2),
            CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 2 },
        );
        let states = f.breaker_states();
        assert_eq!(states.len(), 2);
        assert!(states.iter().all(|(_, h)| *h == BreakerHealth::Closed), "fresh: all closed");
        assert_eq!(BreakerHealth::Closed.as_gauge(), 0.0);
        assert_eq!(BreakerHealth::Open.as_gauge(), 2.0);
        assert_eq!(BreakerHealth::HalfOpen.as_gauge(), 1.0);
        assert_eq!(BreakerHealth::Open.label(), "open");

        // Two failed runs trip the dealer's breaker; the gauge follows.
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let q = car_query();
        f.run_resilient(&q, &policy).unwrap();
        f.run_resilient(&q, &policy).unwrap();
        let states = f.breaker_states();
        assert_eq!(states.iter().find(|(n, _)| n == "car_dealer").unwrap().1, BreakerHealth::Open);
        assert_eq!(states.iter().find(|(n, _)| n == "dump").unwrap().1, BreakerHealth::Closed);
        // The exported gauge needs a live registry; the noop registry of an
        // obs-off build scrapes empty.
        #[cfg(feature = "obs")]
        {
            let snap = f.metrics_snapshot();
            assert!(
                snap.gauges.contains_key(&format!("{}car_dealer", names::BREAKER_STATE_PREFIX)),
                "breaker gauge exported"
            );
            assert_eq!(
                snap.gauge(&format!("{}car_dealer", names::BREAKER_STATE_PREFIX)),
                BreakerHealth::Open.as_gauge()
            );
        }
    }

    #[test]
    fn run_adaptive_matches_resilient_when_healthy() {
        let f = mirrors();
        let q = car_query();
        let policy = RetryPolicy::default();
        let run = f.run_adaptive(&q, &policy, &StreamConfig::serial()).unwrap();
        assert_eq!(run.splices, 0, "healthy federation never splices");
        assert_eq!(run.run.source_name, "car_dealer");
        let want = csqp_relation::ops::project(
            &csqp_relation::ops::select(f.members()[0].relation(), Some(&q.cond)),
            &["model", "year"],
        )
        .unwrap();
        assert_eq!(run.run.outcome.rows, want);
        assert_eq!(run.run.trace.last().unwrap(), &("car_dealer".to_string(), MemberEvent::Served));
    }

    #[cfg(all(feature = "stream", feature = "adaptive"))]
    #[test]
    fn mid_stream_outage_splices_to_the_dump() {
        use csqp_source::FaultProfile;
        // The first source-query attempt on the dealer succeeds, every later
        // one is an outage: the first union branch streams its rows, then
        // the second branch dies mid-pipeline.
        let f = faulty_pair(
            FaultProfile::new(0).with_outage(1, u64::MAX),
            CircuitBreakerConfig { failure_threshold: 1, cooldown_ticks: 4 },
        );
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        let q = TargetQuery::parse(
            "(make = \"BMW\" _ make = \"Audi\") ^ price < 40000",
            &["model", "year"],
        )
        .unwrap();
        let cfg = StreamConfig { batch_size: 16, ..StreamConfig::serial() };
        let run = f.run_adaptive(&q, &policy, &cfg).unwrap();
        assert!(run.splices >= 1, "the breaker-open must splice, not fail over from scratch");
        assert_eq!(run.run.source_name, "dump", "the dump finishes the stream");
        // Despite the mid-stream member switch the answer is exact.
        let want = csqp_relation::ops::project(
            &csqp_relation::ops::select(f.members()[1].relation(), Some(&q.cond)),
            &["model", "year"],
        )
        .unwrap();
        assert_eq!(run.run.outcome.rows, want);
        // The trace shows the dealer dying and the dump splicing in for it.
        assert!(run
            .trace()
            .iter()
            .any(|(n, e)| n == "car_dealer" && matches!(e, MemberEvent::ExecFailed(_))));
        assert!(run
            .trace()
            .iter()
            .any(|(n, e)| n == "dump"
                && matches!(e, MemberEvent::Spliced(from) if from == "car_dealer")));
        // The dealer's breaker opened (threshold 1) and the gauges agree.
        let states = f.breaker_states();
        assert_eq!(states.iter().find(|(n, _)| n == "car_dealer").unwrap().1, BreakerHealth::Open);
        let snap = f.metrics_snapshot();
        assert_eq!(snap.counter(names::REPLAN_BREAKER_TRIGGERS), 1);
        assert_eq!(snap.counter(names::REPLAN_SPLICES), run.splices);
        assert_eq!(snap.counter(names::BREAKER_OPENED), 1);
        // A mid-stream splice counts as a failover in the resilience meter.
        assert!(run.run.resilience.failovers >= run.splices);
    }

    #[cfg(all(feature = "stream", feature = "adaptive"))]
    #[test]
    fn adaptive_with_no_splice_target_reports_exec_error() {
        use csqp_source::FaultProfile;
        let data = datagen::cars(3, 100);
        let down = |seed: u64| {
            Arc::new(
                Source::new(data.clone(), templates::car_dealer(), CostParams::default())
                    .with_fault_profile(FaultProfile::new(seed).with_outage(0, u64::MAX)),
            )
        };
        let f = Federation::new().with_member(down(1)).with_member(down(2));
        let policy = RetryPolicy { max_retries: 0, ..Default::default() };
        match f.run_adaptive(&car_query(), &policy, &StreamConfig::serial()) {
            Err(MediatorError::Exec(_)) => {}
            other => panic!("expected Exec error, got {other:?}"),
        }
    }
}
