//! Source selection across mirrors: the same logical data offered by
//! several Internet sources with *different* capabilities and cost
//! constants (e.g. two bookstores, one searchable by author only, one
//! downloadable but slow).
//!
//! The federation plans the target query against every member and executes
//! the cheapest feasible plan — capability-sensitivity applied one level up
//! from [`crate::mediator::Mediator`].

use crate::mediator::{CardKind, Mediator, MediatorError, RunOutcome};
use crate::types::{PlanError, PlannedQuery, TargetQuery};
use csqp_source::Source;
use std::sync::Arc;

/// A set of interchangeable sources for one logical relation.
#[derive(Debug)]
pub struct Federation {
    members: Vec<Arc<Source>>,
    card: CardKind,
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

/// A federation planning decision.
#[derive(Debug)]
pub struct FederatedPlan {
    /// The chosen source.
    pub source: Arc<Source>,
    /// Its plan.
    pub planned: PlannedQuery,
    /// Per-member outcomes (member name, estimated cost or the error),
    /// for explainability.
    pub considered: Vec<(String, Result<f64, PlanError>)>,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Federation { members: Vec::new(), card: CardKind::Stats }
    }

    /// Adds a member source.
    pub fn with_member(mut self, source: Arc<Source>) -> Self {
        self.members.push(source);
        self
    }

    /// Selects the cardinality estimator used for every member.
    pub fn with_cardinality(mut self, card: CardKind) -> Self {
        self.card = card;
        self
    }

    /// The member sources.
    pub fn members(&self) -> &[Arc<Source>] {
        &self.members
    }

    /// Plans `query` against every member and picks the cheapest feasible
    /// plan (estimated cost under each member's own cost constants).
    ///
    /// Members are planned concurrently when the `parallel` feature is on
    /// (each mediator is self-contained — no shared planner state). The
    /// reduce runs left-to-right over results in member order, keeping the
    /// earliest member on cost ties, so the choice is identical to the
    /// sequential loop regardless of thread scheduling.
    pub fn plan(&self, query: &TargetQuery) -> Result<FederatedPlan, PlanError> {
        let card = self.card;
        let outcomes = crate::par::par_map(&self.members, |member| {
            Mediator::new(member.clone()).with_cardinality(card).plan(query)
        });
        let mut best: Option<(Arc<Source>, PlannedQuery)> = None;
        let mut considered = Vec::with_capacity(self.members.len());
        for (member, outcome) in self.members.iter().zip(outcomes) {
            match outcome {
                Ok(planned) => {
                    considered.push((member.name.clone(), Ok(planned.est_cost)));
                    if best.as_ref().is_none_or(|(_, b)| planned.est_cost < b.est_cost) {
                        best = Some((member.clone(), planned));
                    }
                }
                Err(e) => considered.push((member.name.clone(), Err(e))),
            }
        }
        match best {
            Some((source, planned)) => Ok(FederatedPlan { source, planned, considered }),
            None => {
                Err(PlanError::NoFeasiblePlan { query: query.to_string(), scheme: "Federation" })
            }
        }
    }

    /// Plans and executes on the chosen member.
    pub fn run(&self, query: &TargetQuery) -> Result<(FederatedPlan, RunOutcome), MediatorError> {
        let fp = self.plan(query)?;
        let mediator = Mediator::new(fp.source.clone()).with_cardinality(self.card);
        let outcome = mediator.run(query)?;
        Ok((fp, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::ValueType;
    use csqp_relation::datagen;
    use csqp_source::CostParams;
    use csqp_ssdl::{parse_ssdl, templates};

    /// Three mirrors of the same car data: a form-limited fast one, a
    /// download-only slow one, and one that cannot answer price queries at
    /// all.
    fn mirrors() -> Federation {
        let data = datagen::cars(3, 400);
        let fast_form = Arc::new(Source::new(
            data.clone(),
            templates::car_dealer(), // make+price / make+color forms
            CostParams::new(10.0, 1.0),
        ));
        let slow_dump = Arc::new(Source::new(
            data.clone(),
            templates::download_only(
                "dump",
                &[
                    ("make", ValueType::Str),
                    ("model", ValueType::Str),
                    ("year", ValueType::Int),
                    ("color", ValueType::Str),
                    ("price", ValueType::Int),
                ],
            ),
            CostParams::new(200.0, 5.0),
        ));
        let color_only = Arc::new(Source::new(
            data,
            parse_ssdl(
                "source color_only {\n\
                 s1 -> color = $str ;\n\
                 attributes :: s1 : { make, model, year, color } ;\n}",
            )
            .unwrap(),
            CostParams::new(10.0, 1.0),
        ));
        Federation::new().with_member(fast_form).with_member(slow_dump).with_member(color_only)
    }

    #[test]
    fn picks_the_cheapest_capable_member() {
        let f = mirrors();
        // Form query: the fast form source wins over the expensive dump.
        let q = TargetQuery::parse("make = \"BMW\" ^ price < 40000", &["model", "year"]).unwrap();
        let fp = f.plan(&q).unwrap();
        assert_eq!(fp.source.name, "car_dealer");
        assert_eq!(fp.considered.len(), 3);
        // The dump could also answer (download + filter) but at higher cost.
        let dump = fp.considered.iter().find(|(n, _)| n == "dump").unwrap();
        assert!(matches!(&dump.1, Ok(c) if *c > fp.planned.est_cost));
        // color_only cannot answer a price query.
        let co = fp.considered.iter().find(|(n, _)| n == "color_only").unwrap();
        assert!(co.1.is_err());
    }

    #[test]
    fn routes_queries_by_capability() {
        let f = mirrors();
        // A bare color query: only color_only answers it natively; the form
        // source has no color-only form, the dump can but costs more.
        let q = TargetQuery::parse("color = \"red\"", &["make", "model"]).unwrap();
        let fp = f.plan(&q).unwrap();
        assert_eq!(fp.source.name, "color_only", "{:?}", fp.considered);
    }

    #[test]
    fn download_only_member_is_the_last_resort() {
        let f = mirrors();
        // year-only queries: no form anywhere — only the dump survives.
        let q = TargetQuery::parse("year = 1995", &["make", "model"]).unwrap();
        let fp = f.plan(&q).unwrap();
        assert_eq!(fp.source.name, "dump");
        // Executing it returns the exact answer.
        let (fp2, out) = f.run(&q).unwrap();
        assert_eq!(fp2.source.name, "dump");
        let want = csqp_relation::ops::project(
            &csqp_relation::ops::select(fp2.source.relation(), Some(&q.cond)),
            &["make", "model"],
        )
        .unwrap();
        assert_eq!(out.rows, want);
    }

    #[test]
    fn all_infeasible_reports_federation_error() {
        let f = Federation::new().with_member(Arc::new(Source::new(
            datagen::cars(3, 50),
            templates::car_dealer(),
            CostParams::default(),
        )));
        let q = TargetQuery::parse("year = 1995", &["model"]).unwrap();
        match f.plan(&q) {
            Err(PlanError::NoFeasiblePlan { scheme, .. }) => {
                assert_eq!(scheme, "Federation")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_federation_is_infeasible() {
        let f = Federation::new();
        let q = TargetQuery::parse("a = 1", &["k"]).unwrap();
        assert!(f.plan(&q).is_err());
    }
}
