//! EPG — the Exhaustive Plan Generator of GenModular (Algorithm 5.1,
//! Figure 3).
//!
//! Each call generates the set of feasible plans for `SP(n, A, R)`,
//! represented compactly with the `Choice` operator (§5.3). `None` is the
//! paper's φ ("cannot be evaluated in any way"); combinations using φ are
//! eliminated by construction.
//!
//! **Documented deviation:** Figure 3 lists the download option (lines
//! 11–12) only under the `_`-node branch. IPG (Fig. 4) considers downloading
//! for *every* node, and GenCompact is proven to find the same best plans as
//! GenModular — so we read the placement as an exposition artifact and
//! generate the download plan for every node type. Experiment E7 (GenCompact
//! ≡ GenModular optimality) depends on this reading.

use crate::cache::CheckCache;
use crate::mark::Marked;
use csqp_expr::{CondTree, Connector};
use csqp_plan::{AttrSet, Plan};

/// Children cap for the subset enumeration of lines 6–8 (2^12 subsets).
pub const MAX_SUBSET_CHILDREN: usize = 12;

/// Mutable search context threaded through EPG calls.
#[derive(Debug)]
pub struct EpgContext<'a, 'b> {
    /// Memoizing Check wrapper.
    pub cache: &'a CheckCache<'b>,
    /// Number of EPG invocations.
    pub calls: usize,
    /// Set when the children cap truncated subset exploration.
    pub truncated: bool,
}

impl<'a, 'b> EpgContext<'a, 'b> {
    /// Fresh context.
    pub fn new(cache: &'a CheckCache<'b>) -> Self {
        EpgContext { cache, calls: 0, truncated: false }
    }
}

/// The conjunction of a set of marked children (`AND(Local)` in the paper);
/// a singleton collapses to the child's own condition.
fn and_of(children: &[&Marked]) -> CondTree {
    if children.len() == 1 {
        children[0].cond.clone()
    } else {
        CondTree::and(children.iter().map(|m| m.cond.clone()).collect())
    }
}

/// Attributes appearing in a set of children's conditions.
fn attrs_of(children: &[&Marked]) -> AttrSet {
    children.iter().flat_map(|m| m.cond.attrs()).collect()
}

/// Algorithm 5.1. Returns the feasible-plan space for `SP(n, A, R)`, or
/// `None` (φ).
pub fn epg(n: &Marked, a: &AttrSet, ctx: &mut EpgContext<'_, '_>) -> Option<Plan> {
    ctx.calls += 1;
    let mut plans: Vec<Plan> = Vec::new();

    // Lines 2–3: the pure plan.
    if n.export.covers(a) {
        plans.push(Plan::source(Some(n.cond.clone()), a.clone()));
    }

    match n.connector {
        Some(Connector::And) => {
            // Line 5: all children evaluated as separate source-side plans,
            // intersected at the mediator.
            let subs: Option<Vec<Plan>> = n.children.iter().map(|c| epg(c, a, ctx)).collect();
            if let Some(subs) = subs {
                plans.push(Plan::intersect(subs));
            }
            // Lines 6–8: a strict subset X of children is planned (each child
            // separately), the rest (Local) is evaluated at the mediator on
            // the intersection of X's results.
            let k = n.children.len();
            if k > MAX_SUBSET_CHILDREN {
                ctx.truncated = true;
            } else {
                let full: u32 = (1u32 << k) - 1;
                for mask in 1..full {
                    // X = set bits; Local = complement (non-empty since
                    // mask < full).
                    let x: Vec<&Marked> =
                        (0..k).filter(|i| mask & (1 << i) != 0).map(|i| &n.children[i]).collect();
                    let local: Vec<&Marked> =
                        (0..k).filter(|i| mask & (1 << i) == 0).map(|i| &n.children[i]).collect();
                    let local_cond = and_of(&local);
                    let mut widened = a.clone();
                    widened.extend(attrs_of(&local));
                    let subs: Option<Vec<Plan>> = x.iter().map(|c| epg(c, &widened, ctx)).collect();
                    if let Some(subs) = subs {
                        plans.push(Plan::local(Some(local_cond), a.clone(), Plan::intersect(subs)));
                    }
                }
            }
        }
        Some(Connector::Or) => {
            // Line 10: union of per-child plans. (No opportunity to evaluate
            // parts of a disjunction on the results of other parts.)
            let subs: Option<Vec<Plan>> = n.children.iter().map(|c| epg(c, a, ctx)).collect();
            if let Some(subs) = subs {
                plans.push(Plan::union(subs));
            }
        }
        None => {}
    }

    // Lines 11–12 (applied to every node; see module docs): download the
    // relevant portion of the source and evaluate Cond(n) at the mediator.
    let mut needed = a.clone();
    needed.extend(n.cond.attrs());
    if ctx.cache.check(None).covers(&needed) {
        plans.push(Plan::local(Some(n.cond.clone()), a.clone(), Plan::source(None, needed)));
    }

    // Lines 13–14.
    if plans.is_empty() {
        None
    } else {
        Some(Plan::choice(plans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mark::mark;
    use csqp_expr::parse::parse_condition;
    use csqp_plan::attrs;
    use csqp_ssdl::check::CompiledSource;
    use csqp_ssdl::templates;

    fn plan_space(desc: csqp_ssdl::SsdlDesc, cond: &str, a: &[&str]) -> Option<Plan> {
        let compiled = CompiledSource::new(desc);
        let cache = CheckCache::new(&compiled);
        let ct = parse_condition(cond).unwrap();
        let marked = mark(&ct, &cache);
        let mut ctx = EpgContext::new(&cache);
        epg(&marked, &attrs(a.iter().copied()), &mut ctx)
    }

    /// Example 5.2: from t1, EPG finds the intersect plan and the nested
    /// local-evaluation plan; from t0, nothing.
    #[test]
    fn example_5_2_t1_has_plans() {
        let space = plan_space(
            templates::car_dealer(),
            "(make = \"BMW\" ^ price < 40000) ^ (make = \"BMW\" ^ color = \"red\")",
            &["model", "year"],
        )
        .expect("t1 yields feasible plans");
        // The space must contain the intersect plan...
        let intersect = Plan::intersect(vec![
            Plan::source(
                Some(parse_condition("make = \"BMW\" ^ price < 40000").unwrap()),
                attrs(["model", "year"]),
            ),
            Plan::source(
                Some(parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap()),
                attrs(["model", "year"]),
            ),
        ]);
        // ...and the local-evaluation plan of Example 5.2:
        // SP(n2, A, SP(n1, A ∪ Attr(n2), R)).
        let local = Plan::local(
            Some(parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap()),
            attrs(["model", "year"]),
            Plan::source(
                Some(parse_condition("make = \"BMW\" ^ price < 40000").unwrap()),
                attrs(["color", "make", "model", "year"]),
            ),
        );
        let rendered = space.to_string();
        assert!(rendered.contains(&intersect.to_string()), "missing intersect in {rendered}");
        assert!(rendered.contains(&local.to_string()), "missing local plan in {rendered}");
    }

    #[test]
    fn example_5_2_t0_is_phi() {
        assert!(plan_space(
            templates::car_dealer(),
            "price < 40000 ^ color = \"red\" ^ make = \"BMW\"",
            &["model", "year"],
        )
        .is_none());
    }

    #[test]
    fn or_node_unions_children() {
        // Bookstore: per-author plans unioned (Example 1.1's good plan).
        let space = plan_space(
            templates::bookstore(),
            "(author = \"Sigmund Freud\" ^ title contains \"dreams\") _ \
             (author = \"Carl Jung\" ^ title contains \"dreams\")",
            &["isbn", "title"],
        )
        .expect("the union plan is feasible");
        let rendered = space.to_string();
        assert!(rendered.contains("∪"), "expected a union plan in {rendered}");
    }

    #[test]
    fn unsupported_disjunct_kills_union() {
        // Second disjunct unsupported (publisher is not a form field) and no
        // download: φ.
        assert!(plan_space(
            templates::bookstore(),
            "author = \"Sigmund Freud\" _ publisher = \"Norton\"",
            &["isbn"],
        )
        .is_none());
    }

    #[test]
    fn download_plan_generated_when_true_supported() {
        let space = plan_space(
            templates::download_only(
                "dl",
                &[("a", csqp_expr::ValueType::Int), ("b", csqp_expr::ValueType::Int)],
            ),
            "a = 1 ^ b = 2",
            &["a"],
        )
        .expect("download plan exists");
        let rendered = space.to_string();
        assert!(rendered.contains("SP(true"), "{rendered}");
    }

    #[test]
    fn pure_plan_for_fully_capable_source() {
        let space = plan_space(
            templates::full_relational(
                "full",
                &[("a", csqp_expr::ValueType::Int), ("b", csqp_expr::ValueType::Int)],
            ),
            "a = 1 ^ (a = 2 _ b = 3)",
            &["a", "b"],
        )
        .expect("everything feasible");
        // Space contains the pure whole-condition pushdown.
        let rendered = space.to_string();
        assert!(rendered.contains("SP(a = 1 ^ (a = 2 _ b = 3), {a, b}, R)"), "{rendered}");
        // And it is large: line 5 + subset plans + download all present.
        assert!(space.n_alternatives() >= 4, "got {}", space.n_alternatives());
    }

    #[test]
    fn subset_local_evaluation_widens_attrs() {
        // car dealer, target (n1 ^ color-atom): color atom alone unsupported;
        // X = {n1}, Local = {color=red} needs color exported by n1's form.
        let space = plan_space(
            templates::car_dealer(),
            "(make = \"BMW\" ^ price < 40000) ^ color = \"red\"",
            &["model"],
        )
        .expect("local evaluation of the color atom is feasible");
        let rendered = space.to_string();
        assert!(
            rendered.contains("SP(color = \"red\", {model}, SP(make = \"BMW\" ^ price < 40000, {color, model}, R))"),
            "{rendered}"
        );
    }

    #[test]
    fn counts_calls() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let ct = parse_condition(
            "(make = \"BMW\" ^ price < 40000) ^ (make = \"BMW\" ^ color = \"red\")",
        )
        .unwrap();
        let marked = mark(&ct, &cache);
        let mut ctx = EpgContext::new(&cache);
        let _ = epg(&marked, &attrs(["model"]), &mut ctx);
        // Root + recursive calls on children (each visited multiple times
        // with different attribute sets).
        assert!(ctx.calls >= 3, "calls = {}", ctx.calls);
        assert!(!ctx.truncated);
    }
}
