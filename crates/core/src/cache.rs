//! A memoizing wrapper around `Check(C, R)`.
//!
//! The mark module calls `Check` on *every* node of *every* rewritten CT
//! (§5.2), and IPG calls it on every child subset; identical conditions
//! recur constantly across rewritings. The cache keys on the linearized
//! token stream, so structurally identical conditions share one parse.

use csqp_expr::CondTree;
use csqp_ssdl::check::{CompiledSource, ExportSet};
use csqp_ssdl::linearize::linearize;
use csqp_ssdl::token::CondToken;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A memoizing `Check` front-end with call counters.
#[derive(Debug)]
pub struct CheckCache<'a> {
    source: &'a CompiledSource,
    map: RefCell<HashMap<Vec<CondToken>, ExportSet>>,
    calls: Cell<usize>,
    parses: Cell<usize>,
}

impl<'a> CheckCache<'a> {
    /// Wraps a compiled source.
    pub fn new(source: &'a CompiledSource) -> Self {
        CheckCache {
            source,
            map: RefCell::new(HashMap::new()),
            calls: Cell::new(0),
            parses: Cell::new(0),
        }
    }

    /// The wrapped source.
    pub fn source(&self) -> &'a CompiledSource {
        self.source
    }

    /// `Check(C, R)` (memoized). `None` is the trivially-true condition.
    pub fn check(&self, cond: Option<&CondTree>) -> ExportSet {
        self.calls.set(self.calls.get() + 1);
        let toks = linearize(cond);
        if let Some(hit) = self.map.borrow().get(&toks) {
            return hit.clone();
        }
        self.parses.set(self.parses.get() + 1);
        let result = self.source.check_tokens(&toks);
        self.map.borrow_mut().insert(toks, result.clone());
        result
    }

    /// Is `SP(C, A, R)` supported?
    pub fn supports<S: Ord + AsRef<str>>(
        &self,
        cond: Option<&CondTree>,
        attrs: &std::collections::BTreeSet<S>,
    ) -> bool {
        self.check(cond).covers(attrs)
    }

    /// Total `check` calls (the paper's "Check invocations" measure).
    pub fn calls(&self) -> usize {
        self.calls.get()
    }

    /// Cache misses (actual parses).
    pub fn parses(&self) -> usize {
        self.parses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_ssdl::templates;
    use std::collections::BTreeSet;

    #[test]
    fn caches_identical_conditions() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let e1 = cache.check(Some(&c));
        let e2 = cache.check(Some(&c));
        assert_eq!(e1, e2);
        assert_eq!(cache.calls(), 2);
        assert_eq!(cache.parses(), 1);
        // A different condition misses.
        let c2 = parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap();
        cache.check(Some(&c2));
        assert_eq!(cache.parses(), 2);
        // The true condition caches too.
        cache.check(None);
        cache.check(None);
        assert_eq!(cache.parses(), 3);
    }

    #[test]
    fn supports_delegates() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let attrs: BTreeSet<String> = ["model".to_string()].into_iter().collect();
        assert!(cache.supports(Some(&c), &attrs));
        let bad: BTreeSet<String> = ["price".to_string()].into_iter().collect();
        assert!(!cache.supports(Some(&c), &bad));
    }
}
