//! A memoizing wrapper around `Check(C, R)`.
//!
//! The mark module calls `Check` on *every* node of *every* rewritten CT
//! (§5.2), and IPG calls it on every child subset; identical conditions
//! recur constantly across rewritings. The cache keys on a 128-bit
//! fingerprint of the linearized token stream, computed directly from the
//! condition tree — a hit costs one tree walk with no token vector, string
//! clone, or re-hash of an owned key (see DESIGN.md, "Implementation notes:
//! interning & bitsets").

use csqp_expr::{CondTree, Connector};
use csqp_ssdl::check::{CompiledSource, ExportSet, SharedCheckCache};
use csqp_ssdl::linearize::{
    cond_fingerprint, linearize, linearize_masked, masked_fingerprint, Fingerprint,
    FingerprintHasher,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

type FpMap = HashMap<Fingerprint, ExportSet, BuildHasherDefault<FingerprintHasher>>;

/// A memoizing `Check` front-end with call counters.
///
/// Optionally layered over a source's persistent [`SharedCheckCache`]: a
/// local miss then probes the shared map before parsing, and a parse
/// backfills both — so repeated plans against the same source (the
/// federation's per-member feasibility probes) stop re-parsing the grammar.
#[derive(Debug)]
pub struct CheckCache<'a> {
    source: &'a CompiledSource,
    shared: Option<&'a SharedCheckCache>,
    map: RefCell<FpMap>,
    calls: Cell<usize>,
    parses: Cell<usize>,
}

impl<'a> CheckCache<'a> {
    /// Wraps a compiled source (plan-local memoization only).
    pub fn new(source: &'a CompiledSource) -> Self {
        CheckCache {
            source,
            shared: None,
            map: RefCell::new(FpMap::default()),
            calls: Cell::new(0),
            parses: Cell::new(0),
        }
    }

    /// Wraps a compiled source with a persistent shared layer underneath.
    pub fn with_shared(source: &'a CompiledSource, shared: &'a SharedCheckCache) -> Self {
        CheckCache { shared: Some(shared), ..CheckCache::new(source) }
    }

    /// The wrapped source.
    pub fn source(&self) -> &'a CompiledSource {
        self.source
    }

    fn lookup_or_parse(
        &self,
        fp: Fingerprint,
        tokens: impl FnOnce() -> Vec<csqp_ssdl::token::CondToken>,
    ) -> ExportSet {
        self.calls.set(self.calls.get() + 1);
        if let Some(hit) = self.map.borrow().get(&fp) {
            return hit.clone();
        }
        if let Some(hit) = self.shared.and_then(|s| s.get(fp)) {
            self.map.borrow_mut().insert(fp, hit.clone());
            return hit;
        }
        self.parses.set(self.parses.get() + 1);
        let result = self.source.check_tokens(&tokens());
        if let Some(shared) = self.shared {
            shared.insert(fp, result.clone());
        }
        self.map.borrow_mut().insert(fp, result.clone());
        result
    }

    /// `Check(C, R)` (memoized). `None` is the trivially-true condition.
    pub fn check(&self, cond: Option<&CondTree>) -> ExportSet {
        self.lookup_or_parse(cond_fingerprint(cond), || linearize(cond))
    }

    /// `Check` of the sub-condition selecting `mask` children of an And/Or
    /// node, memoized under the same keys as [`CheckCache::check`] — on a
    /// hit, the sub-condition tree is never built.
    pub fn check_masked(&self, conn: Connector, children: &[CondTree], mask: u64) -> ExportSet {
        self.lookup_or_parse(masked_fingerprint(conn, children, mask), || {
            linearize_masked(conn, children, mask)
        })
    }

    /// Is `SP(C, A, R)` supported?
    pub fn supports<S: Ord + AsRef<str>>(
        &self,
        cond: Option<&CondTree>,
        attrs: &std::collections::BTreeSet<S>,
    ) -> bool {
        self.check(cond).covers(attrs)
    }

    /// Total `check` calls (the paper's "Check invocations" measure).
    pub fn calls(&self) -> usize {
        self.calls.get()
    }

    /// Cache misses (actual parses).
    pub fn parses(&self) -> usize {
        self.parses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_ssdl::templates;
    use std::collections::BTreeSet;

    #[test]
    fn caches_identical_conditions() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let e1 = cache.check(Some(&c));
        let e2 = cache.check(Some(&c));
        assert_eq!(e1, e2);
        assert_eq!(cache.calls(), 2);
        assert_eq!(cache.parses(), 1);
        // A different condition misses.
        let c2 = parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap();
        cache.check(Some(&c2));
        assert_eq!(cache.parses(), 2);
        // The true condition caches too.
        cache.check(None);
        cache.check(None);
        assert_eq!(cache.parses(), 3);
    }

    #[test]
    fn masked_checks_share_the_cache_with_plain_checks() {
        use csqp_expr::Connector;
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let children = c.children().to_vec();
        // Full mask linearizes identically to the whole condition.
        let full = cache.check_masked(Connector::And, &children, 0b11);
        assert_eq!(cache.parses(), 1);
        let whole = cache.check(Some(&c));
        assert_eq!(cache.parses(), 1, "full-mask entry is a hit for the whole tree");
        assert_eq!(full, whole);
        // Singleton mask collapses to the bare child.
        let single = cache.check_masked(Connector::And, &children, 0b01);
        assert_eq!(single, cache.check(Some(&children[0])));
        assert_eq!(cache.parses(), 2);
    }

    #[test]
    fn shared_layer_survives_across_plan_caches() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let shared = SharedCheckCache::new();
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();

        let first = CheckCache::with_shared(&compiled, &shared);
        let e1 = first.check(Some(&c));
        assert_eq!(first.parses(), 1);
        assert_eq!(shared.len(), 1, "parse backfills the shared layer");

        // A fresh per-plan cache (a new planning call) hits shared instead
        // of re-parsing; the hit still counts as a call, not a parse.
        let second = CheckCache::with_shared(&compiled, &shared);
        let e2 = second.check(Some(&c));
        assert_eq!(e1, e2);
        assert_eq!(second.calls(), 1);
        assert_eq!(second.parses(), 0, "shared hit skips the Earley parse");
        // And the local backfill makes the next probe lock-free.
        second.check(Some(&c));
        assert_eq!(second.parses(), 0);
    }

    #[test]
    fn supports_delegates() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let attrs: BTreeSet<String> = ["model".to_string()].into_iter().collect();
        assert!(cache.supports(Some(&c), &attrs));
        let bad: BTreeSet<String> = ["price".to_string()].into_iter().collect();
        assert!(!cache.supports(Some(&c), &bad));
    }
}
