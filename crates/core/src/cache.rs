//! A memoizing wrapper around `Check(C, R)`.
//!
//! The mark module calls `Check` on *every* node of *every* rewritten CT
//! (§5.2), and IPG calls it on every child subset; identical conditions
//! recur constantly across rewritings. The cache keys on a 128-bit
//! fingerprint of the linearized token stream, computed directly from the
//! condition tree — a hit costs one tree walk with no token vector, string
//! clone, or re-hash of an owned key (see DESIGN.md, "Implementation notes:
//! interning & bitsets").

use csqp_expr::{CondTree, Connector};
use csqp_ssdl::check::{CompiledSource, ExportSet};
use csqp_ssdl::linearize::{
    cond_fingerprint, linearize, linearize_masked, masked_fingerprint, Fingerprint,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Keys are already uniform 128-bit fingerprints: fold to 64 bits and skip
/// the default SipHash pass entirely.
#[derive(Default)]
struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint keys hash via write_u128");
    }

    fn write_u128(&mut self, x: u128) {
        self.0 = (x as u64) ^ ((x >> 64) as u64);
    }
}

type FpMap = HashMap<Fingerprint, ExportSet, BuildHasherDefault<FingerprintHasher>>;

/// A memoizing `Check` front-end with call counters.
#[derive(Debug)]
pub struct CheckCache<'a> {
    source: &'a CompiledSource,
    map: RefCell<FpMap>,
    calls: Cell<usize>,
    parses: Cell<usize>,
}

impl<'a> CheckCache<'a> {
    /// Wraps a compiled source.
    pub fn new(source: &'a CompiledSource) -> Self {
        CheckCache {
            source,
            map: RefCell::new(FpMap::default()),
            calls: Cell::new(0),
            parses: Cell::new(0),
        }
    }

    /// The wrapped source.
    pub fn source(&self) -> &'a CompiledSource {
        self.source
    }

    fn lookup_or_parse(
        &self,
        fp: Fingerprint,
        tokens: impl FnOnce() -> Vec<csqp_ssdl::token::CondToken>,
    ) -> ExportSet {
        self.calls.set(self.calls.get() + 1);
        if let Some(hit) = self.map.borrow().get(&fp) {
            return hit.clone();
        }
        self.parses.set(self.parses.get() + 1);
        let result = self.source.check_tokens(&tokens());
        self.map.borrow_mut().insert(fp, result.clone());
        result
    }

    /// `Check(C, R)` (memoized). `None` is the trivially-true condition.
    pub fn check(&self, cond: Option<&CondTree>) -> ExportSet {
        self.lookup_or_parse(cond_fingerprint(cond), || linearize(cond))
    }

    /// `Check` of the sub-condition selecting `mask` children of an And/Or
    /// node, memoized under the same keys as [`CheckCache::check`] — on a
    /// hit, the sub-condition tree is never built.
    pub fn check_masked(&self, conn: Connector, children: &[CondTree], mask: u64) -> ExportSet {
        self.lookup_or_parse(masked_fingerprint(conn, children, mask), || {
            linearize_masked(conn, children, mask)
        })
    }

    /// Is `SP(C, A, R)` supported?
    pub fn supports<S: Ord + AsRef<str>>(
        &self,
        cond: Option<&CondTree>,
        attrs: &std::collections::BTreeSet<S>,
    ) -> bool {
        self.check(cond).covers(attrs)
    }

    /// Total `check` calls (the paper's "Check invocations" measure).
    pub fn calls(&self) -> usize {
        self.calls.get()
    }

    /// Cache misses (actual parses).
    pub fn parses(&self) -> usize {
        self.parses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_ssdl::templates;
    use std::collections::BTreeSet;

    #[test]
    fn caches_identical_conditions() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let e1 = cache.check(Some(&c));
        let e2 = cache.check(Some(&c));
        assert_eq!(e1, e2);
        assert_eq!(cache.calls(), 2);
        assert_eq!(cache.parses(), 1);
        // A different condition misses.
        let c2 = parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap();
        cache.check(Some(&c2));
        assert_eq!(cache.parses(), 2);
        // The true condition caches too.
        cache.check(None);
        cache.check(None);
        assert_eq!(cache.parses(), 3);
    }

    #[test]
    fn masked_checks_share_the_cache_with_plain_checks() {
        use csqp_expr::Connector;
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let children = c.children().to_vec();
        // Full mask linearizes identically to the whole condition.
        let full = cache.check_masked(Connector::And, &children, 0b11);
        assert_eq!(cache.parses(), 1);
        let whole = cache.check(Some(&c));
        assert_eq!(cache.parses(), 1, "full-mask entry is a hit for the whole tree");
        assert_eq!(full, whole);
        // Singleton mask collapses to the bare child.
        let single = cache.check_masked(Connector::And, &children, 0b01);
        assert_eq!(single, cache.check(Some(&children[0])));
        assert_eq!(cache.parses(), 2);
    }

    #[test]
    fn supports_delegates() {
        let compiled = CompiledSource::new(templates::car_dealer());
        let cache = CheckCache::new(&compiled);
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let attrs: BTreeSet<String> = ["model".to_string()].into_iter().collect();
        assert!(cache.supports(Some(&c), &attrs));
        let bad: BTreeSet<String> = ["price".to_string()].into_iter().collect();
        assert!(!cache.supports(Some(&c), &bad));
    }
}
