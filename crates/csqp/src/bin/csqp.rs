//! `csqp` — capability-sensitive query planning from the command line.
//!
//! Point it at an SSDL description and a CSV file, give it a target query,
//! and it plans (and optionally runs) the query capability-sensitively:
//!
//! ```sh
//! csqp --ssdl dealer.ssdl --csv cars.csv --key vin \
//!      --query 'price < 40000 ^ make = "BMW"' --attrs model,year --run
//! ```
//!
//! With `--scheme` you can compare the baselines the paper criticizes, and
//! `--explain` prints the plan tree and search statistics.

use csqp::core::mediator::{Mediator, Scheme};
use csqp::core::types::TargetQuery;
use csqp::plan::explain::explain;
use csqp::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    ssdl_path: String,
    csv_path: String,
    key: Vec<String>,
    query: String,
    attrs: Vec<String>,
    scheme: Scheme,
    run: bool,
    explain: bool,
    k1: f64,
    k2: f64,
}

const USAGE: &str = "\
usage: csqp --ssdl <file> --csv <file> --query <condition> --attrs <a,b,c>
            [--key <col[,col]>] [--scheme <name>] [--run] [--explain]
            [--k1 <f64>] [--k2 <f64>]

  --ssdl     SSDL source description (see README for the syntax)
  --csv      data file; header row names the columns, types are inferred
  --query    target condition, e.g. 'price < 40000 ^ make = \"BMW\"'
  --attrs    projected attributes, comma-separated
  --key      key column(s) of the data (recommended: makes ∩-plans exact)
  --scheme   gencompact (default) | genmodular | cnf | dnf | disco | naive
  --run      execute the plan and print the rows
  --explain  print the plan tree and planner statistics
  --k1/--k2  cost-model constants (default 50 / 1)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ssdl_path: String::new(),
        csv_path: String::new(),
        key: Vec::new(),
        query: String::new(),
        attrs: Vec::new(),
        scheme: Scheme::GenCompact,
        run: false,
        explain: false,
        k1: 50.0,
        k2: 1.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--ssdl" => args.ssdl_path = value(&mut i)?,
            "--csv" => args.csv_path = value(&mut i)?,
            "--query" => args.query = value(&mut i)?,
            "--attrs" => {
                args.attrs = value(&mut i)?.split(',').map(|s| s.trim().to_string()).collect()
            }
            "--key" => args.key = value(&mut i)?.split(',').map(|s| s.trim().to_string()).collect(),
            "--scheme" => {
                args.scheme = match value(&mut i)?.to_ascii_lowercase().as_str() {
                    "gencompact" => Scheme::GenCompact,
                    "genmodular" => Scheme::GenModular,
                    "cnf" | "garlic" => Scheme::Cnf,
                    "dnf" => Scheme::Dnf,
                    "disco" => Scheme::Disco,
                    "naive" | "naivepush" => Scheme::NaivePush,
                    other => return Err(format!("unknown scheme {other:?}")),
                }
            }
            "--run" => args.run = true,
            "--explain" => args.explain = true,
            "--k1" => args.k1 = value(&mut i)?.parse().map_err(|e| format!("--k1: {e}"))?,
            "--k2" => args.k2 = value(&mut i)?.parse().map_err(|e| format!("--k2: {e}"))?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    for (flag, val) in
        [("--ssdl", &args.ssdl_path), ("--csv", &args.csv_path), ("--query", &args.query)]
    {
        if val.is_empty() {
            return Err(format!("{flag} is required"));
        }
    }
    if args.attrs.is_empty() {
        return Err("--attrs is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    // Load inputs.
    let ssdl_text = match std::fs::read_to_string(&args.ssdl_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.ssdl_path);
            return ExitCode::FAILURE;
        }
    };
    let desc = match parse_ssdl(&ssdl_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {}: {e}", args.ssdl_path);
            return ExitCode::FAILURE;
        }
    };
    let csv_text = match std::fs::read_to_string(&args.csv_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.csv_path);
            return ExitCode::FAILURE;
        }
    };
    let key_refs: Vec<&str> = args.key.iter().map(String::as_str).collect();
    let relation = match csqp::relation::csv::load_csv(&desc.name.clone(), &csv_text, &key_refs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", args.csv_path);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {} rows into {} ({} supported query forms)",
        relation.len(),
        relation.schema(),
        desc.exports.len()
    );

    let cost = match std::panic::catch_unwind(|| CostParams::new(args.k1, args.k2)) {
        Ok(c) => c,
        Err(_) => {
            eprintln!("error: cost constants must be finite and non-negative");
            return ExitCode::FAILURE;
        }
    };
    let source = Arc::new(Source::new(relation, desc, cost));

    let attr_refs: Vec<&str> = args.attrs.iter().map(String::as_str).collect();
    let query = match TargetQuery::parse(&args.query, &attr_refs) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: --query: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mediator = Mediator::new(source.clone()).with_scheme(args.scheme);
    let planned = match mediator.plan(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            // Show what the source CAN do, to help the user reformulate.
            eprintln!("\nthe source supports these query forms:");
            for rule in &source.gate_view().desc.rules {
                eprintln!("  {rule}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!("plan ({}, est. cost {:.1}):", args.scheme.name(), planned.est_cost);
    println!("  {}", planned.plan);
    if args.explain {
        print!("\nplan tree:\n{}", explain(&planned.plan));
        let r = planned.report;
        println!(
            "planner stats: {} CTs, {} generator calls, {} Check calls, max Q {}, {:?}{}",
            r.cts_processed,
            r.generator_calls,
            r.checks,
            r.max_q,
            r.elapsed,
            if r.truncated { " (budget-truncated)" } else { "" }
        );
    }

    if args.run {
        match mediator.run(&query) {
            Ok(out) => {
                println!(
                    "\n{} rows ({} source queries, {} tuples shipped, measured cost {:.1}):",
                    out.rows.len(),
                    out.meter.queries,
                    out.meter.tuples_shipped,
                    out.measured_cost
                );
                for row in out.rows.rows() {
                    println!("  {row}");
                }
            }
            Err(e) => {
                eprintln!("execution error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
