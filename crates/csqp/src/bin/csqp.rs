//! `csqp` — capability-sensitive query planning from the command line.
//!
//! Point it at an SSDL description and a CSV file, give it a target query,
//! and it plans (and optionally runs) the query capability-sensitively:
//!
//! ```sh
//! csqp --ssdl dealer.ssdl --csv cars.csv --key vin \
//!      --query 'price < 40000 ^ make = "BMW"' --attrs model,year --run
//! ```
//!
//! With `--scheme` you can compare the baselines the paper criticizes, and
//! `--explain` prints the plan tree and search statistics.

use csqp::core::federation::{CircuitBreakerConfig, Federation, MemberEvent};
use csqp::core::mediator::{Mediator, MediatorError, Scheme};
use csqp::core::types::TargetQuery;
use csqp::plan::analyze::explain_analyze;
use csqp::plan::exec::RetryPolicy;
use csqp::plan::exec_stream::{explain_analyze_streamed, StreamConfig};
use csqp::plan::explain::explain;
use csqp::prelude::*;
use csqp::serve::{ServeConfig, Server};
use csqp_obs::{audit, names, FlightRecorder, Obs};
use csqp_source::FaultProfile;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum ExplainMode {
    Off,
    /// Plan tree + planner statistics (EXPLAIN / EXPLAIN ANALYZE with --run).
    Plan,
    /// Flight-recorder provenance: the decision trail and the eliminating
    /// rule for every losing candidate.
    Why,
    /// Unified per-query profile: one JSON document with the span tree,
    /// metrics delta, flight trail and est-vs-observed cardinalities.
    Profile,
}

struct Args {
    ssdl_paths: Vec<String>,
    csv_paths: Vec<String>,
    key: Vec<String>,
    query: String,
    attrs: Vec<String>,
    scheme: Scheme,
    run: bool,
    limit: Option<u64>,
    explain: ExplainMode,
    k1: f64,
    k2: f64,
    chaos: Option<u64>,
    trace: bool,
    metrics_json: bool,
    metrics_prom: bool,
    serve: bool,
    addr: String,
    slow_ms: u64,
    adaptive: bool,
    journal: Option<String>,
    window_queries: u64,
    slo_latency_ms: u64,
    slo_error_budget: f64,
    workers: usize,
    max_inflight: u64,
    tenant_rate: f64,
    tenant_burst: f64,
}

const USAGE: &str = "\
usage: csqp --ssdl <file> --csv <file> --query <condition> --attrs <a,b,c>
            [--key <col[,col]>] [--scheme <name>] [--run] [--limit <n>]
            [--explain[=why|=profile]] [--k1 <f64>] [--k2 <f64>] [--trace]
            [--metrics json|prom]
       csqp serve --ssdl <file> --csv <file> [--key <col[,col]>]
            [--addr <host:port>] [--scheme <name>] [--slow-ms <n>]
            [--k1 <f64>] [--k2 <f64>] [--no-adaptive] [--journal <path>]
            [--window-queries <n>] [--slo-latency-ms <n>]
            [--slo-error-budget <f64>] [--workers <n>] [--max-inflight <n>]
            [--tenant-rate <qps>] [--tenant-burst <n>]
       csqp audit <journal> [<journal2>] [--diff]
       csqp --chaos <seed> [--trace] [--metrics json|prom]

  --ssdl     SSDL source description (see README for the syntax); repeat
             --ssdl/--csv pairs to federate: queries route through the
             compiled capability index and the cheapest feasible member wins
  --csv      data file; header row names the columns, types are inferred
  --query    target condition, e.g. 'price < 40000 ^ make = \"BMW\"'
  --attrs    projected attributes, comma-separated
  --key      key column(s) of the data (recommended: makes ∩-plans exact)
  --scheme   gencompact (default) | genmodular | cnf | dnf | disco | naive
  --run      execute the plan and print the rows; with --explain, prints an
             EXPLAIN ANALYZE tree (estimated vs observed rows and cost per
             source query) plus cost-model drift warnings
  --limit    with --run: stream the execution and stop after <n> answer
             rows — the pipeline terminates early, so sources stop
             shipping (not just a display truncation)
  --explain  print the plan tree and planner statistics; `--explain=why`
             replays the flight recorder instead: the full decision trail
             (PR1/PR2/PR3 prunes, MCSC covers, ranking) and the eliminating
             rule for every losing candidate; `--explain=profile` emits the
             unified query profile as JSON (span tree, metrics delta,
             flight trail, est-vs-observed cardinalities)
  --k1/--k2  cost-model constants (default 50 / 1)
  --trace    print the deterministic virtual-tick trace to stderr
  --metrics  print a metrics snapshot on stdout: `json` or `prom`
             (Prometheus text exposition)
  --chaos    standalone demo: run a seeded fault storm against a federation
             of unreliable car-data mirrors and print the failover trace
  --no-adaptive  serve mode: disable mid-query adaptive re-planning (served
             pipelines then never splice; the trailer reports `0 replans`)
  --journal  serve mode: append one flat JSONL audit record per completed
             query to <path> (size-rotated to <path>.1); analyze later with
             `csqp audit`
  --window-queries   serve mode: close a telemetry window every <n>
             completed queries (default 4)
  --slo-latency-ms / --slo-error-budget   serve mode: the latency objective
             and breach budget behind the /status burn-rate gauges
             (default 100 ms / 0.01)
  --workers  serve mode: worker threads serving connections (default 4);
             the accept loop feeds them through a bounded queue
  --max-inflight     serve mode: global concurrent-query ceiling — queries
             beyond it shed with a fast 429 before planning (default 64;
             0 disables)
  --tenant-rate / --tenant-burst   serve mode: per-tenant token-bucket
             admission (queries/sec refill + burst capacity; rate 0
             disables quotas). Tenants identify via the `tenant=` query
             param or the `X-Tenant` header; anonymous traffic pools
             under `anon`

serve mode keeps the federation warm behind a tiny keep-alive HTTP
listener (worker-pool accept loop, per-tenant admission, a federation-wide
prepared-plan cache) with /healthz, /metrics (Prometheus; `?exemplars=1`
adds query-id exemplars), /query, /flightrecorder (EXPLAIN WHY), /slowlog,
/profile (worst retained query profiles), /profile/<id>, /spans, /status
(health scoreboard; `?format=json`),
/timeseries?metric=<name>[&windows=<n>], and /shutdown (drains in-flight
connections); see docs/SERVING.md and docs/OBSERVABILITY.md.

`csqp audit` summarizes a serve-mode journal; with two journals and --diff
it reports the latency shift, error-rate shift, and plan-scheme churn by
condition fingerprint between the two runs.";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ssdl_paths: Vec::new(),
        csv_paths: Vec::new(),
        key: Vec::new(),
        query: String::new(),
        attrs: Vec::new(),
        scheme: Scheme::GenCompact,
        run: false,
        limit: None,
        explain: ExplainMode::Off,
        k1: 50.0,
        k2: 1.0,
        chaos: None,
        trace: false,
        metrics_json: false,
        metrics_prom: false,
        serve: false,
        addr: "127.0.0.1:0".to_string(),
        slow_ms: 100,
        adaptive: true,
        journal: None,
        window_queries: 4,
        slo_latency_ms: 100,
        slo_error_budget: 0.01,
        workers: 4,
        max_inflight: 64,
        tenant_rate: 0.0,
        tenant_burst: 8.0,
    };
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        args.serve = true;
        argv.remove(0);
    }
    if argv.first().map(String::as_str) == Some("audit") {
        // `csqp audit` never reaches the planner; handled entirely here.
        std::process::exit(match audit_main(&argv[1..]) {
            Ok(()) => 0,
            Err(msg) => {
                if msg.is_empty() {
                    eprintln!("{USAGE}");
                } else {
                    eprintln!("error: audit: {msg}");
                }
                1
            }
        });
    }
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--ssdl" => args.ssdl_paths.push(value(&mut i)?),
            "--csv" => args.csv_paths.push(value(&mut i)?),
            "--query" => args.query = value(&mut i)?,
            "--attrs" => {
                args.attrs = value(&mut i)?.split(',').map(|s| s.trim().to_string()).collect()
            }
            "--key" => args.key = value(&mut i)?.split(',').map(|s| s.trim().to_string()).collect(),
            "--scheme" => {
                args.scheme = match value(&mut i)?.to_ascii_lowercase().as_str() {
                    "gencompact" => Scheme::GenCompact,
                    "genmodular" => Scheme::GenModular,
                    "cnf" | "garlic" => Scheme::Cnf,
                    "dnf" => Scheme::Dnf,
                    "disco" => Scheme::Disco,
                    "naive" | "naivepush" => Scheme::NaivePush,
                    other => return Err(format!("unknown scheme {other:?}")),
                }
            }
            "--run" => args.run = true,
            "--limit" => {
                args.limit = Some(value(&mut i)?.parse().map_err(|e| format!("--limit: {e}"))?)
            }
            "--explain" | "--explain=plan" => args.explain = ExplainMode::Plan,
            "--explain=why" => args.explain = ExplainMode::Why,
            "--explain=profile" => args.explain = ExplainMode::Profile,
            "--k1" => args.k1 = value(&mut i)?.parse().map_err(|e| format!("--k1: {e}"))?,
            "--k2" => args.k2 = value(&mut i)?.parse().map_err(|e| format!("--k2: {e}"))?,
            "--chaos" => {
                args.chaos = Some(value(&mut i)?.parse().map_err(|e| format!("--chaos: {e}"))?)
            }
            "--trace" => args.trace = true,
            "--metrics" => match value(&mut i)?.as_str() {
                "json" => args.metrics_json = true,
                "prom" | "prometheus" => args.metrics_prom = true,
                other => {
                    return Err(format!("--metrics: unknown format {other:?} (try json or prom)"))
                }
            },
            "--adaptive" => args.adaptive = true,
            "--no-adaptive" => args.adaptive = false,
            "--addr" => args.addr = value(&mut i)?,
            "--slow-ms" => {
                args.slow_ms = value(&mut i)?.parse().map_err(|e| format!("--slow-ms: {e}"))?
            }
            "--journal" => args.journal = Some(value(&mut i)?),
            "--window-queries" => {
                args.window_queries =
                    value(&mut i)?.parse().map_err(|e| format!("--window-queries: {e}"))?
            }
            "--slo-latency-ms" => {
                args.slo_latency_ms =
                    value(&mut i)?.parse().map_err(|e| format!("--slo-latency-ms: {e}"))?
            }
            "--slo-error-budget" => {
                args.slo_error_budget =
                    value(&mut i)?.parse().map_err(|e| format!("--slo-error-budget: {e}"))?
            }
            "--workers" => {
                args.workers = value(&mut i)?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--max-inflight" => {
                args.max_inflight =
                    value(&mut i)?.parse().map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--tenant-rate" => {
                args.tenant_rate =
                    value(&mut i)?.parse().map_err(|e| format!("--tenant-rate: {e}"))?
            }
            "--tenant-burst" => {
                args.tenant_burst =
                    value(&mut i)?.parse().map_err(|e| format!("--tenant-burst: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    // --chaos is a self-contained demo; the planning flags don't apply.
    // serve mode takes queries over the wire, not on the command line.
    if args.chaos.is_none() {
        for (flag, val) in [("--ssdl", &args.ssdl_paths), ("--csv", &args.csv_paths)] {
            if val.is_empty() {
                return Err(format!("{flag} is required"));
            }
        }
        if args.ssdl_paths.len() != args.csv_paths.len() {
            return Err(format!(
                "--ssdl and --csv come in pairs: got {} descriptions for {} data files",
                args.ssdl_paths.len(),
                args.csv_paths.len()
            ));
        }
        if !args.serve {
            if args.query.is_empty() {
                return Err("--query is required".into());
            }
            if args.attrs.is_empty() {
                return Err("--attrs is required".into());
            }
            if args.limit.is_some() && !args.run {
                return Err("--limit only applies with --run".into());
            }
        }
    }
    Ok(args)
}

/// `csqp audit <journal> [<journal2>] [--diff]`: summarize one serve-mode
/// audit journal, or compare two (latency shift, error-rate shift, and
/// plan-scheme churn by condition fingerprint).
fn audit_main(argv: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut diff = false;
    for arg in argv {
        match arg.as_str() {
            "--diff" => diff = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown argument {other:?}")),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return Err("a journal path is required".into());
    }
    if paths.len() > 2 {
        return Err(format!("at most two journals, got {}", paths.len()));
    }
    if diff && paths.len() != 2 {
        return Err("--diff needs exactly two journals".into());
    }
    let mut loaded = Vec::with_capacity(paths.len());
    for path in &paths {
        let (records, errors) = audit::read_journal(std::path::Path::new(path))?;
        for e in &errors {
            eprintln!("warning: {path}: {e}");
        }
        loaded.push(audit::summarize(&records));
    }
    if diff {
        print!("{}", audit::render_diff(&loaded[0], &loaded[1]));
    } else {
        for (path, summary) in paths.iter().zip(&loaded) {
            print!("{}", audit::render_summary(path, summary));
        }
    }
    Ok(())
}

/// `csqp --chaos <seed>`: a seeded fault storm against a federation of three
/// unreliable mirrors of the same car data, showing retries, failovers, and
/// circuit-breaker quarantine. Fully deterministic per seed.
fn chaos_demo(seed: u64, trace: bool, metrics_json: bool, metrics_prom: bool) -> ExitCode {
    let data = csqp::relation::datagen::cars(3, 400);
    let dealer = Arc::new(
        Source::new(data.clone(), csqp::ssdl::templates::car_dealer(), CostParams::new(10.0, 1.0))
            .with_fault_profile(FaultProfile::storm(seed, 0.8)),
    );
    let dump = Arc::new(
        Source::new(
            data,
            csqp::ssdl::templates::download_only(
                "dump",
                &[
                    ("make", ValueType::Str),
                    ("model", ValueType::Str),
                    ("year", ValueType::Int),
                    ("color", ValueType::Str),
                    ("price", ValueType::Int),
                ],
            ),
            CostParams::new(200.0, 5.0),
        )
        .with_fault_profile(FaultProfile::storm(seed.wrapping_add(7), 0.4)),
    );
    let obs = Arc::new(Obs::new());
    let federation = Federation::new()
        .with_member(dealer)
        .with_member(dump)
        .with_breaker(CircuitBreakerConfig { failure_threshold: 2, cooldown_ticks: 2 })
        .with_obs(obs.clone());
    let policy = RetryPolicy { max_retries: 2, jitter_seed: seed, ..Default::default() };

    println!("chaos storm, seed {seed}: 2 mirrors (cheap flaky form, dear steadier dump)");
    let queries = [
        ("make = \"BMW\" ^ price < 40000", vec!["model", "year"]),
        ("make = \"Toyota\" ^ price < 20000", vec!["model", "year"]),
        ("make = \"Honda\" ^ price < 30000", vec!["model", "year"]),
    ];
    let mut total = csqp_source::ResilienceMeter::default();
    for round in 0..3 {
        for (cond, attrs) in &queries {
            let attr_refs: Vec<&str> = attrs.to_vec();
            let query = TargetQuery::parse(cond, &attr_refs).expect("demo query parses");
            print!("r{round} {cond}: ");
            match federation.run_resilient(&query, &policy) {
                Ok(run) => {
                    println!(
                        "{} rows from `{}` (attempts {}, retries {}, failovers {})",
                        run.outcome.rows.len(),
                        run.source_name,
                        run.resilience.attempts,
                        run.resilience.retries,
                        run.resilience.failovers,
                    );
                    for (member, event) in &run.trace {
                        let what = match event {
                            MemberEvent::Quarantined => "quarantined by circuit breaker".into(),
                            MemberEvent::Infeasible => "no feasible plan".into(),
                            MemberEvent::Probed => "half-open probe".into(),
                            MemberEvent::ExecFailed(e) => format!("failed: {e}"),
                            MemberEvent::Served => "served the answer".into(),
                            MemberEvent::Spliced(from) => {
                                format!("spliced in mid-stream for {from}")
                            }
                        };
                        println!("    {member}: {what}");
                    }
                    total.absorb(&run.resilience);
                }
                Err(MediatorError::Plan(e)) => println!("infeasible everywhere: {e}"),
                Err(MediatorError::Exec(e)) => println!("all members down: {e}"),
            }
        }
    }
    // The storm summary is printed FROM the metrics registry (which the
    // federation fed during the runs), so this line and `--metrics json`
    // can never disagree. When the `obs` feature is off the no-op recorder
    // kept nothing; fall back to the locally absorbed meter.
    let snap = federation.metrics_snapshot();
    let totals: [u64; 8] = if obs.enabled() {
        let c = |name: &str| snap.counter(name);
        [
            c(names::RESILIENCE_ATTEMPTS),
            c(names::RESILIENCE_RETRIES),
            c(names::RESILIENCE_TRANSIENTS),
            c(names::RESILIENCE_TIMEOUTS),
            c(names::RESILIENCE_RATE_LIMITED),
            c(names::RESILIENCE_OUTAGES),
            c(names::RESILIENCE_FAILOVERS),
            c(names::RESILIENCE_BACKOFF_TICKS),
        ]
    } else {
        [
            total.attempts,
            total.retries,
            total.transients,
            total.timeouts,
            total.rate_limited,
            total.outages,
            total.failovers,
            total.ticks,
        ]
    };
    let [attempts, retries, transients, timeouts, rate_limited, outages, failovers, ticks] = totals;
    println!(
        "storm totals: {attempts} attempts, {retries} retries, {} faults ({transients} \
         transient, {timeouts} timeout, {rate_limited} rate-limited, {outages} outage), \
         {failovers} failovers, {ticks} virtual ticks",
        transients + timeouts + rate_limited + outages,
    );
    if trace {
        eprint!("{}", obs.tracer.render());
    }
    if metrics_json {
        println!("{}", snap.to_json());
    }
    if metrics_prom {
        print!("{}", snap.to_prometheus());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    if let Some(seed) = args.chaos {
        return chaos_demo(seed, args.trace, args.metrics_json, args.metrics_prom);
    }

    // Load inputs: each --ssdl/--csv pair becomes one source; two or more
    // pairs federate behind the compiled capability index.
    let cost = match std::panic::catch_unwind(|| CostParams::new(args.k1, args.k2)) {
        Ok(c) => c,
        Err(_) => {
            eprintln!("error: cost constants must be finite and non-negative");
            return ExitCode::FAILURE;
        }
    };
    let key_refs: Vec<&str> = args.key.iter().map(String::as_str).collect();
    let mut sources: Vec<Arc<Source>> = Vec::with_capacity(args.ssdl_paths.len());
    for (ssdl_path, csv_path) in args.ssdl_paths.iter().zip(&args.csv_paths) {
        match load_source(ssdl_path, csv_path, &key_refs, cost) {
            Ok(s) => sources.push(s),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.serve {
        let cfg = ServeConfig {
            addr: args.addr.clone(),
            scheme: args.scheme,
            slow_ms: args.slow_ms,
            adaptive: args.adaptive,
            journal_path: args.journal.clone(),
            window_queries: args.window_queries,
            slo_latency_ms: args.slo_latency_ms,
            slo_error_budget: args.slo_error_budget,
            workers: args.workers,
            max_inflight: args.max_inflight,
            tenant_rate: args.tenant_rate,
            tenant_burst: args.tenant_burst,
            ..Default::default()
        };
        return match Server::bind_federation(sources, cfg).and_then(|s| s.run()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: serve: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if sources.len() > 1 {
        return federated_query(&args, sources);
    }
    let source = sources.into_iter().next().expect("one --ssdl/--csv pair loaded");

    let attr_refs: Vec<&str> = args.attrs.iter().map(String::as_str).collect();
    let query = match TargetQuery::parse(&args.query, &attr_refs) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: --query: {e}");
            return ExitCode::FAILURE;
        }
    };

    let obs = Arc::new(Obs::new());
    let mut mediator = Mediator::new(source.clone()).with_scheme(args.scheme).with_obs(obs.clone());
    if matches!(args.explain, ExplainMode::Why | ExplainMode::Profile) {
        // EXPLAIN WHY and the query profile both need an armed recorder;
        // armed only on demand so the default planning path stays
        // provenance-free.
        mediator = mediator.with_flight_recorder(Arc::new(FlightRecorder::new()));
    }

    // Each mode plans exactly once (the analyzed run plans internally), so
    // the metrics snapshot reflects a single planning pass.
    let status = if args.explain == ExplainMode::Profile {
        // The query black box: capture the whole plan/run window into one
        // schema-stable JSON document. `--run` profiles an analyzed
        // execution; without it the profile covers planning only.
        if args.run {
            match mediator.run_profiled(&query) {
                Ok((analyzed, profile)) => {
                    print_plan_header(&args, &analyzed.outcome.planned);
                    println!(
                        "\n{} rows ({} source queries, {} tuples shipped, measured cost {:.1}):",
                        analyzed.outcome.rows.len(),
                        analyzed.outcome.meter.queries,
                        analyzed.outcome.meter.tuples_shipped,
                        analyzed.outcome.measured_cost
                    );
                    for row in analyzed.outcome.rows.rows() {
                        println!("  {row}");
                    }
                    print!("\nquery profile:\n{}", profile.to_json());
                    ExitCode::SUCCESS
                }
                Err(MediatorError::Plan(e)) => plan_failure(&source, &e),
                Err(e) => {
                    eprintln!("execution error: {e}");
                    ExitCode::FAILURE
                }
            }
        } else {
            match mediator.plan_profiled(&query) {
                Ok((planned, profile)) => {
                    print_plan_header(&args, &planned);
                    print!("\nquery profile:\n{}", profile.to_json());
                    ExitCode::SUCCESS
                }
                Err(e) => plan_failure(&source, &e),
            }
        }
    } else if args.run {
        // --limit switches to the streaming engine: the pipeline stops as
        // soon as enough answer rows exist. Without it the materialized
        // executor keeps serving the default path.
        let stream_cfg = args.limit.map(|n| StreamConfig::default().with_limit(n));
        match match (args.explain == ExplainMode::Plan, &stream_cfg) {
            (true, Some(cfg)) => mediator
                .run_streamed_analyzed(&query, cfg)
                .map(|a| (a.outcome, Some((a.analysis, Some(a.stats))))),
            (true, None) => {
                mediator.run_analyzed(&query).map(|a| (a.outcome, Some((a.analysis, None))))
            }
            (false, Some(cfg)) => mediator.run_streamed(&query, cfg).map(|o| (o.outcome, None)),
            (false, None) => mediator.run(&query).map(|o| (o, None)),
        } {
            Ok((out, analysis)) => {
                print_plan_header(&args, &out.planned);
                if args.explain == ExplainMode::Why {
                    print!("\n{}", mediator.explain_why());
                }
                if let Some((analysis, stats)) = &analysis {
                    // EXPLAIN ANALYZE: the plan tree re-rendered with
                    // observed cardinality and cost next to the estimates
                    // (streamed runs add the batch/peak-memory footer).
                    let rendered = match stats {
                        Some(stats) => explain_analyze_streamed(&out.planned.plan, analysis, stats),
                        None => explain_analyze(&out.planned.plan, analysis),
                    };
                    print!("\nexplain analyze:\n{rendered}");
                    for w in analysis.drift_warnings() {
                        eprintln!("warning: {w}");
                    }
                    print_planner_stats(&out.planned);
                }
                println!(
                    "\n{} rows ({} source queries, {} tuples shipped, measured cost {:.1}):",
                    out.rows.len(),
                    out.meter.queries,
                    out.meter.tuples_shipped,
                    out.measured_cost
                );
                for row in out.rows.rows() {
                    println!("  {row}");
                }
                ExitCode::SUCCESS
            }
            Err(MediatorError::Plan(e)) => plan_failure(&source, &e),
            Err(e) => {
                eprintln!("execution error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match mediator.plan(&query) {
            Ok(planned) => {
                print_plan_header(&args, &planned);
                match args.explain {
                    ExplainMode::Plan => {
                        print!("\nplan tree:\n{}", explain(&planned.plan));
                        print_planner_stats(&planned);
                    }
                    ExplainMode::Why => print!("\n{}", mediator.explain_why()),
                    // Profile mode takes the dedicated branch above.
                    ExplainMode::Profile | ExplainMode::Off => {}
                }
                ExitCode::SUCCESS
            }
            Err(e) => plan_failure(&source, &e),
        }
    };

    if args.trace {
        eprint!("{}", obs.tracer.render());
    }
    if args.metrics_json {
        println!("{}", mediator.metrics_snapshot().to_json());
    }
    if args.metrics_prom {
        print!("{}", mediator.metrics_snapshot().to_prometheus());
    }
    status
}

/// Loads one `--ssdl`/`--csv` pair into a source.
fn load_source(
    ssdl_path: &str,
    csv_path: &str,
    key: &[&str],
    cost: CostParams,
) -> Result<Arc<Source>, String> {
    let ssdl_text =
        std::fs::read_to_string(ssdl_path).map_err(|e| format!("cannot read {ssdl_path}: {e}"))?;
    let desc = parse_ssdl(&ssdl_text).map_err(|e| format!("{ssdl_path}: {e}"))?;
    let csv_text =
        std::fs::read_to_string(csv_path).map_err(|e| format!("cannot read {csv_path}: {e}"))?;
    let relation = csqp::relation::csv::load_csv(&desc.name.clone(), &csv_text, key)
        .map_err(|e| format!("{csv_path}: {e}"))?;
    eprintln!(
        "loaded {} rows into {} ({} supported query forms)",
        relation.len(),
        relation.schema(),
        desc.exports.len()
    );
    Ok(Arc::new(Source::new(relation, desc, cost)))
}

/// One-shot federated query: plans across all sources behind the compiled
/// capability index, reports the index's prune decision, and (with `--run`)
/// executes on the winning member.
fn federated_query(args: &Args, sources: Vec<Arc<Source>>) -> ExitCode {
    if args.scheme != Scheme::GenCompact {
        eprintln!(
            "warning: --scheme {} is ignored in federated mode (members plan with gencompact)",
            args.scheme.name()
        );
    }
    let obs = Arc::new(Obs::new());
    let mut federation =
        sources.into_iter().fold(Federation::new(), |f, s| f.with_member(s)).with_obs(obs.clone());
    if args.explain == ExplainMode::Why {
        federation = federation.with_flight_recorder(Arc::new(FlightRecorder::new()));
    }
    let attr_refs: Vec<&str> = args.attrs.iter().map(String::as_str).collect();
    let query = match TargetQuery::parse(&args.query, &attr_refs) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: --query: {e}");
            return ExitCode::FAILURE;
        }
    };

    let print_header = |federation: &Federation, fp: &csqp::core::federation::FederatedPlan| {
        println!(
            "federated plan: member `{}` wins at est cost {:.1} ({} members considered):",
            fp.source.name,
            fp.planned.est_cost,
            fp.considered.len()
        );
        println!("  {}", fp.planned.plan);
        if let Some(idx) = federation.capability_index() {
            let d = idx.candidates(&query);
            println!(
                "capability index: {} of {} members remained ({} pruned without planning)",
                d.candidates.len(),
                d.total,
                d.pruned
            );
        }
        match args.explain {
            ExplainMode::Plan => {
                print!("\nplan tree:\n{}", explain(&fp.planned.plan));
                for (member, outcome) in &fp.considered {
                    match outcome {
                        Ok(cost) => println!("  member {member}: est cost {cost:.1}"),
                        Err(e) => println!("  member {member}: infeasible ({e})"),
                    }
                }
                print_planner_stats(&fp.planned);
            }
            ExplainMode::Why => print!("\n{}", federation.explain_why()),
            ExplainMode::Profile => eprintln!(
                "note: --explain=profile is per-mediator; federated profiles are served via \
                 `csqp serve` at /profile and /profile/<id>"
            ),
            ExplainMode::Off => {}
        }
    };

    let status = if args.run {
        let stream_cfg = args.limit.map(|n| StreamConfig::default().with_limit(n));
        let result = match &stream_cfg {
            Some(cfg) => federation.run_streamed(&query, cfg).map(|(fp, out, _stats)| (fp, out)),
            None => federation.run(&query),
        };
        match result {
            Ok((fp, out)) => {
                print_header(&federation, &fp);
                println!(
                    "\n{} rows ({} source queries, {} tuples shipped, measured cost {:.1}):",
                    out.rows.len(),
                    out.meter.queries,
                    out.meter.tuples_shipped,
                    out.measured_cost
                );
                for row in out.rows.rows() {
                    println!("  {row}");
                }
                ExitCode::SUCCESS
            }
            Err(MediatorError::Plan(e)) => {
                eprintln!("error: no member can serve the query: {e}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("execution error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match federation.plan(&query) {
            Ok(fp) => {
                print_header(&federation, &fp);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: no member can serve the query: {e}");
                ExitCode::FAILURE
            }
        }
    };

    if args.trace {
        eprint!("{}", obs.tracer.render());
    }
    if args.metrics_json {
        println!("{}", federation.metrics_snapshot().to_json());
    }
    if args.metrics_prom {
        print!("{}", federation.metrics_snapshot().to_prometheus());
    }
    status
}

fn print_plan_header(args: &Args, planned: &csqp::core::types::PlannedQuery) {
    println!("plan ({}, est. cost {:.1}):", args.scheme.name(), planned.est_cost);
    println!("  {}", planned.plan);
}

fn print_planner_stats(planned: &csqp::core::types::PlannedQuery) {
    let r = planned.report;
    println!(
        "planner stats: {} CTs, {} generator calls, {} Check calls, max Q {}, {:?}{}",
        r.cts_processed,
        r.generator_calls,
        r.checks,
        r.max_q,
        r.elapsed,
        if r.truncated { " (budget-truncated)" } else { "" }
    );
    let s = r.stats;
    println!(
        "cache stats: {}/{} CheckCache hits, {} IPG memo hits; pruned {} (PR1) / {} (PR2) / \
         {} (PR3), {} MCSC covers examined",
        s.check_cache_hits,
        s.check_calls,
        s.ipg_memo_hits,
        s.pr1_prunes,
        s.pr2_prunes,
        s.pr3_prunes,
        s.mcsc_covers_examined,
    );
}

/// Reports a planning failure along with what the source CAN do, to help
/// the user reformulate.
fn plan_failure(source: &Source, e: &csqp::core::types::PlanError) -> ExitCode {
    eprintln!("error: {e}");
    eprintln!("\nthe source supports these query forms:");
    for rule in &source.gate_view().desc.rules {
        eprintln!("  {rule}");
    }
    ExitCode::FAILURE
}
