//! Routing for the non-query HTTP endpoints: health, metrics, flight
//! recorder, status scoreboard, time series, slow log, profiles, spans.

use super::http::query_param;
use super::Server;
use csqp_obs::{health, names};
use std::fmt::Write as _;

impl Server {
    /// Routes one HTTP request target to a `(status, content-type, body,
    /// shutdown)` response.
    pub(super) fn route(&self, target: &str) -> (&'static str, &'static str, String, bool) {
        const TEXT: &str = "text/plain; charset=utf-8";
        const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
        let (path, query_string) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        const JSON: &str = "application/json; charset=utf-8";
        if let Some(id) = path.strip_prefix("/profile/") {
            return match id.parse::<u64>().ok().and_then(|id| self.profile(id)) {
                Some(p) => ("200 OK", JSON, p.to_json(), false),
                None => ("404 Not Found", TEXT, format!("no profile {id:?} retained\n"), false),
            };
        }
        match path {
            "/healthz" => ("200 OK", TEXT, "ok\n".to_string(), false),
            "/metrics" => {
                // `?exemplars=1` upgrades histogram buckets to the
                // OpenMetrics-style exemplar syntax carrying query ids.
                let exemplars = query_param(query_string, "exemplars").is_some_and(|v| v == "1");
                let snap = self.federation.metrics_snapshot();
                ("200 OK", PROM, csqp_obs::prom::render_opts(&snap, exemplars), false)
            }
            "/flightrecorder" => match query_param(query_string, "query") {
                Some(id) => match id.parse::<u64>().ok().and_then(|id| self.flight.record(id)) {
                    Some(rec) => ("200 OK", TEXT, csqp_plan::why::explain_why(Some(&rec)), false),
                    None => ("404 Not Found", TEXT, format!("no flight {id:?} recorded\n"), false),
                },
                None => ("200 OK", TEXT, self.flight_index(), false),
            },
            // `/query` is handled by `handle_query_http` before routing
            // (streamed response); reaching it here means a programming
            // error, answered like any unknown route.
            "/status" => {
                let json = query_param(query_string, "format").is_some_and(|v| v == "json");
                let (ctype, body) = self.render_status(json);
                ("200 OK", ctype, body, false)
            }
            "/timeseries" => match query_param(query_string, "metric") {
                Some(metric) => {
                    let windows = query_param(query_string, "windows")
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or(usize::MAX);
                    let body = self
                        .timeseries
                        .lock()
                        .expect("timeseries lock")
                        .render_json(&metric, windows);
                    ("200 OK", JSON, body, false)
                }
                None => {
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    (
                        "400 Bad Request",
                        TEXT,
                        "usage: /timeseries?metric=<name>[&windows=<n>]\n".to_string(),
                        false,
                    )
                }
            },
            "/slowlog" => ("200 OK", TEXT, self.render_slow_log(), false),
            "/profile" => ("200 OK", TEXT, self.profile_index(), false),
            "/spans" => {
                let spans = self.obs.tracer.spans();
                let body = if spans.is_empty() {
                    "no spans recorded\n".to_string()
                } else {
                    csqp_obs::span::render_tree(&spans)
                };
                ("200 OK", TEXT, body, false)
            }
            "/shutdown" => ("200 OK", TEXT, "shutting down\n".to_string(), true),
            _ => ("404 Not Found", TEXT, format!("no route {path}\n"), false),
        }
    }

    /// Renders the `/status` scoreboard: every retained window plus the
    /// still-open live delta folded into one signal window, scored per
    /// member against the live breaker state.
    pub(super) fn render_status(&self, json: bool) -> (&'static str, String) {
        let now = self.federation.metrics_snapshot();
        let (window, windows, dropped) = {
            let timeseries = self.timeseries.lock().expect("timeseries lock");
            let mut window = timeseries.folded(usize::MAX);
            window.merge(&timeseries.live_delta(&now));
            (window, timeseries.len(), timeseries.dropped())
        };
        let breaker_states = self.federation.breaker_states();
        let mut reports: Vec<health::HealthReport> = breaker_states
            .iter()
            .map(|(name, state)| {
                health::score(health::signals_from_window(&window, name, state.as_gauge() as u8))
            })
            .collect();
        // Worst first so the member that needs attention leads the table;
        // ties break by name for a deterministic page.
        reports.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.signals.member.cmp(&b.signals.member))
        });
        let queries = window.counter(names::SERVE_QUERIES);
        let error_burn = self.slo.burn_rate(window.counter(names::SERVE_ERRORS), queries);
        let latency_burn = self.slo.burn_rate(window.counter(names::SLO_LATENCY_BREACHES), queries);
        // Publish the scoreboard back into the registry so `/metrics`
        // scrapers see the same numbers the page shows.
        self.obs.metrics.gauge_set(names::ADMISSION_INFLIGHT, self.admission.inflight() as f64);
        self.obs.metrics.gauge_set(names::SLO_ERROR_BURN, error_burn);
        self.obs.metrics.gauge_set(names::SLO_LATENCY_BURN, latency_burn);
        self.obs.metrics.gauge_set(names::TIMESERIES_WINDOWS, windows as f64);
        if self.obs.enabled() {
            for report in &reports {
                self.obs.metrics.gauge_set(
                    &format!("{}{}", names::HEALTH_SCORE_PREFIX, report.signals.member),
                    report.score,
                );
            }
        }
        let summary = health::StatusSummary {
            slo: self.slo,
            error_burn,
            latency_burn,
            queries,
            windows,
            dropped,
        };
        if json {
            ("application/json; charset=utf-8", health::render_status_json(&summary, &reports))
        } else {
            ("text/plain; charset=utf-8", health::render_status_text(&summary, &reports))
        }
    }

    pub(super) fn flight_index(&self) -> String {
        let records = self.flight.records();
        if records.is_empty() {
            return "no flights recorded yet\n".to_string();
        }
        let mut out = String::from("recorded flights (oldest first):\n");
        for r in &records {
            let _ =
                writeln!(out, "  #{} [{}] {} ({} events)", r.id, r.scheme, r.query, r.events.len());
        }
        let _ = writeln!(out, "evicted: {}", self.flight.evicted());
        out
    }

    pub(super) fn render_slow_log(&self) -> String {
        let slow_log = self.slow_log.lock().expect("slow log lock");
        if slow_log.is_empty() {
            return format!("no queries slower than {} ms\n", self.cfg.slow_ms);
        }
        let mut out = String::new();
        for (i, s) in slow_log.iter().enumerate() {
            let _ = writeln!(
                out,
                "--- slow query {} ({:.3} ms, {} ticks): {}",
                i,
                s.latency.wall_us.unwrap_or(0) as f64 / 1000.0,
                s.latency.ticks,
                s.query
            );
            out.push_str(&s.why);
        }
        out
    }

    /// The worst-N profile index: one line per retained profile.
    pub(super) fn profile_index(&self) -> String {
        let profiles = self.profiles.lock().expect("profile ring lock");
        if profiles.is_empty() {
            return "no profiles retained yet\n".to_string();
        }
        let mut out = String::from("worst retained profiles (worst first):\n");
        for p in profiles.worst() {
            let (wall, ticks) = match p.latency {
                Some(l) => (l.wall_us.unwrap_or(0), l.ticks),
                None => (0, 0),
            };
            let _ = writeln!(
                out,
                "  #{} ({:.3} ms, {} ticks, {} rows, {} splices, plan cache {}) {}",
                p.id,
                wall as f64 / 1000.0,
                ticks,
                p.rows,
                p.splices,
                if p.plan_cache.is_empty() { "-" } else { &p.plan_cache },
                p.query
            );
        }
        out
    }
}
