//! Minimal HTTP/1.x request-line and query-string helpers — the only
//! protocol parsing the serve listener needs, built on `std` alone.

/// Extracts the request target from an HTTP request line (`GET /x HTTP/1.x`),
/// or `None` when the line is not HTTP (line-protocol fallback).
pub(super) fn http_request_target(line: &str) -> Option<&str> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if matches!(method, "GET" | "POST" | "HEAD") && version.starts_with("HTTP/") {
        Some(target)
    } else {
        None
    }
}

/// Finds `name=value` in a query string; returns the raw (still encoded)
/// value.
pub(super) fn query_param(query_string: &str, name: &str) -> Option<String> {
    query_string.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then(|| v.to_string())
    })
}

/// Decodes `%XX` escapes and `+`-as-space.
pub(super) fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                        continue;
                    }
                    _ => out.push(b'%'),
                }
            }
            b'+' => out.push(b' '),
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}
