//! Multi-tenant admission control for the serve front door: a global
//! in-flight cap sheds overload fast, and per-tenant token buckets keep
//! one noisy tenant from starving the rest.
//!
//! Both checks run *before* the query is parsed or planned — a shed
//! request costs a counter bump and a 429, not a planner fan-out. The
//! in-flight slot is RAII ([`InflightGuard`]): however the query path
//! exits (trailer, planning error, client gone mid-stream), the slot
//! frees and the `admission.inflight` gauge tracks reality.

use csqp_obs::{names, Obs};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-tenant token-bucket state: `tokens` refill at the configured rate
/// up to the burst ceiling, one query takes one token.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Verdict for one query.
#[derive(Debug)]
pub(super) enum Admit<'a> {
    /// Run it; drop the guard when the query finishes.
    Granted(InflightGuard<'a>),
    /// The tenant's token bucket is empty — 429, per-tenant.
    ShedQuota,
    /// The global in-flight cap is reached — 429, whole-server.
    ShedOverload,
}

/// Admission state shared by every worker.
#[derive(Debug)]
pub(super) struct Admission {
    /// Global concurrent-query ceiling; 0 disables overload shedding.
    max_inflight: u64,
    /// Tokens per second refilled into each tenant's bucket; 0 disables
    /// quota shedding.
    rate: f64,
    /// Bucket capacity (burst allowance).
    burst: f64,
    inflight: AtomicU64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl Admission {
    pub(super) fn new(max_inflight: u64, rate: f64, burst: f64) -> Self {
        Admission {
            max_inflight,
            rate,
            burst: burst.max(1.0),
            inflight: AtomicU64::new(0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Runs the admission checks for one query from `tenant`. Order
    /// matters: the global cap protects the worker pool no matter which
    /// tenant is pushing, then the tenant's bucket is charged.
    pub(super) fn try_admit<'a>(&'a self, tenant: &str, obs: &'a Obs) -> Admit<'a> {
        if self.max_inflight > 0 {
            let mut cur = self.inflight.load(Ordering::Relaxed);
            loop {
                if cur >= self.max_inflight {
                    obs.metrics.inc(names::ADMISSION_SHED_OVERLOAD);
                    shed_tap(obs, tenant);
                    return Admit::ShedOverload;
                }
                match self.inflight.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        } else {
            self.inflight.fetch_add(1, Ordering::AcqRel);
        }
        let guard = InflightGuard { adm: self, obs };
        obs.metrics
            .gauge_set(names::ADMISSION_INFLIGHT, self.inflight.load(Ordering::Relaxed) as f64);
        if self.rate > 0.0 {
            let mut buckets = self.buckets.lock().expect("admission bucket lock");
            let now = Instant::now();
            let b = buckets
                .entry(tenant.to_string())
                .or_insert_with(|| Bucket { tokens: self.burst, last: now });
            let dt = now.saturating_duration_since(b.last).as_secs_f64();
            b.tokens = (b.tokens + dt * self.rate).min(self.burst);
            b.last = now;
            if b.tokens < 1.0 {
                drop(buckets);
                drop(guard); // frees the in-flight slot and refreshes the gauge
                obs.metrics.inc(names::ADMISSION_SHED_QUOTA);
                shed_tap(obs, tenant);
                return Admit::ShedQuota;
            }
            b.tokens -= 1.0;
        }
        obs.metrics.inc(names::ADMISSION_ADMITTED);
        if obs.enabled() {
            obs.metrics.inc(&format!("{}{tenant}", names::TENANT_QUERIES_PREFIX));
        }
        Admit::Granted(guard)
    }

    /// Queries currently holding an in-flight slot.
    pub(super) fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// Per-tenant shed attribution (gated so obs-off allocates nothing).
fn shed_tap(obs: &Obs, tenant: &str) {
    if obs.enabled() {
        obs.metrics.inc(&format!("{}{tenant}", names::TENANT_SHED_PREFIX));
    }
}

/// RAII in-flight slot: freed on drop, wherever the query path exits.
#[derive(Debug)]
pub(super) struct InflightGuard<'a> {
    adm: &'a Admission,
    obs: &'a Obs,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let now = self.adm.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
        self.obs.metrics.gauge_set(names::ADMISSION_INFLIGHT, now as f64);
    }
}

/// Normalizes a caller-supplied tenant id into a metric-safe label:
/// `[A-Za-z0-9_-]` kept, everything else mapped to `_`, capped at 32
/// bytes; empty or absent ids fall back to `anon`.
pub(super) fn sanitize_tenant(raw: Option<&str>) -> String {
    let Some(raw) = raw else { return "anon".to_string() };
    let cleaned: String = raw
        .chars()
        .take(32)
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "anon".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_obs::Obs;

    #[test]
    fn inflight_cap_sheds_overload_and_guard_frees_slots() {
        let obs = Obs::new();
        let adm = Admission::new(2, 0.0, 8.0);
        let g1 = match adm.try_admit("a", &obs) {
            Admit::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        let _g2 = match adm.try_admit("b", &obs) {
            Admit::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        assert!(matches!(adm.try_admit("c", &obs), Admit::ShedOverload));
        assert_eq!(adm.inflight(), 2);
        drop(g1);
        assert!(matches!(adm.try_admit("c", &obs), Admit::Granted(_)));
    }

    #[test]
    fn token_bucket_sheds_per_tenant_not_globally() {
        let obs = Obs::new();
        // 1 token/s refill, burst of 2: the third immediate query sheds.
        let adm = Admission::new(0, 1.0, 2.0);
        assert!(matches!(adm.try_admit("noisy", &obs), Admit::Granted(_)));
        assert!(matches!(adm.try_admit("noisy", &obs), Admit::Granted(_)));
        assert!(matches!(adm.try_admit("noisy", &obs), Admit::ShedQuota));
        // A different tenant has its own full bucket.
        assert!(matches!(adm.try_admit("quiet", &obs), Admit::Granted(_)));
        // A quota shed does not leak an in-flight slot.
        assert_eq!(adm.inflight(), 0, "guards dropped, quota shed released its slot");
    }

    #[test]
    fn zero_limits_disable_shedding() {
        let obs = Obs::new();
        let adm = Admission::new(0, 0.0, 0.0);
        for _ in 0..64 {
            assert!(matches!(adm.try_admit("t", &obs), Admit::Granted(_)));
        }
    }

    #[test]
    fn tenant_ids_are_sanitized() {
        assert_eq!(sanitize_tenant(None), "anon");
        assert_eq!(sanitize_tenant(Some("")), "anon");
        assert_eq!(sanitize_tenant(Some("team-a")), "team-a");
        assert_eq!(sanitize_tenant(Some("a b\"c{d}")), "a_b_c_d_");
        assert_eq!(sanitize_tenant(Some(&"x".repeat(64))).len(), 32);
    }
}
