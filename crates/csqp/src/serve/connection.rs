//! Per-connection protocol handling: one accepted TCP stream carries HTTP
//! requests (routed or streamed) or bare line-protocol commands.
//!
//! Connections are **persistent**: framed HTTP responses answer with
//! `Connection: keep-alive` (HTTP/1.1 default semantics; HTTP/1.0 clients
//! must opt in) and the handler loops for the next request, and the line
//! protocol answers every line until the client closes — so a client can
//! pipeline requests without reconnecting. `/query` responses stream
//! unframed (read-until-close) and therefore always close the connection,
//! exactly as before.

use super::admission::sanitize_tenant;
use super::http::{http_request_target, percent_decode, query_param};
use super::state::QueryError;
use super::Server;
use csqp_obs::names;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Reads one line, mapping EOF and an idle read timeout to `None` — both
/// just mean "the client is done with this connection".
fn next_line(reader: &mut BufReader<TcpStream>, buf: &mut String) -> io::Result<Option<()>> {
    buf.clear();
    match reader.read_line(buf) {
        Ok(0) => Ok(None),
        Ok(_) => Ok(Some(())),
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

impl Server {
    /// Serves one connection to completion; `Ok(true)` means shutdown was
    /// requested.
    pub(super) fn handle(&self, mut stream: TcpStream) -> io::Result<bool> {
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut line = String::new();
        loop {
            if next_line(&mut reader, &mut line)?.is_none() {
                return Ok(false);
            }
            let first = line.trim_end().to_string();
            if first.is_empty() {
                // Stray blank line between pipelined requests: tolerate.
                continue;
            }
            self.obs.metrics.inc(names::SERVE_REQUESTS);
            if let Some(target) = http_request_target(&first) {
                let target = target.to_string();
                // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; a
                // `Connection` header overrides either way.
                let mut keep_alive = first.ends_with("HTTP/1.1");
                // Drain the request headers, keeping the two we understand.
                let mut tenant_header: Option<String> = None;
                let mut hdr = String::new();
                loop {
                    if next_line(&mut reader, &mut hdr)?.is_none() || hdr.trim_end().is_empty() {
                        break;
                    }
                    if let Some((name, value)) = hdr.trim_end().split_once(':') {
                        let value = value.trim();
                        if name.eq_ignore_ascii_case("x-tenant") {
                            tenant_header = Some(value.to_string());
                        } else if name.eq_ignore_ascii_case("connection") {
                            keep_alive = value.eq_ignore_ascii_case("keep-alive");
                        }
                    }
                }
                let (path, query_string) = match target.split_once('?') {
                    Some((p, q)) => (p, q.to_string()),
                    None => (target.as_str(), String::new()),
                };
                if path == "/query" {
                    // Streamed response: rows leave as batches arrive, with
                    // no Content-Length — the connection must close to
                    // frame the body.
                    self.handle_query_http(&mut stream, &query_string, tenant_header)?;
                    return Ok(false);
                }
                let (status, ctype, body, shutdown) = self.route(&target);
                let keep = keep_alive && !shutdown;
                write!(
                    stream,
                    "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
                     Connection: {}\r\n\r\n",
                    body.len(),
                    if keep { "keep-alive" } else { "close" }
                )?;
                stream.write_all(body.as_bytes())?;
                if shutdown {
                    return Ok(true);
                }
                if !keep {
                    return Ok(false);
                }
            } else {
                // Line protocol: answer and keep reading — a client can
                // pipeline `ping` / `query …` lines on one connection.
                let reply = self.handle_line(&first);
                stream.write_all(reply.as_bytes())?;
            }
        }
    }

    /// The line protocol: `ping`, `why`, or `query <attrs,csv> <condition>`.
    fn handle_line(&self, line: &str) -> String {
        let line = line.trim();
        if line == "ping" {
            return "pong\n".to_string();
        }
        if line == "why" {
            return self.federation.explain_why();
        }
        if let Some(rest) = line.strip_prefix("query ") {
            let Some((attrs, cond)) = rest.trim().split_once(' ') else {
                return "ERR usage: query <attrs,csv> <condition>\n".to_string();
            };
            let attrs: Vec<String> = attrs.split(',').map(|s| s.trim().to_string()).collect();
            let tenant = sanitize_tenant(None);
            let mut body = String::new();
            return match self.serve_query_streamed(cond, &attrs, None, &tenant, &mut |chunk| {
                body.push_str(chunk);
                true
            }) {
                Ok(trailer) => format!("OK\n{body}{trailer}"),
                Err(e) => format!("ERR {}", e.body),
            };
        }
        self.obs.metrics.inc(names::SERVE_ERRORS);
        "ERR unknown command (try: ping | why | query <attrs,csv> <condition>)\n".to_string()
    }

    /// Serves `/query` with an incremental response: the 200 header goes
    /// out with the first row batch (no `Content-Length` —
    /// read-until-close framing) and the summary is a trailer line. Errors
    /// before the first byte still get a proper status (`400`, or `429`
    /// when admission shed the query); a failure mid-stream is appended as
    /// an `ERR` line (the status is already on the wire).
    fn handle_query_http(
        &self,
        stream: &mut TcpStream,
        query_string: &str,
        tenant_header: Option<String>,
    ) -> io::Result<()> {
        const TEXT: &str = "text/plain; charset=utf-8";
        let respond_err = |stream: &mut TcpStream, status: &str, body: &str| {
            write!(
                stream,
                "HTTP/1.1 {status}\r\nContent-Type: {TEXT}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
        };
        // The tenant rides in on the `tenant=` query param (which wins) or
        // the `X-Tenant` header; anonymous traffic pools under `anon`.
        let tenant = sanitize_tenant(
            query_param(query_string, "tenant")
                .map(|v| percent_decode(&v))
                .or(tenant_header)
                .as_deref(),
        );
        let cond = query_param(query_string, "cond").map(|v| percent_decode(&v));
        let attrs = query_param(query_string, "attrs").map(|v| percent_decode(&v));
        let (cond, attrs) = match (cond, attrs) {
            (Some(c), Some(a)) => (c, a),
            _ => {
                self.obs.metrics.inc(names::SERVE_ERRORS);
                return respond_err(
                    stream,
                    "400 Bad Request",
                    "usage: /query?cond=<urlencoded condition>&attrs=<a,b,c>[&limit=<n>]\
                     [&tenant=<id>]\n",
                );
            }
        };
        let limit = match query_param(query_string, "limit") {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    return respond_err(
                        stream,
                        "400 Bad Request",
                        "limit must be a non-negative integer\n",
                    );
                }
            },
        };
        let attrs: Vec<String> = attrs.split(',').map(|s| s.trim().to_string()).collect();
        let mut wrote_header = false;
        let mut io_err: Option<io::Error> = None;
        let outcome = {
            let sink = &mut |chunk: &str| {
                if !wrote_header {
                    if let Err(e) = write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: {TEXT}\r\nConnection: close\r\n\r\n"
                    ) {
                        io_err = Some(e);
                        return false;
                    }
                    wrote_header = true;
                }
                match stream.write_all(chunk.as_bytes()) {
                    Ok(()) => true,
                    Err(e) => {
                        io_err = Some(e);
                        false
                    }
                }
            };
            self.serve_query_streamed(&cond, &attrs, limit, &tenant, sink)
        };
        if let Some(e) = io_err {
            return Err(e);
        }
        match outcome {
            Ok(trailer) => {
                if !wrote_header {
                    // Empty result: nothing streamed yet, the trailer is
                    // the whole body.
                    write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: {TEXT}\r\nConnection: close\r\n\r\n"
                    )?;
                }
                stream.write_all(trailer.as_bytes())
            }
            Err(QueryError { status, body }) => {
                if wrote_header {
                    write!(stream, "ERR {body}")
                } else {
                    respond_err(stream, status, &body)
                }
            }
        }
    }
}
