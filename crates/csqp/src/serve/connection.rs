//! Per-connection protocol handling: one accepted TCP stream is either an
//! HTTP request (routed or streamed) or a bare line-protocol command.

use super::http::{http_request_target, percent_decode, query_param};
use super::Server;
use csqp_obs::names;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

impl Server {
    /// Serves one connection; `Ok(true)` means shutdown was requested.
    pub(super) fn handle(&mut self, mut stream: TcpStream) -> io::Result<bool> {
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut first = String::new();
        reader.read_line(&mut first)?;
        let first = first.trim_end();
        self.obs.metrics.inc(names::SERVE_REQUESTS);
        if let Some(target) = http_request_target(first) {
            let target = target.to_string();
            // Drain (and ignore) the request headers.
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
                    break;
                }
            }
            let (path, query_string) = match target.split_once('?') {
                Some((p, q)) => (p, q.to_string()),
                None => (target.as_str(), String::new()),
            };
            if path == "/query" {
                // Streamed response: rows leave as batches arrive, so the
                // generic buffered write below does not apply.
                self.handle_query_http(&mut stream, &query_string)?;
                return Ok(false);
            }
            let (status, ctype, body, shutdown) = self.route(&target);
            write!(
                stream,
                "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n",
                body.len()
            )?;
            stream.write_all(body.as_bytes())?;
            Ok(shutdown)
        } else {
            let reply = self.handle_line(first);
            stream.write_all(reply.as_bytes())?;
            Ok(false)
        }
    }

    /// The line protocol: `ping`, `why`, or `query <attrs,csv> <condition>`.
    fn handle_line(&mut self, line: &str) -> String {
        let line = line.trim();
        if line == "ping" {
            return "pong\n".to_string();
        }
        if line == "why" {
            return self.federation.explain_why();
        }
        if let Some(rest) = line.strip_prefix("query ") {
            let Some((attrs, cond)) = rest.trim().split_once(' ') else {
                return "ERR usage: query <attrs,csv> <condition>\n".to_string();
            };
            let attrs: Vec<String> = attrs.split(',').map(|s| s.trim().to_string()).collect();
            let mut body = String::new();
            return match self.serve_query_streamed(cond, &attrs, None, &mut |chunk| {
                body.push_str(chunk);
                true
            }) {
                Ok(trailer) => format!("OK\n{body}{trailer}"),
                Err(msg) => format!("ERR {msg}"),
            };
        }
        self.obs.metrics.inc(names::SERVE_ERRORS);
        "ERR unknown command (try: ping | why | query <attrs,csv> <condition>)\n".to_string()
    }

    /// Serves `/query` with an incremental response: the 200 header goes
    /// out with the first row batch (no `Content-Length` — HTTP/1.0
    /// read-until-close framing) and the summary is a trailer line. Errors
    /// before the first byte still get a proper `400`; a failure mid-stream
    /// is appended as an `ERR` line (the status is already on the wire).
    fn handle_query_http(&mut self, stream: &mut TcpStream, query_string: &str) -> io::Result<()> {
        const TEXT: &str = "text/plain; charset=utf-8";
        let respond_400 = |stream: &mut TcpStream, body: &str| {
            write!(
                stream,
                "HTTP/1.0 400 Bad Request\r\nContent-Type: {TEXT}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
        };
        let cond = query_param(query_string, "cond").map(|v| percent_decode(&v));
        let attrs = query_param(query_string, "attrs").map(|v| percent_decode(&v));
        let (cond, attrs) = match (cond, attrs) {
            (Some(c), Some(a)) => (c, a),
            _ => {
                self.obs.metrics.inc(names::SERVE_ERRORS);
                return respond_400(
                    stream,
                    "usage: /query?cond=<urlencoded condition>&attrs=<a,b,c>[&limit=<n>]\n",
                );
            }
        };
        let limit = match query_param(query_string, "limit") {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    return respond_400(stream, "limit must be a non-negative integer\n");
                }
            },
        };
        let attrs: Vec<String> = attrs.split(',').map(|s| s.trim().to_string()).collect();
        let mut wrote_header = false;
        let mut io_err: Option<io::Error> = None;
        let outcome = {
            let sink = &mut |chunk: &str| {
                if !wrote_header {
                    if let Err(e) = write!(
                        stream,
                        "HTTP/1.0 200 OK\r\nContent-Type: {TEXT}\r\nConnection: close\r\n\r\n"
                    ) {
                        io_err = Some(e);
                        return false;
                    }
                    wrote_header = true;
                }
                match stream.write_all(chunk.as_bytes()) {
                    Ok(()) => true,
                    Err(e) => {
                        io_err = Some(e);
                        false
                    }
                }
            };
            self.serve_query_streamed(&cond, &attrs, limit, sink)
        };
        if let Some(e) = io_err {
            return Err(e);
        }
        match outcome {
            Ok(trailer) => {
                if !wrote_header {
                    // Empty result: nothing streamed yet, the trailer is
                    // the whole body.
                    write!(
                        stream,
                        "HTTP/1.0 200 OK\r\nContent-Type: {TEXT}\r\nConnection: close\r\n\r\n"
                    )?;
                }
                stream.write_all(trailer.as_bytes())
            }
            Err(msg) => {
                if wrote_header {
                    write!(stream, "ERR {msg}")
                } else {
                    respond_400(stream, &msg)
                }
            }
        }
    }
}
