//! The query path plus the per-server telemetry stores every worker
//! shares: admission, prepared-plan serving, SLO accounting, audit
//! journaling, and the windowed time-series roll.

use super::admission::Admit;
use super::{Server, SlowQuery};
use csqp_core::mediator::{AdaptiveConfig, MediatorError};
use csqp_core::types::TargetQuery;
use csqp_obs::{names, AuditRecord, LatencyKey, Obs, QueryProfile};
use csqp_plan::exec_stream::StreamConfig;
use csqp_ssdl::linearize::cond_fingerprint;
use std::fmt::Write as _;
use std::time::Instant;

/// A failed query: the HTTP status it maps to plus the error body. The line
/// protocol renders only the body (`ERR …`).
#[derive(Debug)]
pub(super) struct QueryError {
    pub(super) status: &'static str,
    pub(super) body: String,
}

impl QueryError {
    fn bad_request(body: String) -> QueryError {
        QueryError { status: "400 Bad Request", body }
    }

    fn shed(body: String) -> QueryError {
        QueryError { status: "429 Too Many Requests", body }
    }
}

impl Server {
    /// Admits, prepares and streams one query, feeding each row batch to
    /// `sink` as rendered lines (return `false` to stop) and recording the
    /// serve-mode wall-clock metrics and the slow-query log. Returns the
    /// `N rows (est cost …)` summary trailer, or the error.
    ///
    /// The order is deliberate: admission control runs **first** — a shed
    /// query costs a counter bump, not a parse or a planner fan-out — and
    /// the prepared-plan cache probe (`Federation::prepare`) replaces the
    /// plan-then-find-winner dance, so a cache hit skips planning entirely.
    pub(super) fn serve_query_streamed(
        &self,
        cond: &str,
        attrs: &[String],
        limit: Option<u64>,
        tenant: &str,
        sink: &mut dyn FnMut(&str) -> bool,
    ) -> Result<String, QueryError> {
        // Admission: the guard holds this query's in-flight slot until the
        // function exits, however it exits.
        let _inflight = match self.admission.try_admit(tenant, &self.obs) {
            Admit::Granted(guard) => guard,
            Admit::ShedQuota => {
                return Err(QueryError::shed(format!(
                    "tenant {tenant} is over its query rate — retry later\n"
                )));
            }
            Admit::ShedOverload => {
                return Err(QueryError::shed(
                    "server is at its concurrent-query limit — retry later\n".to_string(),
                ));
            }
        };
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let query = TargetQuery::parse(cond, &attr_refs).map_err(|e| {
            self.obs.metrics.inc(names::SERVE_ERRORS);
            QueryError::bad_request(format!("query parse error: {e}\n"))
        })?;
        let cfg = match limit {
            Some(n) => StreamConfig::default().with_limit(n),
            None => StreamConfig::default(),
        };
        let start = Instant::now();
        // Profile capture window: everything the shared registry, tracer
        // and flight recorder see from here until the run finishes is
        // attributed to this query (approximate under concurrent workers —
        // the registry is shared; the per-query span tree and flight trail
        // stay exact because they key on marks and flight ids).
        let metrics_before = self.obs.metrics.snapshot();
        let span_mark = self.obs.tracer.span_mark();
        let tick0 = self.obs.tracer.tick();
        // Prepared-plan probe: a shape hit rebinds this query's constants
        // into the cached winner plan and skips the planner fan-out; a miss
        // plans federation-wide (capability index prunes, cheapest feasible
        // member wins) and caches the winner under the parameterized
        // fingerprint.
        let prepared = self.federation.prepare(&query).map_err(|e| {
            self.obs.metrics.inc(names::SERVE_ERRORS);
            QueryError::bad_request(format!("planning failed: {e}\n"))
        })?;
        let winner = prepared.member;
        let cache_label = prepared.decision.label();
        let flight_id = prepared.flight_id;
        let member_name = self.federation.members()[winner].name.clone();
        let (index_candidates, index_total) = self
            .federation
            .capability_index()
            .map(|idx| {
                let d = idx.candidates(&query);
                (d.candidates.len(), d.total)
            })
            .unwrap_or((self.federation.members().len(), self.federation.members().len()));
        let mut emitted = 0u64;
        let mut chunk = String::new();
        let mut batch_sink = |batch: csqp_relation::TupleBatch| {
            emitted += batch.len() as u64;
            chunk.clear();
            for row in batch.rows() {
                let _ = writeln!(chunk, "{row}");
            }
            sink(&chunk)
        };
        let map_err = |obs: &Obs, e: MediatorError| {
            obs.metrics.inc(names::SERVE_ERRORS);
            match e {
                MediatorError::Plan(e) => {
                    QueryError::bad_request(format!("planning failed: {e}\n"))
                }
                e => QueryError::bad_request(format!("execution failed: {e}\n")),
            }
        };
        let fingerprint = format!("{:032x}", cond_fingerprint(Some(&query.cond)));
        // Adaptive serving: the pipeline may pause at a batch boundary and
        // splice in a re-planned residual when observed cardinalities drift
        // off the estimates; the answer stays set-identical and the splice
        // count lands in the trailer. Either way the *prepared* plan is
        // what executes — the winner's mediator never re-plans up front.
        let run = if self.cfg.adaptive {
            let acfg = AdaptiveConfig { stream: cfg, ..Default::default() };
            self.mediators[winner]
                .run_adaptive_each_planned(&query, prepared.planned, &acfg, &mut batch_sink)
                .map(|out| {
                    let (splices, drift) = (out.splices, out.drift_triggers);
                    (out.outcome, splices, drift)
                })
        } else {
            self.mediators[winner]
                .run_streamed_each_planned(prepared.planned, &cfg, &mut batch_sink)
                .map(|out| (out.outcome, 0, 0))
        };
        let (out, replans, drift_triggers) = match run {
            Ok(v) => v,
            Err(e) => {
                // The failure is the winner's: tap its error counter, leave
                // an audit record, and still close the telemetry window.
                let latency_us = start.elapsed().as_micros() as u64;
                let ticks = self.obs.tracer.tick().saturating_sub(tick0);
                if self.obs.enabled() {
                    self.obs.metrics.inc(&format!("{}{member_name}", names::MEMBER_ERRORS_PREFIX));
                }
                let msg = map_err(&self.obs, e);
                self.journal_append(&AuditRecord {
                    id: flight_id,
                    fingerprint,
                    query: query.to_string(),
                    scheme: self.cfg.scheme.name().to_string(),
                    status: "error".to_string(),
                    rows: 0,
                    wall_us: Some(latency_us),
                    ticks,
                    splices: 0,
                    drift_triggers: 0,
                    breaker_events: 0,
                    capindex_candidates: index_candidates as u64,
                    capindex_total: index_total as u64,
                });
                self.maybe_roll();
                return Err(msg);
            }
        };
        let latency_us = start.elapsed().as_micros() as u64;
        // SLO accounting happens before the profile delta is cut so the
        // breach lands in this query's attribution window.
        if latency_us >= self.slo.latency_objective_us {
            self.obs.metrics.inc(names::SLO_LATENCY_BREACHES);
        }
        self.obs.metrics.inc(names::SERVE_QUERIES);
        // The latency observation carries the flight id as an exemplar, so
        // a `/metrics?exemplars=1` scrape can walk from a suspicious bucket
        // straight to `/profile/<id>`.
        self.obs.metrics.observe_exemplar(names::SERVE_LATENCY_US, latency_us, flight_id);
        self.obs.metrics.observe(names::SERVE_ROWS_RETURNED, emitted);
        let latency = LatencyKey {
            wall_us: Some(latency_us),
            ticks: self.obs.tracer.tick().saturating_sub(tick0),
        };
        let breaker_states = self.federation.breaker_states();
        if latency_us >= self.cfg.slow_ms.saturating_mul(1000) {
            self.obs.metrics.inc(names::SERVE_SLOW_QUERIES);
            let mut slow_log = self.slow_log.lock().expect("slow log lock");
            if slow_log.len() >= self.cfg.slow_log_capacity.max(1) {
                slow_log.pop_front();
            }
            slow_log.push_back(SlowQuery {
                latency,
                query: query.to_string(),
                why: self.federation.explain_why(),
            });
        }
        // Cut the query's metrics delta once: the profile keeps it, and the
        // winner attribution + audit record below read from it.
        let delta = self.obs.metrics.snapshot().diff(&metrics_before);
        let breaker_events = delta.counter(names::BREAKER_OPENED)
            + delta.counter(names::BREAKER_HALF_OPENED)
            + delta.counter(names::BREAKER_CLOSED);
        // Assemble the query's black box and offer it to the worst-N ring.
        self.obs.metrics.inc(names::PROFILE_CAPTURED);
        self.profiles.lock().expect("profile ring lock").push(QueryProfile {
            id: flight_id,
            query: query.to_string(),
            scheme: "Federation".to_string(),
            rows: emitted,
            latency: Some(latency),
            est_cost: out.planned.est_cost,
            observed_cost: out.measured_cost,
            splices: replans,
            drift_triggers,
            plan_cache: cache_label.to_string(),
            breakers: breaker_states
                .iter()
                .map(|(name, health)| (name.clone(), health.label().to_string()))
                .collect(),
            cardinalities: Vec::new(),
            spans: self.obs.tracer.spans_from(span_mark),
            flight: self
                .flight
                .record(flight_id)
                .map(|r| r.events.iter().map(|e| e.to_string()).collect())
                .unwrap_or_default(),
            metrics: delta.clone(),
        });
        // Winner attribution: fold this query's delta onto the per-member
        // counters the health scoreboard reads. The formatting is gated on
        // `enabled()` so the obs-off build never allocates the names.
        if self.obs.enabled() {
            for (prefix, v) in [
                (names::MEMBER_QUERIES_PREFIX, 1),
                (names::MEMBER_RETRIES_PREFIX, delta.counter(names::RESILIENCE_RETRIES)),
                (names::MEMBER_SPLICES_PREFIX, replans),
                (names::MEMBER_DRIFT_PREFIX, drift_triggers),
                (names::BREAKER_OPENED_PREFIX, delta.counter(names::BREAKER_OPENED)),
                (names::MEMBER_EST_COST_MILLI_PREFIX, to_milli(out.planned.est_cost)),
                (names::MEMBER_OBS_COST_MILLI_PREFIX, to_milli(out.measured_cost)),
            ] {
                if v > 0 {
                    self.obs.metrics.add(&format!("{prefix}{member_name}"), v);
                }
            }
        }
        self.journal_append(&AuditRecord {
            id: flight_id,
            fingerprint,
            query: query.to_string(),
            scheme: self.cfg.scheme.name().to_string(),
            status: "ok".to_string(),
            rows: emitted,
            wall_us: Some(latency_us),
            ticks: self.obs.tracer.tick().saturating_sub(tick0),
            splices: replans,
            drift_triggers,
            breaker_events,
            capindex_candidates: index_candidates as u64,
            capindex_total: index_total as u64,
        });
        self.maybe_roll();
        let breakers: Vec<String> = breaker_states
            .iter()
            .map(|(name, health)| format!("{name}:{}", health.label()))
            .collect();
        Ok(format!(
            "{} rows (est cost {:.2}, measured cost {:.2}, {} source queries, capindex \
             {index_candidates}/{index_total} candidates, {replans} replans, plan cache \
             {cache_label}, tenant {tenant}, breakers [{}], flight #{flight_id})\n",
            emitted,
            out.planned.est_cost,
            out.measured_cost,
            out.meter.queries,
            breakers.join(" "),
        ))
    }

    /// Appends one audit record to the journal (when configured), keeping
    /// the `journal.*` counters in step. Append failures are reported on
    /// stderr but never fail the query — the answer already streamed.
    pub(super) fn journal_append(&self, record: &AuditRecord) {
        let mut journal = self.journal.lock().expect("journal lock");
        let Some(journal) = journal.as_mut() else { return };
        let rotations_before = journal.rotations;
        match journal.append(record) {
            Ok(()) => {
                self.obs.metrics.inc(names::JOURNAL_RECORDS);
                let rotated = journal.rotations - rotations_before;
                if rotated > 0 {
                    self.obs.metrics.add(names::JOURNAL_ROTATIONS, rotated);
                }
            }
            Err(e) => eprintln!("csqp serve: journal append failed: {e}"),
        }
    }

    /// Closes the current telemetry window once `window_queries` queries
    /// have completed since the last boundary. Serve is the one wall-clock
    /// place in the stack, so windows carry a wall stamp here.
    pub(super) fn maybe_roll(&self) {
        let done = self.queries_done.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1;
        if !done.is_multiple_of(self.cfg.window_queries.max(1)) {
            return;
        }
        let now = self.federation.metrics_snapshot();
        let ticks = self.obs.tracer.tick();
        let wall_us = self.started.elapsed().as_micros() as u64;
        let mut timeseries = self.timeseries.lock().expect("timeseries lock");
        timeseries.roll(now, ticks, Some(wall_us));
        self.obs.metrics.gauge_set(names::TIMESERIES_WINDOWS, timeseries.len() as f64);
    }
}

/// Cost units are fractional; the per-member counters keep them as integral
/// milli-units so the registry stays u64 (same convention as the
/// federation-side taps).
fn to_milli(cost: f64) -> u64 {
    (cost * 1000.0).round() as u64
}
