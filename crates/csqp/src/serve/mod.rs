//! `csqp serve` — a long-running federation behind a tiny TCP server.
//!
//! Keeps one warm [`Federation`] (compiled capability index, armed flight
//! recorder, and a warm per-member [`Mediator`]) behind a hand-rolled
//! HTTP/1.0 listener built only on `std::net` — no runtime, no
//! dependencies. Endpoints:
//!
//! | endpoint | answers |
//! |----------|---------|
//! | `GET /healthz` | `ok` |
//! | `GET /metrics` | Prometheus text exposition of the metrics registry |
//! | `GET /query?cond=<urlenc>&attrs=<a,b>[&limit=<n>]` | plans + streams rows incrementally, summary trailer last |
//! | `GET /flightrecorder` | index of recorded query flights |
//! | `GET /flightrecorder?query=<id>` | `EXPLAIN WHY` replay of flight `id` |
//! | `GET /slowlog` | recent slow queries with their decision trails |
//! | `GET /profile` | index of the worst-N retained query profiles |
//! | `GET /profile/<id>` | full [`QueryProfile`] JSON for flight `id` |
//! | `GET /spans` | the tracer's hierarchical span tree, rendered |
//! | `GET /shutdown` | stops the accept loop |
//!
//! A bare (non-HTTP) first line speaks the line protocol instead: `ping`,
//! `why`, or `query <attrs,csv> <condition>`.
//!
//! `/query` responses are **incremental**: rows go out the socket as the
//! streaming executor produces batches (no `Content-Length`; HTTP/1.0
//! read-until-close framing), and the `N rows (est cost …)` summary is a
//! trailer line once the pipeline drains. `limit=` terminates the pipeline
//! early after N rows — the source stops shipping, not just the client
//! display.
//!
//! Serve mode is the **only** place wall-clock time enters the stack: the
//! `serve.*` metrics (latency histogram, slow-query counter) are real-time
//! by design and excluded from every golden test, keeping the deterministic
//! virtual-tick layer untouched.
//!
//! The implementation is a small module tree: [`self`] holds the
//! configuration and the `Server` handle, `listener` the accept loop,
//! `connection` the per-connection protocol state machine, `router` the
//! non-query endpoints, and `state` the query path plus the telemetry
//! stores every connection shares.

mod connection;
mod http;
mod router;
mod state;

use csqp_core::federation::Federation;
use csqp_core::mediator::{Mediator, Scheme};
use csqp_obs::{
    timeseries::TimeSeries, FlightRecorder, JournalWriter, LatencyKey, Obs, ProfileRing,
    QueryProfile, SloConfig,
};
use csqp_source::Source;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Planning scheme for served queries.
    pub scheme: Scheme,
    /// Wall-clock threshold (milliseconds) beyond which a query enters the
    /// slow-query log with its full `EXPLAIN WHY` decision trail.
    pub slow_ms: u64,
    /// Slow-query log ring size (oldest entries evicted).
    pub slow_log_capacity: usize,
    /// Serve queries through the adaptive executor: mid-query cardinality
    /// drift pauses the pipeline and splices in a re-planned residual
    /// (answers stay set-identical; the trailer reports the splice count).
    /// On by default; a no-op in builds without the `adaptive` feature.
    pub adaptive: bool,
    /// How many worst-latency query profiles the tail-sampling ring keeps
    /// resident for `/profile` post-mortems.
    pub profile_ring_capacity: usize,
    /// Append an [`csqp_obs::AuditRecord`] per completed query to this
    /// JSONL path (`--journal`); `None` disables journaling.
    pub journal_path: Option<String>,
    /// Size-based journal rotation threshold (`<path>` → `<path>.1`).
    pub journal_max_bytes: u64,
    /// Queries per telemetry window: every N completed queries the registry
    /// delta is rolled into the time-series ring.
    pub window_queries: u64,
    /// Windows the time-series ring retains.
    pub timeseries_capacity: usize,
    /// SLO latency objective in milliseconds: queries at or above it count
    /// against the latency budget (`slo.latency_burn_rate`).
    pub slo_latency_ms: u64,
    /// SLO error budget: the fraction of queries allowed to breach
    /// (latency or error) before the burn rate exceeds 1.0.
    pub slo_error_budget: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            scheme: Scheme::GenCompact,
            slow_ms: 100,
            slow_log_capacity: 32,
            adaptive: true,
            profile_ring_capacity: 8,
            journal_path: None,
            journal_max_bytes: 1 << 20,
            window_queries: 4,
            timeseries_capacity: 64,
            slo_latency_ms: 100,
            slo_error_budget: 0.01,
        }
    }
}

/// One slow-query log entry.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Wall-clock plus virtual-tick latency. Ranking and rendering prefer
    /// wall time and fall back to ticks, so builds without a wall clock
    /// still order the log deterministically.
    pub latency: LatencyKey,
    /// The query, rendered.
    pub query: String,
    /// The `EXPLAIN WHY` report captured at serve time.
    pub why: String,
}

/// The serve-mode server: one warm federation (capability index + one warm
/// mediator per member), one TCP listener.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    federation: Federation,
    /// One warm mediator per federation member, in member order; the
    /// federation's capability index + plan pick the member, the member's
    /// mediator streams the answer.
    mediators: Vec<Mediator>,
    obs: Arc<Obs>,
    flight: Arc<FlightRecorder>,
    cfg: ServeConfig,
    slow_log: VecDeque<SlowQuery>,
    /// Tail-sampling store: the worst-N served queries by latency, each
    /// with its full profile.
    profiles: ProfileRing,
    /// Windowed registry deltas for `/status` and `/timeseries`.
    timeseries: TimeSeries,
    /// Optional on-disk audit journal (`--journal`).
    journal: Option<JournalWriter>,
    /// Completed queries since the last window roll.
    queries_since_roll: u64,
    /// The SLO objective `/status` burn rates are computed against.
    slo: SloConfig,
    /// Serve start, the zero point of window wall-clock stamps.
    started: Instant,
}

impl Server {
    /// Binds the listener and warms up a single-member federation for
    /// `source` (see [`Server::bind_federation`]).
    pub fn bind(source: Arc<Source>, cfg: ServeConfig) -> io::Result<Server> {
        Server::bind_federation(vec![source], cfg)
    }

    /// Binds the listener and warms up a federation over `members`: every
    /// query is routed through the compiled capability index and planned
    /// federation-wide (the index's prune counts land in the `capindex.*`
    /// metrics and the flight recorder), then streamed by the winning
    /// member's warm mediator.
    pub fn bind_federation(members: Vec<Arc<Source>>, cfg: ServeConfig) -> io::Result<Server> {
        assert!(!members.is_empty(), "serve needs at least one source");
        let listener = TcpListener::bind(&cfg.addr)?;
        let obs = Arc::new(Obs::new());
        let flight = Arc::new(FlightRecorder::new());
        let federation = members
            .iter()
            .fold(Federation::new(), |f, m| f.with_member(m.clone()))
            .with_obs(obs.clone())
            .with_flight_recorder(flight.clone());
        let mediators = members
            .iter()
            .map(|m| Mediator::new(m.clone()).with_scheme(cfg.scheme).with_obs(obs.clone()))
            .collect();
        let profiles = ProfileRing::new(cfg.profile_ring_capacity);
        let timeseries = TimeSeries::new(cfg.timeseries_capacity);
        let journal = match &cfg.journal_path {
            Some(path) => {
                Some(JournalWriter::open(path, cfg.journal_max_bytes).map_err(io::Error::other)?)
            }
            None => None,
        };
        let slo = SloConfig {
            latency_objective_us: cfg.slo_latency_ms.saturating_mul(1000),
            error_budget: cfg.slo_error_budget,
        };
        Ok(Server {
            listener,
            federation,
            mediators,
            obs,
            flight,
            cfg,
            slow_log: VecDeque::new(),
            profiles,
            timeseries,
            journal,
            queries_since_roll: 0,
            slo,
            started: Instant::now(),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The first member's warm mediator (the only one in single-source
    /// serve mode).
    pub fn mediator(&self) -> &Mediator {
        &self.mediators[0]
    }

    /// The federation routing the served queries.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The slow-query log, oldest first.
    pub fn slow_log(&self) -> impl Iterator<Item = &SlowQuery> {
        self.slow_log.iter()
    }

    /// Accept loop: serves connections until `/shutdown` (or a fatal
    /// listener error). Prints the listening address on entry so scripts
    /// can scrape the ephemeral port.
    pub fn run(&mut self) -> io::Result<()> {
        println!("csqp serve: listening on {}", self.local_addr()?);
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) => {
                    self.obs.metrics.inc(csqp_obs::names::SERVE_ERRORS);
                    eprintln!("csqp serve: accept failed: {e}");
                    continue;
                }
            };
            match self.handle(stream) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => {
                    // A misbehaving client must not take the server down.
                    self.obs.metrics.inc(csqp_obs::names::SERVE_ERRORS);
                    eprintln!("csqp serve: connection error: {e}");
                }
            }
        }
    }

    /// A retained profile by flight id, worst-first on ties.
    fn profile(&self, id: u64) -> Option<&QueryProfile> {
        self.profiles.worst().iter().find(|p| p.id == id)
    }

    /// The worst-N retained profiles, worst first.
    pub fn profiles(&self) -> &[QueryProfile] {
        self.profiles.worst()
    }
}

#[cfg(test)]
mod tests {
    use super::http::{http_request_target, percent_decode, query_param};

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("price%20%3C%2040000"), "price < 40000");
        assert_eq!(percent_decode("make%20%3D%20%22BMW%22"), "make = \"BMW\"");
        assert_eq!(percent_decode("100%"), "100%", "trailing percent is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn http_request_lines() {
        assert_eq!(http_request_target("GET /healthz HTTP/1.1"), Some("/healthz"));
        assert_eq!(http_request_target("GET /metrics HTTP/1.0"), Some("/metrics"));
        assert_eq!(http_request_target("query model,year make = \"BMW\""), None);
        assert_eq!(http_request_target("ping"), None);
        assert_eq!(http_request_target(""), None);
    }

    #[test]
    fn query_params() {
        assert_eq!(query_param("cond=a%3D1&attrs=x,y", "attrs").as_deref(), Some("x,y"));
        assert_eq!(query_param("cond=a%3D1&attrs=x,y", "cond").as_deref(), Some("a%3D1"));
        assert_eq!(query_param("cond=a", "attrs"), None);
        assert_eq!(query_param("", "cond"), None);
    }
}
