//! `csqp serve` — a long-running federation behind a tiny TCP server.
//!
//! Keeps one warm [`Federation`] (compiled capability index, armed flight
//! recorder, a federation-wide prepared-plan cache, and a warm per-member
//! [`Mediator`]) behind a hand-rolled HTTP/1.x listener built only on
//! `std::net` — no runtime, no dependencies. Endpoints:
//!
//! | endpoint | answers |
//! |----------|---------|
//! | `GET /healthz` | `ok` |
//! | `GET /metrics` | Prometheus text exposition of the metrics registry |
//! | `GET /query?cond=<urlenc>&attrs=<a,b>[&limit=<n>][&tenant=<id>]` | plans + streams rows incrementally, summary trailer last |
//! | `GET /flightrecorder` | index of recorded query flights |
//! | `GET /flightrecorder?query=<id>` | `EXPLAIN WHY` replay of flight `id` |
//! | `GET /slowlog` | recent slow queries with their decision trails |
//! | `GET /profile` | index of the worst-N retained query profiles |
//! | `GET /profile/<id>` | full [`QueryProfile`] JSON for flight `id` |
//! | `GET /spans` | the tracer's hierarchical span tree, rendered |
//! | `GET /shutdown` | drains and stops the accept loop |
//!
//! A bare (non-HTTP) first line speaks the line protocol instead: `ping`,
//! `why`, or `query <attrs,csv> <condition>`.
//!
//! ## The front door
//!
//! [`Server::run`] is a **worker pool**: the caller's thread accepts and a
//! fixed set of scoped worker threads serve connections off a bounded
//! queue, so one slow client never blocks the listener. Connections are
//! **keep-alive** (HTTP/1.1 semantics, pipelined line-protocol commands),
//! and every query passes **admission control** first — a global in-flight
//! cap sheds overload and per-tenant token buckets (`tenant=` query param
//! or `X-Tenant` header) shed quota breaches, both as fast `429`s that cost
//! no planning. `/shutdown` *drains*: the listener stops accepting but
//! queued and in-progress connections are served to completion.
//!
//! Served queries go through [`Federation::prepare`]: the prepared-plan
//! cache keyed on parameterized condition fingerprints rebinds constants
//! into a cached plan on a hit, skipping the planner fan-out entirely; the
//! `/query` trailer and the query profile report the decision.
//!
//! `/query` responses are **incremental**: rows go out the socket as the
//! streaming executor produces batches (no `Content-Length`;
//! read-until-close framing), and the `N rows (est cost …)` summary is a
//! trailer line once the pipeline drains. `limit=` terminates the pipeline
//! early after N rows — the source stops shipping, not just the client
//! display.
//!
//! Serve mode is the **only** place wall-clock time enters the stack: the
//! `serve.*` metrics (latency histogram, slow-query counter) are real-time
//! by design and excluded from every golden test, keeping the deterministic
//! virtual-tick layer untouched.
//!
//! The implementation is a small module tree: [`self`] holds the
//! configuration and the `Server` handle plus the worker-pool accept loop,
//! `admission` the tenant quotas and the in-flight cap, `connection` the
//! per-connection protocol state machine, `router` the non-query
//! endpoints, and `state` the query path plus the telemetry stores every
//! worker shares.

mod admission;
mod connection;
mod http;
mod router;
mod state;

use admission::Admission;
use csqp_core::federation::Federation;
use csqp_core::mediator::{Mediator, Scheme};
use csqp_core::plancache::PlanCache;
use csqp_obs::{
    timeseries::TimeSeries, FlightRecorder, JournalWriter, LatencyKey, Obs, ProfileRing,
    QueryProfile, SloConfig,
};
use csqp_source::Source;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Planning scheme for served queries.
    pub scheme: Scheme,
    /// Wall-clock threshold (milliseconds) beyond which a query enters the
    /// slow-query log with its full `EXPLAIN WHY` decision trail.
    pub slow_ms: u64,
    /// Slow-query log ring size (oldest entries evicted).
    pub slow_log_capacity: usize,
    /// Serve queries through the adaptive executor: mid-query cardinality
    /// drift pauses the pipeline and splices in a re-planned residual
    /// (answers stay set-identical; the trailer reports the splice count).
    /// On by default; a no-op in builds without the `adaptive` feature.
    pub adaptive: bool,
    /// How many worst-latency query profiles the tail-sampling ring keeps
    /// resident for `/profile` post-mortems.
    pub profile_ring_capacity: usize,
    /// Append an [`csqp_obs::AuditRecord`] per completed query to this
    /// JSONL path (`--journal`); `None` disables journaling.
    pub journal_path: Option<String>,
    /// Size-based journal rotation threshold (`<path>` → `<path>.1`).
    pub journal_max_bytes: u64,
    /// Queries per telemetry window: every N completed queries the registry
    /// delta is rolled into the time-series ring.
    pub window_queries: u64,
    /// Windows the time-series ring retains.
    pub timeseries_capacity: usize,
    /// SLO latency objective in milliseconds: queries at or above it count
    /// against the latency budget (`slo.latency_burn_rate`).
    pub slo_latency_ms: u64,
    /// SLO error budget: the fraction of queries allowed to breach
    /// (latency or error) before the burn rate exceeds 1.0.
    pub slo_error_budget: f64,
    /// Worker threads serving connections (minimum 1). The accept loop
    /// runs on the calling thread and feeds a bounded queue.
    pub workers: usize,
    /// Global concurrent-query ceiling: queries beyond it shed with a fast
    /// `429` before any planning. `0` disables overload shedding.
    pub max_inflight: u64,
    /// Per-tenant admission rate in queries per second (token-bucket
    /// refill). `0.0` disables tenant quotas (the default, so single-user
    /// serving needs no flags).
    pub tenant_rate: f64,
    /// Token-bucket burst capacity per tenant (how far a tenant may exceed
    /// the rate momentarily).
    pub tenant_burst: f64,
    /// Prepared-plan cache capacity (distinct parameterized shapes kept).
    /// `0` disables the cache: every query plans cold, as a
    /// single-threaded pre-cache server would (the bench baseline).
    pub plan_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            scheme: Scheme::GenCompact,
            slow_ms: 100,
            slow_log_capacity: 32,
            adaptive: true,
            profile_ring_capacity: 8,
            journal_path: None,
            journal_max_bytes: 1 << 20,
            window_queries: 4,
            timeseries_capacity: 64,
            slo_latency_ms: 100,
            slo_error_budget: 0.01,
            workers: 4,
            max_inflight: 64,
            tenant_rate: 0.0,
            tenant_burst: 8.0,
            plan_cache_capacity: 256,
        }
    }
}

/// One slow-query log entry.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Wall-clock plus virtual-tick latency. Ranking and rendering prefer
    /// wall time and fall back to ticks, so builds without a wall clock
    /// still order the log deterministically.
    pub latency: LatencyKey,
    /// The query, rendered.
    pub query: String,
    /// The `EXPLAIN WHY` report captured at serve time.
    pub why: String,
}

/// The serve-mode server: one warm federation (capability index, prepared-
/// plan cache, one warm mediator per member), one TCP listener, N workers.
///
/// Everything mutable is behind its own lock or atomic so the worker pool
/// shares one `&Server`; the locks are per-store (slow log, profile ring,
/// time series, journal), never held across query execution.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    federation: Federation,
    /// One warm mediator per federation member, in member order; the
    /// federation's capability index + plan pick the member, the member's
    /// mediator streams the answer.
    mediators: Vec<Mediator>,
    obs: Arc<Obs>,
    flight: Arc<FlightRecorder>,
    cfg: ServeConfig,
    /// The federation-wide prepared-plan cache (also installed on the
    /// federation and every member mediator).
    plan_cache: Arc<PlanCache>,
    /// Tenant quotas + the global in-flight cap, consulted before parsing.
    admission: Admission,
    slow_log: Mutex<VecDeque<SlowQuery>>,
    /// Tail-sampling store: the worst-N served queries by latency, each
    /// with its full profile.
    profiles: Mutex<ProfileRing>,
    /// Windowed registry deltas for `/status` and `/timeseries`.
    timeseries: Mutex<TimeSeries>,
    /// Optional on-disk audit journal (`--journal`).
    journal: Mutex<Option<JournalWriter>>,
    /// Completed queries since serve start (windows roll on multiples of
    /// `window_queries`).
    queries_done: AtomicU64,
    /// Set by `/shutdown`; the accept loop stops, workers drain.
    shutdown: AtomicBool,
    /// The SLO objective `/status` burn rates are computed against.
    slo: SloConfig,
    /// Serve start, the zero point of window wall-clock stamps.
    started: Instant,
}

impl Server {
    /// Binds the listener and warms up a single-member federation for
    /// `source` (see [`Server::bind_federation`]).
    pub fn bind(source: Arc<Source>, cfg: ServeConfig) -> io::Result<Server> {
        Server::bind_federation(vec![source], cfg)
    }

    /// Binds the listener and warms up a federation over `members`: every
    /// query is routed through the compiled capability index and planned
    /// federation-wide (the index's prune counts land in the `capindex.*`
    /// metrics and the flight recorder), then streamed by the winning
    /// member's warm mediator. A shared prepared-plan cache sits in front
    /// of the planner: repeat query *shapes* skip the fan-out entirely.
    pub fn bind_federation(members: Vec<Arc<Source>>, cfg: ServeConfig) -> io::Result<Server> {
        assert!(!members.is_empty(), "serve needs at least one source");
        let listener = TcpListener::bind(&cfg.addr)?;
        let obs = Arc::new(Obs::new());
        let flight = Arc::new(FlightRecorder::new());
        let plan_cache = Arc::new(PlanCache::with_capacity(cfg.plan_cache_capacity.max(1)));
        let caching = cfg.plan_cache_capacity > 0;
        let mut federation = members
            .iter()
            .fold(Federation::new(), |f, m| f.with_member(m.clone()))
            .with_obs(obs.clone())
            .with_flight_recorder(flight.clone());
        if caching {
            federation = federation.with_plan_cache(plan_cache.clone());
        }
        let mediators = members
            .iter()
            .map(|m| {
                let m = Mediator::new(m.clone()).with_scheme(cfg.scheme).with_obs(obs.clone());
                if caching {
                    m.with_plan_cache(plan_cache.clone())
                } else {
                    m
                }
            })
            .collect();
        let profiles = Mutex::new(ProfileRing::new(cfg.profile_ring_capacity));
        let timeseries = Mutex::new(TimeSeries::new(cfg.timeseries_capacity));
        let journal = match &cfg.journal_path {
            Some(path) => {
                Some(JournalWriter::open(path, cfg.journal_max_bytes).map_err(io::Error::other)?)
            }
            None => None,
        };
        let slo = SloConfig {
            latency_objective_us: cfg.slo_latency_ms.saturating_mul(1000),
            error_budget: cfg.slo_error_budget,
        };
        let admission = Admission::new(cfg.max_inflight, cfg.tenant_rate, cfg.tenant_burst);
        Ok(Server {
            listener,
            federation,
            mediators,
            obs,
            flight,
            cfg,
            plan_cache,
            admission,
            slow_log: Mutex::new(VecDeque::new()),
            profiles,
            timeseries,
            journal: Mutex::new(journal),
            queries_done: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            slo,
            started: Instant::now(),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The first member's warm mediator (the only one in single-source
    /// serve mode).
    pub fn mediator(&self) -> &Mediator {
        &self.mediators[0]
    }

    /// The federation routing the served queries.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The prepared-plan cache in front of the federation planner.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// A snapshot of the slow-query log, oldest first.
    pub fn slow_log(&self) -> Vec<SlowQuery> {
        self.slow_log.lock().expect("slow log lock").iter().cloned().collect()
    }

    /// Accept loop with a worker pool: the calling thread accepts and N
    /// scoped workers serve connections off a bounded queue, until
    /// `/shutdown` (or a fatal listener error). On shutdown the listener
    /// stops accepting but every queued and in-progress connection is
    /// served to completion (drain). Prints the listening address on entry
    /// so scripts can scrape the ephemeral port.
    pub fn run(&self) -> io::Result<()> {
        println!("csqp serve: listening on {}", self.local_addr()?);
        let workers = self.cfg.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * 2);
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Hold the queue lock only for the dequeue, never while
                    // serving: workers drain the queue independently.
                    let next = rx.lock().expect("worker queue lock").recv();
                    let Ok(stream) = next else { break };
                    match self.handle(stream) {
                        Ok(true) => self.begin_shutdown(),
                        Ok(false) => {}
                        Err(e) => {
                            // A misbehaving client must not take a worker
                            // (let alone the server) down.
                            self.obs.metrics.inc(csqp_obs::names::SERVE_ERRORS);
                            eprintln!("csqp serve: connection error: {e}");
                        }
                    }
                });
            }
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let stream = match self.listener.accept() {
                    Ok((s, _)) => s,
                    Err(e) => {
                        if self.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        self.obs.metrics.inc(csqp_obs::names::SERVE_ERRORS);
                        eprintln!("csqp serve: accept failed: {e}");
                        continue;
                    }
                };
                if self.shutdown.load(Ordering::Acquire) {
                    // The self-connect wake (or a straggler): drop it —
                    // nothing was promised to this connection yet.
                    break;
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Closing the channel is the drain signal: workers finish the
            // queued connections, then their `recv` errors and they exit.
            drop(tx);
        });
        Ok(())
    }

    /// Flips the shutdown flag and wakes the (possibly blocked) acceptor
    /// with a throwaway self-connection. Idempotent.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Ok(addr) = self.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// A retained profile by flight id, worst-first on ties.
    fn profile(&self, id: u64) -> Option<QueryProfile> {
        self.profiles
            .lock()
            .expect("profile ring lock")
            .worst()
            .iter()
            .find(|p| p.id == id)
            .cloned()
    }

    /// A snapshot of the worst-N retained profiles, worst first.
    pub fn profiles(&self) -> Vec<QueryProfile> {
        self.profiles.lock().expect("profile ring lock").worst().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::http::{http_request_target, percent_decode, query_param};

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("price%20%3C%2040000"), "price < 40000");
        assert_eq!(percent_decode("make%20%3D%20%22BMW%22"), "make = \"BMW\"");
        assert_eq!(percent_decode("100%"), "100%", "trailing percent is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn http_request_lines() {
        assert_eq!(http_request_target("GET /healthz HTTP/1.1"), Some("/healthz"));
        assert_eq!(http_request_target("GET /metrics HTTP/1.0"), Some("/metrics"));
        assert_eq!(http_request_target("query model,year make = \"BMW\""), None);
        assert_eq!(http_request_target("ping"), None);
        assert_eq!(http_request_target(""), None);
    }

    #[test]
    fn query_params() {
        assert_eq!(query_param("cond=a%3D1&attrs=x,y", "attrs").as_deref(), Some("x,y"));
        assert_eq!(query_param("cond=a%3D1&attrs=x,y", "cond").as_deref(), Some("a%3D1"));
        assert_eq!(query_param("cond=a", "attrs"), None);
        assert_eq!(query_param("", "cond"), None);
    }
}
