//! # csqp — capability-sensitive query processing on Internet sources
//!
//! Umbrella crate re-exporting the full stack of this reproduction of
//! *"Capability-Sensitive Query Processing on Internet Sources"*
//! (H. Garcia-Molina, W. Labio, R. Yerneni; ICDE 1999):
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | conditions | [`expr`] | condition trees, rewrites, canonical form |
//! | capabilities | [`ssdl`] | SSDL descriptions, Earley `Check`, closure |
//! | storage | [`relation`] | in-memory relations, operators, statistics |
//! | sources | [`source`] | capability-gated simulated Internet sources |
//! | plans | [`plan`] | plan ADT, §6.2 cost model, executor |
//! | planners | [`core`] | GenModular, GenCompact, CNF/DNF/DISCO baselines |
//! | observability | [`obs`] | metrics registry, tracer, query flight recorder |
//! | serving | [`serve`] | long-running mediator with `/metrics` + `EXPLAIN WHY` |
//!
//! ## Quickstart
//!
//! ```
//! use csqp::prelude::*;
//!
//! // Five demo sources with the paper's capability profiles.
//! let catalog = Catalog::demo_small(7);
//! let bookstore = catalog.get("bookstore").unwrap().clone();
//!
//! // Example 1.1: two authors, one keyword — unsupported as a single query.
//! let query = TargetQuery::parse(
//!     r#"(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams""#,
//!     &["isbn", "title", "author"],
//! ).unwrap();
//!
//! let mediator = Mediator::new(bookstore);
//! let outcome = mediator.run(&query).unwrap();
//! assert_eq!(outcome.meter.queries, 2); // the paper's two-query plan
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use csqp_core as core;
pub use csqp_expr as expr;
pub use csqp_obs as obs;
pub use csqp_plan as plan;
pub use csqp_relation as relation;
pub use csqp_source as source;
pub use csqp_ssdl as ssdl;

pub mod serve;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use csqp_core::mediator::{CardKind, Mediator, MediatorError, RunOutcome, Scheme};
    pub use csqp_core::types::{PlanError, PlannedQuery, PlannerReport, TargetQuery};
    pub use csqp_core::{GenCompactConfig, GenModularConfig, IpgConfig};
    pub use csqp_expr::parse::parse_condition;
    pub use csqp_expr::{Atom, CmpOp, CondTree, Connector, Value, ValueType};
    pub use csqp_plan::{
        attrs, execute, execute_measured, AttrSet, CostModel, LatencyBandwidthCost, Plan,
    };
    pub use csqp_relation::{Relation, Schema, TableStats};
    pub use csqp_source::{Catalog, CostParams, Meter, Source};
    pub use csqp_ssdl::{parse_ssdl, CompiledSource, SsdlDesc};
}
