//! `csqp serve` — a long-running federation behind a tiny TCP server.
//!
//! Keeps one warm [`Federation`] (compiled capability index, armed flight
//! recorder, and a warm per-member [`Mediator`]) behind a hand-rolled
//! HTTP/1.0 listener built only on `std::net` — no runtime, no
//! dependencies. Endpoints:
//!
//! | endpoint | answers |
//! |----------|---------|
//! | `GET /healthz` | `ok` |
//! | `GET /metrics` | Prometheus text exposition of the metrics registry |
//! | `GET /query?cond=<urlenc>&attrs=<a,b>[&limit=<n>]` | plans + streams rows incrementally, summary trailer last |
//! | `GET /flightrecorder` | index of recorded query flights |
//! | `GET /flightrecorder?query=<id>` | `EXPLAIN WHY` replay of flight `id` |
//! | `GET /slowlog` | recent slow queries with their decision trails |
//! | `GET /profile` | index of the worst-N retained query profiles |
//! | `GET /profile/<id>` | full [`QueryProfile`] JSON for flight `id` |
//! | `GET /spans` | the tracer's hierarchical span tree, rendered |
//! | `GET /shutdown` | stops the accept loop |
//!
//! A bare (non-HTTP) first line speaks the line protocol instead: `ping`,
//! `why`, or `query <attrs,csv> <condition>`.
//!
//! `/query` responses are **incremental**: rows go out the socket as the
//! streaming executor produces batches (no `Content-Length`; HTTP/1.0
//! read-until-close framing), and the `N rows (est cost …)` summary is a
//! trailer line once the pipeline drains. `limit=` terminates the pipeline
//! early after N rows — the source stops shipping, not just the client
//! display.
//!
//! Serve mode is the **only** place wall-clock time enters the stack: the
//! `serve.*` metrics (latency histogram, slow-query counter) are real-time
//! by design and excluded from every golden test, keeping the deterministic
//! virtual-tick layer untouched.

use csqp_core::federation::Federation;
use csqp_core::mediator::{AdaptiveConfig, Mediator, MediatorError, Scheme};
use csqp_core::types::TargetQuery;
use csqp_obs::{
    health, names, timeseries::TimeSeries, AuditRecord, FlightRecorder, JournalWriter, LatencyKey,
    Obs, ProfileRing, QueryProfile, SloConfig,
};
use csqp_plan::exec_stream::StreamConfig;
use csqp_source::Source;
use csqp_ssdl::linearize::cond_fingerprint;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Planning scheme for served queries.
    pub scheme: Scheme,
    /// Wall-clock threshold (milliseconds) beyond which a query enters the
    /// slow-query log with its full `EXPLAIN WHY` decision trail.
    pub slow_ms: u64,
    /// Slow-query log ring size (oldest entries evicted).
    pub slow_log_capacity: usize,
    /// Serve queries through the adaptive executor: mid-query cardinality
    /// drift pauses the pipeline and splices in a re-planned residual
    /// (answers stay set-identical; the trailer reports the splice count).
    /// On by default; a no-op in builds without the `adaptive` feature.
    pub adaptive: bool,
    /// How many worst-latency query profiles the tail-sampling ring keeps
    /// resident for `/profile` post-mortems.
    pub profile_ring_capacity: usize,
    /// Append an [`AuditRecord`] per completed query to this JSONL path
    /// (`--journal`); `None` disables journaling.
    pub journal_path: Option<String>,
    /// Size-based journal rotation threshold (`<path>` → `<path>.1`).
    pub journal_max_bytes: u64,
    /// Queries per telemetry window: every N completed queries the registry
    /// delta is rolled into the time-series ring.
    pub window_queries: u64,
    /// Windows the time-series ring retains.
    pub timeseries_capacity: usize,
    /// SLO latency objective in milliseconds: queries at or above it count
    /// against the latency budget (`slo.latency_burn_rate`).
    pub slo_latency_ms: u64,
    /// SLO error budget: the fraction of queries allowed to breach
    /// (latency or error) before the burn rate exceeds 1.0.
    pub slo_error_budget: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            scheme: Scheme::GenCompact,
            slow_ms: 100,
            slow_log_capacity: 32,
            adaptive: true,
            profile_ring_capacity: 8,
            journal_path: None,
            journal_max_bytes: 1 << 20,
            window_queries: 4,
            timeseries_capacity: 64,
            slo_latency_ms: 100,
            slo_error_budget: 0.01,
        }
    }
}

/// One slow-query log entry.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Wall-clock plus virtual-tick latency. Ranking and rendering prefer
    /// wall time and fall back to ticks, so builds without a wall clock
    /// still order the log deterministically.
    pub latency: LatencyKey,
    /// The query, rendered.
    pub query: String,
    /// The `EXPLAIN WHY` report captured at serve time.
    pub why: String,
}

/// The serve-mode server: one warm federation (capability index + one warm
/// mediator per member), one TCP listener.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    federation: Federation,
    /// One warm mediator per federation member, in member order; the
    /// federation's capability index + plan pick the member, the member's
    /// mediator streams the answer.
    mediators: Vec<Mediator>,
    obs: Arc<Obs>,
    flight: Arc<FlightRecorder>,
    cfg: ServeConfig,
    slow_log: VecDeque<SlowQuery>,
    /// Tail-sampling store: the worst-N served queries by latency, each
    /// with its full profile.
    profiles: ProfileRing,
    /// Windowed registry deltas for `/status` and `/timeseries`.
    timeseries: TimeSeries,
    /// Optional on-disk audit journal (`--journal`).
    journal: Option<JournalWriter>,
    /// Completed queries since the last window roll.
    queries_since_roll: u64,
    /// The SLO objective `/status` burn rates are computed against.
    slo: SloConfig,
    /// Serve start, the zero point of window wall-clock stamps.
    started: Instant,
}

impl Server {
    /// Binds the listener and warms up a single-member federation for
    /// `source` (see [`Server::bind_federation`]).
    pub fn bind(source: Arc<Source>, cfg: ServeConfig) -> io::Result<Server> {
        Server::bind_federation(vec![source], cfg)
    }

    /// Binds the listener and warms up a federation over `members`: every
    /// query is routed through the compiled capability index and planned
    /// federation-wide (the index's prune counts land in the `capindex.*`
    /// metrics and the flight recorder), then streamed by the winning
    /// member's warm mediator.
    pub fn bind_federation(members: Vec<Arc<Source>>, cfg: ServeConfig) -> io::Result<Server> {
        assert!(!members.is_empty(), "serve needs at least one source");
        let listener = TcpListener::bind(&cfg.addr)?;
        let obs = Arc::new(Obs::new());
        let flight = Arc::new(FlightRecorder::new());
        let federation = members
            .iter()
            .fold(Federation::new(), |f, m| f.with_member(m.clone()))
            .with_obs(obs.clone())
            .with_flight_recorder(flight.clone());
        let mediators = members
            .iter()
            .map(|m| Mediator::new(m.clone()).with_scheme(cfg.scheme).with_obs(obs.clone()))
            .collect();
        let profiles = ProfileRing::new(cfg.profile_ring_capacity);
        let timeseries = TimeSeries::new(cfg.timeseries_capacity);
        let journal = match &cfg.journal_path {
            Some(path) => {
                Some(JournalWriter::open(path, cfg.journal_max_bytes).map_err(io::Error::other)?)
            }
            None => None,
        };
        let slo = SloConfig {
            latency_objective_us: cfg.slo_latency_ms.saturating_mul(1000),
            error_budget: cfg.slo_error_budget,
        };
        Ok(Server {
            listener,
            federation,
            mediators,
            obs,
            flight,
            cfg,
            slow_log: VecDeque::new(),
            profiles,
            timeseries,
            journal,
            queries_since_roll: 0,
            slo,
            started: Instant::now(),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The first member's warm mediator (the only one in single-source
    /// serve mode).
    pub fn mediator(&self) -> &Mediator {
        &self.mediators[0]
    }

    /// The federation routing the served queries.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The slow-query log, oldest first.
    pub fn slow_log(&self) -> impl Iterator<Item = &SlowQuery> {
        self.slow_log.iter()
    }

    /// Accept loop: serves connections until `/shutdown` (or a fatal
    /// listener error). Prints the listening address on entry so scripts
    /// can scrape the ephemeral port.
    pub fn run(&mut self) -> io::Result<()> {
        println!("csqp serve: listening on {}", self.local_addr()?);
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) => {
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    eprintln!("csqp serve: accept failed: {e}");
                    continue;
                }
            };
            match self.handle(stream) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => {
                    // A misbehaving client must not take the server down.
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    eprintln!("csqp serve: connection error: {e}");
                }
            }
        }
    }

    /// Serves one connection; `Ok(true)` means shutdown was requested.
    fn handle(&mut self, mut stream: TcpStream) -> io::Result<bool> {
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut first = String::new();
        reader.read_line(&mut first)?;
        let first = first.trim_end();
        self.obs.metrics.inc(names::SERVE_REQUESTS);
        if let Some(target) = http_request_target(first) {
            let target = target.to_string();
            // Drain (and ignore) the request headers.
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
                    break;
                }
            }
            let (path, query_string) = match target.split_once('?') {
                Some((p, q)) => (p, q.to_string()),
                None => (target.as_str(), String::new()),
            };
            if path == "/query" {
                // Streamed response: rows leave as batches arrive, so the
                // generic buffered write below does not apply.
                self.handle_query_http(&mut stream, &query_string)?;
                return Ok(false);
            }
            let (status, ctype, body, shutdown) = self.route(&target);
            write!(
                stream,
                "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n",
                body.len()
            )?;
            stream.write_all(body.as_bytes())?;
            Ok(shutdown)
        } else {
            let reply = self.handle_line(first);
            stream.write_all(reply.as_bytes())?;
            Ok(false)
        }
    }

    /// Routes one HTTP request target to a `(status, content-type, body,
    /// shutdown)` response.
    fn route(&mut self, target: &str) -> (&'static str, &'static str, String, bool) {
        const TEXT: &str = "text/plain; charset=utf-8";
        const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
        let (path, query_string) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        const JSON: &str = "application/json; charset=utf-8";
        if let Some(id) = path.strip_prefix("/profile/") {
            return match id.parse::<u64>().ok().and_then(|id| self.profile(id)) {
                Some(p) => ("200 OK", JSON, p.to_json(), false),
                None => ("404 Not Found", TEXT, format!("no profile {id:?} retained\n"), false),
            };
        }
        match path {
            "/healthz" => ("200 OK", TEXT, "ok\n".to_string(), false),
            "/metrics" => {
                // `?exemplars=1` upgrades histogram buckets to the
                // OpenMetrics-style exemplar syntax carrying query ids.
                let exemplars = query_param(query_string, "exemplars").is_some_and(|v| v == "1");
                let snap = self.federation.metrics_snapshot();
                ("200 OK", PROM, csqp_obs::prom::render_opts(&snap, exemplars), false)
            }
            "/flightrecorder" => match query_param(query_string, "query") {
                Some(id) => match id.parse::<u64>().ok().and_then(|id| self.flight.record(id)) {
                    Some(rec) => ("200 OK", TEXT, csqp_plan::why::explain_why(Some(&rec)), false),
                    None => ("404 Not Found", TEXT, format!("no flight {id:?} recorded\n"), false),
                },
                None => ("200 OK", TEXT, self.flight_index(), false),
            },
            // `/query` is handled by `handle_query_http` before routing
            // (streamed response); reaching it here means a programming
            // error, answered like any unknown route.
            "/status" => {
                let json = query_param(query_string, "format").is_some_and(|v| v == "json");
                let (ctype, body) = self.render_status(json);
                ("200 OK", ctype, body, false)
            }
            "/timeseries" => match query_param(query_string, "metric") {
                Some(metric) => {
                    let windows = query_param(query_string, "windows")
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or(usize::MAX);
                    ("200 OK", JSON, self.timeseries.render_json(&metric, windows), false)
                }
                None => {
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    (
                        "400 Bad Request",
                        TEXT,
                        "usage: /timeseries?metric=<name>[&windows=<n>]\n".to_string(),
                        false,
                    )
                }
            },
            "/slowlog" => ("200 OK", TEXT, self.render_slow_log(), false),
            "/profile" => ("200 OK", TEXT, self.profile_index(), false),
            "/spans" => {
                let spans = self.obs.tracer.spans();
                let body = if spans.is_empty() {
                    "no spans recorded\n".to_string()
                } else {
                    csqp_obs::span::render_tree(&spans)
                };
                ("200 OK", TEXT, body, false)
            }
            "/shutdown" => ("200 OK", TEXT, "shutting down\n".to_string(), true),
            _ => ("404 Not Found", TEXT, format!("no route {path}\n"), false),
        }
    }

    /// The line protocol: `ping`, `why`, or `query <attrs,csv> <condition>`.
    fn handle_line(&mut self, line: &str) -> String {
        let line = line.trim();
        if line == "ping" {
            return "pong\n".to_string();
        }
        if line == "why" {
            return self.federation.explain_why();
        }
        if let Some(rest) = line.strip_prefix("query ") {
            let Some((attrs, cond)) = rest.trim().split_once(' ') else {
                return "ERR usage: query <attrs,csv> <condition>\n".to_string();
            };
            let attrs: Vec<String> = attrs.split(',').map(|s| s.trim().to_string()).collect();
            let mut body = String::new();
            return match self.serve_query_streamed(cond, &attrs, None, &mut |chunk| {
                body.push_str(chunk);
                true
            }) {
                Ok(trailer) => format!("OK\n{body}{trailer}"),
                Err(msg) => format!("ERR {msg}"),
            };
        }
        self.obs.metrics.inc(names::SERVE_ERRORS);
        "ERR unknown command (try: ping | why | query <attrs,csv> <condition>)\n".to_string()
    }

    /// Serves `/query` with an incremental response: the 200 header goes
    /// out with the first row batch (no `Content-Length` — HTTP/1.0
    /// read-until-close framing) and the summary is a trailer line. Errors
    /// before the first byte still get a proper `400`; a failure mid-stream
    /// is appended as an `ERR` line (the status is already on the wire).
    fn handle_query_http(&mut self, stream: &mut TcpStream, query_string: &str) -> io::Result<()> {
        const TEXT: &str = "text/plain; charset=utf-8";
        let respond_400 = |stream: &mut TcpStream, body: &str| {
            write!(
                stream,
                "HTTP/1.0 400 Bad Request\r\nContent-Type: {TEXT}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
        };
        let cond = query_param(query_string, "cond").map(|v| percent_decode(&v));
        let attrs = query_param(query_string, "attrs").map(|v| percent_decode(&v));
        let (cond, attrs) = match (cond, attrs) {
            (Some(c), Some(a)) => (c, a),
            _ => {
                self.obs.metrics.inc(names::SERVE_ERRORS);
                return respond_400(
                    stream,
                    "usage: /query?cond=<urlencoded condition>&attrs=<a,b,c>[&limit=<n>]\n",
                );
            }
        };
        let limit = match query_param(query_string, "limit") {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    self.obs.metrics.inc(names::SERVE_ERRORS);
                    return respond_400(stream, "limit must be a non-negative integer\n");
                }
            },
        };
        let attrs: Vec<String> = attrs.split(',').map(|s| s.trim().to_string()).collect();
        let mut wrote_header = false;
        let mut io_err: Option<io::Error> = None;
        let outcome = {
            let sink = &mut |chunk: &str| {
                if !wrote_header {
                    if let Err(e) = write!(
                        stream,
                        "HTTP/1.0 200 OK\r\nContent-Type: {TEXT}\r\nConnection: close\r\n\r\n"
                    ) {
                        io_err = Some(e);
                        return false;
                    }
                    wrote_header = true;
                }
                match stream.write_all(chunk.as_bytes()) {
                    Ok(()) => true,
                    Err(e) => {
                        io_err = Some(e);
                        false
                    }
                }
            };
            self.serve_query_streamed(&cond, &attrs, limit, sink)
        };
        if let Some(e) = io_err {
            return Err(e);
        }
        match outcome {
            Ok(trailer) => {
                if !wrote_header {
                    // Empty result: nothing streamed yet, the trailer is
                    // the whole body.
                    write!(
                        stream,
                        "HTTP/1.0 200 OK\r\nContent-Type: {TEXT}\r\nConnection: close\r\n\r\n"
                    )?;
                }
                stream.write_all(trailer.as_bytes())
            }
            Err(msg) => {
                if wrote_header {
                    write!(stream, "ERR {msg}")
                } else {
                    respond_400(stream, &msg)
                }
            }
        }
    }

    /// Plans and streams one query on the warm mediator, feeding each row
    /// batch to `sink` as rendered lines (return `false` to stop) and
    /// recording the serve-mode wall-clock metrics and the slow-query log.
    /// Returns the `N rows (est cost …)` summary trailer, or the error
    /// body.
    fn serve_query_streamed(
        &mut self,
        cond: &str,
        attrs: &[String],
        limit: Option<u64>,
        sink: &mut dyn FnMut(&str) -> bool,
    ) -> Result<String, String> {
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let query = TargetQuery::parse(cond, &attr_refs).map_err(|e| {
            self.obs.metrics.inc(names::SERVE_ERRORS);
            format!("query parse error: {e}\n")
        })?;
        let cfg = match limit {
            Some(n) => StreamConfig::default().with_limit(n),
            None => StreamConfig::default(),
        };
        let start = Instant::now();
        // Profile capture window: everything the shared registry, tracer
        // and flight recorder see from here until the run finishes is this
        // query's.
        let metrics_before = self.obs.metrics.snapshot();
        let span_mark = self.obs.tracer.span_mark();
        let tick0 = self.obs.tracer.tick();
        // Federated member selection first: the capability index prunes
        // members that cannot possibly serve the shape, the survivors are
        // planned, and the cheapest feasible member wins. The winner's warm
        // mediator then streams the answer (its fingerprint-keyed check
        // cache makes the replan cheap).
        let fp = self.federation.plan(&query).map_err(|e| {
            self.obs.metrics.inc(names::SERVE_ERRORS);
            format!("planning failed: {e}\n")
        })?;
        let winner = self
            .federation
            .members()
            .iter()
            .position(|m| Arc::ptr_eq(m, &fp.source))
            .expect("federation winner is a member");
        let (index_candidates, index_total) = self
            .federation
            .capability_index()
            .map(|idx| {
                let d = idx.candidates(&query);
                (d.candidates.len(), d.total)
            })
            .unwrap_or((fp.considered.len(), fp.considered.len()));
        let mut emitted = 0u64;
        let mut chunk = String::new();
        let mut batch_sink = |batch: csqp_relation::TupleBatch| {
            emitted += batch.len() as u64;
            chunk.clear();
            for row in batch.rows() {
                let _ = writeln!(chunk, "{row}");
            }
            sink(&chunk)
        };
        let map_err = |obs: &Obs, e: MediatorError| {
            obs.metrics.inc(names::SERVE_ERRORS);
            match e {
                MediatorError::Plan(e) => format!("planning failed: {e}\n"),
                e => format!("execution failed: {e}\n"),
            }
        };
        let member_name = fp.source.name.clone();
        let fingerprint = format!("{:032x}", cond_fingerprint(Some(&query.cond)));
        // Adaptive serving: the pipeline may pause at a batch boundary and
        // splice in a re-planned residual when observed cardinalities drift
        // off the estimates; the answer stays set-identical and the splice
        // count lands in the trailer.
        let run = if self.cfg.adaptive {
            let acfg = AdaptiveConfig { stream: cfg, ..Default::default() };
            self.mediators[winner].run_adaptive_each(&query, &acfg, &mut batch_sink).map(|out| {
                let (splices, drift) = (out.splices, out.drift_triggers);
                (out.outcome, splices, drift)
            })
        } else {
            self.mediators[winner]
                .run_streamed_each(&query, &cfg, &mut batch_sink)
                .map(|out| (out.outcome, 0, 0))
        };
        let (out, replans, drift_triggers) = match run {
            Ok(v) => v,
            Err(e) => {
                // The failure is the winner's: tap its error counter, leave
                // an audit record, and still close the telemetry window.
                let latency_us = start.elapsed().as_micros() as u64;
                let ticks = self.obs.tracer.tick().saturating_sub(tick0);
                if self.obs.enabled() {
                    self.obs.metrics.inc(&format!("{}{member_name}", names::MEMBER_ERRORS_PREFIX));
                }
                let msg = map_err(&self.obs, e);
                self.journal_append(&AuditRecord {
                    id: self.flight.latest().map(|r| r.id).unwrap_or(0),
                    fingerprint,
                    query: query.to_string(),
                    scheme: self.cfg.scheme.name().to_string(),
                    status: "error".to_string(),
                    rows: 0,
                    wall_us: Some(latency_us),
                    ticks,
                    splices: 0,
                    drift_triggers: 0,
                    breaker_events: 0,
                    capindex_candidates: index_candidates as u64,
                    capindex_total: index_total as u64,
                });
                self.maybe_roll();
                return Err(msg);
            }
        };
        let latency_us = start.elapsed().as_micros() as u64;
        // SLO accounting happens before the profile delta is cut so the
        // breach lands in this query's attribution window.
        if latency_us >= self.slo.latency_objective_us {
            self.obs.metrics.inc(names::SLO_LATENCY_BREACHES);
        }
        let flight_id = self.flight.latest().map(|r| r.id).unwrap_or(0);
        self.obs.metrics.inc(names::SERVE_QUERIES);
        // The latency observation carries the flight id as an exemplar, so
        // a `/metrics?exemplars=1` scrape can walk from a suspicious bucket
        // straight to `/profile/<id>`.
        self.obs.metrics.observe_exemplar(names::SERVE_LATENCY_US, latency_us, flight_id);
        self.obs.metrics.observe(names::SERVE_ROWS_RETURNED, emitted);
        let latency = LatencyKey {
            wall_us: Some(latency_us),
            ticks: self.obs.tracer.tick().saturating_sub(tick0),
        };
        let breaker_states = self.federation.breaker_states();
        if latency_us >= self.cfg.slow_ms.saturating_mul(1000) {
            self.obs.metrics.inc(names::SERVE_SLOW_QUERIES);
            if self.slow_log.len() >= self.cfg.slow_log_capacity.max(1) {
                self.slow_log.pop_front();
            }
            self.slow_log.push_back(SlowQuery {
                latency,
                query: query.to_string(),
                why: self.federation.explain_why(),
            });
        }
        // Cut the query's metrics delta once: the profile keeps it, and the
        // winner attribution + audit record below read from it.
        let delta = self.obs.metrics.snapshot().diff(&metrics_before);
        let breaker_events = delta.counter(names::BREAKER_OPENED)
            + delta.counter(names::BREAKER_HALF_OPENED)
            + delta.counter(names::BREAKER_CLOSED);
        // Assemble the query's black box and offer it to the worst-N ring.
        self.obs.metrics.inc(names::PROFILE_CAPTURED);
        self.profiles.push(QueryProfile {
            id: flight_id,
            query: query.to_string(),
            scheme: "Federation".to_string(),
            rows: emitted,
            latency: Some(latency),
            est_cost: out.planned.est_cost,
            observed_cost: out.measured_cost,
            splices: replans,
            drift_triggers,
            breakers: breaker_states
                .iter()
                .map(|(name, health)| (name.clone(), health.label().to_string()))
                .collect(),
            cardinalities: Vec::new(),
            spans: self.obs.tracer.spans_from(span_mark),
            flight: self
                .flight
                .latest()
                .map(|r| r.events.iter().map(|e| e.to_string()).collect())
                .unwrap_or_default(),
            metrics: delta.clone(),
        });
        // Winner attribution: fold this query's delta onto the per-member
        // counters the health scoreboard reads. The formatting is gated on
        // `enabled()` so the obs-off build never allocates the names.
        if self.obs.enabled() {
            for (prefix, v) in [
                (names::MEMBER_QUERIES_PREFIX, 1),
                (names::MEMBER_RETRIES_PREFIX, delta.counter(names::RESILIENCE_RETRIES)),
                (names::MEMBER_SPLICES_PREFIX, replans),
                (names::MEMBER_DRIFT_PREFIX, drift_triggers),
                (names::BREAKER_OPENED_PREFIX, delta.counter(names::BREAKER_OPENED)),
                (names::MEMBER_EST_COST_MILLI_PREFIX, to_milli(out.planned.est_cost)),
                (names::MEMBER_OBS_COST_MILLI_PREFIX, to_milli(out.measured_cost)),
            ] {
                if v > 0 {
                    self.obs.metrics.add(&format!("{prefix}{member_name}"), v);
                }
            }
        }
        self.journal_append(&AuditRecord {
            id: flight_id,
            fingerprint,
            query: query.to_string(),
            scheme: self.cfg.scheme.name().to_string(),
            status: "ok".to_string(),
            rows: emitted,
            wall_us: Some(latency_us),
            ticks: self.obs.tracer.tick().saturating_sub(tick0),
            splices: replans,
            drift_triggers,
            breaker_events,
            capindex_candidates: index_candidates as u64,
            capindex_total: index_total as u64,
        });
        self.maybe_roll();
        let breakers: Vec<String> = breaker_states
            .iter()
            .map(|(name, health)| format!("{name}:{}", health.label()))
            .collect();
        Ok(format!(
            "{} rows (est cost {:.2}, measured cost {:.2}, {} source queries, capindex \
             {index_candidates}/{index_total} candidates, {replans} replans, breakers [{}], \
             flight #{})\n",
            emitted,
            out.planned.est_cost,
            out.measured_cost,
            out.meter.queries,
            breakers.join(" "),
            self.flight.latest().map(|r| r.id).unwrap_or(0),
        ))
    }

    /// Renders the `/status` scoreboard: every retained window plus the
    /// still-open live delta folded into one signal window, scored per
    /// member against the live breaker state.
    fn render_status(&mut self, json: bool) -> (&'static str, String) {
        let now = self.federation.metrics_snapshot();
        let mut window = self.timeseries.folded(usize::MAX);
        window.merge(&self.timeseries.live_delta(&now));
        let breaker_states = self.federation.breaker_states();
        let mut reports: Vec<health::HealthReport> = breaker_states
            .iter()
            .map(|(name, state)| {
                health::score(health::signals_from_window(&window, name, state.as_gauge() as u8))
            })
            .collect();
        // Worst first so the member that needs attention leads the table;
        // ties break by name for a deterministic page.
        reports.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.signals.member.cmp(&b.signals.member))
        });
        let queries = window.counter(names::SERVE_QUERIES);
        let error_burn = self.slo.burn_rate(window.counter(names::SERVE_ERRORS), queries);
        let latency_burn = self.slo.burn_rate(window.counter(names::SLO_LATENCY_BREACHES), queries);
        // Publish the scoreboard back into the registry so `/metrics`
        // scrapers see the same numbers the page shows.
        self.obs.metrics.gauge_set(names::SLO_ERROR_BURN, error_burn);
        self.obs.metrics.gauge_set(names::SLO_LATENCY_BURN, latency_burn);
        self.obs.metrics.gauge_set(names::TIMESERIES_WINDOWS, self.timeseries.len() as f64);
        if self.obs.enabled() {
            for report in &reports {
                self.obs.metrics.gauge_set(
                    &format!("{}{}", names::HEALTH_SCORE_PREFIX, report.signals.member),
                    report.score,
                );
            }
        }
        let summary = health::StatusSummary {
            slo: self.slo,
            error_burn,
            latency_burn,
            queries,
            windows: self.timeseries.len(),
            dropped: self.timeseries.dropped(),
        };
        if json {
            ("application/json; charset=utf-8", health::render_status_json(&summary, &reports))
        } else {
            ("text/plain; charset=utf-8", health::render_status_text(&summary, &reports))
        }
    }

    /// Appends one audit record to the journal (when configured), keeping
    /// the `journal.*` counters in step. Append failures are reported on
    /// stderr but never fail the query — the answer already streamed.
    fn journal_append(&mut self, record: &AuditRecord) {
        let Some(journal) = self.journal.as_mut() else { return };
        let rotations_before = journal.rotations;
        match journal.append(record) {
            Ok(()) => {
                self.obs.metrics.inc(names::JOURNAL_RECORDS);
                let rotated = journal.rotations - rotations_before;
                if rotated > 0 {
                    self.obs.metrics.add(names::JOURNAL_ROTATIONS, rotated);
                }
            }
            Err(e) => eprintln!("csqp serve: journal append failed: {e}"),
        }
    }

    /// Closes the current telemetry window once `window_queries` queries
    /// have completed since the last boundary. Serve is the one wall-clock
    /// place in the stack, so windows carry a wall stamp here.
    fn maybe_roll(&mut self) {
        self.queries_since_roll += 1;
        if self.queries_since_roll < self.cfg.window_queries.max(1) {
            return;
        }
        self.queries_since_roll = 0;
        let now = self.federation.metrics_snapshot();
        let ticks = self.obs.tracer.tick();
        let wall_us = self.started.elapsed().as_micros() as u64;
        self.timeseries.roll(now, ticks, Some(wall_us));
        self.obs.metrics.gauge_set(names::TIMESERIES_WINDOWS, self.timeseries.len() as f64);
    }

    fn flight_index(&self) -> String {
        let records = self.flight.records();
        if records.is_empty() {
            return "no flights recorded yet\n".to_string();
        }
        let mut out = String::from("recorded flights (oldest first):\n");
        for r in &records {
            let _ =
                writeln!(out, "  #{} [{}] {} ({} events)", r.id, r.scheme, r.query, r.events.len());
        }
        let _ = writeln!(out, "evicted: {}", self.flight.evicted());
        out
    }

    fn render_slow_log(&self) -> String {
        if self.slow_log.is_empty() {
            return format!("no queries slower than {} ms\n", self.cfg.slow_ms);
        }
        let mut out = String::new();
        for (i, s) in self.slow_log.iter().enumerate() {
            let _ = writeln!(
                out,
                "--- slow query {} ({:.3} ms, {} ticks): {}",
                i,
                s.latency.wall_us.unwrap_or(0) as f64 / 1000.0,
                s.latency.ticks,
                s.query
            );
            out.push_str(&s.why);
        }
        out
    }

    /// A retained profile by flight id, worst-first on ties.
    fn profile(&self, id: u64) -> Option<&QueryProfile> {
        self.profiles.worst().iter().find(|p| p.id == id)
    }

    /// The worst-N profile index: one line per retained profile.
    fn profile_index(&self) -> String {
        if self.profiles.is_empty() {
            return "no profiles retained yet\n".to_string();
        }
        let mut out = String::from("worst retained profiles (worst first):\n");
        for p in self.profiles.worst() {
            let (wall, ticks) = match p.latency {
                Some(l) => (l.wall_us.unwrap_or(0), l.ticks),
                None => (0, 0),
            };
            let _ = writeln!(
                out,
                "  #{} ({:.3} ms, {} ticks, {} rows, {} splices) {}",
                p.id,
                wall as f64 / 1000.0,
                ticks,
                p.rows,
                p.splices,
                p.query
            );
        }
        out
    }

    /// The worst-N retained profiles, worst first.
    pub fn profiles(&self) -> &[QueryProfile] {
        self.profiles.worst()
    }
}

/// Extracts the request target from an HTTP request line (`GET /x HTTP/1.x`),
/// or `None` when the line is not HTTP (line-protocol fallback).
/// Cost units are fractional; the per-member counters keep them as integral
/// milli-units so the registry stays u64 (same convention as the
/// federation-side taps).
fn to_milli(cost: f64) -> u64 {
    (cost * 1000.0).round() as u64
}

fn http_request_target(line: &str) -> Option<&str> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if matches!(method, "GET" | "POST" | "HEAD") && version.starts_with("HTTP/") {
        Some(target)
    } else {
        None
    }
}

/// Finds `name=value` in a query string; returns the raw (still encoded)
/// value.
fn query_param(query_string: &str, name: &str) -> Option<String> {
    query_string.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then(|| v.to_string())
    })
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                        continue;
                    }
                    _ => out.push(b'%'),
                }
            }
            b'+' => out.push(b' '),
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("price%20%3C%2040000"), "price < 40000");
        assert_eq!(percent_decode("make%20%3D%20%22BMW%22"), "make = \"BMW\"");
        assert_eq!(percent_decode("100%"), "100%", "trailing percent is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn http_request_lines() {
        assert_eq!(http_request_target("GET /healthz HTTP/1.1"), Some("/healthz"));
        assert_eq!(http_request_target("GET /metrics HTTP/1.0"), Some("/metrics"));
        assert_eq!(http_request_target("query model,year make = \"BMW\""), None);
        assert_eq!(http_request_target("ping"), None);
        assert_eq!(http_request_target(""), None);
    }

    #[test]
    fn query_params() {
        assert_eq!(query_param("cond=a%3D1&attrs=x,y", "attrs").as_deref(), Some("x,y"));
        assert_eq!(query_param("cond=a%3D1&attrs=x,y", "cond").as_deref(), Some("a%3D1"));
        assert_eq!(query_param("cond=a", "attrs"), None);
        assert_eq!(query_param("", "cond"), None);
    }
}
