//! E20: the multi-tenant serve front door under load — a socket-level
//! load generator drives ≥10k real TCP connections at an in-process
//! federation server and compares two architectures on the same
//! repeat-query corpus (shapes repeat, constants rotate):
//!
//! - **baseline_single_thread** — one worker, prepared-plan cache off:
//!   every request is planned cold and served serially, the seed's
//!   architecture.
//! - **worker_pool_cached** — the worker-pool accept loop plus the
//!   federation-wide prepared-plan cache: repeat shapes rebind constants
//!   and skip the planner fan-out entirely.
//!
//! Both legs execute identical queries against identical members (the
//! differential suite pins answer parity), so the throughput ratio
//! isolates what the front door buys. Emits `BENCH_serve.json` at the
//! repo root; CI gates pooled/baseline throughput, the plan-cache hit
//! rate on the repeat corpus, and the pooled p99 latency.
//!
//! Run with `cargo bench -p csqp --bench e20_serve` (the generator lives
//! in this crate because `csqp-bench` is a dependency of `csqp`'s dev
//! tree, so the reverse edge would cycle).

use csqp::serve::{ServeConfig, Server};
use csqp_relation::datagen;
use csqp_source::{CostParams, Source};
use csqp_ssdl::parse_ssdl;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

/// Connections driven at the worker-pool leg (the acceptance floor is
/// 10k) and at the serial baseline (enough for stable percentiles without
/// multiplying the serial leg's wall-clock).
const POOLED_CONNECTIONS: usize = 10_000;
const BASELINE_CONNECTIONS: usize = 2_000;
const CLIENT_THREADS: usize = 8;

const MAKES: &[&str] = &["Toyota", "BMW", "Honda", "Ford", "Mercedes", "Chevrolet"];
const COLORS: &[&str] = &["red", "black", "blue", "white", "silver", "green"];

/// An eight-member federation: planning cold fans the capability check +
/// cost ranking out over every member, which is exactly the work a
/// prepared-plan hit skips.
fn members() -> Vec<Arc<Source>> {
    (0..8)
        .map(|i| {
            let desc = parse_ssdl(&format!(
                "source dealer_{i} {{\n  s1 -> make = $str ^ price < $int ;\n  \
                 s2 -> make = $str ^ color = $str ;\n  \
                 attributes :: s1 : {{ make, model, year, color }} ;\n  \
                 attributes :: s2 : {{ make, model, year }} ;\n}}"
            ))
            .expect("dealer SSDL parses");
            Arc::new(Source::new(
                datagen::cars(3 + i, 400),
                desc,
                CostParams::new(10.0 + i as f64, 1.0),
            ))
        })
        .collect()
}

/// Percent-encodes a condition for the `cond=` query param.
fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// The repeat-query corpus: request `i` maps to one of eight condition
/// *shapes* with rotating constants, so a shape-keyed cache converges to
/// ~100% hits while the constants (and answers) keep changing. Union
/// shapes draw distinct constants per slot so prepare-time atoms never
/// alias.
fn request_path(i: usize) -> String {
    let m = MAKES[i % MAKES.len()];
    let m2 = MAKES[(i + 1) % MAKES.len()];
    let c = COLORS[i % COLORS.len()];
    let c2 = COLORS[(i + 2) % COLORS.len()];
    let p = 10_000 + (i * 37) % 50_000;
    let p2 = 12_000 + (i * 53) % 40_000;
    let (cond, attrs) = match i % 8 {
        0 => (format!("make = \"{m}\" ^ price < {p}"), "model,year"),
        1 => (format!("make = \"{m}\" ^ color = \"{c}\""), "model,year"),
        2 => (
            format!("(make = \"{m}\" ^ price < {p}) _ (make = \"{m2}\" ^ color = \"{c}\")"),
            "model,year",
        ),
        3 => (
            format!("(make = \"{m}\" ^ price < {p}) _ (make = \"{m2}\" ^ color = \"{c}\")"),
            "model",
        ),
        4 => (
            format!("(make = \"{m}\" ^ price < {p}) _ (make = \"{m2}\" ^ price < {p2})"),
            "model,year",
        ),
        5 => (
            format!("(make = \"{m}\" ^ color = \"{c}\") _ (make = \"{m2}\" ^ color = \"{c2}\")"),
            "model,year",
        ),
        6 => (format!("make = \"{m}\" ^ price < {p}"), "model"),
        _ => (format!("make = \"{m}\" ^ color = \"{c}\""), "model"),
    };
    format!("/query?cond={}&attrs={attrs}&limit=10", urlencode(&cond))
}

/// One connection: connect, one HTTP/1.0 query, read to EOF. Returns the
/// request latency in microseconds.
fn drive_one(addr: SocketAddr, path: &str) -> u64 {
    let started = Instant::now();
    let mut s = connect(addr);
    write!(s, "GET {path} HTTP/1.0\r\nHost: bench\r\n\r\n").expect("write request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    assert!(buf.starts_with("HTTP/1.1 200"), "load request failed: {buf}");
    started.elapsed().as_micros() as u64
}

fn connect(addr: SocketAddr) -> TcpStream {
    // The OS may transiently refuse under connect storms; retry briefly
    // rather than aborting a 10k-connection run.
    for attempt in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                s.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
                return s;
            }
            Err(_) if attempt < 49 => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("connect to bench server: {e}"),
        }
    }
    unreachable!()
}

struct LegResult {
    connections: usize,
    elapsed: Duration,
    latencies_us: Vec<u64>,
    hit_rate: f64,
}

impl LegResult {
    fn qps(&self) -> f64 {
        self.connections as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, q: f64) -> u64 {
        let idx = ((self.latencies_us.len() - 1) as f64 * q).round() as usize;
        self.latencies_us[idx]
    }
}

/// Boots a server under `cfg`, drives `connections` at it from
/// [`CLIENT_THREADS`] client threads, shuts it down, and returns the
/// merged latency distribution plus the plan-cache hit rate.
fn run_leg(cfg: ServeConfig, connections: usize) -> LegResult {
    let server = Server::bind_federation(members(), cfg).expect("bind bench server");
    let addr = server.local_addr().expect("bound address");
    let cache = server.plan_cache().clone();
    let handle = std::thread::spawn(move || server.run());

    // Warm-up outside the clock: first touch of each corpus shape (and
    // the lazy per-member state) is not what either leg is measuring.
    for i in 0..8 {
        drive_one(addr, &request_path(i));
    }

    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(connections);
    std::thread::scope(|scope| {
        let mut parts = Vec::new();
        for t in 0..CLIENT_THREADS {
            let lo = connections * t / CLIENT_THREADS;
            let hi = connections * (t + 1) / CLIENT_THREADS;
            parts.push(scope.spawn(move || {
                (lo..hi).map(|i| drive_one(addr, &request_path(i))).collect::<Vec<u64>>()
            }));
        }
        for part in parts {
            latencies_us.extend(part.join().expect("client thread"));
        }
    });
    let elapsed = started.elapsed();

    let mut s = connect(addr);
    write!(s, "GET /shutdown HTTP/1.0\r\nHost: bench\r\n\r\n").expect("write shutdown");
    let mut bye = String::new();
    s.read_to_string(&mut bye).expect("read shutdown");
    handle.join().expect("server thread").expect("clean shutdown");

    let stats = cache.stats();
    let probes = stats.hits + stats.misses + stats.rejected;
    let hit_rate = if probes == 0 { 0.0 } else { stats.hits as f64 / probes as f64 };
    latencies_us.sort_unstable();
    LegResult { connections, elapsed, latencies_us, hit_rate }
}

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 8);

    println!(
        "e20_serve: single-threaded cold-plan baseline, {BASELINE_CONNECTIONS} connections \
         x {CLIENT_THREADS} clients"
    );
    let baseline = run_leg(
        ServeConfig { workers: 1, plan_cache_capacity: 0, ..ServeConfig::default() },
        BASELINE_CONNECTIONS,
    );
    println!(
        "  {:.0} q/s, p50 {} us, p99 {} us",
        baseline.qps(),
        baseline.percentile(0.5),
        baseline.percentile(0.99)
    );

    println!(
        "e20_serve: {workers}-worker pool + plan cache, {POOLED_CONNECTIONS} connections \
         x {CLIENT_THREADS} clients"
    );
    let pooled = run_leg(
        ServeConfig { workers, plan_cache_capacity: 256, ..ServeConfig::default() },
        POOLED_CONNECTIONS,
    );
    println!(
        "  {:.0} q/s, p50 {} us, p99 {} us, plan-cache hit rate {:.3}",
        pooled.qps(),
        pooled.percentile(0.5),
        pooled.percentile(0.99),
        pooled.hit_rate
    );
    let speedup = pooled.qps() / baseline.qps();
    println!("  throughput speedup over single-threaded baseline: {speedup:.2}x");

    let mut json = String::from("{\n  \"bench\": \"e20_serve\",\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"client_threads\": {CLIENT_THREADS},");
    let _ = writeln!(json, "  \"speedup_qps\": {speedup:.4},");
    json.push_str("  \"results\": [\n");
    for (name, leg) in [("baseline_single_thread", &baseline), ("worker_pool_cached", &pooled)] {
        let _ = writeln!(
            json,
            "    {{\"leg\": \"{name}\", \"connections\": {}, \"qps\": {:.2}, \
             \"p50_us\": {}, \"p99_us\": {}, \"plan_cache_hit_rate\": {:.4}}}{}",
            leg.connections,
            leg.qps(),
            leg.percentile(0.5),
            leg.percentile(0.99),
            leg.hit_rate,
            if name == "baseline_single_thread" { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(OUT_PATH, &json).expect("write BENCH_serve.json");
    println!("wrote {OUT_PATH}");
}
