//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the proptest API its property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, integer-range
//! strategies (`lo..hi`, `lo..=hi`), `collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its sampled inputs; re-run
//!   with those values in a unit test to debug.
//! - **Deterministic.** Cases are drawn from a SplitMix64 stream seeded by
//!   the test name, so failures reproduce exactly across runs and machines.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; honour PROPTEST_CASES like it does.
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 stream used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: one independent stream per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of test-case values. Ranges over the primitive integer types
/// are the only strategies the workspace needs.
pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `proptest::collection` subset: the `vec` strategy, sized by a length
/// range and filled by an element strategy.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Executes the cases of one property. Used by the `proptest!` expansion.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let rng = TestRng::from_name(name);
        TestRunner { config, rng }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// `proptest! { ... }`: runs each contained `fn name(arg in strategy, ...)`
/// as a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::sample(&($strategy), runner.rng());)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} with inputs [{}]: {}",
                        stringify!($name), case + 1, runner.cases(), inputs, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (returns `Err` from the property body closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion carrying both values in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)
                );
            }
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..10, b in 1usize..4, c in -2i64..=2) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((-2..=2).contains(&c));
        }

        #[test]
        fn arithmetic_property(x in 0i64..1000, y in 0i64..1000) {
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(0u8..4, 1..6)) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("x ="), "inputs missing: {msg}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut b = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let xs: Vec<u64> = (0..16).map(|_| Strategy::sample(&(0u64..1000), a.rng())).collect();
        let ys: Vec<u64> = (0..16).map(|_| Strategy::sample(&(0u64..1000), b.rng())).collect();
        assert_eq!(xs, ys);
    }
}
