//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of the rand 0.10 API it actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::{random_range, random_bool}`
//! over integer ranges. The generator is SplitMix64 — statistically fine
//! for synthetic workloads, NOT cryptographic.
//!
//! Determinism contract: all workload generators and golden snapshots in
//! this repo are derived from this implementation; changing the stream
//! invalidates committed golden files and experiment baselines.

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding, à la `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges over the integer types the workspace samples. Generic
/// over the output type (like rand's `SampleRange<T>`) so integer literals
/// infer from the calling context, not from the literal default.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The convenience extension trait (`random_range` / `random_bool`),
/// mirroring rand 0.10's `RngExt`.
pub trait RngExt: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        // 53 uniform mantissa bits → [0,1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s StdRng.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-whiten so seeds 0,1,2… don't start in correlated states.
            let mut rng = StdRng { state: state ^ 0x5851_F42D_4C95_7F2D };
            let _ = rng.next_u64();
            StdRng { state: rng.state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3i64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0usize..5);
            assert!(y < 5);
            let z = rng.random_range(1u64..=6);
            assert!((1..=6).contains(&z));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn range_sampling_covers_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.02, "p=0.3 gave {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
