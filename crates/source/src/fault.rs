//! Deterministic fault injection for simulated Internet sources.
//!
//! The paper mediates over *Internet* sources, where unavailability and
//! partial failure are the common case; a perfectly reliable simulation
//! would leave every resilience path in the stack untested. A
//! [`FaultProfile`] attached to a [`Source`](crate::Source) makes
//! unreliability a first-class, *seeded* dimension: every query attempt
//! consumes one index of a per-source counter, and the fault decision is a
//! pure function of `(profile, attempt index)`. No wall-clock enters any
//! decision — latency is simulated in virtual **ticks** — so a fixed seed
//! reproduces the exact same fault sequence on every run, serial or
//! parallel.
//!
//! Fault taxonomy (each surfaces as its own
//! [`SourceError`](crate::SourceError) variant):
//!
//! - **transient** — a momentary network-style failure; retry-worthy;
//! - **timeout** — the attempt burns [`FaultProfile::timeout_ticks`] of
//!   virtual time and returns nothing;
//! - **rate limit** — the source rejects the attempt without doing work;
//! - **outage** — a hard window over the attempt index during which every
//!   attempt fails ([`OutageWindow`]).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mixing constant decorrelating per-attempt PRNG streams (SplitMix64's
/// golden-ratio increment).
const ATTEMPT_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A half-open window `[start, start + len)` over the per-source attempt
/// index during which the source is hard-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First attempt index that fails.
    pub start: u64,
    /// Number of consecutive failing attempts.
    pub len: u64,
}

impl OutageWindow {
    /// Does `attempt` fall inside the window?
    pub fn contains(&self, attempt: u64) -> bool {
        attempt >= self.start && attempt - self.start < self.len
    }
}

/// The fault injected into one query attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hard outage: the attempt index fell in an [`OutageWindow`].
    Outage,
    /// Momentary failure; a retry may succeed.
    Transient,
    /// The attempt timed out after `timeout_ticks` of virtual latency.
    Timeout,
    /// The source shed load without doing any work.
    RateLimited,
}

/// A seeded, deterministic unreliability model for one source.
///
/// All probabilities are per *attempt*. Construction is builder-style:
///
/// ```
/// use csqp_source::fault::FaultProfile;
/// let p = FaultProfile::new(42).with_transient(0.2).with_timeout(0.1, 500);
/// // Pure function of (profile, attempt index): replays identically.
/// assert_eq!(p.decide(7), p.decide(7));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Seed of the per-source fault stream.
    pub seed: u64,
    /// Probability an attempt fails with [`Fault::Transient`].
    pub transient_prob: f64,
    /// Probability an attempt fails with [`Fault::Timeout`].
    pub timeout_prob: f64,
    /// Probability an attempt fails with [`Fault::RateLimited`].
    pub rate_limit_prob: f64,
    /// Virtual ticks a successful (or transient/rate-limited) attempt
    /// takes.
    pub latency_ticks: u64,
    /// Virtual ticks burned by a timed-out attempt (≥ `latency_ticks` in
    /// any sane profile).
    pub timeout_ticks: u64,
    /// Hard-down windows over the attempt index.
    pub outages: Vec<OutageWindow>,
}

impl FaultProfile {
    /// A reliable profile (all probabilities zero) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultProfile {
            seed,
            transient_prob: 0.0,
            timeout_prob: 0.0,
            rate_limit_prob: 0.0,
            latency_ticks: 1,
            timeout_ticks: 10,
            outages: Vec::new(),
        }
    }

    /// Sets the transient-failure probability.
    pub fn with_transient(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        self.transient_prob = p;
        self
    }

    /// Sets the timeout probability and the ticks a timeout burns.
    pub fn with_timeout(mut self, p: f64, timeout_ticks: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        self.timeout_prob = p;
        self.timeout_ticks = timeout_ticks;
        self
    }

    /// Sets the rate-limit probability.
    pub fn with_rate_limit(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        self.rate_limit_prob = p;
        self
    }

    /// Sets the per-attempt simulated latency.
    pub fn with_latency(mut self, ticks: u64) -> Self {
        self.latency_ticks = ticks;
        self
    }

    /// Adds a hard-outage window `[start, start + len)`.
    pub fn with_outage(mut self, start: u64, len: u64) -> Self {
        self.outages.push(OutageWindow { start, len });
        self
    }

    /// A chaos-storm preset: `intensity` in `[0, 1]` scales every failure
    /// mode at once (used by the chaos suite and `csqp --chaos`).
    pub fn storm(seed: u64, intensity: f64) -> Self {
        assert!((0.0..=1.0).contains(&intensity), "intensity out of [0,1]: {intensity}");
        FaultProfile::new(seed)
            .with_transient(0.25 * intensity)
            .with_timeout(0.10 * intensity, 20)
            .with_rate_limit(0.10 * intensity)
            .with_latency(2)
    }

    /// The fault (if any) injected into attempt number `attempt` — a pure
    /// function of the profile and the index, so traces replay exactly.
    pub fn decide(&self, attempt: u64) -> Option<Fault> {
        if self.outages.iter().any(|w| w.contains(attempt)) {
            return Some(Fault::Outage);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ attempt.wrapping_mul(ATTEMPT_MIX));
        // Fixed draw order keeps the stream stable as probabilities vary.
        if rng.random_bool(self.transient_prob) {
            return Some(Fault::Transient);
        }
        if rng.random_bool(self.timeout_prob) {
            return Some(Fault::Timeout);
        }
        if rng.random_bool(self.rate_limit_prob) {
            return Some(Fault::RateLimited);
        }
        None
    }

    /// Virtual ticks attempt `fault` consumes under this profile.
    pub fn ticks_for(&self, fault: Option<Fault>) -> u64 {
        match fault {
            Some(Fault::Timeout) => self.timeout_ticks,
            // Outages and rate limits reject without doing work.
            Some(Fault::Outage) | Some(Fault::RateLimited) => 0,
            Some(Fault::Transient) | None => self.latency_ticks,
        }
    }
}

/// Cumulative resilience metrics, alongside the transfer
/// [`Meter`](crate::Meter).
///
/// The same struct is used at every layer of the stack: a
/// [`Source`](crate::Source) fills the injected-fault counters, the
/// resilient executor adds `attempts`/`retries`/`ticks` (including backoff),
/// and the mediator/federation layers add `failovers`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceMeter {
    /// Query attempts issued (executor-side: includes retries).
    pub attempts: u64,
    /// Re-attempts after a retryable failure.
    pub retries: u64,
    /// Transient faults observed.
    pub transients: u64,
    /// Timeouts observed.
    pub timeouts: u64,
    /// Rate-limit rejections observed.
    pub rate_limited: u64,
    /// Hard-outage rejections observed.
    pub outages: u64,
    /// Plan- or member-level failovers taken.
    pub failovers: u64,
    /// Virtual ticks consumed (simulated latency + backoff).
    pub ticks: u64,
}

impl ResilienceMeter {
    /// Folds `other` into `self` (layer aggregation).
    pub fn absorb(&mut self, other: &ResilienceMeter) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.transients += other.transients;
        self.timeouts += other.timeouts;
        self.rate_limited += other.rate_limited;
        self.outages += other.outages;
        self.failovers += other.failovers;
        self.ticks += other.ticks;
    }

    /// Total injected faults observed.
    pub fn faults(&self) -> u64 {
        self.transients + self.timeouts + self.rate_limited + self.outages
    }

    /// Adds this meter's counters to `metrics` under the canonical
    /// `resilience.*` names. Every summary of resilience activity (the
    /// `--chaos` demo, `--metrics json`, `Mediator::metrics_snapshot`)
    /// goes through this one adapter, so they can never disagree.
    pub fn record_into(&self, metrics: &csqp_obs::MetricsRegistry) {
        use csqp_obs::names;
        metrics.add(names::RESILIENCE_ATTEMPTS, self.attempts);
        metrics.add(names::RESILIENCE_RETRIES, self.retries);
        metrics.add(names::RESILIENCE_TRANSIENTS, self.transients);
        metrics.add(names::RESILIENCE_TIMEOUTS, self.timeouts);
        metrics.add(names::RESILIENCE_RATE_LIMITED, self.rate_limited);
        metrics.add(names::RESILIENCE_OUTAGES, self.outages);
        metrics.add(names::RESILIENCE_FAILOVERS, self.failovers);
        metrics.add(names::RESILIENCE_BACKOFF_TICKS, self.ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure_and_seed_sensitive() {
        let p = FaultProfile::storm(11, 0.8);
        let a: Vec<_> = (0..64).map(|i| p.decide(i)).collect();
        let b: Vec<_> = (0..64).map(|i| p.decide(i)).collect();
        assert_eq!(a, b, "same profile, same stream");
        let q = FaultProfile::storm(12, 0.8);
        let c: Vec<_> = (0..64).map(|i| q.decide(i)).collect();
        assert_ne!(a, c, "different seed, different stream");
        assert!(a.iter().any(|f| f.is_some()), "storm at 0.8 injects faults");
        assert!(a.iter().any(|f| f.is_none()), "storm at 0.8 lets queries through");
    }

    #[test]
    fn reliable_profile_never_faults() {
        let p = FaultProfile::new(7);
        assert!((0..256).all(|i| p.decide(i).is_none()));
    }

    #[test]
    fn outage_windows_are_exact() {
        let p = FaultProfile::new(0).with_outage(3, 2);
        assert_eq!(p.decide(2), None);
        assert_eq!(p.decide(3), Some(Fault::Outage));
        assert_eq!(p.decide(4), Some(Fault::Outage));
        assert_eq!(p.decide(5), None);
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let p = FaultProfile::new(5).with_transient(0.3);
        let hits = (0..20_000).filter(|&i| p.decide(i).is_some()).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "p=0.3 gave {frac}");
    }

    #[test]
    fn ticks_per_fault_kind() {
        let p = FaultProfile::new(0).with_latency(3).with_timeout(0.0, 40);
        assert_eq!(p.ticks_for(None), 3);
        assert_eq!(p.ticks_for(Some(Fault::Transient)), 3);
        assert_eq!(p.ticks_for(Some(Fault::Timeout)), 40);
        assert_eq!(p.ticks_for(Some(Fault::RateLimited)), 0);
        assert_eq!(p.ticks_for(Some(Fault::Outage)), 0);
    }

    #[test]
    fn meter_records_into_registry() {
        let m = ResilienceMeter { attempts: 3, retries: 1, ticks: 9, ..Default::default() };
        let reg = csqp_obs::MetricsRegistry::new();
        m.record_into(&reg);
        let snap = reg.snapshot();
        if reg.enabled() {
            assert_eq!(snap.counter("resilience.attempts"), 3);
            assert_eq!(snap.counter("resilience.retries"), 1);
            assert_eq!(snap.counter("resilience.backoff_ticks"), 9);
        } else {
            assert!(snap.counters.is_empty(), "no-op registry records nothing");
        }
    }

    #[test]
    fn meter_absorb_sums_fields() {
        let mut a = ResilienceMeter { attempts: 2, retries: 1, ticks: 5, ..Default::default() };
        let b = ResilienceMeter {
            attempts: 3,
            transients: 2,
            failovers: 1,
            ticks: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.attempts, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.transients, 2);
        assert_eq!(a.failovers, 1);
        assert_eq!(a.ticks, 12);
        assert_eq!(a.faults(), 2);
    }
}
