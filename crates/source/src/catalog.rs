//! A registry of ready-made demo sources pairing the SSDL templates with
//! their synthetic relations. Used by examples, integration tests and the
//! experiment harness.

use crate::cost::CostParams;
use crate::source::Source;
use csqp_relation::datagen::{self, BookGenConfig, CarGenConfig};
use csqp_ssdl::templates;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named collection of sources.
#[derive(Debug, Default)]
pub struct Catalog {
    sources: BTreeMap<String, Arc<Source>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a source under its own name.
    pub fn register(&mut self, source: Source) -> Arc<Source> {
        let arc = Arc::new(source);
        self.sources.insert(arc.name.clone(), arc.clone());
        arc
    }

    /// Looks up a source.
    pub fn get(&self, name: &str) -> Option<&Arc<Source>> {
        self.sources.get(name)
    }

    /// Iterates sources in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Source>)> {
        self.sources.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The full demo catalog: bookstore (Ex. 1.1), car guide (Ex. 1.2),
    /// car dealer (Ex. 4.1), bank (§4), flights. Deterministic per seed.
    pub fn demo(seed: u64) -> Self {
        let mut c = Catalog::new();
        c.register(Source::new(
            datagen::books(seed, &BookGenConfig::default()),
            templates::bookstore(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::car_listings(seed.wrapping_add(1), &CarGenConfig::default()),
            templates::car_guide(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::cars(seed.wrapping_add(2), 2_000),
            templates::car_dealer(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::accounts(seed.wrapping_add(3), 1_000),
            templates::bank(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::flights(seed.wrapping_add(4), 3_000),
            templates::flights(),
            CostParams::default(),
        ));
        c
    }

    /// A smaller demo catalog for fast tests (hundreds of rows per source).
    pub fn demo_small(seed: u64) -> Self {
        let mut c = Catalog::new();
        c.register(Source::new(
            datagen::books(seed, &BookGenConfig { n_books: 2_000, ..BookGenConfig::default() }),
            templates::bookstore(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::car_listings(seed.wrapping_add(1), &CarGenConfig { n_listings: 1_000 }),
            templates::car_guide(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::cars(seed.wrapping_add(2), 400),
            templates::car_dealer(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::accounts(seed.wrapping_add(3), 200),
            templates::bank(),
            CostParams::default(),
        ));
        c.register(Source::new(
            datagen::flights(seed.wrapping_add(4), 300),
            templates::flights(),
            CostParams::default(),
        ));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_catalog_has_all_five() {
        let c = Catalog::demo_small(7);
        assert_eq!(c.len(), 5);
        for name in ["bookstore", "car_guide", "car_dealer", "bank", "flights"] {
            assert!(c.get(name).is_some(), "{name} missing");
        }
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn registration_and_iteration() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let demo = Catalog::demo_small(1);
        let bank = demo.get("bank").unwrap();
        // Rebuild a source to move it into the new catalog.
        c.register(crate::source::Source::new(
            bank.relation().clone(),
            csqp_ssdl::templates::bank(),
            *bank.cost_params(),
        ));
        assert_eq!(c.len(), 1);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["bank"]);
    }

    #[test]
    fn demo_is_deterministic() {
        let a = Catalog::demo_small(5);
        let b = Catalog::demo_small(5);
        assert_eq!(a.get("bank").unwrap().relation(), b.get("bank").unwrap().relation());
    }
}
