//! Simulated Internet sources: a relation behind an SSDL capability gate.
//!
//! A [`Source`] substitutes for the paper's live 1999 web sources. The
//! planners only observe (a) which queries the SSDL description accepts and
//! (b) result cardinalities — both of which the gate reproduces faithfully.
//!
//! Two views of the capability description coexist (§6.1):
//!
//! - the **gate** enforces the *original* description — the source really is
//!   order-sensitive if its grammar says so;
//! - the **planning view** is the permutation-closed description, letting
//!   GenCompact drop the commutativity rewrite rule. Before execution the
//!   mediator *fixes* each source query back to an accepted order
//!   ([`Source::fix_and_answer`]).

use crate::cost::CostParams;
use crate::fault::{Fault, FaultProfile, ResilienceMeter};
use csqp_expr::semantics::eval;
use csqp_expr::CondTree;
use csqp_relation::ops::{project, select};
use csqp_relation::schema::Schema;
use csqp_relation::stream::{project_indices, DedupSketch, TupleBatch};
use csqp_relation::tuple::Row;
use csqp_relation::{Relation, TableStats};
use csqp_ssdl::check::{CompiledSource, ExportSet, SharedCheckCache};
use csqp_ssdl::closure::{fix_order, permutation_closure, DEFAULT_MAX_SEGMENTS};
use csqp_ssdl::facts::CapabilityFacts;
use csqp_ssdl::linearize::{cond_fingerprint, Fingerprint};
use csqp_ssdl::SsdlDesc;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Errors raised when querying a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The source's capability description rejects the query.
    Unsupported {
        /// Source name.
        source: String,
        /// Rendered condition (`"true"` for downloads).
        condition: String,
        /// Requested projection.
        attrs: Vec<String>,
    },
    /// The query references attributes outside the source schema.
    Schema(String),
    /// Injected fault: a momentary network-style failure; retry-worthy.
    Transient {
        /// Source name.
        source: String,
    },
    /// Injected fault: the attempt timed out after `ticks` of simulated
    /// latency.
    Timeout {
        /// Source name.
        source: String,
        /// Virtual ticks the attempt burned before giving up.
        ticks: u64,
    },
    /// Injected fault: the source shed load (rate limit) without doing
    /// work.
    RateLimited {
        /// Source name.
        source: String,
    },
    /// Injected fault: the source is hard-down (outage window).
    Unavailable {
        /// Source name.
        source: String,
    },
}

impl SourceError {
    /// Is this failure worth retrying? Injected faults are; capability
    /// rejections and schema errors are deterministic and never are.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SourceError::Transient { .. }
                | SourceError::Timeout { .. }
                | SourceError::RateLimited { .. }
                | SourceError::Unavailable { .. }
        )
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Unsupported { source, condition, attrs } => write!(
                f,
                "source `{source}` does not support SP({condition}, {{{}}})",
                attrs.join(", ")
            ),
            SourceError::Schema(msg) => write!(f, "schema error: {msg}"),
            SourceError::Transient { source } => {
                write!(f, "source `{source}`: transient failure")
            }
            SourceError::Timeout { source, ticks } => {
                write!(f, "source `{source}`: timed out after {ticks} ticks")
            }
            SourceError::RateLimited { source } => {
                write!(f, "source `{source}`: rate limited")
            }
            SourceError::Unavailable { source } => {
                write!(f, "source `{source}`: unavailable (outage)")
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// Cumulative transfer metrics for one source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Meter {
    /// Source queries answered.
    pub queries: u64,
    /// Tuples shipped back to the mediator.
    pub tuples_shipped: u64,
    /// Queries rejected by the capability gate.
    pub rejected: u64,
}

impl Meter {
    /// Measured cost under the §6.2 model.
    pub fn cost(&self, params: &CostParams) -> f64 {
        self.queries as f64 * params.k1 + self.tuples_shipped as f64 * params.k2
    }

    /// Adds this meter's counters to `metrics` under the canonical
    /// `source.*` names.
    pub fn record_into(&self, metrics: &csqp_obs::MetricsRegistry) {
        use csqp_obs::names;
        metrics.add(names::SOURCE_QUERIES, self.queries);
        metrics.add(names::SOURCE_TUPLES_SHIPPED, self.tuples_shipped);
        metrics.add(names::SOURCE_REJECTED, self.rejected);
    }
}

/// A capability-gated, metered, simulated Internet source.
#[derive(Debug)]
pub struct Source {
    /// Source name.
    pub name: String,
    relation: Relation,
    /// The gate: the source's true capability.
    original: CompiledSource,
    /// The permutation-closed planning view.
    planning: CompiledSource,
    /// Cross-plan `Check` memo for the planning view (the gate view stays
    /// uncached: execution must exercise the real order-sensitive parser).
    planning_check_cache: SharedCheckCache,
    /// Capability facts of the planning view, compiled on first use (the
    /// federation capability index is built from these).
    facts: OnceLock<CapabilityFacts>,
    stats: TableStats,
    cost: CostParams,
    queries: AtomicU64,
    tuples_shipped: AtomicU64,
    rejected: AtomicU64,
    /// Observed result cardinalities by condition fingerprint: the largest
    /// deduplicated result size ever shipped for each distinct condition.
    /// Feeds mid-query re-planning (cost recalibration floors).
    observed_cards: Mutex<BTreeMap<Fingerprint, u64>>,
    /// Unreliability model; `None` (the default) keeps the fault path at a
    /// single branch per query.
    fault: Option<FaultProfile>,
    fault_attempts: AtomicU64,
    res_transients: AtomicU64,
    res_timeouts: AtomicU64,
    res_rate_limited: AtomicU64,
    res_outages: AtomicU64,
    res_ticks: AtomicU64,
}

impl Source {
    /// Builds a source. The planning view is the permutation closure of
    /// `desc` (pass an already-symmetric description to make this a no-op).
    pub fn new(relation: Relation, desc: SsdlDesc, cost: CostParams) -> Self {
        let name = desc.name.clone();
        let closed = permutation_closure(&desc, DEFAULT_MAX_SEGMENTS);
        let stats = TableStats::build(&relation);
        Source {
            name,
            relation,
            original: CompiledSource::new(desc),
            planning: CompiledSource::new(closed.desc),
            planning_check_cache: SharedCheckCache::new(),
            facts: OnceLock::new(),
            stats,
            cost,
            queries: AtomicU64::new(0),
            tuples_shipped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            observed_cards: Mutex::new(BTreeMap::new()),
            fault: None,
            fault_attempts: AtomicU64::new(0),
            res_transients: AtomicU64::new(0),
            res_timeouts: AtomicU64::new(0),
            res_rate_limited: AtomicU64::new(0),
            res_outages: AtomicU64::new(0),
            res_ticks: AtomicU64::new(0),
        }
    }

    /// Attaches a seeded unreliability model. Subsequent query attempts
    /// draw from the profile's deterministic fault stream.
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> Self {
        self.fault = Some(profile);
        self
    }

    /// The attached unreliability model, if any.
    pub fn fault_profile(&self) -> Option<&FaultProfile> {
        self.fault.as_ref()
    }

    /// The underlying relation (test/experiment oracle access — a real
    /// Internet source would not expose this).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Table statistics for cost estimation.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The §6.2 cost constants of this source.
    pub fn cost_params(&self) -> &CostParams {
        &self.cost
    }

    /// The order-insensitive planning view (what planners call `Check` on).
    pub fn planning_view(&self) -> &CompiledSource {
        &self.planning
    }

    /// The original (gate) description.
    pub fn gate_view(&self) -> &CompiledSource {
        &self.original
    }

    /// The cross-plan `Check` memo for the planning view. Planners layer
    /// their per-plan cache over this, so repeated identical conditions —
    /// e.g. a federation planning the same query again — skip the Earley
    /// parse entirely.
    pub fn planning_check_cache(&self) -> &SharedCheckCache {
        &self.planning_check_cache
    }

    /// Capability facts of the planning view, compiled once on first use.
    /// These feed the federation capability index (source pre-selection).
    pub fn capability_facts(&self) -> &CapabilityFacts {
        self.facts.get_or_init(|| CapabilityFacts::compile(&self.planning))
    }

    /// `Check(C, R)` against the planning view.
    pub fn check(&self, cond: Option<&CondTree>) -> ExportSet {
        self.planning.check(cond)
    }

    /// Does either capability view match literal constants? When `true`,
    /// feasibility depends on constant *values*, so a prepared plan keyed
    /// on the parameterized shape must re-run `Check` on the rebound
    /// source conditions before reuse (the plan cache does this).
    pub fn has_const_literals(&self) -> bool {
        self.planning.has_const_literals() || self.original.has_const_literals()
    }

    /// Is `SP(C, A, R)` supported (planning view)?
    pub fn supports(&self, cond: Option<&CondTree>, attrs: &BTreeSet<String>) -> bool {
        self.planning.supports(cond, attrs)
    }

    /// Answers a source query, enforcing the **original** capability gate.
    /// Meters the query and the shipped tuples.
    pub fn answer(
        &self,
        cond: Option<&CondTree>,
        attrs: &BTreeSet<String>,
    ) -> Result<Relation, SourceError> {
        self.fault_gate()?;
        if !self.original.supports(cond, attrs) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SourceError::Unsupported {
                source: self.name.clone(),
                condition: cond.map(|c| c.to_string()).unwrap_or_else(|| "true".into()),
                attrs: attrs.iter().cloned().collect(),
            });
        }
        let selected = select(&self.relation, cond);
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let result =
            project(&selected, &attr_refs).map_err(|e| SourceError::Schema(e.to_string()))?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.tuples_shipped.fetch_add(result.len() as u64, Ordering::Relaxed);
        self.record_observed(cond_fingerprint(cond), result.len() as u64);
        Ok(result)
    }

    /// Records an observed result cardinality under a condition
    /// fingerprint. Floors are monotonic: the map keeps the largest result
    /// ever seen per condition, so a partially drained stream can never
    /// *lower* a previously recorded full-scan observation.
    fn record_observed(&self, fp: Fingerprint, rows: u64) {
        let mut map = self.observed_cards.lock().expect("observed-cards lock");
        let entry = map.entry(fp).or_insert(0);
        *entry = (*entry).max(rows);
    }

    /// A snapshot of every observed result cardinality, keyed by condition
    /// fingerprint ([`cond_fingerprint`]). Materialized answers record on
    /// completion; streamed answers record at exhaustion (a stream
    /// abandoned mid-scan records nothing — its count would be a lower
    /// bound, not a cardinality). [`Source::fix_and_answer`] records under
    /// the caller's original condition ordering as well as the fixed one,
    /// so planning-view lookups hit.
    pub fn observed_cardinalities(&self) -> BTreeMap<Fingerprint, u64> {
        self.observed_cards.lock().expect("observed-cards lock").clone()
    }

    /// The observed result cardinality for one condition, if any query with
    /// that condition has completed against this source.
    pub fn observed_cardinality(&self, cond: Option<&CondTree>) -> Option<u64> {
        self.observed_cards
            .lock()
            .expect("observed-cards lock")
            .get(&cond_fingerprint(cond))
            .copied()
    }

    /// Answers a source query phrased against the planning view: first fixes
    /// the condition's ordering to one the gate accepts (§6.1), then answers.
    pub fn fix_and_answer(
        &self,
        cond: Option<&CondTree>,
        attrs: &BTreeSet<String>,
    ) -> Result<Relation, SourceError> {
        match cond {
            None => self.answer(None, attrs),
            Some(c) => {
                let fixed = fix_order(&self.original, c, attrs).ok_or_else(|| {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    SourceError::Unsupported {
                        source: self.name.clone(),
                        condition: c.to_string(),
                        attrs: attrs.iter().cloned().collect(),
                    }
                })?;
                let result = self.answer(Some(&fixed), attrs)?;
                // Key the observation under the caller's ordering too, so
                // planning-view conditions (which may differ from the fixed
                // order) find their floor.
                self.record_observed(cond_fingerprint(Some(c)), result.len() as u64);
                Ok(result)
            }
        }
    }

    /// Fault gate: a real Internet source fails before its query engine
    /// ever sees the request, so faults fire ahead of the capability
    /// check. Zero-cost when no profile is attached (one `None` branch).
    /// The streaming path draws once per batch pull, so every network
    /// round-trip faces the same weather.
    fn fault_gate(&self) -> Result<(), SourceError> {
        if let Some(profile) = &self.fault {
            let idx = self.fault_attempts.fetch_add(1, Ordering::Relaxed);
            let fault = profile.decide(idx);
            self.res_ticks.fetch_add(profile.ticks_for(fault), Ordering::Relaxed);
            match fault {
                None => {}
                Some(Fault::Transient) => {
                    self.res_transients.fetch_add(1, Ordering::Relaxed);
                    return Err(SourceError::Transient { source: self.name.clone() });
                }
                Some(Fault::Timeout) => {
                    self.res_timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(SourceError::Timeout {
                        source: self.name.clone(),
                        ticks: profile.timeout_ticks,
                    });
                }
                Some(Fault::RateLimited) => {
                    self.res_rate_limited.fetch_add(1, Ordering::Relaxed);
                    return Err(SourceError::RateLimited { source: self.name.clone() });
                }
                Some(Fault::Outage) => {
                    self.res_outages.fetch_add(1, Ordering::Relaxed);
                    return Err(SourceError::Unavailable { source: self.name.clone() });
                }
            }
        }
        Ok(())
    }

    /// Opens a **streaming** answer to a source query: the capability gate
    /// runs up front (enforcing the original description, metering
    /// rejections), then tuples ship in batches of at most `batch_size` as
    /// the consumer pulls.
    ///
    /// Metering parity with [`Source::answer`]: `queries` increments once at
    /// open, `tuples_shipped` per batch as tuples actually ship (atomics, so
    /// overlapped consumers account correctly), and the stream dedups its
    /// output exactly like the materialized projection — a fully drained
    /// stream leaves the meter exactly where `answer` would have.
    ///
    /// Fault injection is per *pull*: the gate draws once at open and once
    /// per subsequent batch, so a mid-stream fault surfaces on that pull
    /// while the scan cursor stays put — the consumer can retry the same
    /// pull without re-shipping earlier tuples.
    pub fn answer_stream(
        &self,
        cond: Option<&CondTree>,
        attrs: &BTreeSet<String>,
        batch_size: usize,
    ) -> Result<SourceStream<'_>, SourceError> {
        assert!(batch_size > 0, "batch size must be non-zero");
        self.fault_gate()?;
        if !self.original.supports(cond, attrs) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SourceError::Unsupported {
                source: self.name.clone(),
                condition: cond.map(|c| c.to_string()).unwrap_or_else(|| "true".into()),
                attrs: attrs.iter().cloned().collect(),
            });
        }
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let (out_schema, indices) = project_indices(self.relation.schema(), &attr_refs)
            .map_err(|e| SourceError::Schema(e.to_string()))?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(SourceStream {
            source: self,
            fp: cond_fingerprint(cond),
            cond: cond.cloned(),
            out_schema,
            indices,
            batch_size,
            cursor: 0,
            shipped: 0,
            recorded: false,
            sketch: DedupSketch::new(),
        })
    }

    /// Streaming twin of [`Source::fix_and_answer`]: fixes the condition's
    /// ordering to one the gate accepts (§6.1), then opens the stream.
    pub fn fix_and_answer_stream(
        &self,
        cond: Option<&CondTree>,
        attrs: &BTreeSet<String>,
        batch_size: usize,
    ) -> Result<SourceStream<'_>, SourceError> {
        match cond {
            None => self.answer_stream(None, attrs, batch_size),
            Some(c) => {
                let fixed = fix_order(&self.original, c, attrs).ok_or_else(|| {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    SourceError::Unsupported {
                        source: self.name.clone(),
                        condition: c.to_string(),
                        attrs: attrs.iter().cloned().collect(),
                    }
                })?;
                let mut stream = self.answer_stream(Some(&fixed), attrs, batch_size)?;
                // Record the exhaustion observation under the caller's
                // ordering (see `fix_and_answer`).
                stream.fp = cond_fingerprint(Some(c));
                Ok(stream)
            }
        }
    }

    /// Current transfer metrics.
    pub fn meter(&self) -> Meter {
        Meter {
            queries: self.queries.load(Ordering::Relaxed),
            tuples_shipped: self.tuples_shipped.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Resets the meter (between experiment runs).
    pub fn reset_meter(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.tuples_shipped.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
    }

    /// Source-side resilience metrics: attempts seen by the fault gate,
    /// faults injected by kind, and virtual ticks of simulated latency.
    /// All-zero when no [`FaultProfile`] is attached (`retries` and
    /// `failovers` belong to the executor/federation layers and stay zero
    /// here).
    pub fn resilience_meter(&self) -> ResilienceMeter {
        ResilienceMeter {
            attempts: self.fault_attempts.load(Ordering::Relaxed),
            retries: 0,
            transients: self.res_transients.load(Ordering::Relaxed),
            timeouts: self.res_timeouts.load(Ordering::Relaxed),
            rate_limited: self.res_rate_limited.load(Ordering::Relaxed),
            outages: self.res_outages.load(Ordering::Relaxed),
            failovers: 0,
            ticks: self.res_ticks.load(Ordering::Relaxed),
        }
    }

    /// Resets the resilience counters. Does **not** rewind the fault
    /// stream: attempt indices keep advancing so replays stay unique
    /// per-attempt (rebuild the source to replay a storm).
    pub fn reset_resilience_meter(&self) {
        self.res_transients.store(0, Ordering::Relaxed);
        self.res_timeouts.store(0, Ordering::Relaxed);
        self.res_rate_limited.store(0, Ordering::Relaxed);
        self.res_outages.store(0, Ordering::Relaxed);
        self.res_ticks.store(0, Ordering::Relaxed);
    }
}

/// An open streaming answer: a batched scan over one source query's result.
///
/// Created by [`Source::answer_stream`]. Each [`SourceStream::next_batch`]
/// is one simulated network round-trip: the fault gate draws, then up to
/// `batch_size` fresh (selected, projected, deduplicated) tuples ship and
/// are metered. A fault leaves the cursor untouched, so retrying the pull
/// resumes the scan without double-shipping.
#[derive(Debug)]
pub struct SourceStream<'a> {
    source: &'a Source,
    /// Fingerprint the exhaustion observation is recorded under (the
    /// caller's condition ordering, not the gate-fixed one).
    fp: Fingerprint,
    cond: Option<CondTree>,
    out_schema: Arc<Schema>,
    indices: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    shipped: u64,
    recorded: bool,
    sketch: DedupSketch,
}

impl SourceStream<'_> {
    /// The schema of every shipped batch (the projected attributes).
    pub fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    /// Pulls the next batch; `Ok(None)` once the scan is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<TupleBatch>, SourceError> {
        let tuples = self.source.relation.tuples();
        if self.cursor >= tuples.len() {
            self.record_exhausted();
            return Ok(None);
        }
        self.source.fault_gate()?;
        let schema = self.source.relation.schema();
        let mut fresh = Vec::new();
        while self.cursor < tuples.len() && fresh.len() < self.batch_size {
            let t = &tuples[self.cursor];
            self.cursor += 1;
            let keep = match &self.cond {
                None => true,
                Some(c) => eval(c, &Row { schema, tuple: t }),
            };
            if keep {
                let p = t.project(&self.indices);
                if self.sketch.insert(&p) {
                    fresh.push(p);
                }
            }
        }
        if fresh.is_empty() && self.cursor >= tuples.len() {
            self.record_exhausted();
            return Ok(None);
        }
        self.source.tuples_shipped.fetch_add(fresh.len() as u64, Ordering::Relaxed);
        self.shipped += fresh.len() as u64;
        if self.cursor >= tuples.len() {
            // The scan just drained: the shipped count is now the full
            // deduplicated cardinality, record it without waiting for the
            // consumer to pull the trailing `None`.
            self.record_exhausted();
        }
        Ok(Some(TupleBatch::new(self.out_schema.clone(), fresh)))
    }

    /// Records the full observed cardinality once the scan is exhausted
    /// (idempotent).
    fn record_exhausted(&mut self) {
        if !self.recorded {
            self.recorded = true;
            self.source.record_observed(self.fp, self.shipped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csqp_expr::parse::parse_condition;
    use csqp_relation::datagen;
    use csqp_ssdl::templates;

    fn attrs(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn dealer() -> Source {
        Source::new(datagen::cars(3, 500), templates::car_dealer(), CostParams::default())
    }

    #[test]
    fn gate_enforces_original_order() {
        let s = dealer();
        let ok = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let swapped = parse_condition("price < 40000 ^ make = \"BMW\"").unwrap();
        assert!(s.answer(Some(&ok), &attrs(&["model", "year"])).is_ok());
        // The gate rejects the swapped order even though planning accepts it.
        assert!(s.supports(Some(&swapped), &attrs(&["model", "year"])));
        let err = s.answer(Some(&swapped), &attrs(&["model", "year"])).unwrap_err();
        assert!(matches!(err, SourceError::Unsupported { .. }));
        // fix_and_answer repairs the order.
        assert!(s.fix_and_answer(Some(&swapped), &attrs(&["model", "year"])).is_ok());
    }

    #[test]
    fn answers_are_selected_and_projected() {
        let s = dealer();
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let r = s.answer(Some(&c), &attrs(&["model", "year"])).unwrap();
        assert_eq!(r.schema().columns.len(), 2);
        let oracle = csqp_relation::ops::select(s.relation(), Some(&c));
        // Projection may collapse duplicates but never invent rows.
        assert!(r.len() <= oracle.len());
        assert!(!r.is_empty());
    }

    #[test]
    fn projection_beyond_exports_rejected() {
        let s = dealer();
        // s2 (make ^ color) exports {make, model, year}: price refused.
        let c = parse_condition("make = \"BMW\" ^ color = \"red\"").unwrap();
        assert!(s.answer(Some(&c), &attrs(&["model"])).is_ok());
        assert!(s.answer(Some(&c), &attrs(&["price"])).is_err());
    }

    #[test]
    fn metering_counts_queries_and_tuples() {
        let s = dealer();
        let c = parse_condition("make = \"BMW\" ^ price < 90000").unwrap();
        let r1 = s.answer(Some(&c), &attrs(&["make", "model"])).unwrap();
        let r2 = s.answer(Some(&c), &attrs(&["make", "model"])).unwrap();
        let m = s.meter();
        assert_eq!(m.queries, 2);
        assert_eq!(m.tuples_shipped, (r1.len() + r2.len()) as u64);
        assert_eq!(m.rejected, 0);
        assert_eq!(m.cost(&CostParams::new(50.0, 1.0)), 100.0 + m.tuples_shipped as f64);
        s.reset_meter();
        assert_eq!(s.meter(), Meter::default());
    }

    #[test]
    fn rejected_queries_are_metered() {
        let s = dealer();
        let bad = parse_condition("year = 1995").unwrap();
        assert!(s.answer(Some(&bad), &attrs(&["make"])).is_err());
        assert_eq!(s.meter().rejected, 1);
        assert_eq!(s.meter().queries, 0);
    }

    #[test]
    fn download_refused_without_true_rule() {
        let s = dealer();
        assert!(s.answer(None, &attrs(&["make"])).is_err());
        // A download-only source accepts it.
        let dl = Source::new(
            datagen::cars(3, 50),
            templates::download_only(
                "dl",
                &[("make", csqp_expr::ValueType::Str), ("price", csqp_expr::ValueType::Int)],
            ),
            CostParams::default(),
        );
        let r = dl.answer(None, &attrs(&["make", "price"])).unwrap();
        assert!(!r.is_empty());
        assert!(dl.fix_and_answer(None, &attrs(&["make"])).is_ok());
    }

    #[test]
    fn fault_gate_fires_before_capability_gate() {
        // 100% transient: even a gate-rejected query surfaces the fault
        // (the network fails before the source sees the query).
        let s = Source::new(datagen::cars(3, 50), templates::car_dealer(), CostParams::default())
            .with_fault_profile(FaultProfile::new(1).with_transient(1.0));
        let bad = parse_condition("year = 1995").unwrap();
        let err = s.answer(Some(&bad), &attrs(&["make"])).unwrap_err();
        assert!(matches!(err, SourceError::Transient { .. }));
        assert!(err.is_retryable());
        assert_eq!(s.meter().rejected, 0, "gate never consulted");
        let rm = s.resilience_meter();
        assert_eq!(rm.attempts, 1);
        assert_eq!(rm.transients, 1);
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let profile = FaultProfile::storm(99, 0.7);
        let run = |profile: FaultProfile| -> Vec<bool> {
            let s =
                Source::new(datagen::cars(3, 100), templates::car_dealer(), CostParams::default())
                    .with_fault_profile(profile);
            let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
            (0..40).map(|_| s.answer(Some(&c), &attrs(&["model"])).is_ok()).collect()
        };
        let a = run(profile.clone());
        let b = run(profile);
        assert_eq!(a, b, "same seed replays the same outcome sequence");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !ok), "storm mixes outcomes");
    }

    #[test]
    fn outage_window_downs_then_recovers() {
        let s = Source::new(datagen::cars(3, 50), templates::car_dealer(), CostParams::default())
            .with_fault_profile(FaultProfile::new(0).with_outage(0, 3));
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        for _ in 0..3 {
            let err = s.answer(Some(&c), &attrs(&["model"])).unwrap_err();
            assert!(matches!(err, SourceError::Unavailable { .. }));
        }
        assert!(s.answer(Some(&c), &attrs(&["model"])).is_ok(), "outage window passed");
        assert_eq!(s.resilience_meter().outages, 3);
    }

    #[test]
    fn no_profile_keeps_resilience_meter_zero() {
        let s = dealer();
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        s.answer(Some(&c), &attrs(&["model"])).unwrap();
        assert_eq!(s.resilience_meter(), ResilienceMeter::default());
        assert!(s.fault_profile().is_none());
    }

    #[test]
    fn timeout_burns_ticks() {
        let s = Source::new(datagen::cars(3, 50), templates::car_dealer(), CostParams::default())
            .with_fault_profile(FaultProfile::new(3).with_timeout(1.0, 25));
        let c = parse_condition("make = \"BMW\" ^ price < 40000").unwrap();
        let err = s.answer(Some(&c), &attrs(&["model"])).unwrap_err();
        assert!(matches!(err, SourceError::Timeout { ticks: 25, .. }));
        let rm = s.resilience_meter();
        assert_eq!(rm.timeouts, 1);
        assert_eq!(rm.ticks, 25);
        s.reset_resilience_meter();
        assert_eq!(s.resilience_meter().ticks, 0);
    }

    #[test]
    fn stream_matches_materialized_answer_and_meter() {
        let s = dealer();
        let c = parse_condition("make = \"BMW\" ^ price < 90000").unwrap();
        let a = attrs(&["make", "model"]);
        let oracle = s.answer(Some(&c), &a).unwrap();
        let oracle_meter = s.meter();
        s.reset_meter();

        let mut stream = s.answer_stream(Some(&c), &a, 7).unwrap();
        let mut got = Relation::empty(stream.schema().clone());
        let mut max_batch = 0;
        while let Some(b) = stream.next_batch().unwrap() {
            max_batch = max_batch.max(b.len());
            for t in b.into_tuples() {
                assert!(got.insert(t), "stream output is already deduplicated");
            }
        }
        assert!(max_batch <= 7);
        assert_eq!(got, oracle);
        assert_eq!(s.meter(), oracle_meter, "drained stream meters like answer");
    }

    #[test]
    fn stream_gate_rejects_at_open() {
        let s = dealer();
        let bad = parse_condition("year = 1995").unwrap();
        assert!(s.answer_stream(Some(&bad), &attrs(&["make"]), 8).is_err());
        assert_eq!(s.meter().rejected, 1);
        assert_eq!(s.meter().queries, 0);
        // fix_and_answer_stream repairs orderings like fix_and_answer.
        let swapped = parse_condition("price < 40000 ^ make = \"BMW\"").unwrap();
        assert!(s.answer_stream(Some(&swapped), &attrs(&["model"]), 8).is_err());
        assert!(s.fix_and_answer_stream(Some(&swapped), &attrs(&["model"]), 8).is_ok());
    }

    #[test]
    fn mid_stream_fault_is_resumable() {
        // Outage covers attempts 1..4: the open succeeds (attempt 0), then
        // three pulls fault, then the scan resumes where it left off.
        let s = Source::new(datagen::cars(3, 200), templates::car_dealer(), CostParams::default())
            .with_fault_profile(FaultProfile::new(0).with_outage(1, 3));
        let c = parse_condition("make = \"BMW\" ^ price < 90000").unwrap();
        let a = attrs(&["make", "model"]);
        let mut stream = s.answer_stream(Some(&c), &a, 4).unwrap();
        let mut rows = Relation::empty(stream.schema().clone());
        let mut faults = 0;
        loop {
            match stream.next_batch() {
                Ok(Some(b)) => {
                    for t in b.into_tuples() {
                        assert!(rows.insert(t), "no tuple ships twice across retries");
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    assert!(e.is_retryable());
                    faults += 1;
                    assert!(faults < 100, "outage must end");
                }
            }
        }
        assert_eq!(faults, 3);
        let oracle =
            Source::new(datagen::cars(3, 200), templates::car_dealer(), CostParams::default());
        assert_eq!(rows, oracle.answer(Some(&c), &a).unwrap());
        assert_eq!(s.meter().tuples_shipped, rows.len() as u64);
    }

    #[test]
    fn observed_cardinalities_track_completed_queries() {
        let s = dealer();
        let c = parse_condition("make = \"BMW\" ^ price < 90000").unwrap();
        let a = attrs(&["make", "model"]);
        assert!(s.observed_cardinality(Some(&c)).is_none(), "nothing observed yet");

        let r = s.answer(Some(&c), &a).unwrap();
        assert_eq!(s.observed_cardinality(Some(&c)), Some(r.len() as u64));

        // A swapped ordering records under the caller's fingerprint too.
        let swapped = parse_condition("price < 90000 ^ make = \"BMW\"").unwrap();
        let r2 = s.fix_and_answer(Some(&swapped), &a).unwrap();
        assert_eq!(s.observed_cardinality(Some(&swapped)), Some(r2.len() as u64));

        // A drained stream records the same cardinality as the
        // materialized answer; an abandoned stream records nothing new.
        let s2 = dealer();
        let mut half = s2.answer_stream(Some(&c), &a, 4).unwrap();
        let _ = half.next_batch().unwrap();
        drop(half);
        assert!(s2.observed_cardinality(Some(&c)).is_none(), "partial scans don't record");
        let mut full = s2.answer_stream(Some(&c), &a, 4).unwrap();
        while full.next_batch().unwrap().is_some() {}
        assert_eq!(s2.observed_cardinality(Some(&c)), Some(r.len() as u64));
        assert!(s2.observed_cardinalities().len() == 1);
    }

    #[test]
    fn stats_available_for_costing() {
        let s = dealer();
        let c = parse_condition("make = \"BMW\"").unwrap();
        let est = s.stats().estimate_rows(Some(&c));
        let actual = csqp_relation::ops::select(s.relation(), Some(&c)).len() as f64;
        assert!((est - actual).abs() < 1.0, "exact frequencies: est {est} vs {actual}");
    }
}
