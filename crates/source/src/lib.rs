//! # csqp-source — capability-gated simulated Internet sources
//!
//! Substitutes for the paper's live 1999 web sources: an in-memory relation
//! behind an SSDL capability gate, with transfer metering and §6.2 cost
//! constants. See DESIGN.md §3 for why this substitution preserves the
//! behaviour the planners observe.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod cost;
pub mod fault;
pub mod source;

pub use catalog::Catalog;
pub use cost::CostParams;
pub use fault::{Fault, FaultProfile, OutageWindow, ResilienceMeter};
pub use source::{Meter, Source, SourceError, SourceStream};
