//! Per-source cost parameters — the §6.2 cost model.
//!
//! > cost(plan) = Σ_{sq ∈ SQ} k1 + k2 · (result size of sq)
//!
//! `k1` models per-query overhead (connection setup, form submission,
//! source-side processing startup); `k2` models per-tuple transfer and
//! mediator postprocessing. Both "depend on the source referred to by the
//! target query".

/// The constants `k1` and `k2` of the §6.2 cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Fixed cost per source query.
    pub k1: f64,
    /// Cost per result tuple transferred.
    pub k2: f64,
}

impl CostParams {
    /// Builds cost parameters.
    ///
    /// # Panics
    /// Panics on negative or non-finite constants (the pruning rules PR1–PR3
    /// are only sound for a monotone cost model).
    pub fn new(k1: f64, k2: f64) -> Self {
        assert!(
            k1.is_finite() && k2.is_finite() && k1 >= 0.0 && k2 >= 0.0,
            "cost constants must be finite and non-negative (k1={k1}, k2={k2})"
        );
        CostParams { k1, k2 }
    }

    /// Cost of one source query returning `result_size` tuples.
    pub fn query_cost(&self, result_size: f64) -> f64 {
        self.k1 + self.k2 * result_size
    }
}

impl Default for CostParams {
    /// A 1999-Internet-flavored default: each HTTP round trip costs as much
    /// as shipping 50 tuples.
    fn default() -> Self {
        CostParams { k1: 50.0, k2: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_cost_is_affine() {
        let c = CostParams::new(50.0, 2.0);
        assert_eq!(c.query_cost(0.0), 50.0);
        assert_eq!(c.query_cost(100.0), 250.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_constants_rejected() {
        CostParams::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        CostParams::new(f64::NAN, 1.0);
    }

    #[test]
    fn default_is_positive() {
        let c = CostParams::default();
        assert!(c.k1 > 0.0 && c.k2 > 0.0);
    }
}
