//! Canonical metric names — the schema of a [`crate::MetricsSnapshot`].
//!
//! Every component records under these constants so the `--metrics json`
//! output is stable across refactors: renaming a metric is an explicit,
//! reviewable change here rather than a drive-by string edit at a call
//! site.

// ---- planner internals (§5–§6 of the paper) ----

/// Rewritten CTs the rewrite module produced (GenCompact: compact
/// enumeration output; GenModular: DNF/CNF-style rewritings).
pub const PLANNER_REWRITES_GENERATED: &str = "planner.rewrites_generated";
/// CTs canonicalized/processed by the plan generator.
pub const PLANNER_CTS_CANONICALIZED: &str = "planner.cts_canonicalized";
/// `Check(C, R)` invocations (before caching).
pub const PLANNER_CHECK_CALLS: &str = "planner.check_calls";
/// CheckCache hits (calls answered without re-parsing).
pub const PLANNER_CHECK_CACHE_HITS: &str = "planner.check_cache_hits";
/// CheckCache misses (actual capability-template parses).
pub const PLANNER_CHECK_CACHE_MISSES: &str = "planner.check_cache_misses";
/// IPG memo-table hits (whole sub-searches skipped).
pub const PLANNER_IPG_MEMO_HITS: &str = "planner.ipg_memo_hits";
/// Recursive plan-generator invocations (EPG or IPG calls).
pub const PLANNER_GENERATOR_CALLS: &str = "planner.generator_calls";
/// Sub-searches short-circuited by PR1 (pure plan found).
pub const PLANNER_PRUNED_PR1: &str = "planner.pruned_pr1";
/// Subplans discarded by PR2 (costlier than the kept plan for the same
/// attribute subset).
pub const PLANNER_PRUNED_PR2: &str = "planner.pruned_pr2";
/// Subplans discarded by PR3 (dominated: subset coverage at higher cost).
pub const PLANNER_PRUNED_PR3: &str = "planner.pruned_pr3";
/// Branch-and-bound nodes MCSC examined across all `combine` calls.
pub const PLANNER_MCSC_COVERS_EXAMINED: &str = "planner.mcsc_covers_examined";
/// Distinct concrete plans represented/considered across the search.
pub const PLANNER_PLANS_CONSIDERED: &str = "planner.plans_considered";

// ---- executor internals (§6.2 cost model) ----

/// Source queries (SP operations) executed.
pub const EXEC_SOURCE_QUERIES: &str = "exec.source_queries";
/// Rows fetched from sources, total.
pub const EXEC_ROWS_FETCHED: &str = "exec.rows_fetched";
/// Per-subquery row counts (histogram).
pub const EXEC_ROWS_PER_SUBQUERY: &str = "exec.rows_per_subquery";
/// Σ estimated `k1 + k2·|result(sq)|` over executed source queries (gauge).
pub const EXEC_EST_COST: &str = "exec.est_cost";
/// Σ observed `k1 + k2·|result(sq)|` over executed source queries (gauge).
pub const EXEC_OBSERVED_COST: &str = "exec.observed_cost";
/// Source queries whose observed cardinality drifted ≥ 2× from the
/// estimate (either direction).
pub const EXEC_DRIFT_WARNINGS: &str = "exec.drift_warnings";
/// Batches pulled through the streaming executor.
pub const EXEC_BATCHES: &str = "exec.batches";
/// Peak tuples resident in pipeline batch buffers during a streaming run
/// (gauge; excludes dedup/sketch state and the caller's accumulated answer).
pub const EXEC_PEAK_RESIDENT_TUPLES: &str = "exec.peak_resident_tuples";
/// Virtual ticks of simulated source latency absorbed while sibling
/// streams overlapped (counter). **Nondeterministic under `parallel`** —
/// depends on thread interleaving, so goldens must not include it
/// (quarantined like the `serve.*` family).
pub const EXEC_OVERLAP_TICKS: &str = "exec.overlap_ticks";

// ---- source-side transfer meter ----

/// Source queries a source answered.
pub const SOURCE_QUERIES: &str = "source.queries";
/// Tuples shipped back to the mediator.
pub const SOURCE_TUPLES_SHIPPED: &str = "source.tuples_shipped";
/// Queries rejected by the capability gate.
pub const SOURCE_REJECTED: &str = "source.rejected";

// ---- resilience events (PR 2 fault layer) ----

/// Source-query attempts, including retries.
pub const RESILIENCE_ATTEMPTS: &str = "resilience.attempts";
/// Retries after a retryable fault.
pub const RESILIENCE_RETRIES: &str = "resilience.retries";
/// Transient faults absorbed.
pub const RESILIENCE_TRANSIENTS: &str = "resilience.transients";
/// Timeouts absorbed.
pub const RESILIENCE_TIMEOUTS: &str = "resilience.timeouts";
/// Rate-limit rejections absorbed.
pub const RESILIENCE_RATE_LIMITED: &str = "resilience.rate_limited";
/// Outage windows hit.
pub const RESILIENCE_OUTAGES: &str = "resilience.outages";
/// Failovers to a ranked alternative plan or a federation mirror.
pub const RESILIENCE_FAILOVERS: &str = "resilience.failovers";
/// Virtual ticks spent on simulated latency and backoff.
pub const RESILIENCE_BACKOFF_TICKS: &str = "resilience.backoff_ticks";

// ---- federation circuit breakers ----

/// Breaker transitions Closed → Open (member quarantined).
pub const BREAKER_OPENED: &str = "breaker.opened";
/// Breaker transitions Open → HalfOpen (cooldown elapsed, probe allowed).
pub const BREAKER_HALF_OPENED: &str = "breaker.half_opened";
/// Breaker transitions HalfOpen → Closed (probe succeeded).
pub const BREAKER_CLOSED: &str = "breaker.closed";
/// Members skipped because their breaker gate was open.
pub const FEDERATION_QUARANTINED: &str = "federation.quarantined";
/// Members that could not plan the query (capability-infeasible).
pub const FEDERATION_INFEASIBLE: &str = "federation.infeasible";
/// Member executions that failed after retries.
pub const FEDERATION_EXEC_FAILED: &str = "federation.exec_failed";
/// Queries ultimately served by some member.
pub const FEDERATION_SERVED: &str = "federation.served";

// ---- mid-query adaptive re-planning ----

/// Replan triggers observed (drift + breaker), whether or not a splice
/// followed.
pub const REPLAN_TRIGGERED: &str = "replan.triggered";
/// Replan triggers caused by observed-cardinality drift outside the
/// [½,2]× band.
pub const REPLAN_DRIFT_TRIGGERS: &str = "replan.drift_triggers";
/// Replan triggers caused by a circuit breaker opening mid-pipeline.
pub const REPLAN_BREAKER_TRIGGERS: &str = "replan.breaker_triggers";
/// Sub-plans actually spliced into a running pipeline (a trigger whose
/// re-planned residual matched the remaining plan splices nothing).
pub const REPLAN_SPLICES: &str = "replan.splices";
/// Per-member live breaker-state gauge prefix: `breaker.state.<member>`
/// with 0 = closed, 1 = half-open, 2 = open/quarantined. Set from
/// `Federation::metrics_snapshot` without advancing the breaker clock.
pub const BREAKER_STATE_PREFIX: &str = "breaker.state.";

// ---- per-member health taps (windowed health scoring inputs) ----
//
// Suffix-named counter families: `<prefix><member>`. The Prometheus
// exposition renders each family as one labeled series
// (`csqp_member_queries_total{member="..."}`) via `names::LABELED`; the
// health scorer reads them back per window through
// `health::signals_from_window`.

/// Queries a federation member ultimately served: `member.queries.<member>`.
pub const MEMBER_QUERIES_PREFIX: &str = "member.queries.";
/// Member executions that failed after retries: `member.errors.<member>`.
pub const MEMBER_ERRORS_PREFIX: &str = "member.errors.";
/// Times a member was skipped on an open breaker gate:
/// `member.quarantined.<member>`.
pub const MEMBER_QUARANTINED_PREFIX: &str = "member.quarantined.";
/// Retries attributed to a member's executions: `member.retries.<member>`.
pub const MEMBER_RETRIES_PREFIX: &str = "member.retries.";
/// Mid-query splices while a member was executing:
/// `member.splices.<member>`.
pub const MEMBER_SPLICES_PREFIX: &str = "member.splices.";
/// Drift-band replan triggers while a member was executing:
/// `member.drift_triggers.<member>`.
pub const MEMBER_DRIFT_PREFIX: &str = "member.drift_triggers.";
/// Σ planner-estimated cost of a member's executions, in cost millis
/// (×1000, so the counter stays integral): `member.est_cost_milli.<member>`.
pub const MEMBER_EST_COST_MILLI_PREFIX: &str = "member.est_cost_milli.";
/// Σ observed cost of a member's executions, in cost millis:
/// `member.observed_cost_milli.<member>`.
pub const MEMBER_OBS_COST_MILLI_PREFIX: &str = "member.observed_cost_milli.";
/// Breaker open transitions per member: `member.breaker_opened.<member>`
/// (the member-attributed sibling of the aggregate `breaker.opened`; named
/// under `member.` so its Prometheus family never collides with the
/// aggregate's).
pub const BREAKER_OPENED_PREFIX: &str = "member.breaker_opened.";
/// Health score gauge per member, republished by `/status`:
/// `health.score.<member>` in [0, 100].
pub const HEALTH_SCORE_PREFIX: &str = "health.score.";

// ---- federation capability index (compiled source pre-selection) ----

/// Members surviving the capability-index pre-filter across federated
/// planning calls (Σ per-query candidate counts).
pub const CAPINDEX_CANDIDATES: &str = "capindex.candidates_total";
/// Members pruned by the capability index before full `Check`-based
/// planning (Σ per-query pruned counts).
pub const CAPINDEX_PRUNED: &str = "capindex.pruned_total";
/// Virtual ticks spent building the index: one tick per member whose
/// capability facts were compiled (deterministic — **not** wall-clock, so
/// it is safe in goldens; real build latency is measured by the e16 bench).
pub const CAPINDEX_BUILD_TICKS: &str = "capindex.build_ticks";

// ---- federation prepared-plan cache (parameterized shapes) ----

/// Prepared-plan cache hits: an incoming query's parameterized shape
/// matched a cached plan and every constant rebound cleanly.
pub const PLANCACHE_HITS: &str = "plancache.hits";
/// Prepared-plan cache misses: no entry for the shape (cold planning ran
/// and the winner was inserted).
pub const PLANCACHE_MISSES: &str = "plancache.misses";
/// Cache entries found but rejected at rebind time (aliased-slot constant
/// conflict, const-literal grammar revalidation failure, or a structural
/// mismatch behind a fingerprint collision) — the query fell back to cold
/// planning.
pub const PLANCACHE_REJECTED: &str = "plancache.rejected";
/// Entries displaced by capacity-bounded insertion (least-recently-used).
pub const PLANCACHE_EVICTIONS: &str = "plancache.evictions";
/// Epoch bumps that wiped the cache: breaker-state transitions and
/// cost-model recalibration refits.
pub const PLANCACHE_INVALIDATIONS: &str = "plancache.invalidations";
/// Live entries resident in the prepared-plan cache (gauge).
pub const PLANCACHE_ENTRIES: &str = "plancache.entries";

// ---- serve admission control (multi-tenant front door) ----

/// Requests admitted past the tenant-quota and overload gates.
pub const ADMISSION_ADMITTED: &str = "admission.admitted";
/// Requests shed because the tenant's token bucket was empty (429).
pub const ADMISSION_SHED_QUOTA: &str = "admission.shed_quota";
/// Requests shed because the global in-flight cap was reached (429).
pub const ADMISSION_SHED_OVERLOAD: &str = "admission.shed_overload";
/// Requests currently being served across all workers (gauge).
pub const ADMISSION_INFLIGHT: &str = "admission.inflight";
/// Queries admitted per tenant: `tenant.queries.<tenant>`.
pub const TENANT_QUERIES_PREFIX: &str = "tenant.queries.";
/// Requests shed per tenant (quota or overload): `tenant.shed.<tenant>`.
pub const TENANT_SHED_PREFIX: &str = "tenant.shed.";

// ---- serve mode (`csqp serve`) ----
//
// These are the only wall-clock metrics in the registry. They exist solely
// in the long-running server, are never recorded by the library planners or
// executors, and are therefore excluded from every golden test — keeping
// the deterministic virtual-tick layer cleanly separated from real time.

/// HTTP/line-protocol requests accepted.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests that produced an error response.
pub const SERVE_ERRORS: &str = "serve.errors";
/// Queries answered over the serve surface.
pub const SERVE_QUERIES: &str = "serve.queries";
/// Queries slower than the configured slow-query threshold.
pub const SERVE_SLOW_QUERIES: &str = "serve.slow_queries";
/// End-to-end wall-clock query latency in microseconds (histogram).
pub const SERVE_LATENCY_US: &str = "serve.latency_us";
/// Rows returned to serve-mode clients.
pub const SERVE_ROWS_RETURNED: &str = "serve.rows_returned";

// ---- query profiles (span layer) ----

/// `QueryProfile` documents captured (CLI `--explain=profile` runs and
/// serve-mode queries whose profile entered the slowlog ring).
pub const PROFILE_CAPTURED: &str = "profile.captured";

// ---- SLO burn rates (serve `/status`) ----

/// Error-budget burn rate over the retained windows (gauge): the fraction
/// of serve queries that errored, divided by the configured error budget.
/// 1.0 = exactly on budget.
pub const SLO_ERROR_BURN: &str = "slo.error_burn_rate";
/// Latency-budget burn rate over the retained windows (gauge): the
/// fraction of serve queries breaching the latency objective, divided by
/// the error budget.
pub const SLO_LATENCY_BURN: &str = "slo.latency_burn_rate";
/// Serve queries that breached the configured latency objective.
pub const SLO_LATENCY_BREACHES: &str = "slo.latency_breaches";

// ---- windowed time-series & audit journal ----

/// Windows currently retained by the serve time-series ring (gauge).
pub const TIMESERIES_WINDOWS: &str = "timeseries.windows";
/// Audit-journal records appended.
pub const JOURNAL_RECORDS: &str = "journal.records";
/// Audit-journal size-based rotations performed.
pub const JOURNAL_ROTATIONS: &str = "journal.rotations";

// ---- static catalog ----

/// The Prometheus-facing kind of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`_total` in the exposition).
    Counter,
    /// Last-set or accumulated gauge.
    Gauge,
    /// Log2 histogram (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

/// One catalog row: a canonical name, its kind, and a one-line help text
/// for the `# HELP` exposition line and the docs catalog.
#[derive(Debug, Clone, Copy)]
pub struct MetricMeta {
    /// The dotted registry name (one of the constants above).
    pub name: &'static str,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// One-line description, also asserted to appear in
    /// docs/OBSERVABILITY.md by the catalog coverage test.
    pub help: &'static str,
}

const fn meta(name: &'static str, kind: MetricKind, help: &'static str) -> MetricMeta {
    MetricMeta { name, kind, help }
}

/// A suffix-named metric family rendered as one labeled Prometheus series:
/// every registry name `"<prefix><suffix>"` becomes
/// `family{label="<suffix>"}` in the exposition, with a single shared
/// `# HELP`/`# TYPE` block per family.
#[derive(Debug, Clone, Copy)]
pub struct LabeledFamily {
    /// Dotted-name prefix, including the trailing dot (a `CATALOG` row).
    pub prefix: &'static str,
    /// Prometheus family name (already `csqp_`-prefixed; counters get
    /// `_total` appended at render time).
    pub family: &'static str,
    /// The label key carrying the suffix.
    pub label: &'static str,
}

const fn fam(prefix: &'static str, family: &'static str) -> LabeledFamily {
    LabeledFamily { prefix, family, label: "member" }
}

const fn tenant_fam(prefix: &'static str, family: &'static str) -> LabeledFamily {
    LabeledFamily { prefix, family, label: "tenant" }
}

/// Every suffix-named family the exposition renders with labels. Sorted by
/// prefix; each prefix also has a `CATALOG` row carrying kind + help.
pub const LABELED: &[LabeledFamily] = &[
    fam(BREAKER_STATE_PREFIX, "csqp_breaker_state"),
    fam(HEALTH_SCORE_PREFIX, "csqp_health_score"),
    fam(BREAKER_OPENED_PREFIX, "csqp_member_breaker_opened"),
    fam(MEMBER_DRIFT_PREFIX, "csqp_member_drift_triggers"),
    fam(MEMBER_ERRORS_PREFIX, "csqp_member_errors"),
    fam(MEMBER_EST_COST_MILLI_PREFIX, "csqp_member_est_cost_milli"),
    fam(MEMBER_OBS_COST_MILLI_PREFIX, "csqp_member_observed_cost_milli"),
    fam(MEMBER_QUARANTINED_PREFIX, "csqp_member_quarantined"),
    fam(MEMBER_QUERIES_PREFIX, "csqp_member_queries"),
    fam(MEMBER_RETRIES_PREFIX, "csqp_member_retries"),
    fam(MEMBER_SPLICES_PREFIX, "csqp_member_splices"),
    tenant_fam(TENANT_QUERIES_PREFIX, "csqp_tenant_queries"),
    tenant_fam(TENANT_SHED_PREFIX, "csqp_tenant_shed"),
];

/// The labeled family a registry name belongs to (with the suffix split
/// off), or `None` for ordinary flat names. A bare prefix with an empty
/// suffix does not match — it would render an empty label value.
pub fn labeled_for(name: &str) -> Option<(&'static LabeledFamily, &str)> {
    LABELED.iter().find_map(|f| {
        name.strip_prefix(f.prefix).filter(|s| !s.is_empty()).map(|suffix| (f, suffix))
    })
}

/// Every metric the stack exports, with kind and help text. `prom` renders
/// `# HELP` from this; the coverage test pins that each row is documented
/// in docs/OBSERVABILITY.md.
pub const CATALOG: &[MetricMeta] = &[
    meta(PLANNER_REWRITES_GENERATED, MetricKind::Counter, "rewritten CTs produced"),
    meta(PLANNER_CTS_CANONICALIZED, MetricKind::Counter, "CTs canonicalized by the generator"),
    meta(PLANNER_CHECK_CALLS, MetricKind::Counter, "Check(C, R) invocations before caching"),
    meta(PLANNER_CHECK_CACHE_HITS, MetricKind::Counter, "CheckCache hits"),
    meta(PLANNER_CHECK_CACHE_MISSES, MetricKind::Counter, "CheckCache misses (real parses)"),
    meta(PLANNER_IPG_MEMO_HITS, MetricKind::Counter, "IPG memo-table hits"),
    meta(PLANNER_GENERATOR_CALLS, MetricKind::Counter, "recursive plan-generator invocations"),
    meta(PLANNER_PRUNED_PR1, MetricKind::Counter, "sub-searches short-circuited by PR1"),
    meta(PLANNER_PRUNED_PR2, MetricKind::Counter, "subplans discarded by PR2"),
    meta(PLANNER_PRUNED_PR3, MetricKind::Counter, "subplans discarded by PR3 domination"),
    meta(PLANNER_MCSC_COVERS_EXAMINED, MetricKind::Counter, "MCSC branch-and-bound nodes examined"),
    meta(PLANNER_PLANS_CONSIDERED, MetricKind::Counter, "distinct concrete plans considered"),
    meta(EXEC_SOURCE_QUERIES, MetricKind::Counter, "source queries executed"),
    meta(EXEC_ROWS_FETCHED, MetricKind::Counter, "rows fetched from sources"),
    meta(EXEC_ROWS_PER_SUBQUERY, MetricKind::Histogram, "per-subquery row counts"),
    meta(EXEC_EST_COST, MetricKind::Gauge, "estimated cost over executed source queries"),
    meta(EXEC_OBSERVED_COST, MetricKind::Gauge, "observed cost over executed source queries"),
    meta(EXEC_DRIFT_WARNINGS, MetricKind::Counter, "cardinality drift warnings"),
    meta(EXEC_BATCHES, MetricKind::Counter, "batches pulled through the streaming executor"),
    meta(EXEC_PEAK_RESIDENT_TUPLES, MetricKind::Gauge, "peak tuples resident in pipeline buffers"),
    meta(EXEC_OVERLAP_TICKS, MetricKind::Counter, "latency ticks absorbed by overlapped fetch"),
    meta(SOURCE_QUERIES, MetricKind::Counter, "source queries answered"),
    meta(SOURCE_TUPLES_SHIPPED, MetricKind::Counter, "tuples shipped to the mediator"),
    meta(SOURCE_REJECTED, MetricKind::Counter, "queries rejected by the capability gate"),
    meta(RESILIENCE_ATTEMPTS, MetricKind::Counter, "source-query attempts including retries"),
    meta(RESILIENCE_RETRIES, MetricKind::Counter, "retries after retryable faults"),
    meta(RESILIENCE_TRANSIENTS, MetricKind::Counter, "transient faults absorbed"),
    meta(RESILIENCE_TIMEOUTS, MetricKind::Counter, "timeouts absorbed"),
    meta(RESILIENCE_RATE_LIMITED, MetricKind::Counter, "rate-limit rejections absorbed"),
    meta(RESILIENCE_OUTAGES, MetricKind::Counter, "outage windows hit"),
    meta(RESILIENCE_FAILOVERS, MetricKind::Counter, "failovers to alternative plans or mirrors"),
    meta(RESILIENCE_BACKOFF_TICKS, MetricKind::Counter, "virtual ticks of latency and backoff"),
    meta(BREAKER_OPENED, MetricKind::Counter, "breaker transitions to open"),
    meta(BREAKER_HALF_OPENED, MetricKind::Counter, "breaker transitions to half-open"),
    meta(BREAKER_CLOSED, MetricKind::Counter, "breaker transitions back to closed"),
    meta(FEDERATION_QUARANTINED, MetricKind::Counter, "members skipped on an open breaker"),
    meta(FEDERATION_INFEASIBLE, MetricKind::Counter, "members that could not plan the query"),
    meta(FEDERATION_EXEC_FAILED, MetricKind::Counter, "member executions failed after retries"),
    meta(FEDERATION_SERVED, MetricKind::Counter, "queries served by some member"),
    meta(REPLAN_TRIGGERED, MetricKind::Counter, "replan triggers observed"),
    meta(REPLAN_DRIFT_TRIGGERS, MetricKind::Counter, "replan triggers from cardinality drift"),
    meta(REPLAN_BREAKER_TRIGGERS, MetricKind::Counter, "replan triggers from breaker opens"),
    meta(REPLAN_SPLICES, MetricKind::Counter, "sub-plans spliced into running pipelines"),
    meta(BREAKER_STATE_PREFIX, MetricKind::Gauge, "live breaker state per member (0/1/2)"),
    meta(CAPINDEX_CANDIDATES, MetricKind::Counter, "members surviving the capability index"),
    meta(CAPINDEX_PRUNED, MetricKind::Counter, "members pruned by the capability index"),
    meta(CAPINDEX_BUILD_TICKS, MetricKind::Counter, "virtual ticks compiling capability facts"),
    meta(PLANCACHE_HITS, MetricKind::Counter, "prepared-plan cache hits (rebound and served)"),
    meta(PLANCACHE_MISSES, MetricKind::Counter, "prepared-plan cache misses (cold planned)"),
    meta(PLANCACHE_REJECTED, MetricKind::Counter, "cache entries rejected at rebind time"),
    meta(PLANCACHE_EVICTIONS, MetricKind::Counter, "cache entries displaced by capacity"),
    meta(PLANCACHE_INVALIDATIONS, MetricKind::Counter, "cache wipes from breaker/recalibration"),
    meta(PLANCACHE_ENTRIES, MetricKind::Gauge, "live prepared-plan cache entries"),
    meta(ADMISSION_ADMITTED, MetricKind::Counter, "requests admitted past the front-door gates"),
    meta(ADMISSION_SHED_QUOTA, MetricKind::Counter, "requests shed on an empty tenant bucket"),
    meta(ADMISSION_SHED_OVERLOAD, MetricKind::Counter, "requests shed at the in-flight cap"),
    meta(ADMISSION_INFLIGHT, MetricKind::Gauge, "requests currently in flight"),
    meta(TENANT_QUERIES_PREFIX, MetricKind::Counter, "queries admitted per tenant"),
    meta(TENANT_SHED_PREFIX, MetricKind::Counter, "requests shed per tenant"),
    meta(SERVE_REQUESTS, MetricKind::Counter, "requests accepted"),
    meta(SERVE_ERRORS, MetricKind::Counter, "error responses produced"),
    meta(SERVE_QUERIES, MetricKind::Counter, "queries answered over the serve surface"),
    meta(SERVE_SLOW_QUERIES, MetricKind::Counter, "queries over the slow threshold"),
    meta(SERVE_LATENCY_US, MetricKind::Histogram, "wall-clock query latency in microseconds"),
    meta(SERVE_ROWS_RETURNED, MetricKind::Counter, "rows returned to clients"),
    meta(PROFILE_CAPTURED, MetricKind::Counter, "QueryProfile documents captured"),
    meta(MEMBER_QUERIES_PREFIX, MetricKind::Counter, "queries served per federation member"),
    meta(MEMBER_ERRORS_PREFIX, MetricKind::Counter, "failed executions per federation member"),
    meta(MEMBER_QUARANTINED_PREFIX, MetricKind::Counter, "breaker-gate skips per member"),
    meta(MEMBER_RETRIES_PREFIX, MetricKind::Counter, "retries per federation member"),
    meta(MEMBER_SPLICES_PREFIX, MetricKind::Counter, "mid-query splices per member"),
    meta(MEMBER_DRIFT_PREFIX, MetricKind::Counter, "drift replan triggers per member"),
    meta(MEMBER_EST_COST_MILLI_PREFIX, MetricKind::Counter, "estimated cost millis per member"),
    meta(MEMBER_OBS_COST_MILLI_PREFIX, MetricKind::Counter, "observed cost millis per member"),
    meta(BREAKER_OPENED_PREFIX, MetricKind::Counter, "breaker opens attributed per member"),
    meta(HEALTH_SCORE_PREFIX, MetricKind::Gauge, "health score per member (0-100)"),
    meta(SLO_ERROR_BURN, MetricKind::Gauge, "error-budget burn rate over retained windows"),
    meta(SLO_LATENCY_BURN, MetricKind::Gauge, "latency-budget burn rate over retained windows"),
    meta(SLO_LATENCY_BREACHES, MetricKind::Counter, "queries breaching the latency objective"),
    meta(TIMESERIES_WINDOWS, MetricKind::Gauge, "windows retained by the time-series ring"),
    meta(JOURNAL_RECORDS, MetricKind::Counter, "audit-journal records appended"),
    meta(JOURNAL_ROTATIONS, MetricKind::Counter, "audit-journal rotations performed"),
];

/// Catalog lookup: exact name match, or the labeled-family prefix row for
/// dynamically suffix-named metrics (`breaker.state.<member>` and the
/// `member.*` / `health.score.*` families). `None` for ad-hoc names (tests,
/// future metrics not yet cataloged) — the exposition falls back to its
/// generic help line.
pub fn help_for(name: &str) -> Option<&'static MetricMeta> {
    CATALOG.iter().find(|m| m.name == name).or_else(|| {
        labeled_for(name).and_then(|(f, _)| CATALOG.iter().find(|m| m.name == f.prefix))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_no_duplicates_and_resolves_prefixes() {
        let mut seen = std::collections::BTreeSet::new();
        for m in CATALOG {
            assert!(seen.insert(m.name), "duplicate catalog row {}", m.name);
            assert!(!m.help.is_empty());
        }
        assert_eq!(help_for(SERVE_LATENCY_US).unwrap().kind, MetricKind::Histogram);
        assert_eq!(help_for("breaker.state.books-eu").unwrap().kind, MetricKind::Gauge);
        assert_eq!(help_for("member.queries.books-eu").unwrap().kind, MetricKind::Counter);
        assert!(help_for("not.a.metric").is_none());
    }

    #[test]
    fn labeled_families_resolve_and_are_cataloged() {
        let (f, suffix) = labeled_for("breaker.state.books-eu").unwrap();
        assert_eq!(f.family, "csqp_breaker_state");
        assert_eq!(f.label, "member");
        assert_eq!(suffix, "books-eu");
        assert!(labeled_for("breaker.state.").is_none(), "empty suffix never matches");
        assert!(labeled_for("serve.queries").is_none());
        // Every labeled family has a catalog row, a unique prom family, and
        // the aggregate `breaker.opened` never collides with a family name.
        let mut families = std::collections::BTreeSet::new();
        for f in LABELED {
            assert!(
                CATALOG.iter().any(|m| m.name == f.prefix),
                "labeled prefix {} missing from CATALOG",
                f.prefix
            );
            assert!(families.insert(f.family), "duplicate prom family {}", f.family);
            assert!(f.prefix.ends_with('.'), "prefix {} must end with a dot", f.prefix);
        }
    }

    #[test]
    fn every_catalog_name_is_documented() {
        // The docs catalog (docs/OBSERVABILITY.md) must mention every
        // exported metric name, so renaming or adding a metric forces the
        // documentation to follow.
        let docs = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/OBSERVABILITY.md"
        ))
        .expect("docs/OBSERVABILITY.md readable from crates/obs");
        let mut missing: Vec<&str> =
            CATALOG.iter().map(|m| m.name).filter(|n| !docs.contains(*n)).collect();
        missing.sort_unstable();
        assert!(missing.is_empty(), "metric names missing from docs/OBSERVABILITY.md: {missing:?}");
    }
}
