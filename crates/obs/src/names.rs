//! Canonical metric names — the schema of a [`crate::MetricsSnapshot`].
//!
//! Every component records under these constants so the `--metrics json`
//! output is stable across refactors: renaming a metric is an explicit,
//! reviewable change here rather than a drive-by string edit at a call
//! site.

// ---- planner internals (§5–§6 of the paper) ----

/// Rewritten CTs the rewrite module produced (GenCompact: compact
/// enumeration output; GenModular: DNF/CNF-style rewritings).
pub const PLANNER_REWRITES_GENERATED: &str = "planner.rewrites_generated";
/// CTs canonicalized/processed by the plan generator.
pub const PLANNER_CTS_CANONICALIZED: &str = "planner.cts_canonicalized";
/// `Check(C, R)` invocations (before caching).
pub const PLANNER_CHECK_CALLS: &str = "planner.check_calls";
/// CheckCache hits (calls answered without re-parsing).
pub const PLANNER_CHECK_CACHE_HITS: &str = "planner.check_cache_hits";
/// CheckCache misses (actual capability-template parses).
pub const PLANNER_CHECK_CACHE_MISSES: &str = "planner.check_cache_misses";
/// IPG memo-table hits (whole sub-searches skipped).
pub const PLANNER_IPG_MEMO_HITS: &str = "planner.ipg_memo_hits";
/// Recursive plan-generator invocations (EPG or IPG calls).
pub const PLANNER_GENERATOR_CALLS: &str = "planner.generator_calls";
/// Sub-searches short-circuited by PR1 (pure plan found).
pub const PLANNER_PRUNED_PR1: &str = "planner.pruned_pr1";
/// Subplans discarded by PR2 (costlier than the kept plan for the same
/// attribute subset).
pub const PLANNER_PRUNED_PR2: &str = "planner.pruned_pr2";
/// Subplans discarded by PR3 (dominated: subset coverage at higher cost).
pub const PLANNER_PRUNED_PR3: &str = "planner.pruned_pr3";
/// Branch-and-bound nodes MCSC examined across all `combine` calls.
pub const PLANNER_MCSC_COVERS_EXAMINED: &str = "planner.mcsc_covers_examined";
/// Distinct concrete plans represented/considered across the search.
pub const PLANNER_PLANS_CONSIDERED: &str = "planner.plans_considered";

// ---- executor internals (§6.2 cost model) ----

/// Source queries (SP operations) executed.
pub const EXEC_SOURCE_QUERIES: &str = "exec.source_queries";
/// Rows fetched from sources, total.
pub const EXEC_ROWS_FETCHED: &str = "exec.rows_fetched";
/// Per-subquery row counts (histogram).
pub const EXEC_ROWS_PER_SUBQUERY: &str = "exec.rows_per_subquery";
/// Σ estimated `k1 + k2·|result(sq)|` over executed source queries (gauge).
pub const EXEC_EST_COST: &str = "exec.est_cost";
/// Σ observed `k1 + k2·|result(sq)|` over executed source queries (gauge).
pub const EXEC_OBSERVED_COST: &str = "exec.observed_cost";
/// Source queries whose observed cardinality drifted ≥ 2× from the
/// estimate (either direction).
pub const EXEC_DRIFT_WARNINGS: &str = "exec.drift_warnings";
/// Batches pulled through the streaming executor.
pub const EXEC_BATCHES: &str = "exec.batches";
/// Peak tuples resident in pipeline batch buffers during a streaming run
/// (gauge; excludes dedup/sketch state and the caller's accumulated answer).
pub const EXEC_PEAK_RESIDENT_TUPLES: &str = "exec.peak_resident_tuples";
/// Virtual ticks of simulated source latency absorbed while sibling
/// streams overlapped (counter). **Nondeterministic under `parallel`** —
/// depends on thread interleaving, so goldens must not include it
/// (quarantined like the `serve.*` family).
pub const EXEC_OVERLAP_TICKS: &str = "exec.overlap_ticks";

// ---- source-side transfer meter ----

/// Source queries a source answered.
pub const SOURCE_QUERIES: &str = "source.queries";
/// Tuples shipped back to the mediator.
pub const SOURCE_TUPLES_SHIPPED: &str = "source.tuples_shipped";
/// Queries rejected by the capability gate.
pub const SOURCE_REJECTED: &str = "source.rejected";

// ---- resilience events (PR 2 fault layer) ----

/// Source-query attempts, including retries.
pub const RESILIENCE_ATTEMPTS: &str = "resilience.attempts";
/// Retries after a retryable fault.
pub const RESILIENCE_RETRIES: &str = "resilience.retries";
/// Transient faults absorbed.
pub const RESILIENCE_TRANSIENTS: &str = "resilience.transients";
/// Timeouts absorbed.
pub const RESILIENCE_TIMEOUTS: &str = "resilience.timeouts";
/// Rate-limit rejections absorbed.
pub const RESILIENCE_RATE_LIMITED: &str = "resilience.rate_limited";
/// Outage windows hit.
pub const RESILIENCE_OUTAGES: &str = "resilience.outages";
/// Failovers to a ranked alternative plan or a federation mirror.
pub const RESILIENCE_FAILOVERS: &str = "resilience.failovers";
/// Virtual ticks spent on simulated latency and backoff.
pub const RESILIENCE_BACKOFF_TICKS: &str = "resilience.backoff_ticks";

// ---- federation circuit breakers ----

/// Breaker transitions Closed → Open (member quarantined).
pub const BREAKER_OPENED: &str = "breaker.opened";
/// Breaker transitions Open → HalfOpen (cooldown elapsed, probe allowed).
pub const BREAKER_HALF_OPENED: &str = "breaker.half_opened";
/// Breaker transitions HalfOpen → Closed (probe succeeded).
pub const BREAKER_CLOSED: &str = "breaker.closed";
/// Members skipped because their breaker gate was open.
pub const FEDERATION_QUARANTINED: &str = "federation.quarantined";
/// Members that could not plan the query (capability-infeasible).
pub const FEDERATION_INFEASIBLE: &str = "federation.infeasible";
/// Member executions that failed after retries.
pub const FEDERATION_EXEC_FAILED: &str = "federation.exec_failed";
/// Queries ultimately served by some member.
pub const FEDERATION_SERVED: &str = "federation.served";

// ---- mid-query adaptive re-planning ----

/// Replan triggers observed (drift + breaker), whether or not a splice
/// followed.
pub const REPLAN_TRIGGERED: &str = "replan.triggered";
/// Replan triggers caused by observed-cardinality drift outside the
/// [½,2]× band.
pub const REPLAN_DRIFT_TRIGGERS: &str = "replan.drift_triggers";
/// Replan triggers caused by a circuit breaker opening mid-pipeline.
pub const REPLAN_BREAKER_TRIGGERS: &str = "replan.breaker_triggers";
/// Sub-plans actually spliced into a running pipeline (a trigger whose
/// re-planned residual matched the remaining plan splices nothing).
pub const REPLAN_SPLICES: &str = "replan.splices";
/// Per-member live breaker-state gauge prefix: `breaker.state.<member>`
/// with 0 = closed, 1 = half-open, 2 = open/quarantined. Set from
/// `Federation::metrics_snapshot` without advancing the breaker clock.
pub const BREAKER_STATE_PREFIX: &str = "breaker.state.";

// ---- federation capability index (compiled source pre-selection) ----

/// Members surviving the capability-index pre-filter across federated
/// planning calls (Σ per-query candidate counts).
pub const CAPINDEX_CANDIDATES: &str = "capindex.candidates_total";
/// Members pruned by the capability index before full `Check`-based
/// planning (Σ per-query pruned counts).
pub const CAPINDEX_PRUNED: &str = "capindex.pruned_total";
/// Virtual ticks spent building the index: one tick per member whose
/// capability facts were compiled (deterministic — **not** wall-clock, so
/// it is safe in goldens; real build latency is measured by the e16 bench).
pub const CAPINDEX_BUILD_TICKS: &str = "capindex.build_ticks";

// ---- serve mode (`csqp serve`) ----
//
// These are the only wall-clock metrics in the registry. They exist solely
// in the long-running server, are never recorded by the library planners or
// executors, and are therefore excluded from every golden test — keeping
// the deterministic virtual-tick layer cleanly separated from real time.

/// HTTP/line-protocol requests accepted.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests that produced an error response.
pub const SERVE_ERRORS: &str = "serve.errors";
/// Queries answered over the serve surface.
pub const SERVE_QUERIES: &str = "serve.queries";
/// Queries slower than the configured slow-query threshold.
pub const SERVE_SLOW_QUERIES: &str = "serve.slow_queries";
/// End-to-end wall-clock query latency in microseconds (histogram).
pub const SERVE_LATENCY_US: &str = "serve.latency_us";
/// Rows returned to serve-mode clients.
pub const SERVE_ROWS_RETURNED: &str = "serve.rows_returned";
