//! The persistent audit journal: one JSONL record per completed serve
//! query, plus the summarize/diff analysis behind `csqp audit`.
//!
//! A [`QueryProfile`] is deep but ephemeral — the slowlog ring holds a few
//! dozen and nothing survives process exit. The journal is the opposite
//! trade: one compact, flat record per query ([`AuditRecord`]), appended to
//! an on-disk JSONL file by [`JournalWriter`] with size-based rotation, so a
//! serve run leaves a replayable operational record behind. `csqp audit`
//! then summarizes one journal ([`summarize`]/[`render_summary`]) or diffs
//! two ([`render_diff`]): latency-distribution shift, error-rate shift, and
//! plan-scheme churn keyed by condition fingerprint — cross-run regressions
//! as a CLI one-liner.
//!
//! Records are flat JSON (string / integer / null values only) and the
//! parser is a hand-rolled tokenizer for exactly that subset — the repo is
//! dependency-free by design. `wall_us` follows the [`crate::LatencyKey`]
//! quarantine: `null` outside serve's wall clock, so journals written by
//! deterministic tests are byte-stable.

use crate::metrics::render_json_string;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as IoWrite;
use std::path::{Path, PathBuf};

/// One completed serve query, as journaled. A compact sibling of
/// [`crate::QueryProfile`]: everything needed for cross-run comparison,
/// nothing that needs the process alive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditRecord {
    /// Serve-mode query id.
    pub id: u64,
    /// Condition fingerprint, `{:032x}`-rendered u128 — the plan-churn key.
    pub fingerprint: String,
    /// The query text as submitted.
    pub query: String,
    /// Plan-generation scheme in effect.
    pub scheme: String,
    /// `ok` or `error`.
    pub status: String,
    /// Rows returned (0 on error).
    pub rows: u64,
    /// Wall-clock latency in µs; `None` when quarantined.
    pub wall_us: Option<u64>,
    /// Virtual ticks elapsed over the query.
    pub ticks: u64,
    /// Mid-query sub-plan splices.
    pub splices: u64,
    /// Drift-band replan triggers.
    pub drift_triggers: u64,
    /// Breaker transitions (opened + half-opened + closed) during the query.
    pub breaker_events: u64,
    /// Federation members surviving the capability-index pre-filter.
    pub capindex_candidates: u64,
    /// Federation members considered before the pre-filter.
    pub capindex_total: u64,
}

impl AuditRecord {
    /// The ranking latency, mirroring [`crate::LatencyKey::value`].
    pub fn latency_value(&self) -> u64 {
        self.wall_us.unwrap_or(self.ticks)
    }

    /// Renders the record as one JSONL line (no trailing newline). Key
    /// order is pinned; this is the journal's schema.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::from("{\"id\": ");
        let _ = write!(out, "{}", self.id);
        out.push_str(", \"fingerprint\": ");
        render_json_string(&mut out, &self.fingerprint);
        out.push_str(", \"query\": ");
        render_json_string(&mut out, &self.query);
        out.push_str(", \"scheme\": ");
        render_json_string(&mut out, &self.scheme);
        out.push_str(", \"status\": ");
        render_json_string(&mut out, &self.status);
        let _ = write!(out, ", \"rows\": {}", self.rows);
        out.push_str(", \"wall_us\": ");
        match self.wall_us {
            Some(us) => {
                let _ = write!(out, "{us}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ", \"ticks\": {}, \"splices\": {}, \"drift_triggers\": {}, \"breaker_events\": {}, \
             \"capindex_candidates\": {}, \"capindex_total\": {}}}",
            self.ticks,
            self.splices,
            self.drift_triggers,
            self.breaker_events,
            self.capindex_candidates,
            self.capindex_total,
        );
        out
    }

    /// Parses one JSONL line back into a record. Unknown keys are ignored
    /// (forward compatibility); missing keys default. `Err` carries a short
    /// reason for `csqp audit`'s per-line diagnostics.
    pub fn parse(line: &str) -> Result<AuditRecord, String> {
        let mut rec = AuditRecord::default();
        for (key, value) in parse_flat_object(line)? {
            match (key.as_str(), value) {
                ("id", FlatValue::U64(v)) => rec.id = v,
                ("fingerprint", FlatValue::Str(s)) => rec.fingerprint = s,
                ("query", FlatValue::Str(s)) => rec.query = s,
                ("scheme", FlatValue::Str(s)) => rec.scheme = s,
                ("status", FlatValue::Str(s)) => rec.status = s,
                ("rows", FlatValue::U64(v)) => rec.rows = v,
                ("wall_us", FlatValue::U64(v)) => rec.wall_us = Some(v),
                ("wall_us", FlatValue::Null) => rec.wall_us = None,
                ("ticks", FlatValue::U64(v)) => rec.ticks = v,
                ("splices", FlatValue::U64(v)) => rec.splices = v,
                ("drift_triggers", FlatValue::U64(v)) => rec.drift_triggers = v,
                ("breaker_events", FlatValue::U64(v)) => rec.breaker_events = v,
                ("capindex_candidates", FlatValue::U64(v)) => rec.capindex_candidates = v,
                ("capindex_total", FlatValue::U64(v)) => rec.capindex_total = v,
                _ => {}
            }
        }
        Ok(rec)
    }
}

/// A parsed flat-JSON value: the only shapes the journal schema uses.
enum FlatValue {
    Str(String),
    U64(u64),
    Null,
}

/// Parses a one-line flat JSON object (`{"k": "v", "n": 3, "x": null}`)
/// into key/value pairs. Nested objects/arrays are out of schema and
/// rejected.
fn parse_flat_object(line: &str) -> Result<Vec<(String, FlatValue)>, String> {
    let mut pairs = Vec::new();
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;

    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err(format!("expected string at char {i:?}"));
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = bytes.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let hex: String =
                                bytes.get(*i..*i + 4).ok_or("truncated \\u")?.iter().collect();
                            *i += 4;
                            let cp = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u{hex}"))?;
                            out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    };

    skip_ws(&mut i);
    if bytes.get(i) != Some(&'{') {
        return Err("expected '{'".to_string());
    }
    i += 1;
    loop {
        skip_ws(&mut i);
        match bytes.get(i) {
            Some('}') => break,
            Some(',') => {
                i += 1;
                continue;
            }
            Some('"') => {}
            other => return Err(format!("expected key, got {other:?}")),
        }
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&':') {
            return Err(format!("expected ':' after key {key}"));
        }
        i += 1;
        skip_ws(&mut i);
        let value = match bytes.get(i) {
            Some('"') => FlatValue::Str(parse_string(&mut i)?),
            Some('n') => {
                if bytes.get(i..i + 4).map(|c| c.iter().collect::<String>())
                    != Some("null".to_string())
                {
                    return Err("expected null".to_string());
                }
                i += 4;
                FlatValue::Null
            }
            Some(c) if c.is_ascii_digit() => {
                let start = i;
                while bytes.get(i).is_some_and(|c| c.is_ascii_digit()) {
                    i += 1;
                }
                let digits: String = bytes[start..i].iter().collect();
                FlatValue::U64(digits.parse().map_err(|_| format!("bad number {digits}"))?)
            }
            other => return Err(format!("unsupported value start {other:?} for key {key}")),
        };
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Appends [`AuditRecord`]s to a JSONL file with size-based rotation: when
/// a record would push the active file past `max_bytes`, the file rotates
/// to `<path>.1` (overwriting the previous rotation) and a fresh file
/// starts. The bounded-size invariant — pinned by a property test — is
/// `size(path) + size(path.1) ≤ 2·max_bytes + one record`.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    max_bytes: u64,
    written: u64,
    file: File,
    /// Records appended over the writer's lifetime.
    pub records: u64,
    /// Rotations performed over the writer's lifetime.
    pub rotations: u64,
}

impl JournalWriter {
    /// Opens (appending) or creates the journal at `path`.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> Result<JournalWriter, String> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open journal {}: {e}", path.display()))?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(JournalWriter {
            path,
            max_bytes: max_bytes.max(1),
            written,
            file,
            records: 0,
            rotations: 0,
        })
    }

    /// Appends one record as a single `write` call (one line, newline
    /// included — concurrent readers never observe a torn record), rotating
    /// first if the active file would exceed `max_bytes`.
    pub fn append(&mut self, record: &AuditRecord) -> Result<(), String> {
        let mut line = record.to_jsonl();
        line.push('\n');
        if self.written > 0 && self.written + line.len() as u64 > self.max_bytes {
            self.rotate()?;
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("append journal {}: {e}", self.path.display()))?;
        self.written += line.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// The rotation target (`<path>.1`).
    pub fn rotated_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_owned();
        os.push(".1");
        PathBuf::from(os)
    }

    fn rotate(&mut self) -> Result<(), String> {
        std::fs::rename(&self.path, self.rotated_path())
            .map_err(|e| format!("rotate journal {}: {e}", self.path.display()))?;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("reopen journal {}: {e}", self.path.display()))?;
        self.written = 0;
        self.rotations += 1;
        Ok(())
    }
}

/// Reads every parseable record from a journal file (skipping blank lines;
/// unparseable lines are returned as errors alongside the good records so
/// `csqp audit` can report them without dying).
pub fn read_journal(path: &Path) -> Result<(Vec<AuditRecord>, Vec<String>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read journal {}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match AuditRecord::parse(line) {
            Ok(r) => records.push(r),
            Err(e) => errors.push(format!("line {}: {e}", lineno + 1)),
        }
    }
    Ok((records, errors))
}

/// Aggregates over one journal, the unit `render_summary`/`render_diff`
/// work from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalSummary {
    /// Records read.
    pub records: u64,
    /// Records with `status != "ok"`.
    pub errors: u64,
    /// Σ rows returned.
    pub rows: u64,
    /// Σ splices.
    pub splices: u64,
    /// Σ drift triggers.
    pub drift_triggers: u64,
    /// Σ breaker events.
    pub breaker_events: u64,
    /// Latency p50 (nearest-rank over `latency_value`).
    pub p50: u64,
    /// Latency p99.
    pub p99: u64,
    /// Latency max.
    pub max: u64,
    /// Records per scheme.
    pub schemes: BTreeMap<String, u64>,
    /// Last scheme observed per fingerprint — the plan-churn join key.
    pub plan_by_fingerprint: BTreeMap<String, String>,
}

/// Summarizes a slice of records.
pub fn summarize(records: &[AuditRecord]) -> JournalSummary {
    let mut s = JournalSummary { records: records.len() as u64, ..Default::default() };
    let mut latencies: Vec<u64> = Vec::with_capacity(records.len());
    for r in records {
        if r.status != "ok" {
            s.errors += 1;
        }
        s.rows += r.rows;
        s.splices += r.splices;
        s.drift_triggers += r.drift_triggers;
        s.breaker_events += r.breaker_events;
        latencies.push(r.latency_value());
        *s.schemes.entry(r.scheme.clone()).or_insert(0) += 1;
        s.plan_by_fingerprint.insert(r.fingerprint.clone(), r.scheme.clone());
    }
    latencies.sort_unstable();
    let rank = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let n = latencies.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        latencies[idx]
    };
    s.p50 = rank(0.50);
    s.p99 = rank(0.99);
    s.max = latencies.last().copied().unwrap_or(0);
    s
}

/// Error rate as a fraction.
fn error_rate(s: &JournalSummary) -> f64 {
    if s.records == 0 {
        0.0
    } else {
        s.errors as f64 / s.records as f64
    }
}

/// Renders one journal's summary (the `csqp audit <journal>` output).
pub fn render_summary(label: &str, s: &JournalSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "journal {label}");
    let _ = writeln!(
        out,
        "  records {}  errors {} ({:.1}%)  rows {}",
        s.records,
        s.errors,
        error_rate(s) * 100.0,
        s.rows
    );
    let _ = writeln!(out, "  latency p50 {}  p99 {}  max {}", s.p50, s.p99, s.max);
    let _ = writeln!(
        out,
        "  splices {}  drift_triggers {}  breaker_events {}",
        s.splices, s.drift_triggers, s.breaker_events
    );
    let schemes: Vec<String> = s.schemes.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let _ = writeln!(
        out,
        "  schemes {}  fingerprints {}",
        if schemes.is_empty() { "-".to_string() } else { schemes.join(" ") },
        s.plan_by_fingerprint.len()
    );
    out
}

/// Percentage-point / signed-shift helper: `+x` / `-x` / `0`.
fn signed(v: f64) -> String {
    if v > 0.0 {
        format!("+{v:.1}")
    } else {
        format!("{v:.1}")
    }
}

/// Diffs two journals (`a` = baseline, `b` = candidate): latency
/// distribution shift, error-rate shift in percentage points, scheme mix,
/// and plan-scheme churn by fingerprint. Deterministic for deterministic
/// inputs — the `csqp audit --diff` output and a CI artifact.
pub fn render_diff(a: &JournalSummary, b: &JournalSummary) -> String {
    let mut out = String::from("audit diff (a = baseline, b = candidate)\n");
    let _ = writeln!(out, "  records a {}  b {}", a.records, b.records);
    let pct = |from: u64, to: u64| -> String {
        if from == 0 {
            return "n/a".to_string();
        }
        signed((to as f64 - from as f64) / from as f64 * 100.0) + "%"
    };
    let _ = writeln!(
        out,
        "  latency p50 {} -> {} ({})  p99 {} -> {} ({})  max {} -> {}",
        a.p50,
        b.p50,
        pct(a.p50, b.p50),
        a.p99,
        b.p99,
        pct(a.p99, b.p99),
        a.max,
        b.max
    );
    let _ = writeln!(
        out,
        "  error rate {:.1}% -> {:.1}% ({} pts)",
        error_rate(a) * 100.0,
        error_rate(b) * 100.0,
        signed((error_rate(b) - error_rate(a)) * 100.0)
    );
    let _ = writeln!(
        out,
        "  splices {} -> {}  drift_triggers {} -> {}  breaker_events {} -> {}",
        a.splices,
        b.splices,
        a.drift_triggers,
        b.drift_triggers,
        a.breaker_events,
        b.breaker_events
    );
    let mut all_schemes: Vec<&String> = a.schemes.keys().chain(b.schemes.keys()).collect();
    all_schemes.sort();
    all_schemes.dedup();
    for scheme in all_schemes {
        let _ = writeln!(
            out,
            "  scheme {scheme}: {} -> {}",
            a.schemes.get(scheme).copied().unwrap_or(0),
            b.schemes.get(scheme).copied().unwrap_or(0)
        );
    }
    let mut churned = 0u64;
    let mut churn_lines = Vec::new();
    for (fp, scheme_a) in &a.plan_by_fingerprint {
        if let Some(scheme_b) = b.plan_by_fingerprint.get(fp) {
            if scheme_a != scheme_b {
                churned += 1;
                if churn_lines.len() < 10 {
                    churn_lines.push(format!("    {fp}: {scheme_a} -> {scheme_b}"));
                }
            }
        }
    }
    let only_a =
        a.plan_by_fingerprint.keys().filter(|fp| !b.plan_by_fingerprint.contains_key(*fp)).count();
    let only_b =
        b.plan_by_fingerprint.keys().filter(|fp| !a.plan_by_fingerprint.contains_key(*fp)).count();
    let _ = writeln!(
        out,
        "  plan churn: {churned} fingerprint(s) changed scheme, {only_a} only in a, {only_b} only in b"
    );
    for line in churn_lines {
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, fp: &str, scheme: &str, status: &str, ticks: u64) -> AuditRecord {
        AuditRecord {
            id,
            fingerprint: fp.to_string(),
            query: format!("q{id}"),
            scheme: scheme.to_string(),
            status: status.to_string(),
            rows: id,
            ticks,
            ..Default::default()
        }
    }

    #[test]
    fn jsonl_roundtrips() {
        let mut r = rec(7, "00ab", "GenCompact", "ok", 42);
        r.wall_us = Some(812);
        r.splices = 1;
        r.capindex_candidates = 2;
        r.capindex_total = 3;
        r.query = "cond with \"quotes\" and \\slash".to_string();
        let line = r.to_jsonl();
        assert!(!line.contains('\n'), "one record is one line");
        assert_eq!(AuditRecord::parse(&line).unwrap(), r);
        // Quarantined wall clock renders and parses as null.
        let q = rec(1, "ff", "GenModular", "error", 9);
        let line = q.to_jsonl();
        assert!(line.contains("\"wall_us\": null"));
        assert_eq!(AuditRecord::parse(&line).unwrap(), q);
    }

    #[test]
    fn parse_rejects_garbage_and_skips_unknown_keys() {
        assert!(AuditRecord::parse("not json").is_err());
        assert!(AuditRecord::parse("{\"id\": [1]}").is_err(), "nested values out of schema");
        let fwd = AuditRecord::parse("{\"id\": 3, \"future_key\": \"x\"}").unwrap();
        assert_eq!(fwd.id, 3);
    }

    #[test]
    fn writer_appends_and_rotates_with_bounded_size() {
        let dir = std::env::temp_dir().join(format!("csqp_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.jsonl");
        let _ = std::fs::remove_file(&path);
        let max = 600u64;
        let mut w = JournalWriter::open(&path, max).unwrap();
        let rotated = w.rotated_path();
        let _ = std::fs::remove_file(&rotated);
        let mut line_len = 0u64;
        for i in 0..40u64 {
            let r = rec(i, "abcd", "GenCompact", "ok", i);
            line_len = line_len.max(r.to_jsonl().len() as u64 + 1);
            w.append(&r).unwrap();
            let active = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let old = std::fs::metadata(&rotated).map(|m| m.len()).unwrap_or(0);
            assert!(
                active + old <= 2 * max + line_len,
                "bounded-size invariant violated: {active} + {old} > 2*{max} + {line_len}"
            );
        }
        assert!(w.rotations >= 1, "forty records through a 600-byte cap must rotate");
        assert_eq!(w.records, 40);
        // Every surviving line still parses.
        let (recs, errs) = read_journal(&path).unwrap();
        assert!(errs.is_empty(), "{errs:?}");
        assert!(!recs.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn reopened_journal_keeps_appending() {
        let dir = std::env::temp_dir().join(format!("csqp_journal_re_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("re.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path, 1 << 20).unwrap();
            w.append(&rec(1, "aa", "GenCompact", "ok", 5)).unwrap();
        }
        {
            let mut w = JournalWriter::open(&path, 1 << 20).unwrap();
            w.append(&rec(2, "bb", "GenCompact", "ok", 6)).unwrap();
        }
        let (recs, _) = read_journal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, 1);
        assert_eq!(recs[1].id, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summarize_computes_quantiles_and_scheme_mix() {
        let records: Vec<AuditRecord> = (1..=100u64)
            .map(|i| {
                let mut r = rec(i, &format!("fp{i}"), "GenCompact", "ok", i);
                if i > 98 {
                    r.status = "error".to_string();
                }
                r
            })
            .collect();
        let s = summarize(&records);
        assert_eq!(s.records, 100);
        assert_eq!(s.errors, 2);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert_eq!(s.schemes["GenCompact"], 100);
        assert_eq!(s.plan_by_fingerprint.len(), 100);
        assert_eq!(summarize(&[]), JournalSummary::default());
    }

    #[test]
    fn diff_reports_latency_error_and_scheme_churn() {
        let a = summarize(&[
            rec(1, "fp1", "GenCompact", "ok", 10),
            rec(2, "fp2", "GenCompact", "ok", 20),
        ]);
        let b = summarize(&[
            rec(1, "fp1", "GenModular", "ok", 40),
            rec(2, "fp2", "GenCompact", "error", 80),
            rec(3, "fp3", "GenModular", "ok", 10),
        ]);
        let diff = render_diff(&a, &b);
        assert!(diff.contains("error rate 0.0% -> 33.3% (+33.3 pts)"), "{diff}");
        assert!(diff.contains("scheme GenCompact: 2 -> 1"), "{diff}");
        assert!(diff.contains("scheme GenModular: 0 -> 2"), "{diff}");
        assert!(
            diff.contains("1 fingerprint(s) changed scheme, 0 only in a, 1 only in b"),
            "{diff}"
        );
        assert!(diff.contains("    fp1: GenCompact -> GenModular"), "{diff}");
        assert_eq!(diff, render_diff(&a, &b), "diff is deterministic");
        let summary = render_summary("a.jsonl", &a);
        assert!(summary.contains("records 2"));
        assert!(summary.contains("latency p50 10  p99 20  max 20"), "{summary}");
    }
}
