//! The deterministic tracer: spans and events on a virtual-tick clock.
//!
//! The clock has nothing to do with wall time. It starts at zero and
//! advances by exactly one per recorded event, plus whatever simulated
//! latency a component explicitly charges via [`Tracer::advance`] (the
//! fault layer's backoff/latency ticks). Two runs that take the same
//! logical steps therefore stamp the same ticks and render byte-identical —
//! which is what lets `EXPLAIN ANALYZE` traces be golden-tested the way
//! `tests/golden_chaos.txt` already is.

use std::fmt::Write as _;
use std::sync::Mutex;

/// One recorded trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual tick at which the event was recorded.
    pub tick: u64,
    /// Span nesting depth at record time.
    pub depth: u16,
    /// Rendered text (`> label` / `< label` for span enter/exit).
    pub text: String,
}

#[derive(Debug, Default)]
struct Inner {
    tick: u64,
    depth: u16,
    events: Vec<TraceEvent>,
}

impl Inner {
    fn record(&mut self, text: String) {
        self.events.push(TraceEvent { tick: self.tick, depth: self.depth, text });
        self.tick += 1;
    }
}

/// The recording tracer. Interior-mutable and `Send + Sync`; events must be
/// recorded from deterministic (sequential) program points — parallel
/// sections record into locals and flush after their deterministic merge.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<Inner>,
}

impl Tracer {
    /// A fresh tracer at tick zero.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// This implementation records (`true`; the [`crate::noop`] mirror says
    /// `false`). Call sites gate expensive formatting on this.
    pub const fn enabled(&self) -> bool {
        true
    }

    /// Records an event.
    pub fn event(&self, text: &str) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.record(text.to_string());
    }

    /// Records an event whose text is built lazily — the no-op mirror never
    /// invokes the closure, so hot paths pay nothing when tracing is off.
    pub fn event_with(&self, f: impl FnOnce() -> String) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.record(f());
    }

    /// Opens a span; the returned guard closes it on drop.
    pub fn span(&self, label: &str) -> Span<'_> {
        {
            let mut inner = self.inner.lock().expect("trace lock");
            inner.record(format!("> {label}"));
            inner.depth += 1;
        }
        Span { tracer: Some(self), label: label.to_string() }
    }

    /// Advances the virtual clock by `ticks` (simulated latency/backoff).
    pub fn advance(&self, ticks: u64) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.tick += ticks;
    }

    /// Current virtual tick.
    pub fn tick(&self) -> u64 {
        self.inner.lock().expect("trace lock").tick
    }

    /// Clones out every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("trace lock").events.clone()
    }

    /// Renders the trace: one `[tick] indented text` line per event.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("trace lock");
        let mut out = String::new();
        for e in &inner.events {
            let _ = writeln!(
                out,
                "[{:>6}] {:indent$}{}",
                e.tick,
                "",
                e.text,
                indent = e.depth as usize * 2
            );
        }
        out
    }

    /// Drops all events and resets the clock and depth.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace lock");
        *inner = Inner::default();
    }

    fn exit(&self, label: &str) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.depth = inner.depth.saturating_sub(1);
        inner.record(format!("< {label}"));
    }
}

/// RAII guard for an open span; records the exit event on drop.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    label: String,
}

impl Span<'_> {
    /// Closes the span now instead of at end of scope.
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(t) = self.tracer.take() {
            t.exit(&self.label);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_per_event_and_by_charge() {
        let t = Tracer::new();
        t.event("a");
        t.advance(10);
        t.event("b");
        let ev = t.events();
        assert_eq!(ev[0].tick, 0);
        assert_eq!(ev[1].tick, 11);
        assert_eq!(t.tick(), 12);
    }

    #[test]
    fn spans_nest_and_render_deterministically() {
        let build = || {
            let t = Tracer::new();
            {
                let _plan = t.span("plan");
                t.event("rewrite: 3 CTs");
                {
                    let _ipg = t.span("ipg");
                    t.event_with(|| format!("memo hits: {}", 2));
                }
            }
            t.render()
        };
        let one = build();
        assert_eq!(one, build(), "same steps render byte-identical");
        let lines: Vec<&str> = one.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].ends_with("> plan"));
        assert!(lines[1].contains("  rewrite: 3 CTs"));
        assert!(lines[2].ends_with("> ipg"));
        assert!(lines[3].contains("memo hits: 2"));
        assert!(lines[4].ends_with("< ipg"));
        assert!(lines[5].ends_with("< plan"));
    }

    #[test]
    fn explicit_close_matches_drop() {
        let t = Tracer::new();
        let s = t.span("x");
        s.close();
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].text, "< x");
        assert_eq!(ev[1].depth, 0);
    }
}
