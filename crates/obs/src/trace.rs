//! The deterministic tracer: spans and events on a virtual-tick clock.
//!
//! The clock has nothing to do with wall time. It starts at zero and
//! advances by exactly one per recorded event, plus whatever simulated
//! latency a component explicitly charges via [`Tracer::advance`] (the
//! fault layer's backoff/latency ticks). Two runs that take the same
//! logical steps therefore stamp the same ticks and render byte-identical —
//! which is what lets `EXPLAIN ANALYZE` traces be golden-tested the way
//! `tests/golden_chaos.txt` already is.
//!
//! Besides the flat event log, every [`Tracer::span`] call also appends a
//! structured [`SpanRecord`] — deterministic sequential id, parent pointer
//! from the open-span stack, start/end ticks shared with the `> label` /
//! `< label` events. The record list is what [`crate::profile`] snapshots
//! into per-query profiles; the flat log and its `render()` output are
//! unchanged by the bookkeeping.

use crate::span::SpanRecord;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One recorded trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual tick at which the event was recorded.
    pub tick: u64,
    /// Span nesting depth at record time.
    pub depth: u16,
    /// Rendered text (`> label` / `< label` for span enter/exit).
    pub text: String,
}

#[derive(Debug, Default)]
struct Inner {
    tick: u64,
    depth: u16,
    events: Vec<TraceEvent>,
    spans: Vec<SpanRecord>,
    /// Indices into `spans` of the currently open spans, outermost first.
    open: Vec<usize>,
    next_span_id: u64,
}

impl Inner {
    fn record(&mut self, text: String) {
        self.events.push(TraceEvent { tick: self.tick, depth: self.depth, text });
        self.tick += 1;
    }
}

/// The recording tracer. Interior-mutable and `Send + Sync`; events must be
/// recorded from deterministic (sequential) program points — parallel
/// sections record into locals and flush after their deterministic merge.
#[derive(Debug)]
pub struct Tracer {
    inner: Mutex<Inner>,
    /// Runtime gate: with this off the tracer records nothing at all, which
    /// is what the `e18_spans` bench uses for its recorder-only leg. Checked
    /// once (Relaxed) per event/span; determinism is unaffected because the
    /// toggle is only ever flipped between queries.
    enabled: AtomicBool,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer { inner: Mutex::default(), enabled: AtomicBool::new(true) }
    }
}

impl Tracer {
    /// A fresh tracer at tick zero.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// This implementation records (`true`; the [`crate::noop`] mirror says
    /// `false`). Call sites gate expensive formatting on this.
    pub const fn enabled(&self) -> bool {
        true
    }

    /// Whether recording is currently switched on (see [`Tracer::set_enabled`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off at runtime. Off, every `event`/`span`
    /// call is a cheap early return — no lock, no allocation. Flip only
    /// between queries: toggling mid-span leaves that span unclosed.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records an event.
    pub fn event(&self, text: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock");
        inner.record(text.to_string());
    }

    /// Records an event whose text is built lazily — the no-op mirror never
    /// invokes the closure, so hot paths pay nothing when tracing is off.
    pub fn event_with(&self, f: impl FnOnce() -> String) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock");
        inner.record(f());
    }

    /// Opens a span; the returned guard closes it on drop. Besides the
    /// `> label` event this appends a [`SpanRecord`] whose parent is the
    /// innermost span still open.
    pub fn span(&self, label: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { tracer: None, label: String::new(), id: 0 };
        }
        let id = {
            let mut inner = self.inner.lock().expect("trace lock");
            let start_tick = inner.tick;
            let depth = inner.depth;
            inner.record(format!("> {label}"));
            inner.depth += 1;
            let id = inner.next_span_id;
            inner.next_span_id += 1;
            let parent = inner.open.last().map(|&i| inner.spans[i].id);
            let idx = inner.spans.len();
            inner.spans.push(SpanRecord {
                id,
                parent,
                label: label.to_string(),
                start_tick,
                end_tick: None,
                depth,
            });
            inner.open.push(idx);
            id
        };
        Span { tracer: Some(self), label: label.to_string(), id }
    }

    /// Advances the virtual clock by `ticks` (simulated latency/backoff).
    pub fn advance(&self, ticks: u64) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.tick += ticks;
    }

    /// Current virtual tick.
    pub fn tick(&self) -> u64 {
        self.inner.lock().expect("trace lock").tick
    }

    /// Clones out every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("trace lock").events.clone()
    }

    /// A cursor into the span list: pass it to [`Tracer::spans_from`] later
    /// to clone out only the spans recorded in between (per-query slicing).
    pub fn span_mark(&self) -> usize {
        self.inner.lock().expect("trace lock").spans.len()
    }

    /// Clones out every structured span recorded so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.lock().expect("trace lock").spans.clone()
    }

    /// Clones out the spans recorded since `mark` (see [`Tracer::span_mark`]).
    pub fn spans_from(&self, mark: usize) -> Vec<SpanRecord> {
        let inner = self.inner.lock().expect("trace lock");
        inner.spans.get(mark..).unwrap_or(&[]).to_vec()
    }

    /// Renders the trace: one `[tick] indented text` line per event.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("trace lock");
        let mut out = String::new();
        for e in &inner.events {
            let _ = writeln!(
                out,
                "[{:>6}] {:indent$}{}",
                e.tick,
                "",
                e.text,
                indent = e.depth as usize * 2
            );
        }
        out
    }

    /// Drops all events and spans, resetting the clock, depth and span ids.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace lock");
        *inner = Inner::default();
    }

    fn exit(&self, label: &str, id: u64) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.depth = inner.depth.saturating_sub(1);
        let end = inner.tick;
        inner.record(format!("< {label}"));
        // Search by id rather than popping blindly: a guard dropped out of
        // open order (or after a clear()) must not close someone else's span.
        if let Some(pos) = inner.open.iter().rposition(|&i| inner.spans[i].id == id) {
            let idx = inner.open.remove(pos);
            inner.spans[idx].end_tick = Some(end);
        }
    }
}

/// RAII guard for an open span; records the exit event on drop.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    label: String,
    id: u64,
}

impl Span<'_> {
    /// The deterministic id of this span's [`SpanRecord`] (0 if recording
    /// was disabled when the span opened).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the span now instead of at end of scope.
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(t) = self.tracer.take() {
            t.exit(&self.label, self.id);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_per_event_and_by_charge() {
        let t = Tracer::new();
        t.event("a");
        t.advance(10);
        t.event("b");
        let ev = t.events();
        assert_eq!(ev[0].tick, 0);
        assert_eq!(ev[1].tick, 11);
        assert_eq!(t.tick(), 12);
    }

    #[test]
    fn spans_nest_and_render_deterministically() {
        let build = || {
            let t = Tracer::new();
            {
                let _plan = t.span("plan");
                t.event("rewrite: 3 CTs");
                {
                    let _ipg = t.span("ipg");
                    t.event_with(|| format!("memo hits: {}", 2));
                }
            }
            t.render()
        };
        let one = build();
        assert_eq!(one, build(), "same steps render byte-identical");
        let lines: Vec<&str> = one.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].ends_with("> plan"));
        assert!(lines[1].contains("  rewrite: 3 CTs"));
        assert!(lines[2].ends_with("> ipg"));
        assert!(lines[3].contains("memo hits: 2"));
        assert!(lines[4].ends_with("< ipg"));
        assert!(lines[5].ends_with("< plan"));
    }

    #[test]
    fn explicit_close_matches_drop() {
        let t = Tracer::new();
        let s = t.span("x");
        s.close();
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].text, "< x");
        assert_eq!(ev[1].depth, 0);
    }

    #[test]
    fn span_records_mirror_the_event_pairs() {
        let t = Tracer::new();
        {
            let plan = t.span("plan");
            assert_eq!(plan.id(), 0);
            t.event("rewrite");
            {
                let _ipg = t.span("ipg");
                t.event("memo");
            }
        }
        {
            let _exec = t.span("execute");
        }
        let spans = t.spans();
        crate::span::validate(&spans).expect("well-formed");
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].label.as_str(), spans[0].parent, spans[0].depth), ("plan", None, 0));
        assert_eq!((spans[1].label.as_str(), spans[1].parent, spans[1].depth), ("ipg", Some(0), 1));
        assert_eq!(spans[2].parent, None);
        // Ticks line up with the event log: "> plan" at 0, "< ipg" at 4.
        assert_eq!(spans[0].start_tick, 0);
        assert_eq!(spans[1].end_tick, Some(4));
    }

    #[test]
    fn span_mark_slices_per_query() {
        let t = Tracer::new();
        {
            let _a = t.span("first");
        }
        let mark = t.span_mark();
        {
            let _b = t.span("second");
        }
        let tail = t.spans_from(mark);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].label, "second");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.set_enabled(false);
        assert!(!t.is_enabled());
        {
            let s = t.span("plan");
            assert_eq!(s.id(), 0);
            t.event("ignored");
            t.event_with(|| panic!("lazy text must not be built while disabled"));
        }
        assert!(t.events().is_empty());
        assert!(t.spans().is_empty());
        t.set_enabled(true);
        t.event("back");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn out_of_order_guard_drop_closes_the_right_span() {
        let t = Tracer::new();
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // dropped before its child's guard
        drop(b);
        let spans = t.spans();
        assert_eq!(spans[0].label, "a");
        assert_eq!(spans[0].end_tick, Some(2));
        assert_eq!(spans[1].label, "b");
        assert_eq!(spans[1].end_tick, Some(3));
    }
}
