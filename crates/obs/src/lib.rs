//! # csqp-obs — deterministic observability for the CSQP stack
//!
//! A zero-dependency tracing + metrics layer shared by the planner, the
//! executor, and the federation/resilience machinery.
//!
//! Two disciplines make it safe to golden-test everything it emits:
//!
//! 1. **Virtual ticks, no wall clock.** The [`Tracer`] stamps events with a
//!    monotonically increasing virtual tick that advances only when an event
//!    is recorded or a component explicitly charges simulated latency via
//!    [`trace::Tracer::advance`]. Two runs that perform the same logical
//!    steps produce byte-identical traces — the same discipline the fault
//!    layer already uses for `tests/golden_chaos.txt`.
//! 2. **Sorted, schema-stable snapshots.** The [`MetricsRegistry`] snapshot
//!    iterates `BTreeMap`s, so rendering (including
//!    [`metrics::MetricsSnapshot::to_json`]) is independent of insertion
//!    order and thread scheduling.
//!
//! A third member, the [`flight`] **query flight recorder**, answers *why*:
//! a bounded ring buffer of per-query [`flight::QueryRecord`]s holding every
//! planner decision (PR1/PR2/PR3 prunes, MCSC covers, candidate ranking,
//! failover and breaker transitions) as structured [`PlanEvent`]s,
//! replayable into the `EXPLAIN WHY` report. [`prom`] renders any
//! [`MetricsSnapshot`] in Prometheus text exposition format for the
//! `csqp serve` `/metrics` endpoint and `--metrics prom`.
//!
//! ## Feature `obs` (default on)
//!
//! With the feature enabled the crate-root [`MetricsRegistry`] / [`Tracer`] /
//! [`Span`] / [`FlightRecorder`] / [`QueryFlight`] aliases point at the
//! recording implementations in [`metrics`], [`trace`], and [`flight`].
//! With `--no-default-features` they point at the mirrors in [`noop`],
//! whose methods are empty `#[inline]` bodies: no allocation, no locking,
//! no formatting (closure-taking variants like [`noop::Tracer::event_with`]
//! and [`noop::QueryFlight::event_with`] never invoke their closure). Both
//! implementations are always compiled; the feature only selects the
//! re-export, so the disabled path cannot bit-rot.

//!
//! ## Fleet-level telemetry (plain data, always compiled)
//!
//! Three modules extend the per-query layer across queries and runs:
//! [`timeseries`] keeps a fixed ring of windowed [`MetricsSnapshot`] deltas
//! (windowed rates and histogram-merge p50/p99 with no hot-path cost),
//! [`health`] folds a window of per-member signals into a scored
//! [`health::HealthReport`] plus SLO burn rates, and [`audit`] journals one
//! flat JSONL [`audit::AuditRecord`] per completed serve query with
//! size-based rotation and summarize/diff analysis for `csqp audit`. Like
//! [`profile`], they are plain data compiled unconditionally — with `obs`
//! off the snapshots they consume are empty and every rendering keeps its
//! schema.

pub mod audit;
pub mod flight;
pub mod health;
pub mod metrics;
pub mod names;
pub mod noop;
pub mod profile;
pub mod prom;
pub mod span;
pub mod timeseries;
pub mod trace;

#[cfg(feature = "obs")]
pub use flight::{FlightRecorder, QueryFlight};
#[cfg(feature = "obs")]
pub use metrics::MetricsRegistry;
#[cfg(feature = "obs")]
pub use trace::{Span, Tracer};

#[cfg(not(feature = "obs"))]
pub use noop::{FlightRecorder, MetricsRegistry, QueryFlight, Span, Tracer};

pub use audit::{AuditRecord, JournalSummary, JournalWriter};
pub use flight::{PlanEvent, QueryRecord};
pub use health::{Grade, HealthReport, SloConfig, SourceSignals, StatusSummary};
pub use metrics::{HistogramSnapshot, MetricsSnapshot};
pub use profile::{CardRow, LatencyKey, ProfileRing, QueryProfile};
pub use span::SpanRecord;
pub use timeseries::{TimeSeries, Window, WindowStamp};
pub use trace::TraceEvent;

/// The bundle a component carries: one metrics registry plus one tracer.
///
/// Both members are the feature-selected types, so an `Obs` constructed
/// under `--no-default-features` is a true zero-cost token.
#[derive(Debug, Default)]
pub struct Obs {
    /// Counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// The deterministic span/event tracer.
    pub tracer: Tracer,
}

impl Obs {
    /// A fresh, empty bundle.
    pub fn new() -> Self {
        Obs::default()
    }

    /// Whether this build records anything (false under
    /// `--no-default-features`).
    pub const fn enabled(&self) -> bool {
        self.metrics.enabled()
    }
}
