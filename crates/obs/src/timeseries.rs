//! Windowed telemetry time-series: a fixed-capacity ring of per-window
//! [`MetricsSnapshot`] deltas.
//!
//! The registry itself only holds cumulative counters — a `/metrics` scrape
//! is a point snapshot with no notion of "over the last minute". This module
//! adds that notion without touching the per-event hot path: a caller
//! periodically calls [`TimeSeries::roll`] with the current registry
//! snapshot, and the ring stores the *delta* since the previous roll plus a
//! [`WindowStamp`]. Window boundaries follow the same quarantine discipline
//! as [`crate::LatencyKey`]: the stamp always carries the deterministic
//! virtual tick, and wall-clock microseconds only when a wall clock was
//! actually consulted (serve mode) — so golden tests roll on ticks alone and
//! stay byte-identical across CI legs.
//!
//! Windowed p50/p99 come from the log2 histograms already being recorded:
//! folding `n` windows is a [`HistogramSnapshot::merge`] and a nearest-rank
//! walk ([`quantile`]) — no new sample storage anywhere.
//!
//! Everything here is plain data compiled unconditionally (like
//! [`crate::profile`]): with `obs` off the deltas are simply empty and the
//! JSON schema does not change shape. The ring is allocated up front and
//! pops before pushing once full, so steady-state rolling performs no
//! ring reallocation — the property the no-op zero-allocation guard pins.

use crate::metrics::{render_json_string, HistogramSnapshot, MetricsSnapshot};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// When one window closed: its sequence number and the clock readings at
/// the boundary. `wall_us` is `None` outside serve mode (quarantined from
/// goldens, exactly like [`crate::LatencyKey::wall_us`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStamp {
    /// Monotonic window sequence number (0-based, never reused).
    pub index: u64,
    /// Virtual tick at the window boundary (deterministic).
    pub ticks: u64,
    /// Wall-clock microseconds since serve start, when a wall clock was
    /// consulted. Always `None` in library/golden contexts.
    pub wall_us: Option<u64>,
}

/// One closed window: its boundary stamp and the registry delta accumulated
/// since the previous boundary.
#[derive(Debug, Clone)]
pub struct Window {
    /// Boundary stamp of this window.
    pub stamp: WindowStamp,
    /// Registry delta over the window (counters/histograms as deltas,
    /// gauges as the state at the boundary).
    pub delta: MetricsSnapshot,
}

/// The fixed-capacity ring of closed windows.
#[derive(Debug)]
pub struct TimeSeries {
    cap: usize,
    windows: VecDeque<Window>,
    /// The registry snapshot at the last roll — the "before" side of the
    /// next delta.
    last: MetricsSnapshot,
    next_index: u64,
    /// Windows evicted from the front since creation.
    dropped: u64,
}

impl TimeSeries {
    /// An empty ring retaining at most `cap` windows (`cap` is clamped to
    /// at least 1 so a roll is never a silent no-op).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TimeSeries {
            cap,
            windows: VecDeque::with_capacity(cap),
            last: MetricsSnapshot::default(),
            next_index: 0,
            dropped: 0,
        }
    }

    /// Closes the current window: stores `now.diff(last)` stamped with the
    /// given clocks and starts the next window at `now`. Evicts the oldest
    /// window first when full, so the ring never grows past `cap`.
    pub fn roll(&mut self, now: MetricsSnapshot, ticks: u64, wall_us: Option<u64>) {
        if self.windows.len() == self.cap {
            self.windows.pop_front();
            self.dropped += 1;
        }
        let delta = now.diff(&self.last);
        let stamp = WindowStamp { index: self.next_index, ticks, wall_us };
        self.next_index += 1;
        self.windows.push_back(Window { stamp, delta });
        self.last = now;
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Number of windows currently retained.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been closed yet (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted from the front so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total windows ever closed (= the next stamp's `index`).
    pub fn closed(&self) -> u64 {
        self.next_index
    }

    /// The delta accumulated since the last roll (the still-open window) —
    /// `/status` folds this in so fresh activity shows before the boundary.
    pub fn live_delta(&self, now: &MetricsSnapshot) -> MetricsSnapshot {
        now.diff(&self.last)
    }

    /// Folds the newest `n` windows into one delta (counter/histogram sums).
    /// Gauges in the result are **meaningless** (merge sums them) — read
    /// gauge state from a live snapshot instead.
    pub fn folded(&self, n: usize) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        let skip = self.windows.len().saturating_sub(n);
        for w in self.windows.iter().skip(skip) {
            out.merge(&w.delta);
        }
        out
    }

    /// Total counter delta of `name` over the newest `n` windows.
    pub fn counter_over(&self, name: &str, n: usize) -> u64 {
        let skip = self.windows.len().saturating_sub(n);
        self.windows.iter().skip(skip).map(|w| w.delta.counter(name)).sum()
    }

    /// Counter rate of `name` over the newest `n` windows, per window.
    pub fn counter_rate(&self, name: &str, n: usize) -> f64 {
        let k = n.min(self.windows.len());
        if k == 0 {
            return 0.0;
        }
        self.counter_over(name, n) as f64 / k as f64
    }

    /// The histogram `name` merged across the newest `n` windows.
    pub fn merged_histogram(&self, name: &str, n: usize) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        let skip = self.windows.len().saturating_sub(n);
        for w in self.windows.iter().skip(skip) {
            if let Some(h) = w.delta.histograms.get(name) {
                out.merge(h);
            }
        }
        out
    }

    /// Renders the newest `n` windows of metric `metric` as one
    /// schema-stable JSON document (the `/timeseries` endpoint). The kind is
    /// detected per window in histogram → counter → gauge order; windows
    /// where the metric is absent report `"value": null` (counters report 0
    /// only if the metric family was seen). Key order is pinned; `wall_us`
    /// renders as `null` when quarantined.
    pub fn render_json(&self, metric: &str, n: usize) -> String {
        let mut out = String::from("{\n  \"metric\": ");
        render_json_string(&mut out, metric);
        let _ = write!(
            out,
            ",\n  \"retained\": {},\n  \"dropped\": {},\n  \"windows\": [",
            self.windows.len(),
            self.dropped
        );
        let skip = self.windows.len().saturating_sub(n);
        for (i, w) in self.windows.iter().skip(skip).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ =
                write!(out, "\n    {{\"index\": {}, \"ticks\": {}, ", w.stamp.index, w.stamp.ticks);
            out.push_str("\"wall_us\": ");
            match w.stamp.wall_us {
                Some(us) => {
                    let _ = write!(out, "{us}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", ");
            if let Some(h) = w.delta.histograms.get(metric) {
                let _ = write!(
                    out,
                    "\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                    h.count,
                    h.sum,
                    quantile(h, 0.50),
                    quantile(h, 0.99)
                );
            } else if let Some(&c) = w.delta.counters.get(metric) {
                let _ = write!(out, "\"value\": {c}}}");
            } else if let Some(&g) = w.delta.gauges.get(metric) {
                out.push_str("\"value\": ");
                crate::metrics::render_f64(&mut out, g);
                out.push('}');
            } else {
                out.push_str("\"value\": null}");
            }
        }
        if self.windows.len() > skip {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// Nearest-rank quantile over a log2 histogram snapshot: walks the sorted
/// buckets to the one containing rank `⌈q·count⌉` and reports its inclusive
/// upper bound (the same bound the Prometheus `le` label exposes). Zero for
/// an empty histogram. The result is an upper bound on the true quantile
/// with log2 resolution — good enough for dashboards, free to compute.
pub fn quantile(h: &HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut seen = 0u64;
    for &(_, hi, n) in &h.buckets {
        seen += n;
        if seen >= rank {
            return hi.min(h.max);
        }
    }
    h.max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn rolling_stores_deltas_not_cumulatives() {
        let reg = MetricsRegistry::new();
        let mut ts = TimeSeries::new(4);
        reg.add("c", 3);
        ts.roll(reg.snapshot(), 10, None);
        reg.add("c", 2);
        ts.roll(reg.snapshot(), 20, None);
        let w: Vec<&Window> = ts.windows().collect();
        assert_eq!(w[0].delta.counter("c"), 3);
        assert_eq!(w[1].delta.counter("c"), 2);
        assert_eq!(w[0].stamp, WindowStamp { index: 0, ticks: 10, wall_us: None });
        assert_eq!(ts.counter_over("c", 2), 5);
        assert_eq!(ts.counter_rate("c", 2), 2.5);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let reg = MetricsRegistry::new();
        let mut ts = TimeSeries::new(2);
        for i in 0..5u64 {
            reg.inc("c");
            ts.roll(reg.snapshot(), i, None);
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 3);
        assert_eq!(ts.closed(), 5);
        let first = ts.windows().next().unwrap();
        assert_eq!(first.stamp.index, 3, "oldest retained window is #3");
    }

    #[test]
    fn live_delta_tracks_the_open_window() {
        let reg = MetricsRegistry::new();
        let mut ts = TimeSeries::new(4);
        reg.add("c", 1);
        ts.roll(reg.snapshot(), 1, None);
        reg.add("c", 7);
        assert_eq!(ts.live_delta(&reg.snapshot()).counter("c"), 7);
    }

    #[test]
    fn folded_merges_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        let mut ts = TimeSeries::new(8);
        for v in [3u64, 900] {
            reg.observe("lat", v);
            reg.inc("q");
            ts.roll(reg.snapshot(), v, None);
        }
        let folded = ts.folded(2);
        assert_eq!(folded.counter("q"), 2);
        let h = ts.merged_histogram("lat", 2);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 903);
        // Only the newest window.
        assert_eq!(ts.merged_histogram("lat", 1).count, 1);
    }

    #[test]
    fn quantile_is_nearest_rank_on_log2_buckets() {
        let reg = MetricsRegistry::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 900] {
            reg.observe("h", v);
        }
        let h = &reg.snapshot().histograms["h"];
        assert_eq!(quantile(h, 0.50), 1);
        assert_eq!(quantile(h, 0.99), 900, "p99 capped at observed max");
        assert_eq!(quantile(&HistogramSnapshot::default(), 0.99), 0);
    }

    #[test]
    fn render_json_is_schema_stable_and_kind_aware() {
        let reg = MetricsRegistry::new();
        let mut ts = TimeSeries::new(4);
        reg.observe("lat", 3);
        reg.inc("q");
        reg.gauge_set("g", 1.5);
        ts.roll(reg.snapshot(), 5, None);
        let hist = ts.render_json("lat", 8);
        assert!(hist.contains("\"metric\": \"lat\""));
        assert!(hist.contains("\"p50\": 3"));
        assert!(hist.contains("\"wall_us\": null"));
        let ctr = ts.render_json("q", 8);
        assert!(ctr.contains("\"value\": 1"));
        let gauge = ts.render_json("g", 8);
        assert!(gauge.contains("\"value\": 1.5"));
        let missing = ts.render_json("nope", 8);
        assert!(missing.contains("\"value\": null"));
        assert_eq!(hist, ts.render_json("lat", 8), "rendering is deterministic");
    }

    #[test]
    fn steady_state_roll_does_not_grow_the_ring() {
        let mut ts = TimeSeries::new(3);
        let spare = ts.windows.capacity();
        for i in 0..100u64 {
            ts.roll(MetricsSnapshot::default(), i, None);
        }
        assert_eq!(ts.windows.capacity(), spare, "pop-before-push keeps capacity fixed");
    }
}
