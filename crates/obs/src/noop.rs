//! No-op mirrors of [`crate::metrics::MetricsRegistry`] and
//! [`crate::trace::Tracer`].
//!
//! These are what the crate root re-exports when the `obs` feature is off.
//! Every method is an empty `#[inline]` body: no `Mutex`, no `String`, no
//! heap — the overhead-guard test (`tests/noop_overhead.rs`) pins the
//! zero-allocation claim with a counting global allocator. The module is
//! compiled in *both* feature configurations so the disabled path can never
//! bit-rot while `obs` is the everyday default.

use crate::metrics::MetricsSnapshot;
use crate::trace::TraceEvent;

/// Zero-cost stand-in for the recording registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// A fresh no-op registry.
    #[inline]
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// This implementation records nothing.
    #[inline]
    pub const fn enabled(&self) -> bool {
        false
    }

    /// Discards the delta.
    #[inline]
    pub fn add(&self, _name: &str, _delta: u64) {}

    /// Discards the increment.
    #[inline]
    pub fn inc(&self, _name: &str) {}

    /// Discards the value.
    #[inline]
    pub fn gauge_set(&self, _name: &str, _v: f64) {}

    /// Discards the value.
    #[inline]
    pub fn gauge_add(&self, _name: &str, _v: f64) {}

    /// Discards the observation.
    #[inline]
    pub fn observe(&self, _name: &str, _v: u64) {}

    /// Always the empty snapshot.
    #[inline]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Nothing to clear.
    #[inline]
    pub fn clear(&self) {}
}

/// Zero-cost stand-in for the recording tracer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tracer;

impl Tracer {
    /// A fresh no-op tracer.
    #[inline]
    pub fn new() -> Self {
        Tracer
    }

    /// This implementation records nothing.
    #[inline]
    pub const fn enabled(&self) -> bool {
        false
    }

    /// Discards the event.
    #[inline]
    pub fn event(&self, _text: &str) {}

    /// Never invokes the closure — lazy call sites pay nothing.
    #[inline]
    pub fn event_with(&self, _f: impl FnOnce() -> String) {}

    /// Opens nothing; the guard is a unit value.
    #[inline]
    pub fn span(&self, _label: &str) -> Span<'_> {
        Span(std::marker::PhantomData)
    }

    /// The virtual clock never moves.
    #[inline]
    pub fn advance(&self, _ticks: u64) {}

    /// Always tick zero.
    #[inline]
    pub fn tick(&self) -> u64 {
        0
    }

    /// Always empty.
    #[inline]
    pub fn events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always the empty string.
    #[inline]
    pub fn render(&self) -> String {
        String::new()
    }

    /// Nothing to clear.
    #[inline]
    pub fn clear(&self) {}
}

/// Unit span guard (no exit event, no `Drop` logic).
#[derive(Debug)]
pub struct Span<'a>(std::marker::PhantomData<&'a Tracer>);

impl Span<'_> {
    /// Nothing to close.
    #[inline]
    pub fn close(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_api_mirrors_the_recorder() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.gauge_set("g", 1.0);
        m.gauge_add("g", 1.0);
        m.observe("h", 9);
        assert!(!m.enabled());
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        let t = Tracer::new();
        let span = t.span("plan");
        t.event("x");
        t.event_with(|| unreachable!("noop tracer must not build event text"));
        t.advance(100);
        span.close();
        assert!(!t.enabled());
        assert_eq!(t.tick(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.render(), "");
    }
}
