//! No-op mirrors of [`crate::metrics::MetricsRegistry`],
//! [`crate::trace::Tracer`], and [`crate::flight::FlightRecorder`].
//!
//! These are what the crate root re-exports when the `obs` feature is off.
//! Every method is an empty `#[inline]` body: no `Mutex`, no `String`, no
//! heap — the overhead-guard test (`tests/noop_overhead.rs`) pins the
//! zero-allocation claim with a counting global allocator. The module is
//! compiled in *both* feature configurations so the disabled path can never
//! bit-rot while `obs` is the everyday default.

use crate::flight::{PlanEvent, QueryRecord};
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use crate::trace::TraceEvent;

/// Zero-cost stand-in for the recording registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// A fresh no-op registry.
    #[inline]
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// This implementation records nothing.
    #[inline]
    pub const fn enabled(&self) -> bool {
        false
    }

    /// Discards the delta.
    #[inline]
    pub fn add(&self, _name: &str, _delta: u64) {}

    /// Discards the increment.
    #[inline]
    pub fn inc(&self, _name: &str) {}

    /// Discards the value.
    #[inline]
    pub fn gauge_set(&self, _name: &str, _v: f64) {}

    /// Discards the value.
    #[inline]
    pub fn gauge_add(&self, _name: &str, _v: f64) {}

    /// Discards the observation.
    #[inline]
    pub fn observe(&self, _name: &str, _v: u64) {}

    /// Discards the observation and the exemplar.
    #[inline]
    pub fn observe_exemplar(&self, _name: &str, _v: u64, _query_id: u64) {}

    /// Always the empty snapshot.
    #[inline]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Nothing to clear.
    #[inline]
    pub fn clear(&self) {}
}

/// Zero-cost stand-in for the recording tracer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tracer;

impl Tracer {
    /// A fresh no-op tracer.
    #[inline]
    pub fn new() -> Self {
        Tracer
    }

    /// This implementation records nothing.
    #[inline]
    pub const fn enabled(&self) -> bool {
        false
    }

    /// Recording can never be switched on here.
    #[inline]
    pub const fn is_enabled(&self) -> bool {
        false
    }

    /// The toggle has nothing to toggle.
    #[inline]
    pub fn set_enabled(&self, _on: bool) {}

    /// Discards the event.
    #[inline]
    pub fn event(&self, _text: &str) {}

    /// Never invokes the closure — lazy call sites pay nothing.
    #[inline]
    pub fn event_with(&self, _f: impl FnOnce() -> String) {}

    /// Opens nothing; the guard is a unit value.
    #[inline]
    pub fn span(&self, _label: &str) -> Span<'_> {
        Span(std::marker::PhantomData)
    }

    /// The virtual clock never moves.
    #[inline]
    pub fn advance(&self, _ticks: u64) {}

    /// Always tick zero.
    #[inline]
    pub fn tick(&self) -> u64 {
        0
    }

    /// Always empty.
    #[inline]
    pub fn events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always the zero cursor.
    #[inline]
    pub fn span_mark(&self) -> usize {
        0
    }

    /// Always empty (`Vec::new()` does not allocate).
    #[inline]
    pub fn spans(&self) -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Always empty.
    #[inline]
    pub fn spans_from(&self, _mark: usize) -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Always the empty string.
    #[inline]
    pub fn render(&self) -> String {
        String::new()
    }

    /// Nothing to clear.
    #[inline]
    pub fn clear(&self) {}
}

/// Unit span guard (no exit event, no `Drop` logic).
#[derive(Debug)]
pub struct Span<'a>(std::marker::PhantomData<&'a Tracer>);

impl Span<'_> {
    /// Always id zero — no record exists to point at.
    #[inline]
    pub fn id(&self) -> u64 {
        0
    }

    /// Nothing to close.
    #[inline]
    pub fn close(self) {}
}

/// Zero-cost stand-in for the recording flight recorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightRecorder;

impl FlightRecorder {
    /// A fresh no-op recorder.
    #[inline]
    pub fn new() -> Self {
        FlightRecorder
    }

    /// Capacities are irrelevant here.
    #[inline]
    pub fn with_capacity(_max_queries: usize, _max_events: usize) -> Self {
        FlightRecorder
    }

    /// A disarmed recorder (indistinguishable from any other no-op one).
    #[inline]
    pub fn off() -> Self {
        FlightRecorder
    }

    /// This implementation never records.
    #[inline]
    pub fn armed(&self) -> bool {
        false
    }

    /// Never invokes the closure; the handle records nothing.
    #[inline]
    pub fn begin_with(&self, _f: impl FnOnce() -> (String, String)) -> QueryFlight<'_> {
        QueryFlight(std::marker::PhantomData)
    }

    /// Never invokes the closure.
    #[inline]
    pub fn note_latest(&self, _f: impl FnOnce() -> PlanEvent) {}

    /// Nothing is ever retained.
    #[inline]
    pub fn record(&self, _id: u64) -> Option<QueryRecord> {
        None
    }

    /// Nothing is ever retained.
    #[inline]
    pub fn latest(&self) -> Option<QueryRecord> {
        None
    }

    /// Always empty.
    #[inline]
    pub fn records(&self) -> Vec<QueryRecord> {
        Vec::new()
    }

    /// Nothing is ever evicted.
    #[inline]
    pub fn evicted(&self) -> u64 {
        0
    }

    /// Nothing to clear.
    #[inline]
    pub fn clear(&self) {}
}

/// Zero-cost stand-in for the per-query recording handle.
#[derive(Debug, Clone, Copy)]
pub struct QueryFlight<'a>(std::marker::PhantomData<&'a FlightRecorder>);

impl QueryFlight<'_> {
    /// A handle that records nothing (they all do, here).
    #[inline]
    pub const fn disabled() -> Self {
        QueryFlight(std::marker::PhantomData)
    }

    /// Never active — call sites skip event construction entirely.
    #[inline]
    pub fn active(&self) -> bool {
        false
    }

    /// Always id zero.
    #[inline]
    pub fn id(&self) -> u64 {
        0
    }

    /// Never invokes the closure — lazy call sites pay nothing.
    #[inline]
    pub fn event_with(&self, _f: impl FnOnce() -> PlanEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_api_mirrors_the_recorder() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.gauge_set("g", 1.0);
        m.gauge_add("g", 1.0);
        m.observe("h", 9);
        assert!(!m.enabled());
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        let t = Tracer::new();
        let span = t.span("plan");
        assert_eq!(span.id(), 0);
        t.event("x");
        t.event_with(|| unreachable!("noop tracer must not build event text"));
        t.advance(100);
        span.close();
        t.set_enabled(true);
        assert!(!t.enabled());
        assert!(!t.is_enabled(), "the noop toggle never switches recording on");
        assert_eq!(t.tick(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.span_mark(), 0);
        assert!(t.spans().is_empty());
        assert!(t.spans_from(0).is_empty());
        assert_eq!(t.render(), "");
    }

    #[test]
    fn noop_flight_recorder_never_builds_events() {
        let rec = FlightRecorder::new();
        assert!(!rec.armed());
        let q = rec.begin_with(|| unreachable!("noop recorder must not build the label"));
        assert!(!q.active());
        assert_eq!(q.id(), 0);
        q.event_with(|| unreachable!("noop recorder must not build events"));
        rec.note_latest(|| unreachable!("noop recorder must not build notes"));
        assert!(rec.record(0).is_none());
        assert!(rec.latest().is_none());
        assert!(rec.records().is_empty());
        assert_eq!(rec.evicted(), 0);
        rec.clear();
        let q2 = QueryFlight::disabled();
        q2.event_with(|| unreachable!("disabled handle must not build events"));
    }
}
