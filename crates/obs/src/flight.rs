//! The query flight recorder: a bounded ring buffer of per-query planner
//! decision trails.
//!
//! Where the [`crate::metrics`] registry answers *how much* (counters,
//! histograms) and the [`crate::trace`] tracer answers *when* (virtual-tick
//! spans), the flight recorder answers **why**: every planner decision —
//! candidate sub-plan admitted, PR1 short-circuit, PR2 eviction with the
//! cost pair, PR3 domination with the dominating mask, MCSC cover choice
//! with its tie-break, CheckCache totals, failover and breaker transitions —
//! is recorded as a structured [`PlanEvent`] inside the [`QueryRecord`] of
//! the query that caused it. A record replays into the human-readable
//! `EXPLAIN WHY` report (`csqp_plan::why::explain_why`).
//!
//! Three disciplines keep it safe and cheap:
//!
//! 1. **Bounded.** The recorder keeps the last `max_queries` records and at
//!    most `max_events` events per record; overflow is *counted*
//!    ([`QueryRecord::dropped`], [`FlightRecorder::evicted`]), never
//!    silently lost.
//! 2. **Pay only when armed.** Every recording entry point takes a closure
//!    ([`FlightRecorder::begin_with`], [`QueryFlight::event_with`]); a
//!    disarmed recorder (or the [`crate::noop`] mirror under
//!    `--no-default-features`) never invokes it, so hot paths build no
//!    event text and allocate nothing.
//! 3. **Deterministic.** Events are recorded only from sequential program
//!    points (the planners are sequential per query; parallel federation
//!    fan-out records nothing), and events carrying a *choice* among
//!    equals (PR3 dominators, MCSC covers) name the deterministic pick —
//!    so an `EXPLAIN WHY` report golden-tests byte-identically across the
//!    `parallel` feature.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Default number of query records the ring retains.
pub const DEFAULT_MAX_QUERIES: usize = 32;

/// Default cap on events kept per query record.
pub const DEFAULT_MAX_EVENTS: usize = 4096;

/// One structured planner decision. The variants mirror the decision
/// points of GenCompact's IPG (§6.3 pruning rules, MCSC combination),
/// GenModular's EPG, the mediator's candidate ranking, and the
/// resilience/federation machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanEvent {
    /// A rewritten condition tree entered the plan generator.
    CtBegin {
        /// Index of the CT in rewrite-module output order.
        index: usize,
        /// The CT, rendered.
        cond: String,
    },
    /// IPG answered a whole sub-search from its memo table.
    MemoHit {
        /// The memoized sub-condition.
        node: String,
    },
    /// PR1: a pure plan covers the node — the sub-search short-circuits.
    Pr1ShortCircuit {
        /// The node whose pure plan won immediately.
        node: String,
        /// Cost of the pure plan.
        cost: f64,
    },
    /// PR1: a children-subset recursion was skipped because a pure
    /// sub-plan already covers that subset.
    Pr1Skip {
        /// Children-subset bitmask whose recursion was skipped.
        mask: u64,
    },
    /// A candidate sub-plan entered the sub-plan array.
    Admitted {
        /// Children subset the sub-plan covers (bitmask).
        mask: u64,
        /// Estimated cost.
        cost: f64,
        /// Whether the sub-plan is pure (a single source query).
        pure: bool,
        /// The sub-plan, rendered.
        plan: String,
    },
    /// PR2: the costlier of two candidates for the same children subset
    /// was evicted.
    Pr2Evicted {
        /// The contested children subset.
        mask: u64,
        /// Cost of the candidate that stayed.
        kept_cost: f64,
        /// Cost of the candidate that was discarded.
        evicted_cost: f64,
    },
    /// PR3: a sub-plan was removed because another entry covers a superset
    /// of its children at no greater cost.
    Pr3Dominated {
        /// The dominated sub-plan's children subset.
        mask: u64,
        /// The dominated sub-plan's cost.
        cost: f64,
        /// The dominating entry's children subset (`mask ⊆ by_mask`).
        by_mask: u64,
        /// The dominating entry's cost (`by_cost ≤ cost`).
        by_cost: f64,
    },
    /// PR3: a recursion was skipped because a pure sub-plan already covers
    /// a superset of the subset.
    Pr3Skip {
        /// The subset whose recursion was skipped.
        mask: u64,
        /// The pure superset cover that justified the skip.
        by_mask: u64,
    },
    /// MCSC chose a cover of the node's children from the sub-plan array.
    McscCover {
        /// Children subsets of the chosen sub-plans, in item order.
        chosen_masks: Vec<u64>,
        /// Total cost of the cover.
        total_cost: f64,
        /// Branch-and-bound nodes (or greedy steps) examined.
        covers_examined: usize,
        /// How equal-cost covers were tie-broken.
        tie_break: &'static str,
    },
    /// MCSC found no cover — the node is infeasible through combination.
    McscNoCover {
        /// The children universe that could not be covered.
        universe: u64,
    },
    /// GenModular: the EPG plan space generated for a CT.
    EpgSpace {
        /// Index of the CT.
        index: usize,
        /// Number of concrete alternatives the `Choice` space encodes.
        alternatives: u64,
    },
    /// One CT produced a feasible per-CT winning candidate.
    CtCandidate {
        /// Index of the CT.
        index: usize,
        /// Estimated cost of the candidate.
        cost: f64,
        /// The candidate plan, rendered.
        plan: String,
    },
    /// One CT produced no feasible plan.
    CtInfeasible {
        /// Index of the CT.
        index: usize,
    },
    /// CheckCache totals for the whole planning pass.
    CheckCacheStats {
        /// `Check(C, R)` invocations.
        calls: u64,
        /// Calls answered from the fingerprint cache.
        hits: u64,
        /// Calls that re-parsed the capability templates.
        misses: u64,
    },
    /// The winning plan after ranking every per-CT candidate.
    Winner {
        /// Estimated cost of the winner.
        cost: f64,
        /// The winning plan, rendered.
        plan: String,
    },
    /// A losing candidate and the rule that eliminated it.
    Eliminated {
        /// The eliminating rule (`"cost"` for rank losses; pruning-rule
        /// losses are recorded as they happen via the `Pr*` variants).
        rule: &'static str,
        /// The loser's estimated cost.
        cost: f64,
        /// The losing plan, rendered.
        plan: String,
        /// Human-readable elimination detail.
        detail: String,
    },
    /// Execution fell over from one ranked plan (or federation member) to
    /// the next.
    Failover {
        /// Rank of the plan/member that failed.
        rank: usize,
        /// What happened, rendered.
        detail: String,
    },
    /// The federation capability index pre-filtered the member set before
    /// full `Check`-based planning.
    IndexPrune {
        /// Members in the federation.
        total: usize,
        /// Members surviving the index pre-filter.
        candidates: usize,
        /// Members pruned without planning (`total - candidates`).
        pruned: usize,
    },
    /// A circuit breaker (or its gate) changed state for a member.
    Breaker {
        /// The federation member.
        member: String,
        /// The transition (`opened`, `half-open`, `closed`, `quarantined`).
        transition: &'static str,
    },
    /// Mid-query adaptive re-planning spliced a new sub-plan into a
    /// running pipeline at a batch boundary.
    Replan {
        /// What fired the replan (`drift` or `breaker-open`).
        trigger: &'static str,
        /// Human-readable trigger detail (drifted subquery, failed member…).
        detail: String,
        /// Batch boundary (batches pulled so far) where the pipeline paused.
        batch: u64,
        /// Tuples already emitted downstream when the splice happened.
        emitted: u64,
        /// The superseded remaining sub-plan, rendered.
        old_plan: String,
        /// The spliced-in replacement sub-plan, rendered.
        new_plan: String,
    },
    /// Free-form annotation.
    Note {
        /// The annotation.
        text: String,
    },
}

impl fmt::Display for PlanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanEvent::CtBegin { index, cond } => write!(f, "CT {index}: {cond}"),
            PlanEvent::MemoHit { node } => {
                write!(f, "[memo] sub-search answered from memo: {node}")
            }
            PlanEvent::Pr1ShortCircuit { node, cost } => {
                write!(f, "[PR1] pure plan short-circuits {node} (cost {cost:.2})")
            }
            PlanEvent::Pr1Skip { mask } => {
                write!(f, "[PR1] recursion on subset {mask:#b} skipped: pure sub-plan exists")
            }
            PlanEvent::Admitted { mask, cost, pure, plan } => {
                let kind = if *pure { "pure" } else { "impure" };
                write!(f, "admitted {kind} sub-plan for subset {mask:#b} (cost {cost:.2}): {plan}")
            }
            PlanEvent::Pr2Evicted { mask, kept_cost, evicted_cost } => write!(
                f,
                "[PR2] subset {mask:#b}: evicted cost {evicted_cost:.2} (kept {kept_cost:.2})"
            ),
            PlanEvent::Pr3Dominated { mask, cost, by_mask, by_cost } => write!(
                f,
                "[PR3] subset {mask:#b} (cost {cost:.2}) dominated by {by_mask:#b} \
                 (cost {by_cost:.2})"
            ),
            PlanEvent::Pr3Skip { mask, by_mask } => write!(
                f,
                "[PR3] recursion on subset {mask:#b} skipped: pure superset {by_mask:#b} exists"
            ),
            PlanEvent::McscCover { chosen_masks, total_cost, covers_examined, tie_break } => {
                write!(f, "[MCSC] cover {{")?;
                for (i, m) in chosen_masks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{m:#b}")?;
                }
                write!(
                    f,
                    "}} cost {total_cost:.2} ({covers_examined} covers examined; \
                     tie-break: {tie_break})"
                )
            }
            PlanEvent::McscNoCover { universe } => {
                write!(f, "[MCSC] no cover of {universe:#b}: combination infeasible")
            }
            PlanEvent::EpgSpace { index, alternatives } => {
                write!(f, "[EPG] CT {index}: plan space holds {alternatives} alternatives")
            }
            PlanEvent::CtCandidate { index, cost, plan } => {
                write!(f, "=> CT {index} candidate (cost {cost:.2}): {plan}")
            }
            PlanEvent::CtInfeasible { index } => {
                write!(f, "=> CT {index}: infeasible (no plan for this rewriting)")
            }
            PlanEvent::CheckCacheStats { calls, hits, misses } => {
                write!(f, "check cache: {calls} calls ({hits} hits, {misses} misses)")
            }
            PlanEvent::Winner { cost, plan } => write!(f, "winner (cost {cost:.2}): {plan}"),
            PlanEvent::Eliminated { rule, cost, plan, detail } => {
                write!(f, "[{rule}] eliminated (cost {cost:.2}; {detail}): {plan}")
            }
            PlanEvent::Failover { rank, detail } => {
                write!(f, "[failover] rank {rank} failed: {detail}")
            }
            PlanEvent::IndexPrune { total, candidates, pruned } => {
                write!(
                    f,
                    "[capindex] {candidates} of {total} members remain ({pruned} pruned \
                     without planning)"
                )
            }
            PlanEvent::Breaker { member, transition } => {
                write!(f, "[breaker] member {member}: {transition}")
            }
            PlanEvent::Replan { trigger, detail, batch, emitted, old_plan, new_plan } => {
                write!(
                    f,
                    "[replan] {trigger} at batch {batch} ({emitted} rows emitted): \
                     {detail}; splice {old_plan} -> {new_plan}"
                )
            }
            PlanEvent::Note { text } => f.write_str(text),
        }
    }
}

/// The recorded decision trail of one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryRecord {
    /// Recorder-assigned id (monotonic; the `/flightrecorder?query=<id>`
    /// handle).
    pub id: u64,
    /// The target query, rendered.
    pub query: String,
    /// The planning scheme that handled it.
    pub scheme: String,
    /// The decision trail, in recording order.
    pub events: Vec<PlanEvent>,
    /// Events discarded once the per-record cap was hit.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct FlightInner {
    next_id: u64,
    records: VecDeque<QueryRecord>,
    evicted: u64,
}

/// The recording flight recorder: a bounded ring of [`QueryRecord`]s.
///
/// A recorder is either *armed* (constructed via [`FlightRecorder::new`] /
/// [`FlightRecorder::with_capacity`]) or *disarmed*
/// ([`FlightRecorder::off`]). Disarmed recorders never take the lock and
/// never invoke recording closures, so components can carry one
/// unconditionally — the mediator defaults to a disarmed recorder and arms
/// only for `--explain=why`, `csqp serve`, and tests.
#[derive(Debug)]
pub struct FlightRecorder {
    armed: bool,
    max_queries: usize,
    max_events: usize,
    inner: Mutex<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An armed recorder with the default capacities.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_MAX_QUERIES, DEFAULT_MAX_EVENTS)
    }

    /// An armed recorder keeping the last `max_queries` records with at
    /// most `max_events` events each (both clamped to ≥ 1).
    pub fn with_capacity(max_queries: usize, max_events: usize) -> Self {
        FlightRecorder {
            armed: true,
            max_queries: max_queries.max(1),
            max_events: max_events.max(1),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// A disarmed recorder: every operation is a cheap no-op.
    pub fn off() -> Self {
        FlightRecorder {
            armed: false,
            max_queries: 0,
            max_events: 0,
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// Whether this recorder records (`false` for [`FlightRecorder::off`];
    /// the [`crate::noop`] mirror is always `false`).
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Opens a record for one query and returns its recording handle. The
    /// closure supplies `(query, scheme)` and is only invoked when the
    /// recorder is armed. Evicts the oldest record when the ring is full.
    pub fn begin_with(&self, f: impl FnOnce() -> (String, String)) -> QueryFlight<'_> {
        if !self.armed {
            return QueryFlight::disabled();
        }
        let (query, scheme) = f();
        let mut inner = self.inner.lock().expect("flight lock");
        let id = inner.next_id;
        inner.next_id += 1;
        if inner.records.len() >= self.max_queries {
            inner.records.pop_front();
            inner.evicted += 1;
        }
        inner.records.push_back(QueryRecord { id, query, scheme, ..Default::default() });
        QueryFlight { rec: Some(self), id }
    }

    /// Appends an event to the *most recent* record (for post-planning
    /// phases — failover, breaker transitions — that outlive the
    /// [`QueryFlight`] handle). No-op when disarmed or empty.
    pub fn note_latest(&self, f: impl FnOnce() -> PlanEvent) {
        if !self.armed {
            return;
        }
        let mut inner = self.inner.lock().expect("flight lock");
        let cap = self.max_events;
        if let Some(rec) = inner.records.back_mut() {
            if rec.events.len() < cap {
                rec.events.push(f());
            } else {
                rec.dropped += 1;
            }
        }
    }

    /// Clones out the record with the given id, if it is still in the ring.
    pub fn record(&self, id: u64) -> Option<QueryRecord> {
        let inner = self.inner.lock().expect("flight lock");
        inner.records.iter().find(|r| r.id == id).cloned()
    }

    /// Clones out the most recent record.
    pub fn latest(&self) -> Option<QueryRecord> {
        let inner = self.inner.lock().expect("flight lock");
        inner.records.back().cloned()
    }

    /// Clones out every retained record, oldest first.
    pub fn records(&self) -> Vec<QueryRecord> {
        let inner = self.inner.lock().expect("flight lock");
        inner.records.iter().cloned().collect()
    }

    /// How many records the ring has evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("flight lock").evicted
    }

    /// Drops every record (ids keep counting up).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("flight lock");
        inner.records.clear();
    }

    fn push(&self, id: u64, f: impl FnOnce() -> PlanEvent) {
        let mut inner = self.inner.lock().expect("flight lock");
        let cap = self.max_events;
        if let Some(rec) = inner.records.iter_mut().rev().find(|r| r.id == id) {
            if rec.events.len() < cap {
                rec.events.push(f());
            } else {
                rec.dropped += 1;
            }
        }
        // Record already evicted: the event is simply dropped (the ring is
        // bounded by design).
    }
}

/// A per-query recording handle tied to one [`QueryRecord`]. `Copy`, so it
/// threads through planner contexts by value; a disabled handle (or one
/// from a disarmed recorder) ignores everything.
#[derive(Debug, Clone, Copy)]
pub struct QueryFlight<'a> {
    rec: Option<&'a FlightRecorder>,
    id: u64,
}

impl QueryFlight<'_> {
    /// A handle that records nothing (what planners run with unless a
    /// caller armed a recorder).
    pub const fn disabled() -> Self {
        QueryFlight { rec: None, id: 0 }
    }

    /// Whether events recorded through this handle are kept. Call sites
    /// gate expensive event construction on this.
    pub fn active(&self) -> bool {
        self.rec.is_some()
    }

    /// The record id this handle appends to (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records an event built lazily — the closure never runs when the
    /// handle is disabled (or under the no-op mirror).
    pub fn event_with(&self, f: impl FnOnce() -> PlanEvent) {
        if let Some(rec) = self.rec {
            rec.push(self.id, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(s: &str) -> PlanEvent {
        PlanEvent::Note { text: s.to_string() }
    }

    #[test]
    fn records_events_per_query() {
        let rec = FlightRecorder::new();
        let q1 = rec.begin_with(|| ("SP(a)".into(), "GenCompact".into()));
        q1.event_with(|| note("one"));
        let q2 = rec.begin_with(|| ("SP(b)".into(), "GenModular".into()));
        q2.event_with(|| note("two"));
        q1.event_with(|| note("three")); // interleaved, isolated by id
        let r1 = rec.record(q1.id()).unwrap();
        let r2 = rec.record(q2.id()).unwrap();
        assert_eq!(r1.query, "SP(a)");
        assert_eq!(r1.events, vec![note("one"), note("three")]);
        assert_eq!(r2.scheme, "GenModular");
        assert_eq!(r2.events, vec![note("two")]);
        assert_eq!(rec.latest().unwrap().id, q2.id());
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let rec = FlightRecorder::with_capacity(2, 16);
        let a = rec.begin_with(|| ("a".into(), "s".into()));
        let b = rec.begin_with(|| ("b".into(), "s".into()));
        let c = rec.begin_with(|| ("c".into(), "s".into()));
        assert_eq!(rec.evicted(), 1);
        assert!(rec.record(a.id()).is_none(), "oldest evicted");
        assert!(rec.record(b.id()).is_some());
        assert!(rec.record(c.id()).is_some());
        // Events for an evicted record are dropped without panicking.
        a.event_with(|| note("late"));
        assert_eq!(rec.records().len(), 2);
    }

    #[test]
    fn per_record_event_cap_counts_drops() {
        let rec = FlightRecorder::with_capacity(4, 3);
        let q = rec.begin_with(|| ("q".into(), "s".into()));
        for i in 0..5 {
            q.event_with(|| note(&format!("e{i}")));
        }
        let r = rec.record(q.id()).unwrap();
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn disarmed_recorder_never_builds_events() {
        let rec = FlightRecorder::off();
        assert!(!rec.armed());
        let q = rec.begin_with(|| unreachable!("disarmed recorder must not build the label"));
        assert!(!q.active());
        q.event_with(|| unreachable!("disarmed recorder must not build events"));
        rec.note_latest(|| unreachable!("disarmed recorder must not build notes"));
        assert!(rec.latest().is_none());
        assert!(rec.records().is_empty());
    }

    #[test]
    fn note_latest_appends_to_newest_record() {
        let rec = FlightRecorder::new();
        rec.note_latest(|| unreachable!("no record yet — closure must not run"));
        let _a = rec.begin_with(|| ("a".into(), "s".into()));
        let _b = rec.begin_with(|| ("b".into(), "s".into()));
        rec.note_latest(|| note("tail"));
        assert_eq!(rec.latest().unwrap().events, vec![note("tail")]);
        assert!(rec.records()[0].events.is_empty());
    }

    #[test]
    fn concurrent_queries_stay_isolated() {
        let rec = FlightRecorder::with_capacity(16, 1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = &rec;
                s.spawn(move || {
                    let q = rec.begin_with(|| (format!("q{t}"), "s".into()));
                    for i in 0..200 {
                        q.event_with(|| note(&format!("{t}:{i}")));
                    }
                });
            }
        });
        let records = rec.records();
        assert_eq!(records.len(), 4);
        for r in records {
            let tag = r.query.strip_prefix('q').unwrap();
            assert_eq!(r.events.len(), 200);
            for (i, e) in r.events.iter().enumerate() {
                assert_eq!(e, &note(&format!("{tag}:{i}")), "no cross-query interleaving");
            }
        }
    }

    #[test]
    fn events_render_their_rule_tags() {
        let lines = [
            (PlanEvent::Pr1ShortCircuit { node: "a = 1".into(), cost: 5.0 }, "[PR1]"),
            (PlanEvent::Pr2Evicted { mask: 1, kept_cost: 1.0, evicted_cost: 2.0 }, "[PR2]"),
            (PlanEvent::Pr3Dominated { mask: 1, cost: 3.0, by_mask: 3, by_cost: 2.0 }, "[PR3]"),
            (
                PlanEvent::McscCover {
                    chosen_masks: vec![1, 2],
                    total_cost: 4.0,
                    covers_examined: 7,
                    tie_break: "t",
                },
                "[MCSC]",
            ),
            (
                PlanEvent::Eliminated {
                    rule: "cost",
                    cost: 9.0,
                    plan: "p".into(),
                    detail: "d".into(),
                },
                "[cost]",
            ),
        ];
        for (event, tag) in lines {
            assert!(event.to_string().contains(tag), "{event} missing {tag}");
        }
    }
}
