//! Hierarchical span records on the virtual-tick clock.
//!
//! A [`SpanRecord`] is the structured twin of the tracer's `> label` /
//! `< label` event pair: deterministic sequential id, parent pointer,
//! start/end ticks, nesting depth. The recording [`Tracer`](crate::Tracer)
//! appends one per `span()` call; the no-op mirror records nothing. The
//! types and functions here are compiled unconditionally — a span *tree* is
//! plain data that profile snapshots carry whether or not the `obs` feature
//! recorded anything into it.
//!
//! Well-formedness (pinned by `validate` and the span proptests): ids are
//! strictly increasing in record order, every span closes at or after it
//! opens, a child opens after its parent, closes before it, and sits
//! exactly one level deeper. That invariant is what makes the flame-graph
//! JSON below renderable without cycle or overlap checks.

use crate::metrics::render_json_string;
use std::fmt::Write as _;

/// One closed (or still-open) span on the virtual-tick clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Deterministic sequential id, in span-open order (0, 1, 2, …).
    pub id: u64,
    /// The id of the enclosing span open at the time, if any.
    pub parent: Option<u64>,
    /// The span label (`plan`, `execute`, `segment 0`, …).
    pub label: String,
    /// Virtual tick stamped on the `> label` event.
    pub start_tick: u64,
    /// Virtual tick stamped on the `< label` event; `None` while open.
    pub end_tick: Option<u64>,
    /// Nesting depth at open time (0 = root).
    pub depth: u16,
}

impl SpanRecord {
    /// Ticks between open and close (0 while the span is still open).
    pub fn duration(&self) -> u64 {
        self.end_tick.map_or(0, |e| e.saturating_sub(self.start_tick))
    }
}

/// Checks the span-tree well-formedness invariant over a recorded slice:
/// ids strictly increase, every span is closed with `end >= start`, every
/// parent exists earlier in the slice, children nest strictly inside their
/// parent's interval at exactly one extra level of depth. Returns the first
/// violation, rendered, so proptest failures read as a diagnosis.
pub fn validate(spans: &[SpanRecord]) -> Result<(), String> {
    for (i, s) in spans.iter().enumerate() {
        if i > 0 && spans[i - 1].id >= s.id {
            return Err(format!("span ids not strictly increasing at index {i} (id {})", s.id));
        }
        let Some(end) = s.end_tick else {
            return Err(format!("span {} ({}) never closed", s.id, s.label));
        };
        if end < s.start_tick {
            return Err(format!(
                "span {} ({}) closes at {end} before opening at {}",
                s.id, s.label, s.start_tick
            ));
        }
        let Some(pid) = s.parent else {
            if s.depth != 0 {
                return Err(format!("root span {} ({}) has depth {}", s.id, s.label, s.depth));
            }
            continue;
        };
        let Some(p) = spans.iter().take(i).find(|p| p.id == pid) else {
            return Err(format!("span {} ({}) has unknown parent {pid}", s.id, s.label));
        };
        let p_end = p.end_tick.expect("parents are validated before children");
        if s.start_tick < p.start_tick || end > p_end {
            return Err(format!(
                "span {} ({}) [{}..{end}] escapes parent {} ({}) [{}..{p_end}]",
                s.id, s.label, s.start_tick, p.id, p.label, p.start_tick
            ));
        }
        if s.depth != p.depth + 1 {
            return Err(format!(
                "span {} ({}) at depth {} under parent {} at depth {}",
                s.id, s.label, s.depth, p.id, p.depth
            ));
        }
    }
    Ok(())
}

/// Renders a span slice as a schema-stable JSON forest: an array of root
/// spans, each `{"id", "label", "start", "end", "children": [...]}` with
/// children in id order. Still-open spans render `"end": null`.
pub fn render_json(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    render_forest(spans, None, &mut out);
    out
}

fn render_forest(spans: &[SpanRecord], parent: Option<u64>, out: &mut String) {
    out.push('[');
    let mut first = true;
    for s in spans.iter().filter(|s| s.parent == parent) {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{{\"id\": {}, \"label\": ", s.id);
        render_json_string(out, &s.label);
        let _ = write!(out, ", \"start\": {}, \"end\": ", s.start_tick);
        match s.end_tick {
            Some(e) => {
                let _ = write!(out, "{e}");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"children\": ");
        render_forest(spans, Some(s.id), out);
        out.push('}');
    }
    out.push(']');
}

/// Renders a span slice as an indented text tree (the `/spans` endpoint):
/// one `label [start..end] (+duration)` line per span.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = write!(
            out,
            "{:indent$}{} [{}..",
            "",
            s.label,
            s.start_tick,
            indent = s.depth as usize * 2
        );
        match s.end_tick {
            Some(e) => {
                let _ = writeln!(out, "{e}] (+{})", s.duration());
            }
            None => {
                let _ = writeln!(out, "open]");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        parent: Option<u64>,
        label: &str,
        start: u64,
        end: u64,
        depth: u16,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            label: label.to_string(),
            start_tick: start,
            end_tick: Some(end),
            depth,
        }
    }

    #[test]
    fn validates_a_well_formed_tree() {
        let spans = vec![
            span(0, None, "plan", 0, 9, 0),
            span(1, Some(0), "rewrite", 1, 2, 1),
            span(2, Some(0), "ipg", 3, 8, 1),
            span(3, Some(2), "mcsc", 4, 5, 2),
        ];
        assert!(validate(&spans).is_ok());
    }

    #[test]
    fn rejects_escaping_and_unclosed_children() {
        let escaped = vec![span(0, None, "plan", 0, 4, 0), span(1, Some(0), "ipg", 2, 9, 1)];
        assert!(validate(&escaped).unwrap_err().contains("escapes parent"));
        let mut unclosed = vec![span(0, None, "plan", 0, 4, 0)];
        unclosed[0].end_tick = None;
        assert!(validate(&unclosed).unwrap_err().contains("never closed"));
        let depth = vec![span(0, None, "plan", 0, 9, 0), span(1, Some(0), "ipg", 1, 2, 2)];
        assert!(validate(&depth).unwrap_err().contains("at depth"));
    }

    #[test]
    fn json_and_tree_render_deterministically() {
        let spans = vec![
            span(0, None, "plan", 0, 9, 0),
            span(1, Some(0), "ipg", 1, 8, 1),
            span(2, None, "execute", 10, 12, 0),
        ];
        let json = render_json(&spans);
        assert_eq!(
            json,
            "[{\"id\": 0, \"label\": \"plan\", \"start\": 0, \"end\": 9, \"children\": \
             [{\"id\": 1, \"label\": \"ipg\", \"start\": 1, \"end\": 8, \"children\": []}]}, \
             {\"id\": 2, \"label\": \"execute\", \"start\": 10, \"end\": 12, \"children\": []}]"
        );
        let tree = render_tree(&spans);
        assert_eq!(tree, "plan [0..9] (+9)\n  ipg [1..8] (+7)\nexecute [10..12] (+2)\n");
    }
}
