//! Per-source health scoring and SLO burn-rate gauges.
//!
//! The federation layer already records everything needed to judge a member
//! — errors, retries, breaker transitions, drift triggers, splices, and the
//! est-vs-observed cost band — but only as raw counters. This module folds a
//! window of those signals ([`SourceSignals`], extracted from a
//! [`MetricsSnapshot`] delta by [`signals_from_window`]) into one number a
//! human can triage on: a 0–100 [`HealthReport::score`] with an explicit,
//! documented rubric and a coarse [`Grade`]. Serve mode renders the
//! scoreboard at `/status` (text table or `?format=json`) and republishes
//! each score as a `health.score.<member>` gauge.
//!
//! Scoring rubric (deterministic; applied to one window of signals):
//!
//! * start at 100;
//! * error rate `e = errors / max(1, queries)`: subtract `min(60, 300·e)`
//!   — 20% errors alone is critical;
//! * retry rate `r = retries / max(1, queries)`: subtract `min(15, 30·r)`;
//! * breaker state now: open −40, half-open −15;
//! * breaker opens in the window: subtract `min(20, 10·opens)`;
//! * drift-trigger rate `d`: subtract `min(10, 20·d)`;
//! * splice rate `s`: subtract `min(10, 20·s)`;
//! * cost band: observed/estimated cost outside `[0.5, 2]×` −10;
//! * clamp to `[0, 100]`.
//!
//! Grades: `score ≥ 80` healthy, `≥ 50` degraded, else critical
//! ([`HEALTHY_THRESHOLD`]). The rubric weights are part of the observable
//! schema — pinned by `tests/golden_status.txt` — so retuning them is an
//! explicit, reviewable change.
//!
//! SLO burn rates follow the standard error-budget formulation: with budget
//! `b` (fraction of requests allowed to breach), a window where fraction `f`
//! breaches burns at rate `f / b` — 1.0 means exactly on budget, 10 means
//! burning ten times too fast. Plain data, compiled unconditionally.

use crate::metrics::{render_f64, render_json_string, MetricsSnapshot};
use crate::names;
use std::fmt::Write as _;

/// Scores at or above this grade "healthy"; at or above [`DEGRADED_THRESHOLD`]
/// "degraded"; below, "critical".
pub const HEALTHY_THRESHOLD: f64 = 80.0;
/// Lower bound of the "degraded" grade band.
pub const DEGRADED_THRESHOLD: f64 = 50.0;

/// Coarse triage grade derived from a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grade {
    /// Score ≥ 80: serving normally.
    Healthy,
    /// Score in [50, 80): usable but showing elevated failure signals.
    Degraded,
    /// Score < 50: effectively unusable (often breaker-open).
    Critical,
}

impl Grade {
    /// Grade for a score under the documented thresholds.
    pub fn for_score(score: f64) -> Grade {
        if score >= HEALTHY_THRESHOLD {
            Grade::Healthy
        } else if score >= DEGRADED_THRESHOLD {
            Grade::Degraded
        } else {
            Grade::Critical
        }
    }

    /// Lower-case label (`healthy` / `degraded` / `critical`).
    pub fn label(&self) -> &'static str {
        match self {
            Grade::Healthy => "healthy",
            Grade::Degraded => "degraded",
            Grade::Critical => "critical",
        }
    }
}

/// One window of raw per-member signals, the input to [`score`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceSignals {
    /// Member name.
    pub member: String,
    /// Queries this member served in the window.
    pub queries: u64,
    /// Member executions that failed after retries.
    pub errors: u64,
    /// Retries attributed to this member.
    pub retries: u64,
    /// Live breaker state: 0 closed, 1 half-open, 2 open (same encoding as
    /// the `breaker.state.<member>` gauge).
    pub breaker_state: u8,
    /// Breaker open transitions in the window.
    pub breaker_opened: u64,
    /// Drift-band replan triggers attributed to this member.
    pub drift_triggers: u64,
    /// Mid-query splices attributed to this member.
    pub splices: u64,
    /// Σ planner-estimated cost over the window (0 when unknown).
    pub est_cost: f64,
    /// Σ observed cost over the window (0 when unknown).
    pub observed_cost: f64,
}

/// A scored member: signals plus the rubric's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The window of signals the score was computed from.
    pub signals: SourceSignals,
    /// 0–100 rubric score.
    pub score: f64,
    /// Coarse grade for the score.
    pub grade: Grade,
    /// Human-readable rubric deductions, in application order.
    pub notes: Vec<String>,
}

/// Applies the module-level rubric to one window of signals.
pub fn score(signals: SourceSignals) -> HealthReport {
    let mut s = 100.0;
    let mut notes = Vec::new();
    let q = signals.queries.max(1) as f64;

    let error_rate = signals.errors as f64 / q;
    if signals.errors > 0 {
        let d = (300.0 * error_rate).min(60.0);
        s -= d;
        notes.push(format!("error rate {:.0}%: -{d:.1}", error_rate * 100.0));
    }
    let retry_rate = signals.retries as f64 / q;
    if signals.retries > 0 {
        let d = (30.0 * retry_rate).min(15.0);
        s -= d;
        notes.push(format!("retry rate {:.0}%: -{d:.1}", retry_rate * 100.0));
    }
    match signals.breaker_state {
        2 => {
            s -= 40.0;
            notes.push("breaker open: -40.0".to_string());
        }
        1 => {
            s -= 15.0;
            notes.push("breaker half-open: -15.0".to_string());
        }
        _ => {}
    }
    if signals.breaker_opened > 0 {
        let d = (10.0 * signals.breaker_opened as f64).min(20.0);
        s -= d;
        notes.push(format!("breaker opened {}x: -{d:.1}", signals.breaker_opened));
    }
    if signals.drift_triggers > 0 {
        let d = (20.0 * signals.drift_triggers as f64 / q).min(10.0);
        s -= d;
        notes.push(format!("drift triggers {}: -{d:.1}", signals.drift_triggers));
    }
    if signals.splices > 0 {
        let d = (20.0 * signals.splices as f64 / q).min(10.0);
        s -= d;
        notes.push(format!("splices {}: -{d:.1}", signals.splices));
    }
    if signals.est_cost > 0.0 && signals.observed_cost > 0.0 {
        let ratio = signals.observed_cost / signals.est_cost;
        if !(0.5..=2.0).contains(&ratio) {
            s -= 10.0;
            notes.push(format!("cost band {ratio:.2}x outside [0.5, 2]: -10.0"));
        }
    }
    let score = s.clamp(0.0, 100.0);
    HealthReport { signals, score, grade: Grade::for_score(score), notes }
}

/// Extracts one member's [`SourceSignals`] from a windowed registry delta.
/// `breaker_state` is passed in live (window folding sums gauges into
/// nonsense — breaker state must come from `Federation::breaker_states`).
pub fn signals_from_window(
    window: &MetricsSnapshot,
    member: &str,
    breaker_state: u8,
) -> SourceSignals {
    let c = |prefix: &str| window.counter(&format!("{prefix}{member}"));
    SourceSignals {
        member: member.to_string(),
        queries: c(names::MEMBER_QUERIES_PREFIX),
        errors: c(names::MEMBER_ERRORS_PREFIX),
        retries: c(names::MEMBER_RETRIES_PREFIX),
        breaker_state,
        breaker_opened: c(names::BREAKER_OPENED_PREFIX),
        drift_triggers: c(names::MEMBER_DRIFT_PREFIX),
        splices: c(names::MEMBER_SPLICES_PREFIX),
        est_cost: c(names::MEMBER_EST_COST_MILLI_PREFIX) as f64 / 1000.0,
        observed_cost: c(names::MEMBER_OBS_COST_MILLI_PREFIX) as f64 / 1000.0,
    }
}

/// The latency/error objective `slo.*` burn rates are computed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A query breaching this latency (µs wall-clock, or virtual ticks when
    /// quarantined) counts against the latency budget.
    pub latency_objective_us: u64,
    /// Fraction of queries allowed to breach (errors or latency) before the
    /// budget burns at rate 1.0.
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        // 500 ms and 1% — a deliberately loose default; serve flags tighten it.
        SloConfig { latency_objective_us: 500_000, error_budget: 0.01 }
    }
}

impl SloConfig {
    /// Burn rate for `bad` breaches out of `total` events: the breach
    /// fraction divided by the budget. 0 when nothing happened.
    pub fn burn_rate(&self, bad: u64, total: u64) -> f64 {
        if total == 0 || self.error_budget <= 0.0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.error_budget
    }
}

/// Everything `/status` shows besides the per-member reports: the SLO
/// objective and its burn rates, plus the time-series window bookkeeping.
/// Kept as plain data so the page can be rendered (and golden-tested) away
/// from a live server.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSummary {
    /// The objective burn rates are measured against.
    pub slo: SloConfig,
    /// Error-budget burn rate over the reported windows.
    pub error_burn: f64,
    /// Latency-budget burn rate over the reported windows.
    pub latency_burn: f64,
    /// Queries observed over the reported windows.
    pub queries: u64,
    /// Windows folded into the report (retained + the live one).
    pub windows: usize,
    /// Windows evicted from the ring so far.
    pub dropped: u64,
}

/// Renders the full `/status` page as text: SLO header, then the
/// scoreboard table. Deterministic for deterministic inputs — the
/// `tests/golden_status.txt` surface.
pub fn render_status_text(summary: &StatusSummary, reports: &[HealthReport]) -> String {
    let mut out = String::from("csqp serve status\n");
    let _ = writeln!(
        out,
        "windows {} (dropped {})  queries {}",
        summary.windows, summary.dropped, summary.queries
    );
    let _ = writeln!(
        out,
        "slo: latency objective {} us, error budget {:.4}; error burn {:.2}, latency burn {:.2}",
        summary.slo.latency_objective_us,
        summary.slo.error_budget,
        summary.error_burn,
        summary.latency_burn
    );
    out.push('\n');
    out.push_str(&render_table(reports));
    out
}

/// Renders the full `/status` page as JSON (the `?format=json` variant).
/// Key order pinned; floats shortest-roundtrip.
pub fn render_status_json(summary: &StatusSummary, reports: &[HealthReport]) -> String {
    let mut out = String::from("{\n  \"slo\": {\"latency_objective_us\": ");
    let _ = write!(out, "{}", summary.slo.latency_objective_us);
    out.push_str(", \"error_budget\": ");
    render_f64(&mut out, summary.slo.error_budget);
    out.push_str(", \"error_burn\": ");
    render_f64(&mut out, summary.error_burn);
    out.push_str(", \"latency_burn\": ");
    render_f64(&mut out, summary.latency_burn);
    let _ = write!(
        out,
        "}},\n  \"queries\": {},\n  \"windows\": {},\n  \"dropped\": {},\n  \"sources\": [",
        summary.queries, summary.windows, summary.dropped
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        render_report_json(&mut out, r);
    }
    if !reports.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Renders the scoreboard as the `/status` text table: one header, one row
/// per report (caller sorts), score to one decimal, rubric notes inline.
pub fn render_table(reports: &[HealthReport]) -> String {
    let mut out =
        String::from("member              score  grade     queries errors  breaker  notes\n");
    for r in reports {
        let breaker = match r.signals.breaker_state {
            2 => "open",
            1 => "half-open",
            _ => "closed",
        };
        let _ = writeln!(
            out,
            "{:<18} {:>6.1}  {:<8} {:>8} {:>6}  {:<8} {}",
            r.signals.member,
            r.score,
            r.grade.label(),
            r.signals.queries,
            r.signals.errors,
            breaker,
            if r.notes.is_empty() { "-".to_string() } else { r.notes.join("; ") },
        );
    }
    out
}

/// Renders one report as a JSON object (schema-stable key order).
pub fn render_report_json(out: &mut String, r: &HealthReport) {
    out.push_str("{\"member\": ");
    render_json_string(out, &r.signals.member);
    out.push_str(", \"score\": ");
    render_f64(out, r.score);
    out.push_str(", \"grade\": ");
    render_json_string(out, r.grade.label());
    let _ = write!(
        out,
        ", \"queries\": {}, \"errors\": {}, \"retries\": {}, \"breaker_state\": {}, \
         \"breaker_opened\": {}, \"drift_triggers\": {}, \"splices\": {}, \"est_cost\": ",
        r.signals.queries,
        r.signals.errors,
        r.signals.retries,
        r.signals.breaker_state,
        r.signals.breaker_opened,
        r.signals.drift_triggers,
        r.signals.splices,
    );
    render_f64(out, r.signals.est_cost);
    out.push_str(", \"observed_cost\": ");
    render_f64(out, r.signals.observed_cost);
    out.push_str(", \"notes\": [");
    for (i, n) in r.notes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_json_string(out, n);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn base(member: &str, queries: u64) -> SourceSignals {
        SourceSignals { member: member.to_string(), queries, ..Default::default() }
    }

    #[test]
    fn clean_member_scores_100() {
        let r = score(base("books", 10));
        assert_eq!(r.score, 100.0);
        assert_eq!(r.grade, Grade::Healthy);
        assert!(r.notes.is_empty());
    }

    #[test]
    fn breaker_open_member_drops_below_healthy() {
        // The acceptance-criteria scenario: a chaos storm opens the breaker.
        let r = score(SourceSignals {
            breaker_state: 2,
            breaker_opened: 1,
            errors: 3,
            queries: 10,
            ..base("flaky", 10)
        });
        assert!(r.score < HEALTHY_THRESHOLD, "breaker-open member is not healthy: {}", r.score);
        assert_eq!(r.grade, Grade::Critical, "open breaker + 30% errors is critical");
    }

    #[test]
    fn rubric_deductions_cap_and_clamp() {
        // 100% errors caps at -60, not -300.
        let r = score(SourceSignals { errors: 10, ..base("m", 10) });
        assert_eq!(r.score, 40.0);
        // Everything at once clamps at zero.
        let r = score(SourceSignals {
            errors: 10,
            retries: 10,
            breaker_state: 2,
            breaker_opened: 5,
            drift_triggers: 10,
            splices: 10,
            est_cost: 1.0,
            observed_cost: 10.0,
            ..base("m", 10)
        });
        assert_eq!(r.score, 0.0);
        assert_eq!(r.grade, Grade::Critical);
    }

    #[test]
    fn cost_band_only_fires_outside_2x() {
        let ok = score(SourceSignals { est_cost: 10.0, observed_cost: 19.0, ..base("m", 5) });
        assert_eq!(ok.score, 100.0);
        let bad = score(SourceSignals { est_cost: 10.0, observed_cost: 25.0, ..base("m", 5) });
        assert_eq!(bad.score, 90.0);
        let low = score(SourceSignals { est_cost: 10.0, observed_cost: 4.0, ..base("m", 5) });
        assert_eq!(low.score, 90.0);
    }

    #[test]
    fn signals_extract_from_member_counters() {
        let reg = MetricsRegistry::new();
        reg.add("member.queries.books", 7);
        reg.add("member.errors.books", 2);
        reg.add("member.retries.books", 1);
        reg.add("member.breaker_opened.books", 1);
        reg.add("member.est_cost_milli.books", 1500);
        reg.add("member.observed_cost_milli.books", 4000);
        let s = signals_from_window(&reg.snapshot(), "books", 2);
        assert_eq!(s.queries, 7);
        assert_eq!(s.errors, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.breaker_opened, 1);
        assert_eq!(s.breaker_state, 2);
        assert_eq!(s.est_cost, 1.5);
        assert_eq!(s.observed_cost, 4.0);
        // Absent members read as all-zero signals.
        let none = signals_from_window(&reg.snapshot(), "ghost", 0);
        assert_eq!(none.queries, 0);
    }

    #[test]
    fn burn_rate_is_breach_fraction_over_budget() {
        let slo = SloConfig { latency_objective_us: 1000, error_budget: 0.01 };
        assert_eq!(slo.burn_rate(0, 100), 0.0);
        assert_eq!(slo.burn_rate(1, 100), 1.0);
        assert_eq!(slo.burn_rate(10, 100), 10.0);
        assert_eq!(slo.burn_rate(0, 0), 0.0);
        assert_eq!(SloConfig { error_budget: 0.0, ..slo }.burn_rate(5, 10), 0.0);
    }

    #[test]
    fn renders_are_deterministic() {
        let reports = vec![score(base("a", 3)), score(SourceSignals { errors: 1, ..base("b", 4) })];
        let table = render_table(&reports);
        assert_eq!(table, render_table(&reports));
        assert!(table.contains("member"));
        assert!(table.lines().count() == 3);
        let mut json = String::new();
        render_report_json(&mut json, &reports[1]);
        assert!(json.contains("\"member\": \"b\""));
        assert!(json.contains("\"grade\": \"critical\""), "25% errors deducts the full 60: {json}");
        assert!(json.contains("error rate 25%"));
    }
}
